#!/usr/bin/env python3
"""Simulated-time determinism/race checker.

Runs bench/determinism_probe (the Fig. 12 AllReduce scenario) once as the
FIFO baseline and again under N shuffled tie-breaking seeds combined with
randomized memory layout, then diffs every run's stdout — completion times
and per-rank finish times printed at full double precision — and, when
tracing is enabled, the exported Chrome traces byte-for-byte.

Any difference means some component's observable result depends on the order
of same-timestamp events or on memory layout: the simulated-time analogue of
a data race. The checker prints the first diverging line per failing seed.

Usage:
    python3 tools/determinism_check.py --binary build/bench/determinism_probe
    python3 tools/determinism_check.py --binary ... --seeds 7 --trace
"""

from __future__ import annotations

import argparse
import difflib
import pathlib
import subprocess
import sys
import tempfile

# Fixed seed list (extended deterministically when --seeds asks for more):
# runs must be reproducible, so the checker never draws fresh randomness.
BASE_SEEDS = [
    0x9E3779B97F4A7C15,
    0xDEADBEEFCAFEF00D,
    0x0123456789ABCDEF,
    0xA5A5A5A55A5A5A5A,
    0x1000000000000001,
]


def seeds_for(count: int) -> list[int]:
    seeds = list(BASE_SEEDS)
    value = BASE_SEEDS[-1]
    while len(seeds) < count:
        value = (value * 6364136223846793005 + 1442695040888963407) % (1 << 64) or 1
        seeds.append(value)
    return seeds[:count]


def run_probe(binary: str, tie_seed: int, layout_jitter: int,
              trace_prefix: pathlib.Path | None) -> tuple[str, list[pathlib.Path]]:
    cmd = [binary, f"--tie-shuffle-seed={tie_seed}", f"--layout-jitter={layout_jitter}"]
    if trace_prefix is not None:
        cmd.append(f"--trace={trace_prefix}")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"probe failed (seed={tie_seed}): exit {proc.returncode}")
    traces = sorted(trace_prefix.parent.glob(trace_prefix.name + ".*")) if trace_prefix else []
    return proc.stdout, traces


def first_diff(baseline: str, shuffled: str) -> str:
    for line in difflib.unified_diff(baseline.splitlines(), shuffled.splitlines(),
                                     "fifo", "shuffled", lineterm="", n=0):
        if line.startswith(("+", "-")) and not line.startswith(("+++", "---")):
            return line
    return "<outputs differ only in line count>"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--binary", default="build/bench/determinism_probe",
                        help="path to the determinism_probe binary")
    parser.add_argument("--seeds", type=int, default=5,
                        help="number of shuffled orderings to compare (default 5)")
    parser.add_argument("--trace", action="store_true",
                        help="also export and byte-compare Chrome traces per run")
    args = parser.parse_args()

    binary = pathlib.Path(args.binary)
    if not binary.exists():
        print(f"determinism_check: binary not found: {binary}", file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory(prefix="adapcc-determinism-") as tmp:
        tmpdir = pathlib.Path(tmp)
        base_prefix = tmpdir / "base" if args.trace else None
        baseline, base_traces = run_probe(str(binary), 0, 0, base_prefix)
        base_blobs = {p.name[len("base"):]: p.read_bytes() for p in base_traces}
        print(f"determinism_check: baseline captured "
              f"({len(baseline.splitlines())} lines, {len(base_traces)} traces)")

        failures = 0
        for index, seed in enumerate(seeds_for(args.seeds)):
            prefix = tmpdir / f"s{index}" if args.trace else None
            output, traces = run_probe(str(binary), seed, seed, prefix)
            if output != baseline:
                failures += 1
                print(f"FAIL seed={seed:#x}: output diverges from FIFO baseline")
                print(f"  first diff: {first_diff(baseline, output)}")
                continue
            trace_ok = True
            for path in traces:
                key = path.name[len(f"s{index}"):]
                if base_blobs.get(key) != path.read_bytes():
                    failures += 1
                    trace_ok = False
                    print(f"FAIL seed={seed:#x}: trace {key} diverges from FIFO baseline")
                    break
            if trace_ok:
                print(f"ok seed={seed:#x}: byte-identical"
                      + (f" ({len(traces)} traces)" if traces else ""))

    if failures:
        print(f"determinism_check: {failures} diverging seed(s) — simulated-time race detected")
        return 1
    print(f"determinism_check: clean across {args.seeds} shuffled orderings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
