#!/usr/bin/env python3
"""AdapCC-specific lint rules that generic tooling cannot express.

The simulator promises bit-identical results for identical inputs; the rules
here defend that promise at the source level:

  wall-clock          No wall-clock reads (`system_clock`, `steady_clock`,
                      `time()`, `gettimeofday`, ...) inside simulated-time
                      code (src/sim, src/collective, src/synthesizer).
                      Host-side solve timing must go through the audited
                      `util/wallclock.h` wrapper, whose contract is that the
                      measured value feeds *reports only*, never simulation
                      state.
  unseeded-random     No `rand()` / `srand()` / `std::random_device` in the
                      same directories: all stochastic behaviour draws from an
                      explicitly seeded `util::Rng` threaded through
                      constructors.
  unordered-iteration No range-for over `std::unordered_map` /
                      `std::unordered_set` typed values in the same
                      directories: hash-order iteration feeding any
                      simulation-visible result (event scheduling order,
                      strategy serialization, cost aggregation) breaks
                      cross-platform determinism. Loops whose bodies are
                      provably order-insensitive carry a `// lint:ordered`
                      waiver with a justification.
  hot-path-function   Files tagged `adapcc-lint: hot-path` (the event loop and
                      the link fast path) must not mention `std::function`:
                      its heap fallback and double indirection are exactly
                      what InlineCallback exists to avoid (DESIGN.md §7).
  units-suffix        Function parameters holding times, sizes or bandwidths
                      must use the `Seconds` / `Bytes` / `BytesPerSecond`
                      aliases from util/units.h, not raw `double` / integer
                      types. The alias *is* the unit annotation; a raw
                      `double timeout` has silently been microseconds before.
  chaos               No naked `set_capacity(...)` calls outside the link
                      layer itself (src/sim), the sanctioned shaper
                      (Cluster::set_nic_capacity_fraction) and the chaos
                      injector (src/chaos). Every capacity change elsewhere
                      must flow through those paths so it is telemetered,
                      validated and replayable by a fault schedule. Tests
                      that drive a raw FlowLink directly carry a
                      `// lint:chaos` waiver.
  threads             No raw `std::thread` outside `src/util/task_pool.*`:
                      host-side parallelism goes through util::TaskPool, whose
                      indexed fan-out/reduce API is what keeps parallel solves
                      bit-identical to serial ones (DESIGN.md §10). Tests may
                      spawn producer threads to drive the thread-safe surfaces
                      (queues, inboxes, the strategy cache), but `.detach()` is
                      banned everywhere — a detached thread outliving its
                      owner is how use-after-scope races start. Sanctioned
                      exceptions (e.g. `std::thread::hardware_concurrency` is
                      allowed; a deliberate raw thread is not) carry a
                      `// lint:threads` waiver with a justification.

Usage:  python3 tools/adapcc_lint.py [--root DIR] [--list-rules]
Exit status is non-zero when any finding is reported. A finding on line N can
be waived with a trailing `// lint:<rule>` comment on the same line, but
every waiver must carry a reason in the surrounding code or comment.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Directories whose code runs under simulated time: determinism rules apply.
SIMULATED_TIME_DIRS = ("src/sim", "src/collective", "src/synthesizer")
# All first-party C++ sources (units rule applies everywhere under src/).
SOURCE_DIRS = ("src",)

CPP_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}

WALL_CLOCK_TOKENS = [
    "std::chrono::system_clock",
    "std::chrono::steady_clock",
    "std::chrono::high_resolution_clock",
    "system_clock::now",
    "steady_clock::now",
    "high_resolution_clock::now",
    "gettimeofday",
    "clock_gettime",
    "std::time(",
    "::time(nullptr",
    "::time(NULL",
]

RANDOM_TOKENS = [
    "std::rand(",
    "::rand()",
    "srand(",
    "std::random_device",
    "random_device{",
]

HOT_PATH_TAG = "adapcc-lint: hot-path"

# chaos rule: where capacity may legitimately change, and what to look for.
CHAOS_RULE_DIRS = ("src", "tests", "bench", "examples")
CHAOS_ALLOWED_PREFIXES = ("src/sim/", "src/chaos/", "src/topology/cluster")
SET_CAPACITY_RE = re.compile(r"(?:\.|->)set_capacity\s*\(")

# threads rule: the one sanctioned home for raw threads, and what to look for.
THREADS_RULE_DIRS = ("src", "tests", "bench", "examples")
THREADS_ALLOWED_PREFIXES = ("src/util/task_pool",)
# `std::thread` as an object/constructor; static members like
# `std::thread::hardware_concurrency` are reads, not spawns, and stay legal.
THREAD_SPAWN_RE = re.compile(r"std::thread(?!::)")
THREAD_DETACH_RE = re.compile(r"(?:\.|->)detach\s*\(")

# Parameter-name patterns that imply a unit, and the alias they require.
UNITS_RULES = [
    # (name regex, required alias, offending raw types)
    (re.compile(r"(?:^|_)(?:time|delay|latency|timeout|duration|deadline|elapsed|seconds)$"),
     "Seconds", {"double", "float"}),
    (re.compile(r"(?:^|_)(?:bytes|nbytes|size_bytes|chunk_bytes|payload_bytes)$"),
     "Bytes", {"std::uint64_t", "uint64_t", "std::size_t", "size_t", "unsigned long long",
               "long long", "int", "unsigned", "long"}),
    (re.compile(r"(?:^|_)(?:bandwidth|capacity_bps|rate_bps|bytes_per_second)$"),
     "BytesPerSecond", {"double", "float"}),
]

# Matches `Type name` pairs inside a parameter list. Deliberately simple: the
# codebase declares parameters one per comma with no macros in signatures.
PARAM_RE = re.compile(
    r"(?P<type>(?:const\s+)?[A-Za-z_][A-Za-z0-9_:<>]*(?:\s*[&*])?)\s+(?P<name>[a-z_][a-z0-9_]*)\s*(?=[,)])"
)

RANGE_FOR_RE = re.compile(r"for\s*\((?:[^;:()]|\([^)]*\))*:\s*(?P<expr>[^)]+)\)")

UNORDERED_DECL_RE = re.compile(
    r"(?:std::)?unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*[;={(]"
)
UNORDERED_MEMBER_RE = re.compile(
    r"(?:std::)?unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>&?\s+(?P<name>[A-Za-z_][A-Za-z0-9_]*)\s*(?:;|=|\{)"
)


class Finding:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def render(self, root: Path) -> str:
        return f"{self.path.relative_to(root)}:{self.line}: [{self.rule}] {self.message}"


def waived(line: str, rule: str, prev_line: str = "") -> bool:
    """A waiver comment applies on the offending line or the line above it."""
    return f"lint:{rule}" in line or f"lint:{rule}" in prev_line


def strip_comment(line: str) -> str:
    """Removes // comments so tokens inside prose don't trip the rules."""
    cut = line.find("//")
    return line if cut < 0 else line[:cut]


def iter_sources(root: Path, dirs) -> list[Path]:
    out = []
    for d in dirs:
        base = root / d
        if base.exists():
            out.extend(p for p in sorted(base.rglob("*")) if p.suffix in CPP_SUFFIXES)
    return out


def check_forbidden_tokens(path: Path, lines: list[str], rule: str, tokens: list[str],
                           what: str) -> list[Finding]:
    findings = []
    for i, raw in enumerate(lines, start=1):
        if waived(raw, rule):
            continue
        code = strip_comment(raw)
        for token in tokens:
            if token in code:
                findings.append(Finding(rule, path, i,
                                        f"{what} `{token.strip()}` in simulated-time code"))
                break
    return findings


def unordered_names(text: str) -> set[str]:
    """Names of unordered containers declared in `text` (locals and members)."""
    names = set()
    for m in UNORDERED_DECL_RE.finditer(text):
        names.add(m.group("name"))
    for m in UNORDERED_MEMBER_RE.finditer(text):
        names.add(m.group("name"))
    return names


def check_unordered_iteration(path: Path, lines: list[str], sibling_text: str) -> list[Finding]:
    own_text = "\n".join(strip_comment(l) for l in lines)
    names = unordered_names(own_text) | unordered_names(sibling_text)
    findings = []
    for i, raw in enumerate(lines, start=1):
        prev = lines[i - 2] if i >= 2 else ""
        if waived(raw, "unordered-iteration", prev) or waived(raw, "ordered", prev):
            continue
        code = strip_comment(raw)
        m = RANGE_FOR_RE.search(code)
        if not m:
            continue
        expr = m.group("expr").strip()
        # The iterated expression's trailing identifier (handles `foo.bar_`,
        # `sub.aggregate_at`, plain `parent`).
        ident = re.split(r"[^A-Za-z0-9_]+", expr)[-1] or expr
        if ident in names:
            findings.append(Finding(
                "unordered-iteration", path, i,
                f"range-for over unordered container `{ident}`: hash order must not feed "
                f"simulation-visible results (sort first, or waive with `// lint:ordered` "
                f"+ justification)"))
    return findings


def check_hot_path(path: Path, lines: list[str]) -> list[Finding]:
    head = "\n".join(lines[:25])
    if HOT_PATH_TAG not in head:
        return []
    findings = []
    for i, raw in enumerate(lines, start=1):
        if waived(raw, "hot-path-function"):
            continue
        code = strip_comment(raw)
        if "std::function" in code:
            findings.append(Finding(
                "hot-path-function", path, i,
                "std::function in a hot-path file; use sim::InlineCallback (DESIGN.md §7)"))
    return findings


def check_units(path: Path, lines: list[str]) -> list[Finding]:
    findings = []
    for i, raw in enumerate(lines, start=1):
        if waived(raw, "units-suffix"):
            continue
        code = strip_comment(raw)
        # Only look at plausible declaration lines; skip expressions.
        if "(" not in code:
            continue
        for m in PARAM_RE.finditer(code):
            ptype = m.group("type").replace("const ", "").strip().rstrip("&* ")
            name = m.group("name")
            for name_re, alias, raw_types in UNITS_RULES:
                if name_re.search(name) and ptype in raw_types:
                    findings.append(Finding(
                        "units-suffix", path, i,
                        f"parameter `{ptype} {name}` should use the `{alias}` alias "
                        f"(util/units.h) so the unit is part of the type"))
    return findings


def check_chaos(path: Path, lines: list[str], root: Path) -> list[Finding]:
    rel = path.relative_to(root).as_posix()
    if rel.startswith(CHAOS_ALLOWED_PREFIXES):
        return []
    findings = []
    for i, raw in enumerate(lines, start=1):
        prev = lines[i - 2] if i >= 2 else ""
        if waived(raw, "chaos", prev):
            continue
        if SET_CAPACITY_RE.search(strip_comment(raw)):
            findings.append(Finding(
                "chaos", path, i,
                "naked set_capacity() outside the shaper/injector: go through "
                "Cluster::set_nic_capacity_fraction or chaos::FaultInjector so the change "
                "is telemetered and replayable (`// lint:chaos` to waive in link-level "
                "tests)"))
    return findings


def check_threads(path: Path, lines: list[str], root: Path) -> list[Finding]:
    rel = path.relative_to(root).as_posix()
    if rel.startswith(THREADS_ALLOWED_PREFIXES):
        return []
    # Tests legitimately spawn (and join) producer threads to drive the
    # thread-safe surfaces; the detach ban still applies to them.
    spawn_banned = not rel.startswith("tests/")
    findings = []
    for i, raw in enumerate(lines, start=1):
        prev = lines[i - 2] if i >= 2 else ""
        if waived(raw, "threads", prev):
            continue
        code = strip_comment(raw)
        if THREAD_DETACH_RE.search(code):
            findings.append(Finding(
                "threads", path, i,
                "detached thread: nothing may outlive its owner — join explicitly or go "
                "through util::TaskPool"))
        elif spawn_banned and THREAD_SPAWN_RE.search(code):
            findings.append(Finding(
                "threads", path, i,
                "raw std::thread outside util::TaskPool: host-side parallelism must use the "
                "pool's deterministic indexed API (DESIGN.md §10); waive deliberate uses "
                "with `// lint:threads` + justification"))
    return findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent)
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()
    root = args.root.resolve()

    if args.list_rules:
        print("wall-clock unseeded-random unordered-iteration hot-path-function units-suffix "
              "chaos threads")
        return 0

    findings: list[Finding] = []

    for path in iter_sources(root, SIMULATED_TIME_DIRS):
        lines = path.read_text().splitlines()
        findings += check_forbidden_tokens(path, lines, "wall-clock", WALL_CLOCK_TOKENS,
                                           "wall-clock read")
        findings += check_forbidden_tokens(path, lines, "unseeded-random", RANDOM_TOKENS,
                                           "unseeded randomness")
        sibling = path.with_suffix(".h" if path.suffix == ".cpp" else ".cpp")
        sibling_text = sibling.read_text() if sibling.exists() else ""
        findings += check_unordered_iteration(path, lines, sibling_text)

    for path in iter_sources(root, SOURCE_DIRS):
        lines = path.read_text().splitlines()
        findings += check_hot_path(path, lines)
        findings += check_units(path, lines)

    for path in iter_sources(root, CHAOS_RULE_DIRS):
        lines = path.read_text().splitlines()
        findings += check_chaos(path, lines, root)

    for path in iter_sources(root, THREADS_RULE_DIRS):
        lines = path.read_text().splitlines()
        findings += check_threads(path, lines, root)

    for finding in sorted(findings, key=lambda f: (str(f.path), f.line)):
        print(finding.render(root))
    if findings:
        print(f"adapcc_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("adapcc_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
