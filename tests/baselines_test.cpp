#include <gtest/gtest.h>

#include <memory>

#include "baselines/backend.h"
#include "collective/payload.h"
#include "topology/testbeds.h"

namespace adapcc {
namespace {

using baselines::BlinkBackend;
using baselines::MscclBackend;
using baselines::NcclBackend;
using collective::Primitive;
using topology::NodeId;

class BaselinesTest : public ::testing::Test {
 protected:
  void build(std::vector<topology::InstanceSpec> specs) {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, std::move(specs));
  }

  std::vector<int> all_ranks() const {
    std::vector<int> ranks;
    for (int r = 0; r < cluster_->world_size(); ++r) ranks.push_back(r);
    return ranks;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
};

TEST_F(BaselinesTest, NcclPlanIsSingleChannel) {
  build(topology::homo_testbed());
  NcclBackend nccl(*cluster_);
  const auto plan = nccl.plan(Primitive::kAllReduce, all_ranks(), megabytes(256));
  EXPECT_EQ(plan.subs.size(), 1u);  // one channel
  EXPECT_EQ(plan.origin, "nccl");
  // Every GPU appears in the tree; inter-server hops are head-to-head
  // composite edges, so the tree needs no explicit NIC nodes.
  for (const int rank : all_ranks()) {
    EXPECT_TRUE(plan.subs[0].tree.contains(NodeId::gpu(rank)));
  }
}

TEST_F(BaselinesTest, NcclReducesOntoNicProximalGpu) {
  build(topology::homo_testbed());
  NcclBackend nccl(*cluster_);
  const auto plan = nccl.plan(Primitive::kReduce, all_ranks(), megabytes(256));
  // Root = GPU on the NIC's PCIe switch of instance 0; NIC sits on switch 0,
  // whose GPUs are local ranks 0 and 1 -> global rank 0.
  EXPECT_EQ(plan.subs[0].tree.root, NodeId::gpu(0));
}

TEST_F(BaselinesTest, NcclAllReduceIsCorrect) {
  build(topology::heter_testbed());
  NcclBackend nccl(*cluster_);
  const auto result = nccl.run(Primitive::kAllReduce, all_ranks(), megabytes(64));
  double expected = 0.0;
  for (const int rank : all_ranks()) expected += collective::payload_value(rank, 0, 0);
  for (const int rank : all_ranks()) {
    ASSERT_TRUE(result.delivered.contains(rank));
    EXPECT_DOUBLE_EQ(result.delivered.at(rank)[0][0], expected);
  }
}

TEST_F(BaselinesTest, MscclUsesTwoChannels) {
  build(topology::homo_testbed());
  MscclBackend msccl(*cluster_);
  const auto plan = msccl.plan(Primitive::kAllReduce, all_ranks(), megabytes(256));
  EXPECT_EQ(plan.subs.size(), 2u);
  EXPECT_NO_THROW(plan.subs[0].tree.depth_of(NodeId::gpu(15)));
  EXPECT_NO_THROW(plan.subs[1].tree.depth_of(NodeId::gpu(15)));
}

TEST_F(BaselinesTest, BlinkRejectsAllToAll) {
  build(topology::homo_testbed());
  BlinkBackend blink(*cluster_);
  EXPECT_FALSE(BlinkBackend::supports(Primitive::kAllToAll));
  EXPECT_THROW(blink.run(Primitive::kAllToAll, all_ranks(), megabytes(64)), std::invalid_argument);
  EXPECT_TRUE(BlinkBackend::supports(Primitive::kAllReduce));
}

TEST_F(BaselinesTest, BlinkRunsStagedAllReduce) {
  build(topology::homo_testbed());
  BlinkBackend blink(*cluster_);
  const auto result = blink.run(Primitive::kAllReduce, all_ranks(), megabytes(64));
  EXPECT_GT(result.elapsed(), 0.0);
}

TEST_F(BaselinesTest, BlinkFollowsNvlinkWiringOnFragmentedServer) {
  build({topology::fragmented_a100_server("frag"), topology::a100_server("full")});
  BlinkBackend blink(*cluster_);
  NcclBackend nccl(*cluster_);
  const auto blink_plan = blink.plan(Primitive::kReduce, all_ranks(), megabytes(64));
  // Blink's chain on the fragmented server must keep NVLink pairs adjacent:
  // the chain starting at head 0 goes 0-1 (NVLink) rather than 0-...-PCIe.
  const auto& tree = blink_plan.subs[0].tree;
  EXPECT_EQ(tree.parent.at(NodeId::gpu(1)), NodeId::gpu(0));
  // NCCL's rank-order chain also picks 1->0 here, but on the fragmented box
  // the NCCL chain 3->2->1->0 crosses the missing 2-1 NVLink; Blink routes
  // 3->2 and 2 hangs off... (structure differs). At minimum the two plans
  // must not be identical.
  const auto nccl_plan = nccl.plan(Primitive::kReduce, all_ranks(), megabytes(64));
  EXPECT_NE(blink_plan.fingerprint(), nccl_plan.fingerprint());
}

TEST_F(BaselinesTest, AllToAllBackendsDeliverAllPairs) {
  build(topology::heter_testbed());
  NcclBackend nccl(*cluster_);
  MscclBackend msccl(*cluster_);
  std::vector<int> ranks{0, 1, 4, 5, 8, 9};
  for (baselines::Backend* backend : {static_cast<baselines::Backend*>(&nccl),
                                      static_cast<baselines::Backend*>(&msccl)}) {
    const auto result = backend->run(Primitive::kAllToAll, ranks, megabytes(32));
    for (const int dst : ranks) {
      for (const int src : ranks) {
        if (src == dst) continue;
        ASSERT_TRUE(result.alltoall_received.contains(dst)) << backend->name();
        EXPECT_TRUE(result.alltoall_received.at(dst).contains(src))
            << backend->name() << " dst=" << dst << " src=" << src;
      }
    }
  }
}

TEST_F(BaselinesTest, HeterogeneityNeverSpeedsNcclUp) {
  // With four servers NCCL's binary tree happens to leave the V100 NICs at
  // the leaves, so the penalty is modest — but heterogeneous hardware must
  // never make the oblivious tree faster. (The big heterogeneous losses in
  // the paper come from straggler waiting, covered by the trainer tests.)
  build(topology::homo_testbed());
  NcclBackend homo_nccl(*cluster_);
  const auto homo = homo_nccl.run(Primitive::kAllReduce, all_ranks(), megabytes(256));

  build(topology::heter_testbed());
  NcclBackend heter_nccl(*cluster_);
  const auto heter = heter_nccl.run(Primitive::kAllReduce, all_ranks(), megabytes(256));
  EXPECT_GE(heter.elapsed(), homo.elapsed());
}

}  // namespace
}  // namespace adapcc
