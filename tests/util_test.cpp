#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.h"
#include "util/stats.h"
#include "util/units.h"
#include "util/xml.h"

namespace adapcc {
namespace {

using util::Rng;
using util::RunningStats;

TEST(Units, Conversions) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(1_MiB, 1024u * 1024u);
  EXPECT_DOUBLE_EQ(gbps(100), 12.5e9);
  EXPECT_DOUBLE_EQ(gBps(300), 300e9);
  EXPECT_EQ(megabytes(528.0), 528000000u);
  EXPECT_DOUBLE_EQ(microseconds(5), 5e-6);
}

TEST(Units, AlgoBandwidth) {
  // 256 MB in 0.1 s -> 2.56 GB/s, matching the Sec. VI-C definition.
  EXPECT_NEAR(algo_bandwidth_gbps(megabytes(256), 0.1), 2.56, 1e-12);
  EXPECT_EQ(algo_bandwidth_gbps(megabytes(256), 0.0), 0.0);
}

TEST(RunningStatsTest, MomentsMatchClosedForm) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(Percentile, InterpolatesBetweenSamples) {
  const std::vector<double> samples{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(util::percentile(samples, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(util::percentile(samples, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(util::percentile(samples, 0.5), 25.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(util::percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(util::percentile({1.0}, 1.5), std::invalid_argument);
}

TEST(GeometricMean, MatchesHandComputation) {
  EXPECT_NEAR(util::geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(util::geometric_mean({1.06, 1.23}), std::sqrt(1.06 * 1.23), 1e-12);
  EXPECT_THROW(util::geometric_mean({1.0, -1.0}), std::invalid_argument);
}

TEST(EmpiricalCdf, IsMonotone) {
  std::vector<double> samples;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) samples.push_back(rng.uniform(0, 100));
  const auto cdf = util::empirical_cdf(samples, 50);
  ASSERT_EQ(cdf.size(), 50u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(EmpiricalCdf, InterpolatesLikePercentile) {
  // Regression: quantiles between order statistics must interpolate exactly
  // as percentile() does, not truncate down to the lower sample.
  const std::vector<double> samples{10, 20, 30, 40};
  const auto cdf = util::empirical_cdf(samples, 3);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].first, 10.0);
  EXPECT_DOUBLE_EQ(cdf[1].first, 25.0);  // truncating indexing would give 20
  EXPECT_DOUBLE_EQ(cdf[2].first, 40.0);
  for (const auto& [value, q] : cdf) {
    EXPECT_DOUBLE_EQ(value, util::percentile(samples, q));
  }
}

TEST(FitLine, RecoversExactLine) {
  // t = alpha + beta * s with alpha=5us, beta = 1/(10 GB/s).
  const double alpha = 5e-6;
  const double beta = 1e-10;
  std::vector<double> sizes, times;
  for (const double s : {1e6, 2e6, 8e6, 32e6}) {
    sizes.push_back(s);
    times.push_back(alpha + beta * s);
  }
  const auto fit = util::fit_line(sizes, times);
  EXPECT_NEAR(fit.intercept, alpha, 1e-12);
  EXPECT_NEAR(fit.slope, beta, 1e-16);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
}

TEST(FitLine, ToleratesNoise) {
  Rng rng(11);
  std::vector<double> x, y;
  for (int i = 1; i <= 100; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i + rng.normal(0, 0.1));
  }
  const auto fit = util::fit_line(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 0.2);
  EXPECT_NEAR(fit.slope, 2.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(FitLine, RejectsDegenerateInput) {
  EXPECT_THROW(util::fit_line({1.0}, {2.0}), std::invalid_argument);
  EXPECT_THROW(util::fit_line({1.0, 1.0}, {2.0, 3.0}), std::invalid_argument);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(42);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  Rng reference(42);
  reference.engine()();  // parent consumed one draw for the fork
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (child.uniform(0, 1) != reference.uniform(0, 1)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, NormalAtLeastClamps) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.normal_at_least(0.0, 10.0, 0.5), 0.5);
}

TEST(Xml, RoundTripsElementsAttributesText) {
  util::XmlElement root("strategy");
  root.set_attribute("primitive", std::string("allreduce"));
  root.set_attribute("chunk_bytes", static_cast<long long>(4 * 1024 * 1024));
  auto& flow = root.add_child("flow");
  flow.set_attribute("src", std::string("gpu0"));
  flow.set_attribute("beta", 1.25e-10);
  flow.set_text("gpu0 nic0 nic1 gpu4");

  const std::string doc = root.to_string();
  const auto parsed = util::parse_xml(doc);
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->name(), "strategy");
  EXPECT_EQ(parsed->attribute("primitive"), "allreduce");
  EXPECT_EQ(parsed->attribute_as_int("chunk_bytes"), 4 * 1024 * 1024);
  const auto* parsed_flow = parsed->first_child("flow");
  ASSERT_NE(parsed_flow, nullptr);
  EXPECT_EQ(parsed_flow->attribute("src"), "gpu0");
  EXPECT_DOUBLE_EQ(parsed_flow->attribute_as_double("beta"), 1.25e-10);
  EXPECT_EQ(parsed_flow->text(), "gpu0 nic0 nic1 gpu4");
}

TEST(Xml, EscapesSpecialCharacters) {
  util::XmlElement root("e");
  root.set_attribute("v", std::string("a<b&\"c\">"));
  root.set_text("x < y & z");
  const auto parsed = util::parse_xml(root.to_string());
  EXPECT_EQ(parsed->attribute("v"), "a<b&\"c\">");
  EXPECT_EQ(parsed->text(), "x < y & z");
}

TEST(Xml, ParsesNestedStructure) {
  const auto parsed = util::parse_xml(R"(<?xml version="1.0"?>
    <a><b k="1"/><b k="2"><c/></b></a>)");
  EXPECT_EQ(parsed->name(), "a");
  const auto bs = parsed->children_named("b");
  ASSERT_EQ(bs.size(), 2u);
  EXPECT_EQ(bs[0]->attribute("k"), "1");
  EXPECT_NE(bs[1]->first_child("c"), nullptr);
}

TEST(Xml, RejectsMalformedDocuments) {
  EXPECT_THROW(util::parse_xml("<a><b></a></b>"), std::runtime_error);
  EXPECT_THROW(util::parse_xml("<a>"), std::runtime_error);
  EXPECT_THROW(util::parse_xml("<a/><b/>"), std::runtime_error);
}

}  // namespace
}  // namespace adapcc
