// Cross-module integration tests: the newer mechanisms that tie the layers
// together — multi-stream port profiling, incremental buffer filling with
// joiners, AllToAll send ordering/concurrency, fill-aware coordination —
// exercised end to end through detector -> profiler -> synthesizer ->
// executor -> relay.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/backend.h"
#include "collective/builders.h"
#include "collective/executor.h"
#include "profiler/profiler.h"
#include "relay/relay_collective.h"
#include "runtime/adapcc.h"
#include "runtime/adapcc_backend.h"
#include "synthesizer/synthesizer.h"
#include "topology/detector.h"
#include "topology/testbeds.h"
#include "util/rng.h"

namespace adapcc {
namespace {

using collective::CollectiveOptions;
using collective::Primitive;
using collective::Strategy;
using topology::NodeId;

class IntegrationTest : public ::testing::Test {
 protected:
  void build(std::vector<topology::InstanceSpec> specs) {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, std::move(specs));
  }

  topology::LogicalTopology detect_and_profile() {
    topology::Detector detector(*cluster_, util::Rng(9));
    auto topo = topology::Detector::build_logical_topology(*cluster_, detector.detect());
    profiler::Profiler profiler(*cluster_);
    profiler.profile(topo);
    return topo;
  }

  std::vector<int> all_ranks() const {
    std::vector<int> ranks;
    for (int r = 0; r < cluster_->world_size(); ++r) ranks.push_back(r);
    return ranks;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
};

// --- Multi-stream port profiling ------------------------------------------

TEST_F(IntegrationTest, TcpProfilingSeparatesStreamAndPortRates) {
  build(topology::homo_testbed(topology::NetworkStack::kTcp));
  const auto topo = detect_and_profile();
  const auto& edge = topo.edge(NodeId::nic(0), NodeId::nic(1));
  // Single stream: ~20 Gbps kernel ceiling. Four streams: ~80 Gbps.
  EXPECT_NEAR(1.0 / edge.beta, gbps(20), 0.1 * gbps(20));
  EXPECT_GT(1.0 / edge.effective_port_beta(), gbps(60));
}

TEST_F(IntegrationTest, RdmaProfilingHasMatchingStreamAndPortRates) {
  build(topology::homo_testbed());
  const auto topo = detect_and_profile();
  const auto& edge = topo.edge(NodeId::nic(0), NodeId::nic(1));
  EXPECT_NEAR(1.0 / edge.beta, gbps(100), 0.1 * gbps(100));
  EXPECT_NEAR(1.0 / edge.effective_port_beta(), gbps(100), 0.15 * gbps(100));
}

TEST_F(IntegrationTest, SynthesizerUsesParallelSubsOnTcp) {
  // On TCP the per-stream cap makes the model strictly prefer M parallel
  // sub-collectives; the executed collective should then clearly beat the
  // single-channel NCCL plan.
  build(topology::homo_testbed(topology::NetworkStack::kTcp));
  runtime::AdapccBackend adapcc(*cluster_);
  baselines::NcclBackend nccl(*cluster_);
  const auto plan = adapcc.plan(Primitive::kAllReduce, all_ranks(), megabytes(256));
  EXPECT_GT(plan.subs.size(), 1u);
  const auto adapcc_time =
      adapcc.run(Primitive::kAllReduce, all_ranks(), megabytes(256)).elapsed();
  const auto nccl_time =
      nccl.run(Primitive::kAllReduce, all_ranks(), megabytes(256)).elapsed();
  EXPECT_LT(adapcc_time, 0.5 * nccl_time);
}

// --- Incremental buffer filling / joiners ----------------------------------

TEST_F(IntegrationTest, FillStartStreamsChunksBeforeReady) {
  build({topology::a100_server("s0")});
  Strategy strategy = collective::single_tree_strategy(
      Primitive::kReduce, {0, 1},
      collective::chain_tree({NodeId::gpu(1), NodeId::gpu(0)}), 1_MiB);
  // Rank 1 fills 64 MB between t=0 and t=1; the pipeline streams during the
  // fill, so completion is just after the last chunk, not 1 s + transfer.
  collective::Executor executor(*cluster_, strategy);
  CollectiveOptions options;
  options.ready_at[1] = 1.0;
  options.fill_start[1] = 0.0;
  const auto streamed = executor.run(megabytes(64), options);
  EXPECT_GT(streamed.finished, 1.0);
  EXPECT_LT(streamed.finished, 1.01);  // last chunk rides NVLink in microseconds

  // Without fill information, the same tensor starts moving only at t=1.
  build({topology::a100_server("s0")});
  collective::Executor executor2(*cluster_, strategy);
  CollectiveOptions options2;
  options2.ready_at[1] = 1.0;
  const auto bulk = executor2.run(megabytes(64), options2);
  EXPECT_GT(bulk.finished, streamed.finished);
}

TEST_F(IntegrationTest, FillingRelayJoinsPhaseOne) {
  build(topology::homo_testbed());
  const auto topo = detect_and_profile();
  synthesizer::Synthesizer synth(*cluster_, topo);
  const auto strategy = synth.synthesize(Primitive::kAllReduce, all_ranks(), megabytes(256));

  relay::RelayCollectiveRunner runner(*cluster_, topo);
  std::map<int, Seconds> ready, fill;
  const Seconds t0 = sim_->now();
  for (int r = 0; r < 16; ++r) {
    ready[r] = t0 + 0.3;
    fill[r] = t0 + 0.15;
  }
  ready[9] = t0 + 0.8;  // slow, but its backward started long before trigger
  fill[9] = t0 + 0.0;
  const auto result = runner.run_allreduce(strategy, megabytes(256), ready, fill);
  ASSERT_TRUE(result.partial);
  EXPECT_EQ(result.relays, std::vector<int>{9});
  ASSERT_EQ(result.joined.size(), 1u);
  EXPECT_EQ(result.joined[0], 9);
  EXPECT_TRUE(result.faulty.empty());
  // Joined: no phase-2 dissemination after the straggler's tensor is in.
  EXPECT_LT(result.phase2_finish, t0 + 0.9);
  // Consistency: full sum everywhere.
  double expected = 0.0;
  for (int r = 0; r < 16; ++r) expected += collective::payload_value(r, 0, 0);
  for (int r = 0; r < 16; ++r) EXPECT_DOUBLE_EQ(result.final_values.at(r), expected);
}

TEST_F(IntegrationTest, NonFillingRelayGoesThroughPhaseTwo) {
  build(topology::homo_testbed());
  const auto topo = detect_and_profile();
  synthesizer::Synthesizer synth(*cluster_, topo);
  const auto strategy = synth.synthesize(Primitive::kAllReduce, all_ranks(), megabytes(256));

  relay::RelayCollectiveRunner runner(*cluster_, topo);
  std::map<int, Seconds> ready, fill;
  const Seconds t0 = sim_->now();
  for (int r = 0; r < 16; ++r) {
    ready[r] = t0 + 0.05;
    fill[r] = t0 + 0.02;
  }
  ready[9] = t0 + 2.0;  // severely interfered: backward has not even begun
  fill[9] = t0 + 1.5;
  const auto result = runner.run_allreduce(strategy, megabytes(256), ready, fill);
  ASSERT_TRUE(result.partial);
  EXPECT_TRUE(result.joined.empty());
  EXPECT_EQ(result.relays, std::vector<int>{9});
  // Merged via phase 2 after it became ready (within the fault deadline it
  // is not faulty only if the deadline allows; with such severe lateness it
  // may be declared faulty — either way phase 1 completed long before).
  EXPECT_LT(result.phase1_finish, t0 + 0.5);
}

// --- AllToAll ordering and concurrency --------------------------------------

TEST_F(IntegrationTest, RotatedOrderBeatsNcclIncast) {
  build(topology::homo_testbed());
  std::vector<int> instance_of(static_cast<std::size_t>(cluster_->world_size()));
  for (int r = 0; r < cluster_->world_size(); ++r) {
    instance_of[static_cast<std::size_t>(r)] = cluster_->instance_of_rank(r);
  }
  const auto run_with = [&](bool rotated, int concurrency) {
    Strategy strategy;
    strategy.primitive = Primitive::kAllToAll;
    strategy.participants = all_ranks();
    collective::SubCollective sub;
    sub.fraction = 1.0;
    sub.chunk_bytes = 1_MiB;
    sub.flows = rotated ? collective::rotated_alltoall_routes(strategy.participants, instance_of)
                        : collective::direct_alltoall_routes(strategy.participants, instance_of);
    sub.alltoall_concurrency = concurrency;
    strategy.subs.push_back(std::move(sub));
    collective::Executor executor(*cluster_, strategy);
    return executor.run(megabytes(256)).elapsed();
  };
  // NCCL-style: rank-ordered sends, 2 channels -> synchronized incast.
  const Seconds nccl_style = run_with(false, 2);
  // Balanced exchange with deeper concurrency.
  const Seconds balanced = run_with(true, 4);
  EXPECT_LT(balanced, 0.8 * nccl_style);
}

TEST_F(IntegrationTest, RotatedRoutesCoverAllPairsInRotatedOrder) {
  const std::vector<int> participants{0, 1, 2, 3};
  const std::vector<int> instance_of{0, 0, 1, 1};
  const auto routes = collective::rotated_alltoall_routes(participants, instance_of);
  ASSERT_EQ(routes.size(), 12u);
  // Source 0's first destination is 1, source 1's first destination is 2...
  EXPECT_EQ(routes[0].src, NodeId::gpu(0));
  EXPECT_EQ(routes[0].dst, NodeId::gpu(1));
  EXPECT_EQ(routes[3].src, NodeId::gpu(1));
  EXPECT_EQ(routes[3].dst, NodeId::gpu(2));
  // Every ordered pair appears exactly once.
  std::set<std::pair<int, int>> pairs;
  for (const auto& route : routes) pairs.emplace(route.src.index, route.dst.index);
  EXPECT_EQ(pairs.size(), 12u);
}

// --- End-to-end sanity across the whole stack --------------------------------

TEST_F(IntegrationTest, FullStackAllPrimitivesOnPaperTestbed) {
  build(topology::paper_testbed());
  runtime::Adapcc adapcc(*cluster_);
  adapcc.init();
  adapcc.setup();
  for (const Bytes size : {megabytes(8), megabytes(64)}) {
    const auto ar = adapcc.allreduce(size);
    EXPECT_GT(ar.elapsed(), 0.0);
    const auto rs = adapcc.reduce_scatter(size);
    EXPECT_GT(rs.elapsed(), 0.0);
    const auto ag = adapcc.allgather(size);
    EXPECT_GT(ag.elapsed(), 0.0);
  }
}

TEST_F(IntegrationTest, StrategiesSurviveXmlPersistence) {
  // A synthesized strategy can be dumped, reloaded and executed, with the
  // reloaded copy producing identical timing (the Communicator contract).
  build(topology::heter_testbed());
  const auto topo = detect_and_profile();
  synthesizer::Synthesizer synth(*cluster_, topo);
  const auto strategy = synth.synthesize(Primitive::kAllReduce, all_ranks(), megabytes(64));
  const auto reloaded = Strategy::from_xml(strategy.to_xml());

  collective::Executor original(*cluster_, strategy);
  const Seconds t1 = original.run(megabytes(64)).elapsed();
  collective::Executor parsed(*cluster_, reloaded);
  const Seconds t2 = parsed.run(megabytes(64)).elapsed();
  EXPECT_NEAR(t1, t2, 1e-9);
}

}  // namespace
}  // namespace adapcc
