#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "collective/behavior.h"
#include "collective/builders.h"
#include "collective/codegen.h"
#include "collective/comm_graph.h"
#include "collective/executor.h"
#include "collective/payload.h"
#include "sim/simulator.h"
#include "topology/cluster.h"
#include "topology/testbeds.h"

namespace adapcc {
namespace {

using collective::BehaviorTuple;
using collective::chain_tree;
using collective::CollectiveOptions;
using collective::CollectiveResult;
using collective::ContributorMask;
using collective::derive_behavior;
using collective::Executor;
using collective::FlowRoute;
using collective::kary_tree;
using collective::payload_value;
using collective::Primitive;
using collective::rank_bit;
using collective::single_tree_strategy;
using collective::star_tree;
using collective::Strategy;
using collective::SubCollective;
using collective::Tree;
using topology::NodeId;

ContributorMask mask_of(std::initializer_list<int> ranks) {
  ContributorMask mask = 0;
  for (const int r : ranks) mask |= rank_bit(r);
  return mask;
}

double expected_sum(std::initializer_list<int> ranks, int sub, int chunk) {
  double sum = 0;
  for (const int r : ranks) sum += payload_value(r, sub, chunk);
  return sum;
}

// --- Tree / builders --------------------------------------------------------

TEST(TreeTest, ChainShape) {
  const Tree tree = chain_tree({NodeId::gpu(0), NodeId::gpu(1), NodeId::gpu(2)});
  EXPECT_EQ(tree.root, NodeId::gpu(2));
  EXPECT_EQ(tree.parent.at(NodeId::gpu(0)), NodeId::gpu(1));
  EXPECT_EQ(tree.depth_of(NodeId::gpu(0)), 2);
  EXPECT_EQ(tree.children_of(NodeId::gpu(2)), (std::vector<NodeId>{NodeId::gpu(1)}));
}

TEST(TreeTest, KaryShape) {
  std::vector<NodeId> nodes;
  for (int i = 0; i < 7; ++i) nodes.push_back(NodeId::gpu(i));
  const Tree tree = kary_tree(nodes, 2);
  EXPECT_EQ(tree.root, NodeId::gpu(0));
  EXPECT_EQ(tree.children_of(NodeId::gpu(0)).size(), 2u);
  EXPECT_EQ(tree.children_of(NodeId::gpu(1)).size(), 2u);
  EXPECT_EQ(tree.parent.at(NodeId::gpu(6)), NodeId::gpu(2));
}

TEST(TreeTest, DepthDetectsCycles) {
  Tree tree;
  tree.root = NodeId::gpu(0);
  tree.parent[NodeId::gpu(1)] = NodeId::gpu(2);
  tree.parent[NodeId::gpu(2)] = NodeId::gpu(1);
  EXPECT_THROW(tree.depth_of(NodeId::gpu(1)), std::invalid_argument);
}

TEST(TreeTest, NodesListsRootFirstThenAscending) {
  // Callers iterate nodes() to build channels and order the aggregation
  // local search; the order must not depend on hash-map iteration. Pin it:
  // root first, everything else ascending by NodeId.
  Tree tree;
  tree.root = NodeId::gpu(2);
  tree.parent[NodeId::nic(1)] = NodeId::gpu(2);
  tree.parent[NodeId::gpu(5)] = NodeId::nic(1);
  tree.parent[NodeId::gpu(0)] = NodeId::gpu(2);
  tree.parent[NodeId::gpu(3)] = NodeId::gpu(0);
  const std::vector<NodeId> nodes = tree.nodes();
  ASSERT_EQ(nodes.size(), 5u);
  EXPECT_EQ(nodes.front(), NodeId::gpu(2));
  for (std::size_t i = 2; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i - 1], nodes[i]) << "nodes() not sorted at " << i;
  }
}

// --- Behavior tuples (Sec. IV-C-3, Fig. 7) -----------------------------------

class BehaviorTest : public ::testing::Test {
 protected:
  // The 4-GPU reduce graph of Fig. 7: GPU3 -> GPU1, GPU2 -> GPU1, GPU1 -> GPU0.
  SubCollective make_sub() {
    SubCollective sub;
    sub.tree.root = NodeId::gpu(0);
    sub.tree.parent[NodeId::gpu(1)] = NodeId::gpu(0);
    sub.tree.parent[NodeId::gpu(2)] = NodeId::gpu(1);
    sub.tree.parent[NodeId::gpu(3)] = NodeId::gpu(1);
    return sub;
  }
};

TEST_F(BehaviorTest, AllActiveEveryoneAggregates) {
  const auto sub = make_sub();
  const std::set<int> active{0, 1, 2, 3};
  const auto b0 = derive_behavior(sub, Primitive::kReduce, NodeId::gpu(0), active);
  EXPECT_EQ(b0, (BehaviorTuple{true, true, true, false}));  // root never sends
  const auto b1 = derive_behavior(sub, Primitive::kReduce, NodeId::gpu(1), active);
  EXPECT_EQ(b1, (BehaviorTuple{true, true, true, true}));
  const auto b3 = derive_behavior(sub, Primitive::kReduce, NodeId::gpu(3), active);
  EXPECT_EQ(b3, (BehaviorTuple{true, false, false, true}));  // leaf: nothing to recv
}

TEST_F(BehaviorTest, RelayWithTwoActivePrecedentsKeepsKernel) {
  // Fig. 7(b): GPU1 relays for GPU2 and GPU3 -> <0,1,1,1>.
  const auto sub = make_sub();
  const std::set<int> active{0, 2, 3};
  const auto b1 = derive_behavior(sub, Primitive::kReduce, NodeId::gpu(1), active);
  EXPECT_EQ(b1, (BehaviorTuple{false, true, true, true}));
}

TEST_F(BehaviorTest, RelayWithOneActivePrecedentSkipsKernel) {
  // Paper: "if GPU2 is not ready, GPU1 ... can directly relay traffic from
  // GPU3 to GPU0" — one active precedent, no aggregation kernel.
  const auto sub = make_sub();
  const std::set<int> active{0, 3};
  const auto b1 = derive_behavior(sub, Primitive::kReduce, NodeId::gpu(1), active);
  EXPECT_EQ(b1, (BehaviorTuple{false, true, false, true}));
}

TEST_F(BehaviorTest, InactiveLeafNeitherSendsNorReceives) {
  const auto sub = make_sub();
  const std::set<int> active{0, 1, 3};
  const auto b2 = derive_behavior(sub, Primitive::kReduce, NodeId::gpu(2), active);
  EXPECT_EQ(b2, (BehaviorTuple{false, false, false, false}));
}

TEST_F(BehaviorTest, SynthesizerCanDisableAggregation) {
  auto sub = make_sub();
  sub.aggregate_at[NodeId::gpu(1)] = false;
  const std::set<int> active{0, 1, 2, 3};
  const auto b1 = derive_behavior(sub, Primitive::kReduce, NodeId::gpu(1), active);
  EXPECT_FALSE(b1.has_kernel);
  EXPECT_TRUE(b1.has_send);
}

TEST_F(BehaviorTest, BroadcastNeverLaunchesKernels) {
  const auto sub = make_sub();
  const std::set<int> active{0, 1, 2, 3};
  EXPECT_FALSE(derive_behavior(sub, Primitive::kBroadcast, NodeId::gpu(1), active).has_kernel);
  EXPECT_FALSE(derive_behavior(sub, Primitive::kAllToAll, NodeId::gpu(1), active).has_kernel);
}

TEST_F(BehaviorTest, NicNodesAreNeverActive) {
  SubCollective sub;
  sub.tree.root = NodeId::gpu(0);
  sub.tree.parent[NodeId::nic(0)] = NodeId::gpu(0);
  sub.tree.parent[NodeId::gpu(1)] = NodeId::nic(0);
  const std::set<int> active{0, 1};
  const auto tuple = derive_behavior(sub, Primitive::kReduce, NodeId::nic(0), active);
  EXPECT_FALSE(tuple.is_active);
  EXPECT_TRUE(tuple.has_recv);
  EXPECT_FALSE(tuple.has_kernel);  // single active precedent through the NIC
  EXPECT_TRUE(tuple.has_send);
}

// --- Strategy XML -------------------------------------------------------------

TEST(StrategyXml, RoundTripsTreeStrategy) {
  Strategy strategy = single_tree_strategy(
      Primitive::kAllReduce, {0, 1, 2},
      chain_tree({NodeId::gpu(0), NodeId::gpu(1), NodeId::gpu(2)}), 2_MiB);
  strategy.subs[0].aggregate_at[NodeId::gpu(1)] = false;
  const std::string xml = strategy.to_xml();
  const Strategy parsed = Strategy::from_xml(xml);
  EXPECT_EQ(parsed.primitive, Primitive::kAllReduce);
  EXPECT_EQ(parsed.participants, (std::vector<int>{0, 1, 2}));
  ASSERT_EQ(parsed.subs.size(), 1u);
  EXPECT_EQ(parsed.subs[0].chunk_bytes, 2_MiB);
  EXPECT_EQ(parsed.subs[0].tree.root, NodeId::gpu(2));
  EXPECT_EQ(parsed.subs[0].tree.parent.at(NodeId::gpu(0)), NodeId::gpu(1));
  EXPECT_FALSE(parsed.subs[0].aggregate_at.at(NodeId::gpu(1)));
  EXPECT_EQ(parsed.fingerprint(), strategy.fingerprint());
}

TEST(StrategyXml, RoundTripsFlowStrategy) {
  Strategy strategy;
  strategy.primitive = Primitive::kAllToAll;
  strategy.participants = {0, 4};
  SubCollective sub;
  sub.fraction = 1.0;
  sub.chunk_bytes = 1_MiB;
  FlowRoute route;
  route.src = NodeId::gpu(0);
  route.dst = NodeId::gpu(4);
  route.path = {NodeId::gpu(0), NodeId::nic(0), NodeId::nic(1), NodeId::gpu(4)};
  sub.flows.push_back(route);
  strategy.subs.push_back(sub);
  const Strategy parsed = Strategy::from_xml(strategy.to_xml());
  ASSERT_EQ(parsed.subs[0].flows.size(), 1u);
  EXPECT_EQ(parsed.subs[0].flows[0].path.size(), 4u);
  EXPECT_EQ(parsed.subs[0].flows[0].path[1], NodeId::nic(0));
}

TEST(StrategyXml, FingerprintDetectsGraphChange) {
  const Strategy a = single_tree_strategy(
      Primitive::kReduce, {0, 1}, chain_tree({NodeId::gpu(0), NodeId::gpu(1)}), 1_MiB);
  const Strategy b = single_tree_strategy(
      Primitive::kReduce, {0, 1}, chain_tree({NodeId::gpu(1), NodeId::gpu(0)}), 1_MiB);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// --- Executor: correctness ----------------------------------------------------

class ExecutorTest : public ::testing::Test {
 protected:
  void build(std::vector<topology::InstanceSpec> specs) {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, std::move(specs));
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
};

TEST_F(ExecutorTest, IntraServerReduceSumsAllRanks) {
  build({topology::a100_server("s0")});
  // Chain 3 -> 2 -> 1 -> 0 over NVLinks.
  Strategy strategy = single_tree_strategy(
      Primitive::kReduce, {0, 1, 2, 3},
      chain_tree({NodeId::gpu(3), NodeId::gpu(2), NodeId::gpu(1), NodeId::gpu(0)}), 4_MiB);
  Executor executor(*cluster_, strategy);
  const auto result = executor.run(megabytes(64));
  ASSERT_EQ(result.subs.size(), 1u);
  const auto& sub = result.subs[0];
  ASSERT_EQ(sub.root_values.size(), 16u);  // 64 MB / 4 MiB
  for (std::size_t c = 0; c < sub.root_values.size(); ++c) {
    EXPECT_DOUBLE_EQ(sub.root_values[c], expected_sum({0, 1, 2, 3}, 0, static_cast<int>(c)));
    EXPECT_EQ(sub.root_masks[c], mask_of({0, 1, 2, 3}));
  }
  EXPECT_GT(result.elapsed(), 0.0);
}

TEST_F(ExecutorTest, CrossServerReduceTraversesNics) {
  build(topology::heter_testbed());
  // GPUs 0 (instance 0) and 4 (instance 1): 4 -> nic1 -> nic0 -> 0.
  Tree tree;
  tree.root = NodeId::gpu(0);
  tree.parent[NodeId::nic(0)] = NodeId::gpu(0);
  tree.parent[NodeId::nic(1)] = NodeId::nic(0);
  tree.parent[NodeId::gpu(4)] = NodeId::nic(1);
  Strategy strategy = single_tree_strategy(Primitive::kReduce, {0, 4}, tree, 4_MiB);
  Executor executor(*cluster_, strategy);
  const auto result = executor.run(megabytes(32));
  const auto& sub = result.subs[0];
  ASSERT_EQ(sub.root_values.size(), 8u);
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_DOUBLE_EQ(sub.root_values[c], expected_sum({0, 4}, 0, static_cast<int>(c)));
  }
  // Time must at least cover 32 MB over the 100 Gbps NIC (both instances
  // here are A100 servers; V100 servers are instances 2 and 3).
  EXPECT_GT(result.elapsed(), static_cast<double>(megabytes(32)) / gbps(100));
}

TEST_F(ExecutorTest, AllReduceDeliversSumEverywhere) {
  build({topology::a100_server("s0")});
  Strategy strategy = single_tree_strategy(
      Primitive::kAllReduce, {0, 1, 2, 3},
      star_tree(NodeId::gpu(0), {NodeId::gpu(1), NodeId::gpu(2), NodeId::gpu(3)}), 4_MiB);
  Executor executor(*cluster_, strategy);
  const auto result = executor.run(megabytes(16));
  for (const int rank : {0, 1, 2, 3}) {
    ASSERT_TRUE(result.delivered.contains(rank));
    const auto& chunks = result.delivered.at(rank)[0];
    ASSERT_EQ(chunks.size(), 4u);
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      EXPECT_DOUBLE_EQ(chunks[c], expected_sum({0, 1, 2, 3}, 0, static_cast<int>(c)))
          << "rank " << rank << " chunk " << c;
      EXPECT_EQ(result.delivered_masks.at(rank)[0][c], mask_of({0, 1, 2, 3}));
    }
    EXPECT_TRUE(result.rank_finish_time.contains(rank));
  }
}

TEST_F(ExecutorTest, MultiSubAllReduceSplitsTensor) {
  build({topology::a100_server("s0")});
  const std::vector<NodeId> gpus{NodeId::gpu(0), NodeId::gpu(1), NodeId::gpu(2), NodeId::gpu(3)};
  // Two sub-collectives with rotated chain roots.
  std::vector<Tree> trees{
      chain_tree({NodeId::gpu(1), NodeId::gpu(2), NodeId::gpu(3), NodeId::gpu(0)}),
      chain_tree({NodeId::gpu(3), NodeId::gpu(0), NodeId::gpu(1), NodeId::gpu(2)})};
  Strategy strategy = collective::multi_tree_strategy(Primitive::kAllReduce, {0, 1, 2, 3},
                                                      std::move(trees), 4_MiB);
  Executor executor(*cluster_, strategy);
  const auto result = executor.run(megabytes(32));
  for (const int rank : {0, 1, 2, 3}) {
    const auto& per_sub = result.delivered.at(rank);
    ASSERT_EQ(per_sub.size(), 2u);
    for (int s = 0; s < 2; ++s) {
      ASSERT_EQ(per_sub[static_cast<std::size_t>(s)].size(), 4u);  // 16 MB per sub / 4 MiB
      for (std::size_t c = 0; c < 4; ++c) {
        EXPECT_DOUBLE_EQ(per_sub[static_cast<std::size_t>(s)][c],
                         expected_sum({0, 1, 2, 3}, s, static_cast<int>(c)));
      }
    }
  }
}

TEST_F(ExecutorTest, BroadcastReachesAllLeaves) {
  build({topology::a100_server("s0")});
  Strategy strategy = single_tree_strategy(
      Primitive::kBroadcast, {0, 1, 2, 3},
      kary_tree({NodeId::gpu(0), NodeId::gpu(1), NodeId::gpu(2), NodeId::gpu(3)}, 2), 4_MiB);
  Executor executor(*cluster_, strategy);
  const auto result = executor.run(megabytes(16));
  for (const int rank : {0, 1, 2, 3}) {
    const auto& chunks = result.delivered.at(rank)[0];
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      EXPECT_DOUBLE_EQ(chunks[c], payload_value(0, 0, static_cast<int>(c)));
    }
  }
}

TEST_F(ExecutorTest, RelayRankForwardsWithoutContributing) {
  build({topology::a100_server("s0")});
  // Chain 3 -> 2 -> 1 -> 0 where rank 2 is a relay (not active).
  Strategy strategy = single_tree_strategy(
      Primitive::kReduce, {0, 1, 2, 3},
      chain_tree({NodeId::gpu(3), NodeId::gpu(2), NodeId::gpu(1), NodeId::gpu(0)}), 4_MiB);
  Executor executor(*cluster_, strategy);
  CollectiveOptions options;
  options.active_ranks = {0, 1, 3};
  const auto result = executor.run(megabytes(16), options);
  const auto& sub = result.subs[0];
  for (std::size_t c = 0; c < sub.root_values.size(); ++c) {
    EXPECT_DOUBLE_EQ(sub.root_values[c], expected_sum({0, 1, 3}, 0, static_cast<int>(c)));
    EXPECT_EQ(sub.root_masks[c], mask_of({0, 1, 3}));
  }
}

TEST_F(ExecutorTest, StragglerReadyTimeDelaysCompletion) {
  build({topology::a100_server("s0")});
  Strategy strategy = single_tree_strategy(
      Primitive::kReduce, {0, 1, 2, 3},
      star_tree(NodeId::gpu(0), {NodeId::gpu(1), NodeId::gpu(2), NodeId::gpu(3)}), 4_MiB);
  Executor fast(*cluster_, strategy);
  const auto baseline = fast.run(megabytes(16));

  CollectiveOptions options;
  options.ready_at[3] = sim_->now() + 0.5;  // rank 3 straggles by 500 ms
  Executor slow(*cluster_, strategy);
  const auto delayed = slow.run(megabytes(16), options);
  EXPECT_GT(delayed.elapsed(), 0.5);
  EXPECT_LT(baseline.elapsed(), 0.1);
  // Same correct result regardless.
  EXPECT_DOUBLE_EQ(delayed.subs[0].root_values[0], baseline.subs[0].root_values[0]);
}

TEST_F(ExecutorTest, AllToAllDeliversDistinctPayloads) {
  build(topology::heter_testbed());
  Strategy strategy;
  strategy.primitive = Primitive::kAllToAll;
  strategy.participants = {0, 1, 4, 5};
  std::vector<int> instance_of(static_cast<std::size_t>(cluster_->world_size()));
  for (int r = 0; r < cluster_->world_size(); ++r) {
    instance_of[static_cast<std::size_t>(r)] = cluster_->instance_of_rank(r);
  }
  SubCollective sub;
  sub.fraction = 1.0;
  sub.chunk_bytes = 1_MiB;
  sub.flows = collective::direct_alltoall_routes(strategy.participants, instance_of);
  strategy.subs.push_back(std::move(sub));
  Executor executor(*cluster_, strategy);
  const auto result = executor.run(megabytes(16));
  for (const int dst : strategy.participants) {
    for (const int src : strategy.participants) {
      if (src == dst) continue;
      ASSERT_TRUE(result.alltoall_received.contains(dst));
      ASSERT_TRUE(result.alltoall_received.at(dst).contains(src))
          << "dst " << dst << " src " << src;
      const auto& chunks = result.alltoall_received.at(dst).at(src);
      ASSERT_EQ(chunks.size(), 4u);  // 16 MB / 4 participants / 1 MiB
      for (std::size_t c = 0; c < chunks.size(); ++c) {
        EXPECT_DOUBLE_EQ(chunks[c], collective::alltoall_value(src, dst, 0, static_cast<int>(c)));
      }
    }
  }
}

// --- Executor: timing ----------------------------------------------------------

TEST_F(ExecutorTest, ChunkingPipelinesInterServerTransfer) {
  build(topology::homo_testbed());
  // Reduce gpu4 -> nic1 -> nic0 -> gpu0, 128 MB over a 100 Gbps link.
  Tree tree;
  tree.root = NodeId::gpu(0);
  tree.parent[NodeId::nic(0)] = NodeId::gpu(0);
  tree.parent[NodeId::nic(1)] = NodeId::nic(0);
  tree.parent[NodeId::gpu(4)] = NodeId::nic(1);

  const auto run_with_chunk = [&](Bytes chunk) {
    Strategy strategy = single_tree_strategy(Primitive::kReduce, {0, 4}, tree, chunk);
    Executor executor(*cluster_, strategy);
    return executor.run(megabytes(128)).elapsed();
  };
  const Seconds coarse = run_with_chunk(megabytes(128));  // one big chunk
  const Seconds fine = run_with_chunk(4_MiB);
  // Pipelining across egress/ingress/PCIe must beat the store-and-forward
  // whole-tensor transfer clearly.
  EXPECT_LT(fine, 0.75 * coarse);
  // And it should approach the 100 Gbps serialization bound (~10.2 ms).
  const Seconds bound = static_cast<double>(megabytes(128)) / gbps(100);
  EXPECT_LT(fine, 1.4 * bound);
  EXPECT_GT(fine, bound);
}

TEST_F(ExecutorTest, ParallelSubCollectivesBeatSingleChannelOnTcp) {
  build(topology::homo_testbed(topology::NetworkStack::kTcp));
  // One TCP stream is capped at 20 Gbps; four parallel sub-collectives can
  // use 80 Gbps (Sec. VI-D's motivation for M parallel transmissions).
  Tree tree;
  tree.root = NodeId::gpu(0);
  tree.parent[NodeId::nic(0)] = NodeId::gpu(0);
  tree.parent[NodeId::nic(1)] = NodeId::nic(0);
  tree.parent[NodeId::gpu(4)] = NodeId::nic(1);

  Strategy single = single_tree_strategy(Primitive::kReduce, {0, 4}, tree, 4_MiB);
  Executor single_exec(*cluster_, single);
  const Seconds single_time = single_exec.run(megabytes(128)).elapsed();

  Strategy multi = collective::multi_tree_strategy(Primitive::kReduce, {0, 4},
                                                   {tree, tree, tree, tree}, 4_MiB);
  Executor multi_exec(*cluster_, multi);
  const Seconds multi_time = multi_exec.run(megabytes(128)).elapsed();
  EXPECT_LT(multi_time, 0.35 * single_time);
}

TEST_F(ExecutorTest, ZeroByteCollectiveCompletesImmediately) {
  build({topology::a100_server("s0")});
  Strategy strategy = single_tree_strategy(
      Primitive::kReduce, {0, 1},
      chain_tree({NodeId::gpu(1), NodeId::gpu(0)}), 4_MiB);
  Executor executor(*cluster_, strategy);
  const auto result = executor.run(0);
  EXPECT_DOUBLE_EQ(result.elapsed(), 0.0);
}

TEST_F(ExecutorTest, ExecutorIsReusableAcrossInvocations) {
  build({topology::a100_server("s0")});
  Strategy strategy = single_tree_strategy(
      Primitive::kAllReduce, {0, 1, 2, 3},
      star_tree(NodeId::gpu(0), {NodeId::gpu(1), NodeId::gpu(2), NodeId::gpu(3)}), 4_MiB);
  Executor executor(*cluster_, strategy);
  const auto first = executor.run(megabytes(16));
  const auto second = executor.run(megabytes(16));
  EXPECT_NEAR(first.elapsed(), second.elapsed(), 1e-9);
  EXPECT_FALSE(executor.busy());
}

TEST_F(ExecutorTest, RejectsConcurrentInvocations) {
  build({topology::a100_server("s0")});
  Strategy strategy = single_tree_strategy(
      Primitive::kReduce, {0, 1}, chain_tree({NodeId::gpu(1), NodeId::gpu(0)}), 4_MiB);
  Executor executor(*cluster_, strategy);
  executor.start(megabytes(16), {}, nullptr);
  EXPECT_THROW(executor.start(megabytes(16), {}, nullptr), std::logic_error);
  sim_->run();
}

TEST_F(ExecutorTest, ResultsInvariantUnderTieShuffle) {
  // Regression pin for a use-after-free: the completion callback and the
  // invocation-destroying idle event land at the same timestamp, and a
  // shuffled tie order used to run the teardown first, leaving the
  // completion reading freed state. Any tie-break order must now produce
  // the same delivered values bit-for-bit (and not crash). Finish times may
  // wobble by ULPs: when several chunk completions coincide on a shared
  // link, the order the zero-width events fire in changes which rate value
  // each next-ETA expression is evaluated with — so elapsed gets a
  // sub-picosecond tolerance instead of exact equality.
  std::vector<double> elapsed;
  std::vector<double> root_value;
  for (const std::uint64_t seed : {0ULL, 1ULL, 0x5bd1e995ULL, 0x9e3779b97f4a7c15ULL}) {
    build(topology::heter_testbed());
    sim_->set_tie_shuffle_seed(seed);
    Strategy strategy = single_tree_strategy(
        Primitive::kAllReduce, {0, 1, 2, 3, 4, 5, 6, 7},
        kary_tree({NodeId::gpu(0), NodeId::gpu(1), NodeId::gpu(2), NodeId::gpu(3),
                   NodeId::gpu(4), NodeId::gpu(5), NodeId::gpu(6), NodeId::gpu(7)},
                  2),
        4_MiB);
    Executor executor(*cluster_, strategy);
    const CollectiveResult result = executor.run(megabytes(64));
    elapsed.push_back(result.elapsed());
    root_value.push_back(result.delivered.at(0)[0][0]);
  }
  for (std::size_t i = 1; i < elapsed.size(); ++i) {
    EXPECT_NEAR(elapsed[i], elapsed[0], 1e-12) << "tie-shuffle seed changed the finish time";
    EXPECT_EQ(root_value[i], root_value[0]);
  }
}

// --- Schedule generation (Sec. IV-C-3 / V) -----------------------------------

TEST(CodegenTest, EmitsActionsMatchingBehaviorTuples) {
  // Fig. 7's graph with GPU1 as a relay for GPU2 and GPU3.
  Strategy strategy;
  strategy.primitive = Primitive::kReduce;
  strategy.participants = {0, 1, 2, 3};
  SubCollective sub;
  sub.fraction = 1.0;
  sub.chunk_bytes = 1_MiB;
  sub.tree.root = NodeId::gpu(0);
  sub.tree.parent[NodeId::gpu(1)] = NodeId::gpu(0);
  sub.tree.parent[NodeId::gpu(2)] = NodeId::gpu(1);
  sub.tree.parent[NodeId::gpu(3)] = NodeId::gpu(1);
  strategy.subs.push_back(sub);

  const std::set<int> active{0, 2, 3};
  const std::string relay = collective::generate_rank_program(strategy, 1, active);
  // <0,1,1,1>: waits for both precedents, launches the kernel, sends on.
  EXPECT_NE(relay.find("behavior <0,1,1,1>"), std::string::npos);
  EXPECT_NE(relay.find("cudaStreamWaitEvent(recv_buffer[gpu2]"), std::string::npos);
  EXPECT_NE(relay.find("cudaStreamWaitEvent(recv_buffer[gpu3]"), std::string::npos);
  EXPECT_NE(relay.find("reduce_kernel"), std::string::npos);
  EXPECT_NE(relay.find("cudaMemcpyPeerAsync(-> gpu0"), std::string::npos);

  // When only GPU3 is active upstream, GPU1 relays without a kernel.
  const std::set<int> one_precedent{0, 3};
  const std::string passthrough = collective::generate_rank_program(strategy, 1, one_precedent);
  EXPECT_NE(passthrough.find("behavior <0,1,0,1>"), std::string::npos);
  EXPECT_EQ(passthrough.find("reduce_kernel"), std::string::npos);
  EXPECT_NE(passthrough.find("relay: forward received chunks"), std::string::npos);

  // The root never sends; it completes chunks.
  const std::string root = collective::generate_rank_program(strategy, 0, active);
  EXPECT_EQ(root.find("cudaMemcpyPeerAsync(->"), std::string::npos);
  EXPECT_NE(root.find("push to result queue"), std::string::npos);
}

TEST(CodegenTest, AllToAllProgramsListFlowsAndConcurrency) {
  Strategy strategy;
  strategy.primitive = Primitive::kAllToAll;
  strategy.participants = {0, 1, 2};
  SubCollective sub;
  sub.fraction = 1.0;
  sub.chunk_bytes = 1_MiB;
  sub.alltoall_concurrency = 2;
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      if (a == b) continue;
      collective::FlowRoute route;
      route.src = NodeId::gpu(a);
      route.dst = NodeId::gpu(b);
      route.path = {route.src, route.dst};
      sub.flows.push_back(route);
    }
  }
  strategy.subs.push_back(sub);
  const std::string program = collective::generate_rank_program(strategy, 0, {0, 1, 2});
  EXPECT_NE(program.find("concurrency 2"), std::string::npos);
  EXPECT_NE(program.find("send shard -> gpu1"), std::string::npos);
  EXPECT_NE(program.find("send shard -> gpu2"), std::string::npos);
}

TEST(CodegenTest, IdleRankProducesEmptyProgram) {
  Strategy strategy = single_tree_strategy(
      Primitive::kReduce, {0, 1}, chain_tree({NodeId::gpu(1), NodeId::gpu(0)}), 1_MiB);
  EXPECT_TRUE(collective::generate_rank_program(strategy, 7, {0, 1}).empty());
  // The full dump covers exactly the participants.
  const std::string all = collective::generate_all_programs(strategy, {0, 1});
  EXPECT_NE(all.find("rank 0 program"), std::string::npos);
  EXPECT_NE(all.find("rank 1 program"), std::string::npos);
  EXPECT_EQ(all.find("rank 7 program"), std::string::npos);
}

}  // namespace
}  // namespace adapcc
