#include <gtest/gtest.h>

#include <memory>

#include "profiler/alpha_beta.h"
#include "profiler/profiler.h"
#include "profiler/trace.h"
#include "sim/simulator.h"
#include "topology/cluster.h"
#include "topology/detector.h"
#include "topology/testbeds.h"
#include "util/rng.h"

namespace adapcc {
namespace {

using profiler::AlphaBetaEstimator;
using profiler::BandwidthTrace;
using profiler::Profiler;
using profiler::TraceShaper;
using topology::Cluster;
using topology::Detector;
using topology::GpuKind;
using topology::LogicalTopology;
using topology::NodeId;

TEST(AlphaBetaEstimatorTest, RecoversExactModel) {
  // t = alpha + beta*s with alpha = 8us, bandwidth 12.5 GB/s.
  AlphaBetaEstimator est;
  const double alpha = 8e-6;
  const double beta = 1.0 / 12.5e9;
  for (const Bytes s : {1_MiB, 4_MiB, 16_MiB, 64_MiB}) {
    est.add_sample(s, alpha + beta * static_cast<double>(s));
  }
  const auto fit = est.estimate();
  EXPECT_NEAR(fit.alpha, alpha, 1e-9);
  EXPECT_NEAR(fit.bandwidth(), 12.5e9, 1e3);
  EXPECT_GT(fit.r_squared, 0.9999);
}

TEST(AlphaBetaEstimatorTest, ClampsNegativeAlphaFromNoise) {
  AlphaBetaEstimator est;
  est.add_sample(1_MiB, 1e-4);
  est.add_sample(2_MiB, 1.9e-4);  // implies a slightly negative intercept
  EXPECT_GE(est.estimate().alpha, 0.0);
}

TEST(AlphaBetaEstimatorTest, RejectsNonPositiveTime) {
  AlphaBetaEstimator est;
  EXPECT_THROW(est.add_sample(1_MiB, 0.0), std::invalid_argument);
}

class ProfilerTest : public ::testing::Test {
 protected:
  void build(std::vector<topology::InstanceSpec> specs) {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<Cluster>(*sim_, std::move(specs));
    Detector detector(*cluster_, util::Rng(1));
    topo_ = Detector::build_logical_topology(*cluster_, detector.detect());
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<Cluster> cluster_;
  LogicalTopology topo_;
};

TEST_F(ProfilerTest, RecoversNvlinkBandwidth) {
  build(topology::heter_testbed());
  Profiler profiler(*cluster_);
  profiler.profile(topo_);
  // A100 NVLink edge (ranks 0,1 on instance 0).
  const auto& a100 = topo_.edge(NodeId::gpu(0), NodeId::gpu(1));
  EXPECT_NEAR(a100.bandwidth(), topology::nvlink_bandwidth(GpuKind::kA100),
              0.05 * topology::nvlink_bandwidth(GpuKind::kA100));
  // V100 NVLink edge (ranks 8,9 on instance 2).
  const auto& v100 = topo_.edge(NodeId::gpu(8), NodeId::gpu(9));
  EXPECT_NEAR(v100.bandwidth(), topology::nvlink_bandwidth(GpuKind::kV100),
              0.05 * topology::nvlink_bandwidth(GpuKind::kV100));
}

TEST_F(ProfilerTest, RecoversHeterogeneousNicBandwidths) {
  build(topology::paper_testbed());
  Profiler profiler(*cluster_);
  const auto report = profiler.profile(topo_);
  // A100->A100: 100 Gbps; anything touching a V100 server: 50 Gbps.
  const auto& fast = topo_.edge(NodeId::nic(0), NodeId::nic(1));
  EXPECT_NEAR(fast.bandwidth(), gbps(100), 0.08 * gbps(100));
  const auto& slow = topo_.edge(NodeId::nic(0), NodeId::nic(4));
  EXPECT_NEAR(slow.bandwidth(), gbps(50), 0.08 * gbps(50));
  EXPECT_EQ(report.inter_instance_rounds, 5);
}

TEST_F(ProfilerTest, TcpProbesSeePerStreamCap) {
  build(topology::homo_testbed(topology::NetworkStack::kTcp));
  Profiler profiler(*cluster_);
  profiler.profile(topo_);
  // One probe stream on a TCP NIC is capped at ~20 Gbps (Sec. VI-D).
  const auto& edge = topo_.edge(NodeId::nic(0), NodeId::nic(1));
  EXPECT_NEAR(edge.bandwidth(), gbps(20), 0.08 * gbps(20));
}

TEST_F(ProfilerTest, AllEdgesHaveCostsAfterProfiling) {
  build(topology::heter_testbed());
  Profiler profiler(*cluster_);
  profiler.profile(topo_);
  for (const auto& edge : topo_.edges()) {
    EXPECT_TRUE(edge.profiled) << to_string(edge.from) << "->" << to_string(edge.to);
    EXPECT_GT(edge.beta, 0.0);
  }
}

TEST_F(ProfilerTest, ProfilingReflectsShapedBandwidth) {
  build(topology::homo_testbed());
  cluster_->set_nic_capacity_fraction(1, 0.5);  // degrade instance 1 to 50 Gbps
  Profiler profiler(*cluster_);
  profiler.profile(topo_);
  const auto& degraded = topo_.edge(NodeId::nic(0), NodeId::nic(1));
  EXPECT_NEAR(degraded.bandwidth(), gbps(50), 0.08 * gbps(50));
  const auto& healthy = topo_.edge(NodeId::nic(2), NodeId::nic(3));
  EXPECT_NEAR(healthy.bandwidth(), gbps(100), 0.08 * gbps(100));
}

TEST_F(ProfilerTest, WallTimeIsReported) {
  build(topology::homo_testbed());
  Profiler profiler(*cluster_);
  const Seconds before = sim_->now();
  const auto report = profiler.profile(topo_);
  EXPECT_GT(report.wall_time, 0.0);
  EXPECT_DOUBLE_EQ(sim_->now() - before, report.wall_time);
  // Profiling blocks training; it must stay well below a second per pass
  // for a 500-iteration period to be practical.
  EXPECT_LT(report.wall_time, 2.0);
}

// --- BandwidthTrace ---------------------------------------------------------

TEST(BandwidthTraceTest, SyntheticTraceMatchesPaperEnvelope) {
  const auto trace = BandwidthTrace::synthetic_cloud(6 * 3600.0, 60.0, 7);
  EXPECT_EQ(trace.samples().size(), 360u);
  // Fig. 1: up to 34% bandwidth degradation, up to ~17% latency increase.
  EXPECT_GE(trace.min_bandwidth_fraction(), 0.60);
  EXPECT_LE(trace.min_bandwidth_fraction(), 0.85);
  EXPECT_GE(trace.max_latency_factor(), 1.05);
  EXPECT_LE(trace.max_latency_factor(), 1.25);
}

TEST(BandwidthTraceTest, DeterministicForSeed) {
  const auto a = BandwidthTrace::synthetic_cloud(3600, 60, 42);
  const auto b = BandwidthTrace::synthetic_cloud(3600, 60, 42);
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples()[i].bandwidth_fraction, b.samples()[i].bandwidth_fraction);
  }
}

TEST(BandwidthTraceTest, AmplificationLowersMinimum) {
  const auto base = BandwidthTrace::synthetic_cloud(3600, 60, 3);
  const auto amp = base.amplified(0.4);
  EXPECT_LT(amp.min_bandwidth_fraction(), base.min_bandwidth_fraction());
  EXPECT_GE(amp.min_bandwidth_fraction(), 0.05);
  // x = 0 leaves the trace unchanged.
  const auto same = base.amplified(0.0);
  for (std::size_t i = 0; i < base.samples().size(); ++i) {
    EXPECT_DOUBLE_EQ(same.samples()[i].bandwidth_fraction,
                     base.samples()[i].bandwidth_fraction);
  }
}

TEST(BandwidthTraceTest, LookupWrapsAround) {
  const auto trace = BandwidthTrace::synthetic_cloud(600, 60, 5);
  EXPECT_DOUBLE_EQ(trace.bandwidth_fraction_at(30), trace.samples()[0].bandwidth_fraction);
  EXPECT_DOUBLE_EQ(trace.bandwidth_fraction_at(90), trace.samples()[1].bandwidth_fraction);
  EXPECT_DOUBLE_EQ(trace.bandwidth_fraction_at(630), trace.samples()[0].bandwidth_fraction);
}

TEST(TraceShaperTest, AppliesAndRestoresCapacity) {
  sim::Simulator sim;
  Cluster cluster(sim, topology::homo_testbed());
  // A two-sample trace: full then half.
  std::vector<profiler::TraceSample> samples{{0.0, 1.0, 1.0}, {10.0, 0.5, 1.1}};
  TraceShaper shaper(cluster, {BandwidthTrace(std::move(samples))});
  shaper.start();
  sim.run_until(5.0);
  EXPECT_DOUBLE_EQ(cluster.nic_capacity(0), gbps(100));
  sim.run_until(15.0);
  EXPECT_DOUBLE_EQ(cluster.nic_capacity(0), gbps(50));
  shaper.stop();
  EXPECT_DOUBLE_EQ(cluster.nic_capacity(0), gbps(100));
  // Other instances untouched.
  EXPECT_DOUBLE_EQ(cluster.nic_capacity(1), gbps(100));
}

}  // namespace
}  // namespace adapcc
