#include <gtest/gtest.h>

#include <memory>

#include "baselines/backend.h"
#include "runtime/adapcc.h"
#include "topology/testbeds.h"
#include "training/compute_model.h"
#include "training/model_spec.h"
#include "training/synthetic_sgd.h"
#include "training/trainer.h"
#include "util/stats.h"

namespace adapcc {
namespace {

using topology::GpuKind;
using training::AggregationMode;
using training::ComputeModel;
using training::ModelSpec;
using training::Trainer;
using training::TrainerConfig;

TEST(ModelSpecTest, PaperSizes) {
  EXPECT_EQ(training::vgg16().tensor_bytes, megabytes(528));
  EXPECT_EQ(training::gpt2().tensor_bytes, megabytes(475));
  EXPECT_EQ(training::vit().tensor_bytes, megabytes(208));
  EXPECT_EQ(training::moe().tensor_bytes, megabytes(512));
  EXPECT_EQ(training::moe().primitive, collective::Primitive::kAllToAll);
  EXPECT_EQ(training::gpt2().default_local_batch, 16);
}

class ComputeModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, topology::heter_testbed());
  }
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
};

TEST_F(ComputeModelTest, V100BatchDependentPartTwiceA100s) {
  ComputeModel model(*cluster_, training::gpt2(), util::Rng(1));
  // Rank 0 = A100, rank 8 = V100. The fixed overhead is GPU-independent;
  // the batch-dependent part scales with compute capability (2x).
  const double fixed = training::gpt2().fixed_overhead_seconds;
  EXPECT_NEAR(model.mean_iteration_time(8, 16) - fixed,
              2.0 * (model.mean_iteration_time(0, 16) - fixed), 1e-12);
  EXPECT_GT(model.mean_iteration_time(8, 16), model.mean_iteration_time(0, 16));
}

TEST_F(ComputeModelTest, MarginalTimeScalesLinearlyWithBatch) {
  ComputeModel model(*cluster_, training::vit(), util::Rng(1));
  // Linear marginal cost per sample; the gap between GPU generations grows
  // with batch size (the Sec. II-C observation behind Figs. 16-17).
  const double m128 = model.mean_iteration_time(0, 256) - model.mean_iteration_time(0, 128);
  const double m384 = model.mean_iteration_time(0, 384) - model.mean_iteration_time(0, 256);
  EXPECT_NEAR(m128, m384, 1e-12);
  const double gap_small =
      model.mean_iteration_time(8, 64) - model.mean_iteration_time(0, 64);
  const double gap_large =
      model.mean_iteration_time(8, 256) - model.mean_iteration_time(0, 256);
  EXPECT_GT(gap_large, 2.0 * gap_small);
}

TEST_F(ComputeModelTest, JitterIsModest) {
  ComputeModel model(*cluster_, training::gpt2(), util::Rng(2));
  const double mean = model.mean_iteration_time(0, 16);
  for (int i = 0; i < 300; ++i) {
    const double t = model.sample_iteration_time(0, 16);
    EXPECT_GT(t, 0.6 * mean);
    EXPECT_LT(t, 1.6 * mean);
  }
}

TEST_F(ComputeModelTest, InterferenceSlowsWorker) {
  ComputeModel model(*cluster_, training::gpt2(), util::Rng(3));
  model.set_interference(2, training::interference_slowdown(400.0));
  EXPECT_GT(model.sample_iteration_time(2, 16), model.mean_iteration_time(2, 16) * 1.3);
  model.clear_interference();
  EXPECT_DOUBLE_EQ(model.interference(2), 1.0);
  EXPECT_THROW(model.set_interference(0, 0.5), std::invalid_argument);
  EXPECT_THROW(training::interference_slowdown(-1), std::invalid_argument);
}

// --- Trainer ------------------------------------------------------------------

class TrainerTest : public ::testing::Test {
 protected:
  void build(std::vector<topology::InstanceSpec> specs) {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, std::move(specs));
  }
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
};

TEST_F(TrainerTest, AdapccTrainingRunsAndRecordsStats) {
  build(topology::heter_testbed());
  runtime::Adapcc adapcc(*cluster_);
  adapcc.init();
  adapcc.setup();
  TrainerConfig config;
  config.iterations = 10;
  config.batch_per_gpu = 16;
  Trainer trainer(*cluster_, ComputeModel(*cluster_, training::gpt2(), util::Rng(4)), config);
  const auto stats = trainer.train_with_adapcc(adapcc);
  ASSERT_EQ(stats.iterations.size(), 10u);
  EXPECT_GT(stats.makespan, 0.0);
  EXPECT_GT(stats.mean_iteration_time(), 0.0);
  EXPECT_GT(stats.throughput(16 * 16), 0.0);
  for (const auto& iter : stats.iterations) {
    EXPECT_GT(iter.compute_max, iter.compute_min);
    EXPECT_GE(iter.iteration_time, iter.compute_max);
  }
}

TEST_F(TrainerTest, HeterogeneousStragglersTriggerRelays) {
  build(topology::heter_testbed());
  runtime::Adapcc adapcc(*cluster_);
  adapcc.init();
  adapcc.setup();
  TrainerConfig config;
  config.iterations = 20;
  config.batch_per_gpu = 64;  // large batch -> V100s straggle hard
  Trainer trainer(*cluster_, ComputeModel(*cluster_, training::gpt2(), util::Rng(5)), config);
  const auto stats = trainer.train_with_adapcc(adapcc);
  EXPECT_GT(stats.partial_fraction(), 0.5);
  // Relays should be predominantly the slow V100 ranks (8..15), Fig. 15.
  int v100_relays = 0, a100_relays = 0;
  for (const auto& [rank, count] : stats.relay_count) {
    (rank >= 8 ? v100_relays : a100_relays) += count;
  }
  EXPECT_GT(v100_relays, a100_relays);
}

TEST_F(TrainerTest, AdapccBeatsWaitAllBaselineUnderInterference) {
  // The regime where relay control pays off: a mostly homogeneous cluster
  // with one severely interfered worker (a co-located CPU workload slowing
  // its compute 2.5x). Wait-all stalls every iteration; AdapCC runs phase 1
  // without the straggler and merges its tensor in phase 2.
  TrainerConfig config;
  config.iterations = 12;
  config.batch_per_gpu = 16;

  build(topology::homo_testbed());
  runtime::Adapcc adapcc(*cluster_);
  adapcc.init();
  adapcc.setup();
  ComputeModel adaptive_compute(*cluster_, training::gpt2(), util::Rng(6));
  adaptive_compute.set_interference(5, 2.5);
  Trainer adapcc_trainer(*cluster_, std::move(adaptive_compute), config);
  const auto adaptive = adapcc_trainer.train_with_adapcc(adapcc);
  EXPECT_GT(adaptive.partial_fraction(), 0.5);

  build(topology::homo_testbed());  // fresh simulator for a fair run
  baselines::NcclBackend nccl(*cluster_);
  ComputeModel baseline_compute(*cluster_, training::gpt2(), util::Rng(6));
  baseline_compute.set_interference(5, 2.5);
  Trainer nccl_trainer(*cluster_, std::move(baseline_compute), config);
  const auto baseline = nccl_trainer.train_with_backend(nccl);

  EXPECT_LT(adaptive.mean_iteration_time(), baseline.mean_iteration_time());
}

TEST_F(TrainerTest, WaitRatiosHigherOnHeterogeneousCluster) {
  // Fig. 3b: the wait-time ratio is markedly larger in the heterogeneous
  // setting than in the homogeneous one.
  TrainerConfig config;
  config.iterations = 30;
  config.batch_per_gpu = 16;

  build(topology::heter_testbed());
  baselines::NcclBackend nccl_heter(*cluster_);
  Trainer heter_trainer(*cluster_, ComputeModel(*cluster_, training::gpt2(), util::Rng(7)),
                        config);
  const auto heter = heter_trainer.train_with_backend(nccl_heter);

  build(topology::homo_testbed());
  baselines::NcclBackend nccl_homo(*cluster_);
  Trainer homo_trainer(*cluster_, ComputeModel(*cluster_, training::gpt2(), util::Rng(7)),
                       config);
  const auto homo = homo_trainer.train_with_backend(nccl_homo);

  const double heter_median = util::percentile(heter.wait_ratios(), 0.5);
  const double homo_median = util::percentile(homo.wait_ratios(), 0.5);
  EXPECT_GT(heter_median, homo_median);
  EXPECT_GT(heter_median, 0.2);  // paper: >23% in half the iterations
}

TEST_F(TrainerTest, MoeUsesAllToAll) {
  build(topology::homo_testbed());
  runtime::Adapcc adapcc(*cluster_);
  adapcc.init();
  adapcc.setup();
  TrainerConfig config;
  config.iterations = 5;
  config.batch_per_gpu = 128;
  Trainer trainer(*cluster_, ComputeModel(*cluster_, training::moe(), util::Rng(8)), config);
  const auto stats = trainer.train_with_adapcc(adapcc);
  EXPECT_EQ(stats.iterations.size(), 5u);
  EXPECT_DOUBLE_EQ(stats.partial_fraction(), 0.0);  // AllToAll: no relay mode
}

// --- Synthetic SGD (Fig. 19b) ---------------------------------------------------

class SgdTest : public ::testing::Test {
 protected:
  training::SgdConfig fast_config() {
    training::SgdConfig config;
    config.train_samples = 20000;
    config.test_samples = 4000;
    config.iterations = 150;
    config.eval_every = 25;
    return config;
  }
};

TEST_F(SgdTest, FullSyncLearns) {
  const auto curve = training::train_synthetic_sgd(AggregationMode::kFullSync, fast_config());
  ASSERT_GE(curve.accuracy.size(), 2u);
  EXPECT_GT(curve.final_accuracy(), 0.70);  // far above the 10% random baseline
  EXPECT_GT(curve.final_accuracy(), curve.accuracy.front());
}

TEST_F(SgdTest, AdapccPhase12MatchesFullSync) {
  const auto config = fast_config();
  const auto full = training::train_synthetic_sgd(AggregationMode::kFullSync, config);
  const auto adapcc = training::train_synthetic_sgd(AggregationMode::kPhase1Phase2, config);
  // Same sums in a different order: accuracy curves coincide within float
  // rounding noise (the paper's "consistent accuracy as NCCL").
  ASSERT_EQ(full.accuracy.size(), adapcc.accuracy.size());
  for (std::size_t i = 0; i < full.accuracy.size(); ++i) {
    EXPECT_NEAR(full.accuracy[i], adapcc.accuracy[i], 0.02) << "eval point " << i;
  }
}

TEST_F(SgdTest, ShuffledOrderMatchesFullSync) {
  const auto config = fast_config();
  const auto full = training::train_synthetic_sgd(AggregationMode::kFullSync, config);
  const auto shuffled = training::train_synthetic_sgd(AggregationMode::kShuffledOrder, config);
  EXPECT_NEAR(full.final_accuracy(), shuffled.final_accuracy(), 0.03);
}

TEST_F(SgdTest, RelayAsyncConvergesWorse) {
  const auto config = fast_config();
  const auto full = training::train_synthetic_sgd(AggregationMode::kFullSync, config);
  const auto async = training::train_synthetic_sgd(AggregationMode::kRelayAsync, config);
  EXPECT_LT(async.final_accuracy(), full.final_accuracy() - 0.01);
}

TEST_F(SgdTest, DeterministicForSeed) {
  const auto config = fast_config();
  const auto a = training::train_synthetic_sgd(AggregationMode::kFullSync, config);
  const auto b = training::train_synthetic_sgd(AggregationMode::kFullSync, config);
  ASSERT_EQ(a.accuracy.size(), b.accuracy.size());
  for (std::size_t i = 0; i < a.accuracy.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.accuracy[i], b.accuracy[i]);
  }
}

}  // namespace
}  // namespace adapcc
