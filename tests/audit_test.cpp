// Tests for the ADAPCC_AUDIT invariant auditor (src/util/audit.h): the
// failure-mode plumbing, the check counter, and the behavior-tuple audit
// hook on the Sec. IV-C-3 edge cases (empty active set, single-rank subs,
// relay-only ranks). Invariant *enforcement* tests run only in audit builds
// (-DADAPCC_AUDIT=ON) and skip elsewhere; the API tests run everywhere.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "collective/behavior.h"
#include "collective/builders.h"
#include "collective/comm_graph.h"
#include "sim/simulator.h"
#include "util/audit.h"

namespace adapcc {
namespace {

using collective::BehaviorTuple;
using collective::chain_tree;
using collective::derive_behavior;
using collective::Primitive;
using collective::star_tree;
using collective::SubCollective;
using collective::Tree;
using topology::NodeId;

/// Flips the process-wide failure mode to kThrow for one test and restores
/// the previous mode on exit, so a failing expectation cannot leak throwing
/// mode into the death tests.
class ScopedThrowMode {
 public:
  ScopedThrowMode() : previous_(audit::failure_mode()) {
    audit::set_failure_mode(audit::FailureMode::kThrow);
  }
  ~ScopedThrowMode() { audit::set_failure_mode(previous_); }

 private:
  audit::FailureMode previous_;
};

SubCollective tree_sub(Tree tree) {
  SubCollective sub;
  sub.tree = std::move(tree);
  return sub;
}

// --- Auditor API -------------------------------------------------------------

TEST(AuditApi, FailureModeRoundTrips) {
  const audit::FailureMode previous = audit::failure_mode();
  audit::set_failure_mode(audit::FailureMode::kThrow);
  EXPECT_EQ(audit::failure_mode(), audit::FailureMode::kThrow);
  audit::set_failure_mode(audit::FailureMode::kAbort);
  EXPECT_EQ(audit::failure_mode(), audit::FailureMode::kAbort);
  audit::set_failure_mode(previous);
}

TEST(AuditApi, CheckCounterIsMonotonic) {
  const std::uint64_t before = audit::checks_run();
  audit::count_check();
  audit::count_check();
  EXPECT_EQ(audit::checks_run(), before + 2);
}

TEST(AuditApi, FailThrowsAuditErrorUnderThrowMode) {
  ScopedThrowMode guard;
  try {
    audit::fail("test_subsystem", "1 == 2", "left 1 right 2");
    FAIL() << "audit::fail returned";
  } catch (const audit::AuditError& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("test_subsystem"), std::string::npos) << message;
    EXPECT_NE(message.find("1 == 2"), std::string::npos) << message;
    EXPECT_NE(message.find("left 1 right 2"), std::string::npos) << message;
  }
}

TEST(AuditDeathTest, FailAbortsByDefault) {
  ASSERT_EQ(audit::failure_mode(), audit::FailureMode::kAbort);
  EXPECT_DEATH(audit::fail("test_subsystem", "false", ""), "invariant violated");
}

TEST(AuditApi, MacroIsInertWhenDisabledAndFailStopWhenEnabled) {
  if constexpr (audit::kEnabled) {
    ScopedThrowMode guard;
    const std::uint64_t before = audit::checks_run();
    ADAPCC_AUDIT_CHECK("test_subsystem", 1 + 1 == 2, "arithmetic");
    EXPECT_EQ(audit::checks_run(), before + 1);
    EXPECT_THROW(ADAPCC_AUDIT_CHECK("test_subsystem", 1 + 1 == 3, "arithmetic"),
                 audit::AuditError);
  } else {
    // Disabled builds must neither count nor evaluate the condition.
    const std::uint64_t before = audit::checks_run();
    bool evaluated = false;
    ADAPCC_AUDIT_CHECK("test_subsystem", (evaluated = true), "never runs");
    EXPECT_FALSE(evaluated);
    EXPECT_EQ(audit::checks_run(), before);
    ADAPCC_AUDIT_CHECK("test_subsystem", false, "no abort either");
  }
}

// --- Simulator heap audit ----------------------------------------------------

TEST(AuditWiring, SimulatorCancelRunsHeapAudit) {
  if constexpr (!audit::kEnabled) GTEST_SKIP() << "requires -DADAPCC_AUDIT=ON";
  sim::Simulator sim;
  const std::uint64_t before = audit::checks_run();
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(sim.schedule_at(1.0 + i, [] {}));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
  sim.run();
  EXPECT_GT(audit::checks_run(), before) << "cancel() audit hook not wired";
}

// --- Behavior tuples: Sec. IV-C-3 edge cases ---------------------------------

TEST(BehaviorAudit, EmptyActiveSetSilencesEveryNode) {
  const SubCollective sub = tree_sub(
      chain_tree({NodeId::gpu(2), NodeId::gpu(1), NodeId::gpu(0)}));
  const std::set<int> active;  // nobody ready: nothing moves, no kernels
  for (const NodeId node : sub.tree.nodes()) {
    const BehaviorTuple tuple = derive_behavior(sub, Primitive::kReduce, node, active);
    EXPECT_EQ(tuple, BehaviorTuple{}) << topology::to_string(node);
  }
  ScopedThrowMode guard;
  EXPECT_NO_THROW(collective::audit_behavior_tuples(sub, Primitive::kReduce, active));
}

TEST(BehaviorAudit, SingleRankSubHasNoTraffic) {
  Tree tree;
  tree.root = NodeId::gpu(3);
  const SubCollective sub = tree_sub(tree);
  const BehaviorTuple tuple =
      derive_behavior(sub, Primitive::kReduce, NodeId::gpu(3), {3});
  EXPECT_TRUE(tuple.is_active);
  EXPECT_FALSE(tuple.has_recv);    // no predecessors at all
  EXPECT_FALSE(tuple.has_kernel);  // nothing to aggregate with
  EXPECT_FALSE(tuple.has_send);    // the root keeps its data
  ScopedThrowMode guard;
  EXPECT_NO_THROW(collective::audit_behavior_tuples(sub, Primitive::kReduce, {3}));
}

TEST(BehaviorAudit, RelayWithOneActivePrecedentForwardsWithoutKernel) {
  // Chain 2 -> 1 -> 0 with rank 1 not ready: it relays rank 2's data to the
  // root without launching an aggregation kernel (rule 2 of hasKernel).
  const SubCollective sub = tree_sub(
      chain_tree({NodeId::gpu(2), NodeId::gpu(1), NodeId::gpu(0)}));
  const std::set<int> active{0, 2};
  const BehaviorTuple relay =
      derive_behavior(sub, Primitive::kReduce, NodeId::gpu(1), active);
  EXPECT_FALSE(relay.is_active);
  EXPECT_TRUE(relay.has_recv);
  EXPECT_FALSE(relay.has_kernel);
  EXPECT_TRUE(relay.has_send);
  ScopedThrowMode guard;
  EXPECT_NO_THROW(collective::audit_behavior_tuples(sub, Primitive::kReduce, active));
}

TEST(BehaviorAudit, RelayWithTwoActivePrecedentsAggregates) {
  // Star with an inactive center: two active leaves converge there, so the
  // relay must aggregate before forwarding — unless it is the root.
  Tree tree = star_tree(NodeId::gpu(1), {NodeId::gpu(0), NodeId::gpu(2)});
  tree.parent[NodeId::gpu(1)] = NodeId::gpu(3);
  tree.root = NodeId::gpu(3);
  const SubCollective sub = tree_sub(std::move(tree));
  const std::set<int> active{0, 2, 3};
  const BehaviorTuple relay =
      derive_behavior(sub, Primitive::kReduce, NodeId::gpu(1), active);
  EXPECT_FALSE(relay.is_active);
  EXPECT_TRUE(relay.has_recv);
  EXPECT_TRUE(relay.has_kernel);
  EXPECT_TRUE(relay.has_send);
  ScopedThrowMode guard;
  EXPECT_NO_THROW(collective::audit_behavior_tuples(sub, Primitive::kReduce, active));
  const std::uint64_t before = audit::checks_run();
  collective::audit_behavior_tuples(sub, Primitive::kReduce, active);
  if constexpr (audit::kEnabled) {
    EXPECT_GT(audit::checks_run(), before) << "behavior audit hook not wired";
  } else {
    EXPECT_EQ(audit::checks_run(), before);
  }
}

TEST(BehaviorAudit, RejectsCyclicParentChain) {
  if constexpr (!audit::kEnabled) GTEST_SKIP() << "requires -DADAPCC_AUDIT=ON";
  Tree tree;
  tree.root = NodeId::gpu(0);
  tree.parent[NodeId::gpu(1)] = NodeId::gpu(2);
  tree.parent[NodeId::gpu(2)] = NodeId::gpu(1);
  const SubCollective sub = tree_sub(std::move(tree));
  ScopedThrowMode guard;
  EXPECT_THROW(collective::audit_behavior_tuples(sub, Primitive::kReduce, {0, 1, 2}),
               audit::AuditError);
}

}  // namespace
}  // namespace adapcc
