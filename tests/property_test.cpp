// Parameterized property suites (TEST_P sweeps) over the library's core
// invariants:
//   * collective correctness for every primitive x cluster x size x chunk;
//   * behavior-tuple invariants on random trees and active sets;
//   * byte conservation: simulated NIC traffic matches the aggregation
//     model's predicted volumes;
//   * strategy XML round-trip on randomized strategies;
//   * simulator event ordering under random schedules;
//   * EdgeChannel FIFO + conservation under random chunk streams;
//   * the ski-rental 2-competitive bound over a parameter grid.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>

#include "collective/behavior.h"
#include "collective/builders.h"
#include "collective/executor.h"
#include "profiler/profiler.h"
#include "relay/ski_rental.h"
#include "runtime/adapcc.h"
#include "sim/edge_channel.h"
#include "sim/flow_link.h"
#include "synthesizer/synthesizer.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "topology/detector.h"
#include "topology/testbeds.h"
#include "util/rng.h"

namespace adapcc {
namespace {

using collective::Primitive;
using collective::Strategy;
using topology::NodeId;

// ---------------------------------------------------------------------------
// Collective correctness sweep.
// ---------------------------------------------------------------------------

enum class TestCluster { kSingleServer, kHomo, kHeter, kFragmented };

std::vector<topology::InstanceSpec> make_specs(TestCluster kind) {
  switch (kind) {
    case TestCluster::kSingleServer: return {topology::a100_server("s0")};
    case TestCluster::kHomo: return topology::homo_testbed();
    case TestCluster::kHeter: return topology::heter_testbed();
    case TestCluster::kFragmented:
      return {topology::fragmented_a100_server("f0"), topology::v100_server("v0")};
  }
  return {};
}

const char* cluster_name(TestCluster kind) {
  switch (kind) {
    case TestCluster::kSingleServer: return "single";
    case TestCluster::kHomo: return "homo";
    case TestCluster::kHeter: return "heter";
    case TestCluster::kFragmented: return "fragmented";
  }
  return "?";
}

using CorrectnessParam = std::tuple<Primitive, TestCluster, Bytes /*tensor*/, Bytes /*chunk*/>;

class CollectiveCorrectness : public ::testing::TestWithParam<CorrectnessParam> {};

TEST_P(CollectiveCorrectness, DeliversExactAggregates) {
  const auto [primitive, kind, tensor, chunk] = GetParam();
  sim::Simulator sim;
  topology::Cluster cluster(sim, make_specs(kind));
  topology::Detector detector(cluster, util::Rng(3));
  auto topo = topology::Detector::build_logical_topology(cluster, detector.detect());
  profiler::Profiler profiler(cluster);
  profiler.profile(topo);

  std::vector<int> ranks;
  for (int r = 0; r < cluster.world_size(); ++r) ranks.push_back(r);
  synthesizer::SynthesizerConfig config;
  config.chunk_candidates = {chunk};
  synthesizer::Synthesizer synth(cluster, topo, config);
  const Strategy strategy = synth.synthesize(primitive, ranks, tensor);
  ASSERT_NO_THROW(strategy.validate(topo));

  collective::Executor executor(cluster, strategy);
  const auto result = executor.run(tensor);
  EXPECT_GT(result.elapsed(), 0.0);

  double full_sum_sub0 = 0.0;
  for (const int r : ranks) full_sum_sub0 += collective::payload_value(r, 0, 0);

  switch (primitive) {
    case Primitive::kAllReduce:
      for (const int r : ranks) {
        ASSERT_TRUE(result.delivered.contains(r)) << r;
        EXPECT_DOUBLE_EQ(result.delivered.at(r)[0][0], full_sum_sub0) << "rank " << r;
      }
      break;
    case Primitive::kReduce:
      ASSERT_FALSE(result.subs.empty());
      ASSERT_FALSE(result.subs[0].root_values.empty());
      EXPECT_DOUBLE_EQ(result.subs[0].root_values[0], full_sum_sub0);
      break;
    case Primitive::kBroadcast: {
      const int root = strategy.subs[0].tree.root.index;
      for (const int r : ranks) {
        EXPECT_DOUBLE_EQ(result.delivered.at(r)[0][0], collective::payload_value(root, 0, 0));
      }
      break;
    }
    case Primitive::kAllToAll:
      for (const int dst : ranks) {
        for (const int src : ranks) {
          if (src == dst) continue;
          ASSERT_TRUE(result.alltoall_received.contains(dst));
          ASSERT_TRUE(result.alltoall_received.at(dst).contains(src))
              << "dst " << dst << " src " << src;
        }
      }
      break;
    default:
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CollectiveCorrectness,
    ::testing::Combine(::testing::Values(Primitive::kAllReduce, Primitive::kReduce,
                                         Primitive::kBroadcast, Primitive::kAllToAll),
                       ::testing::Values(TestCluster::kSingleServer, TestCluster::kHomo,
                                         TestCluster::kHeter, TestCluster::kFragmented),
                       ::testing::Values(megabytes(16), megabytes(96)),
                       ::testing::Values(Bytes(1_MiB), Bytes(8_MiB))),
    [](const ::testing::TestParamInfo<CorrectnessParam>& param_info) {
      return collective::to_string(std::get<0>(param_info.param)) + "_" +
             cluster_name(std::get<1>(param_info.param)) + "_" +
             std::to_string(std::get<2>(param_info.param) / 1000000) + "MB_" +
             std::to_string(std::get<3>(param_info.param) / 1024 / 1024) + "MiBchunk";
    });

// ---------------------------------------------------------------------------
// Behavior-tuple invariants on random trees / active sets.
// ---------------------------------------------------------------------------

class BehaviorProperty : public ::testing::TestWithParam<int /*seed*/> {};

TEST_P(BehaviorProperty, InvariantsHoldOnRandomTrees) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int nodes = static_cast<int>(rng.uniform_int(2, 12));
  collective::SubCollective sub;
  sub.tree.root = NodeId::gpu(0);
  for (int n = 1; n < nodes; ++n) {
    // Random parent among the already-inserted nodes: always a valid tree.
    sub.tree.parent[NodeId::gpu(n)] = NodeId::gpu(static_cast<int>(rng.uniform_int(0, n - 1)));
  }
  std::set<int> active;
  for (int n = 0; n < nodes; ++n) {
    if (rng.bernoulli(0.6)) active.insert(n);
  }

  for (int n = 0; n < nodes; ++n) {
    const NodeId node = NodeId::gpu(n);
    const auto tuple = collective::derive_behavior(sub, Primitive::kReduce, node, active);
    // Root never sends.
    if (node == sub.tree.root) {
      EXPECT_FALSE(tuple.has_send);
    }
    // A rank with nothing local and nothing received does nothing.
    if (!tuple.is_active && !tuple.has_recv) {
      EXPECT_FALSE(tuple.has_send);
      EXPECT_FALSE(tuple.has_kernel);
    }
    // Aggregation requires something to aggregate with.
    if (tuple.has_kernel) {
      EXPECT_TRUE(tuple.has_recv);
    }
    // Leaves receive nothing.
    if (sub.tree.children_of(node).empty()) {
      EXPECT_FALSE(tuple.has_recv);
    }
    // is_active mirrors the active set exactly.
    EXPECT_EQ(tuple.is_active, active.contains(n));
    // hasRecv is exactly "some active rank below me".
    int below = 0;
    for (const NodeId child : sub.tree.children_of(node)) {
      below += collective::active_in_subtree(sub.tree, child, active);
    }
    EXPECT_EQ(tuple.has_recv, below > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BehaviorProperty, ::testing::Range(1, 33));

// ---------------------------------------------------------------------------
// Byte conservation: simulated NIC traffic == aggregation-model volumes.
// ---------------------------------------------------------------------------

class ConservationProperty : public ::testing::TestWithParam<int /*instances*/> {};

TEST_P(ConservationProperty, ChainReduceMovesExactlyOneTensorPerInstance) {
  const int instances = GetParam();
  sim::Simulator sim;
  topology::Cluster cluster(sim, topology::a100_fleet(instances));
  // Chain of heads: every non-root instance sends exactly one aggregated
  // tensor across its egress; the root sends nothing.
  std::vector<int> ranks;
  for (int r = 0; r < cluster.world_size(); ++r) ranks.push_back(r);
  collective::Tree tree;
  tree.root = NodeId::gpu(0);
  for (int inst = 0; inst < instances; ++inst) {
    const auto on_instance = cluster.ranks_on_instance(inst);
    for (std::size_t i = 1; i < on_instance.size(); ++i) {
      tree.parent[NodeId::gpu(on_instance[i])] = NodeId::gpu(on_instance[i - 1]);
    }
    if (inst > 0) {
      tree.parent[NodeId::gpu(cluster.ranks_on_instance(inst)[0])] =
          NodeId::gpu(cluster.ranks_on_instance(inst - 1)[0]);
    }
  }
  const Bytes tensor = megabytes(64);
  Strategy strategy =
      collective::single_tree_strategy(Primitive::kReduce, ranks, std::move(tree), 2_MiB);

  std::vector<Bytes> egress_before, ingress_before;
  for (int inst = 0; inst < instances; ++inst) {
    egress_before.push_back(cluster.nic_egress(inst).bytes_delivered());
    ingress_before.push_back(cluster.nic_ingress(inst).bytes_delivered());
  }
  collective::Executor executor(cluster, strategy);
  executor.run(tensor);
  for (int inst = 0; inst < instances; ++inst) {
    const Bytes egress =
        cluster.nic_egress(inst).bytes_delivered() - egress_before[static_cast<std::size_t>(inst)];
    const Bytes ingress = cluster.nic_ingress(inst).bytes_delivered() -
                          ingress_before[static_cast<std::size_t>(inst)];
    if (inst == 0) {
      EXPECT_EQ(egress, 0u);
      EXPECT_NEAR(static_cast<double>(ingress), static_cast<double>(tensor), 4.0 * 2_MiB);
    } else {
      // One aggregated tensor out; interior instances also receive one in.
      EXPECT_NEAR(static_cast<double>(egress), static_cast<double>(tensor), 4.0 * 2_MiB);
      if (inst < instances - 1) {
        EXPECT_NEAR(static_cast<double>(ingress), static_cast<double>(tensor), 4.0 * 2_MiB);
      } else {
        EXPECT_EQ(ingress, 0u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, ConservationProperty, ::testing::Values(2, 3, 4, 6));

// ---------------------------------------------------------------------------
// Strategy XML round-trip on randomized strategies.
// ---------------------------------------------------------------------------

class XmlRoundTripProperty : public ::testing::TestWithParam<int /*seed*/> {};

TEST_P(XmlRoundTripProperty, FingerprintSurvivesRoundTrip) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  Strategy strategy;
  const bool alltoall = rng.bernoulli(0.3);
  strategy.primitive = alltoall ? Primitive::kAllToAll : Primitive::kAllReduce;
  const int world = static_cast<int>(rng.uniform_int(2, 10));
  for (int r = 0; r < world; ++r) strategy.participants.push_back(r);
  const int subs = static_cast<int>(rng.uniform_int(1, 4));
  for (int m = 0; m < subs; ++m) {
    collective::SubCollective sub;
    sub.id = m;
    sub.fraction = 1.0 / subs;
    sub.chunk_bytes = static_cast<Bytes>(rng.uniform_int(1, 16)) * 512_KiB;
    if (alltoall) {
      sub.alltoall_concurrency = static_cast<int>(rng.uniform_int(0, 4));
      for (int a = 0; a < world; ++a) {
        for (int b = 0; b < world; ++b) {
          if (a == b) continue;
          collective::FlowRoute route;
          route.src = NodeId::gpu(a);
          route.dst = NodeId::gpu(b);
          route.path = {route.src, route.dst};
          sub.flows.push_back(std::move(route));
        }
      }
    } else {
      sub.tree.root = NodeId::gpu(0);
      for (int n = 1; n < world; ++n) {
        sub.tree.parent[NodeId::gpu(n)] =
            NodeId::gpu(static_cast<int>(rng.uniform_int(0, n - 1)));
        if (rng.bernoulli(0.25)) sub.aggregate_at[NodeId::gpu(n)] = rng.bernoulli(0.5);
      }
    }
    strategy.subs.push_back(std::move(sub));
  }
  const auto reloaded = Strategy::from_xml(strategy.to_xml());
  EXPECT_EQ(reloaded.fingerprint(), strategy.fingerprint());
  EXPECT_EQ(reloaded.participants, strategy.participants);
  EXPECT_EQ(reloaded.subs.size(), strategy.subs.size());
  for (std::size_t m = 0; m < strategy.subs.size(); ++m) {
    EXPECT_EQ(reloaded.subs[m].alltoall_concurrency, strategy.subs[m].alltoall_concurrency);
    EXPECT_EQ(reloaded.subs[m].chunk_bytes, strategy.subs[m].chunk_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripProperty, ::testing::Range(1, 25));

// ---------------------------------------------------------------------------
// Simulator ordering under random schedules.
// ---------------------------------------------------------------------------

class SimulatorOrderProperty : public ::testing::TestWithParam<int /*seed*/> {};

TEST_P(SimulatorOrderProperty, EventsFireInNonDecreasingTime) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
  sim::Simulator sim;
  std::vector<Seconds> fired;
  const int events = 200;
  for (int i = 0; i < events; ++i) {
    const Seconds when = rng.uniform(0.0, 10.0);
    sim.schedule_at(when, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  // A few cancellations mid-stream.
  const auto id = sim.schedule_at(5.0, [&fired] { fired.push_back(-1.0); });
  sim.cancel(id);
  sim.run();
  ASSERT_EQ(fired.size(), static_cast<std::size_t>(events));
  for (std::size_t i = 1; i < fired.size(); ++i) EXPECT_GE(fired[i], fired[i - 1]);
  for (const Seconds t : fired) EXPECT_GE(t, 0.0);  // the cancelled one never fired
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorOrderProperty, ::testing::Range(1, 17));

// ---------------------------------------------------------------------------
// EdgeChannel FIFO + byte conservation under random chunk streams.
// ---------------------------------------------------------------------------

class EdgeChannelProperty : public ::testing::TestWithParam<int /*seed*/> {};

TEST_P(EdgeChannelProperty, FifoAndConservation) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 271828);
  sim::Simulator sim;
  sim::FlowLink a(sim, "a", microseconds(rng.uniform(1, 20)), gbps(rng.uniform(10, 200)));
  sim::FlowLink b(sim, "b", microseconds(rng.uniform(1, 20)), gbps(rng.uniform(10, 200)));
  sim::EdgeChannel channel(sim, {&a, &b});
  const int chunks = static_cast<int>(rng.uniform_int(1, 64));
  Bytes total = 0;
  std::vector<int> order;
  for (int c = 0; c < chunks; ++c) {
    const Bytes bytes = static_cast<Bytes>(rng.uniform_int(1, 4096)) * 1024;
    total += bytes;
    channel.send(bytes, [&order, c] { order.push_back(c); });
  }
  sim.run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(chunks));
  for (int c = 0; c < chunks; ++c) EXPECT_EQ(order[static_cast<std::size_t>(c)], c);
  EXPECT_EQ(channel.bytes_sent(), total);
  EXPECT_EQ(a.bytes_delivered(), total);
  EXPECT_EQ(b.bytes_delivered(), total);
  EXPECT_EQ(channel.chunks_in_flight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EdgeChannelProperty, ::testing::Range(1, 17));

// ---------------------------------------------------------------------------
// Ski-rental bound over a parameter grid.
// ---------------------------------------------------------------------------

using SkiParam = std::tuple<double /*straggler*/, double /*buy*/>;

class SkiRentalBound : public ::testing::TestWithParam<SkiParam> {};

TEST_P(SkiRentalBound, BreakEvenIsTwoCompetitive) {
  const auto [straggler, buy] = GetParam();
  // Simulate the break-even policy in 1 ms cycles against arrival time
  // `straggler`; the offline optimum pays min(straggler, buy).
  double waited = 0.0;
  double policy_cost;
  for (;;) {
    if (waited >= straggler) {
      policy_cost = straggler;  // everyone became ready while renting
      break;
    }
    if (relay::SkiRentalPolicy::decide(waited, buy) ==
        relay::SkiRentalPolicy::Choice::kProceed) {
      policy_cost = waited + buy;  // bought after renting `waited`
      break;
    }
    waited += 1e-3;
  }
  const double optimum = std::min(straggler, buy);
  EXPECT_LE(policy_cost, 2.0 * optimum + 2e-3)  // cycle-granularity slack
      << "straggler=" << straggler << " buy=" << buy;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SkiRentalBound,
    ::testing::Combine(::testing::Values(0.002, 0.01, 0.05, 0.2, 0.5, 2.0),
                       ::testing::Values(0.005, 0.02, 0.1, 0.4)));

// ---------------------------------------------------------------------------
// FlowLink processor sharing vs. a brute-force fluid reference.
// ---------------------------------------------------------------------------

struct FluidTransfer {
  double start;
  double bytes;
};

struct FluidResult {
  std::vector<double> finish;  ///< service-completion time per transfer
  double busy = 0.0;           ///< total time with at least one active transfer
};

/// Brute-force processor-sharing reference: steps from event to event
/// (arrival, capacity change, earliest completion) and integrates every
/// active transfer's remaining bytes individually — the O(n^2) formulation
/// FlowLink's virtual-work accounting replaces.
void fluid_reference(const std::vector<FluidTransfer>& transfers,
                     std::vector<std::pair<double, double>> capacity_changes, double capacity,
                     double per_transfer_cap, FluidResult* out) {
  FluidResult& result = *out;
  result.finish.assign(transfers.size(), -1.0);
  std::vector<std::size_t> arrival_order(transfers.size());
  for (std::size_t i = 0; i < transfers.size(); ++i) arrival_order[i] = i;
  std::sort(arrival_order.begin(), arrival_order.end(),
            [&](std::size_t a, std::size_t b) { return transfers[a].start < transfers[b].start; });
  std::sort(capacity_changes.begin(), capacity_changes.end());

  std::vector<double> remaining(transfers.size(), 0.0);
  std::vector<std::size_t> active;
  std::size_t next_arrival = 0;
  std::size_t next_change = 0;
  double now = 0.0;
  const double inf = std::numeric_limits<double>::infinity();
  while (next_arrival < arrival_order.size() || !active.empty()) {
    double rate = 0.0;
    if (!active.empty()) {
      rate = capacity / static_cast<double>(active.size());
      if (per_transfer_cap > 0.0) rate = std::min(rate, per_transfer_cap);
    }
    const double t_arrival =
        next_arrival < arrival_order.size() ? transfers[arrival_order[next_arrival]].start : inf;
    const double t_change =
        next_change < capacity_changes.size() ? capacity_changes[next_change].first : inf;
    double t_finish = inf;
    if (!active.empty() && rate > 0.0) {
      double min_remaining = inf;
      for (const std::size_t i : active) min_remaining = std::min(min_remaining, remaining[i]);
      t_finish = now + min_remaining / rate;
    }
    const double t_next = std::min({t_arrival, t_change, t_finish});
    ASSERT_TRUE(t_next < inf) << "fluid reference stalled";  // needs rate > 0 eventually
    if (!active.empty()) {
      for (const std::size_t i : active) remaining[i] -= rate * (t_next - now);
      result.busy += t_next - now;
    }
    now = t_next;
    if (t_next == t_finish) {
      std::vector<std::size_t> still_active;
      for (const std::size_t i : active) {
        if (remaining[i] <= 1e-6) {
          result.finish[i] = now;
        } else {
          still_active.push_back(i);
        }
      }
      active = std::move(still_active);
    }
    while (next_arrival < arrival_order.size() &&
           transfers[arrival_order[next_arrival]].start <= now) {
      const std::size_t i = arrival_order[next_arrival++];
      remaining[i] = transfers[i].bytes;
      active.push_back(i);
    }
    while (next_change < capacity_changes.size() && capacity_changes[next_change].first <= now) {
      capacity = capacity_changes[next_change++].second;
    }
  }
}

class FlowLinkSharingProperty : public ::testing::TestWithParam<int> {};

TEST_P(FlowLinkSharingProperty, MatchesBruteForceFluidReference) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = static_cast<int>(rng.uniform_int(2, 20));
  const double capacity = rng.uniform(1e6, 1e9);
  const double per_transfer_cap = rng.bernoulli(0.5) ? rng.uniform(capacity / 8, capacity) : 0.0;
  std::vector<FluidTransfer> transfers;
  for (int i = 0; i < n; ++i) {
    transfers.push_back({rng.uniform(0.0, 0.5), std::floor(rng.uniform(1e3, 1e7))});
  }
  std::vector<std::pair<double, double>> capacity_changes;
  const int changes = static_cast<int>(rng.uniform_int(0, 3));
  for (int c = 0; c < changes; ++c) {
    capacity_changes.emplace_back(rng.uniform(0.0, 1.0), rng.uniform(1e6, 1e9));
  }

  sim::Simulator sim;
  sim::FlowLink link(sim, "prop", /*alpha=*/1e-5, capacity, per_transfer_cap);
  std::vector<double> served(transfers.size(), -1.0);
  Bytes total_bytes = 0;
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    const Bytes bytes = static_cast<Bytes>(transfers[i].bytes);
    total_bytes += bytes;
    sim.schedule_at(transfers[i].start, [&link, &sim, &served, i, bytes] {
      link.start_transfer(bytes, nullptr, [&sim, &served, i] { served[i] = sim.now(); });
    });
  }
  for (const auto& [when, cap] : capacity_changes) {
    // Property test drives a raw FlowLink against the fluid model. lint:chaos
    sim.schedule_at(when, [&link, cap = cap] { link.set_capacity(cap); });
  }
  sim.run();

  FluidResult reference;
  fluid_reference(transfers, capacity_changes, capacity, per_transfer_cap, &reference);
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    ASSERT_GE(reference.finish[i], 0.0) << "reference never finished transfer " << i;
    ASSERT_GE(served[i], 0.0) << "link never served transfer " << i;
    EXPECT_NEAR(served[i], reference.finish[i], 1e-6 * std::max(1.0, reference.finish[i]))
        << "transfer " << i << " of " << n;
  }
  EXPECT_EQ(link.bytes_delivered(), total_bytes);
  EXPECT_NEAR(link.busy_time(), reference.busy, 1e-6 * std::max(1.0, reference.busy));
  EXPECT_EQ(link.active_transfers(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowLinkSharingProperty, ::testing::Range(1, 25));

// ---------------------------------------------------------------------------
// Determinism: identical seeds must replay identically, down to the
// telemetry trace.
// ---------------------------------------------------------------------------

struct DeterminismRun {
  std::uint64_t events_processed = 0;
  Seconds finished_at = 0.0;
  std::string trace;
};

DeterminismRun run_training_once(std::uint64_t seed) {
  DeterminismRun run;
  telemetry::enable();
  {
    sim::Simulator sim;
    topology::Cluster cluster(sim, topology::heter_testbed());
    runtime::AdapccConfig config;
    config.seed = seed;
    runtime::Adapcc adapcc(cluster, config);
    adapcc.init();
    adapcc.setup();
    for (int iter = 0; iter < 3; ++iter) {
      adapcc.allreduce(megabytes(16));
      adapcc.alltoall(megabytes(4));
    }
    run.events_processed = sim.events_processed();
    run.finished_at = sim.now();
    std::ostringstream trace;
    telemetry::write_chrome_trace(telemetry::get()->trace(), trace);
    run.trace = trace.str();
  }
  telemetry::disable();
  return run;
}

TEST(DeterminismProperty, SameSeedReplaysIdentically) {
  const DeterminismRun first = run_training_once(17);
  const DeterminismRun second = run_training_once(17);
  EXPECT_EQ(first.events_processed, second.events_processed);
  EXPECT_EQ(first.finished_at, second.finished_at);  // bit-for-bit, not nearly
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_GT(first.events_processed, 0u);
  EXPECT_FALSE(first.trace.empty());
}

}  // namespace
}  // namespace adapcc
