#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/edge_channel.h"
#include "sim/flow_link.h"
#include "sim/gpu_stream.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace adapcc {
namespace {

using sim::EdgeChannel;
using sim::FlowLink;
using sim::GpuStream;
using sim::Simulator;

TEST(SimulatorTest, FiresEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SimulatorTest, EqualTimestampsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_at(1.0, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CancelAfterFireIsNoop) {
  Simulator sim;
  const auto id = sim.schedule_at(1.0, [] {});
  sim.run();
  sim.cancel(id);  // must not crash or corrupt state
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(1.0, recurse);
  };
  sim.schedule_after(1.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  const auto n = sim.run_until(2.0);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_after(-1.0, [] {}), std::invalid_argument);
}

TEST(SimulatorTest, ScheduleCancelCyclesStayBounded) {
  // Regression for the tombstone design: 100k schedule/cancel cycles with at
  // most 8 events pending at a time must neither leave dead heap entries
  // behind nor grow the slot slab past the peak concurrency.
  Simulator sim;
  std::vector<sim::EventId> ids;
  for (int cycle = 0; cycle < 100000; ++cycle) {
    ids.push_back(sim.schedule_after(1.0 + cycle * 1e-6, [] {}));
    if (ids.size() == 8) {
      for (const sim::EventId id : ids) sim.cancel(id);
      ids.clear();
    }
  }
  for (const sim::EventId id : ids) sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.heap_size(), 0u);   // cancel removes entries in place
  EXPECT_LE(sim.slot_capacity(), 64u);  // one slot block, not 100k slots
  sim.run();
  EXPECT_EQ(sim.events_processed(), 0u);
}

TEST(SimulatorTest, RescheduleChurnLeavesNoResidue) {
  // reschedule() must move the one entry in place: heap size stays at the
  // pending count and the callback still fires exactly once, at the final
  // time, however many times it was moved.
  Simulator sim;
  int fired = 0;
  const sim::EventId id = sim.schedule_at(1.0, [&] { ++fired; });
  for (int i = 0; i < 100000; ++i) {
    ASSERT_TRUE(sim.reschedule(id, 1.0 + (i % 7) * 0.25));
    ASSERT_EQ(sim.pending_events(), 1u);
    ASSERT_EQ(sim.heap_size(), 1u);
  }
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0 + ((100000 - 1) % 7) * 0.25);
  EXPECT_FALSE(sim.reschedule(id, 99.0));  // already fired
  EXPECT_LE(sim.slot_capacity(), 64u);
}

TEST(SimulatorTest, TieShuffleSeedZeroKeepsFifoOrder) {
  Simulator sim;
  sim.set_tie_shuffle_seed(0);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SimulatorTest, TieShufflePermutesSameTimestampOrderDeterministically) {
  // The determinism harness (tools/determinism_check.py) relies on a nonzero
  // seed producing a reproducible but non-FIFO same-timestamp order, while
  // cross-timestamp order stays strictly chronological.
  const auto run_with_seed = [](std::uint64_t seed) {
    Simulator sim;
    sim.set_tie_shuffle_seed(seed);
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
      sim.schedule_at(2.0, [&order, i] { order.push_back(i); });
    }
    sim.schedule_at(1.0, [&order] { order.push_back(-1); });
    sim.schedule_at(3.0, [&order] { order.push_back(100); });
    sim.run();
    return order;
  };
  const std::vector<int> fifo = run_with_seed(0);
  const std::vector<int> shuffled = run_with_seed(0x9e3779b97f4a7c15ULL);
  ASSERT_EQ(shuffled.size(), 18u);
  EXPECT_EQ(shuffled.front(), -1);  // earlier timestamp still fires first
  EXPECT_EQ(shuffled.back(), 100);  // later timestamp still fires last
  // Same event set, different arrival order within the tie.
  std::vector<int> sorted_ties(shuffled.begin() + 1, shuffled.end() - 1);
  std::sort(sorted_ties.begin(), sorted_ties.end());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(sorted_ties[static_cast<std::size_t>(i)], i);
  EXPECT_NE(shuffled, fifo);
  // Reproducible: the same seed yields the identical order.
  EXPECT_EQ(run_with_seed(0x9e3779b97f4a7c15ULL), shuffled);
  EXPECT_EQ(sim::Simulator{}.tie_shuffle_seed(), 0u);  // default stays FIFO
}

// --- FlowLink -------------------------------------------------------------

TEST(FlowLinkTest, SoloTransferTakesAlphaPlusServiceTime) {
  Simulator sim;
  FlowLink link(sim, "l", microseconds(10), gBps(1));  // 1 GB/s
  Seconds done_at = -1;
  link.start_transfer(megabytes(100), [&] { done_at = sim.now(); });
  sim.run();
  // 100 MB at 1 GB/s = 0.1 s service + 10 us propagation.
  EXPECT_NEAR(done_at, 0.1 + 10e-6, 1e-9);
  EXPECT_EQ(link.bytes_delivered(), megabytes(100));
}

TEST(FlowLinkTest, ServedCallbackPrecedesDelivery) {
  Simulator sim;
  FlowLink link(sim, "l", microseconds(100), gBps(1));
  Seconds served_at = -1, delivered_at = -1;
  link.start_transfer(
      megabytes(1), [&] { delivered_at = sim.now(); }, [&] { served_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(served_at, 1e-3, 1e-9);
  EXPECT_NEAR(delivered_at, 1e-3 + 100e-6, 1e-9);
}

TEST(FlowLinkTest, ConcurrentTransfersShareBandwidthEqually) {
  Simulator sim;
  FlowLink link(sim, "l", 0.0, gBps(1));
  std::vector<Seconds> done;
  for (int i = 0; i < 2; ++i) {
    link.start_transfer(megabytes(100), [&] { done.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  // Both complete at 0.2 s (each gets 0.5 GB/s).
  EXPECT_NEAR(done[0], 0.2, 1e-9);
  EXPECT_NEAR(done[1], 0.2, 1e-9);
}

TEST(FlowLinkTest, LateJoinerSlowsFirstTransfer) {
  Simulator sim;
  FlowLink link(sim, "l", 0.0, gBps(1));
  Seconds first_done = -1, second_done = -1;
  link.start_transfer(megabytes(100), [&] { first_done = sim.now(); });
  sim.schedule_at(0.05, [&] {
    link.start_transfer(megabytes(100), [&] { second_done = sim.now(); });
  });
  sim.run();
  // First: 50 MB alone (0.05 s), then 50 MB at half rate (0.1 s) -> 0.15 s.
  EXPECT_NEAR(first_done, 0.15, 1e-9);
  // Second: 50 MB at half rate (0.1 s), then 50 MB alone (0.05 s) -> 0.2 s.
  EXPECT_NEAR(second_done, 0.2, 1e-9);
}

TEST(FlowLinkTest, CapacityChangeMidTransferRescalesRate) {
  Simulator sim;
  FlowLink link(sim, "l", 0.0, gBps(1));
  Seconds done = -1;
  link.start_transfer(megabytes(100), [&] { done = sim.now(); });
  // Raw FlowLink under test, no cluster shaper exists here. lint:chaos
  sim.schedule_at(0.05, [&] { link.set_capacity(gBps(0.5)); });
  sim.run();
  // 50 MB at 1 GB/s, then 50 MB at 0.5 GB/s -> 0.05 + 0.1 = 0.15 s.
  EXPECT_NEAR(done, 0.15, 1e-9);
}

TEST(FlowLinkTest, PerTransferCapLimitsSoloRate) {
  Simulator sim;
  // 100 Gbps link, 20 Gbps single-stream cap (the TCP model of Sec. VI-D).
  FlowLink link(sim, "tcp", 0.0, gbps(100), gbps(20));
  Seconds done = -1;
  link.start_transfer(megabytes(250), [&] { done = sim.now(); });
  sim.run();
  // 250 MB at 2.5 GB/s = 0.1 s (not 0.02 s).
  EXPECT_NEAR(done, 0.1, 1e-9);
}

TEST(FlowLinkTest, ManyStreamsSaturateCappedLink) {
  Simulator sim;
  FlowLink link(sim, "tcp", 0.0, gbps(100), gbps(20));
  int completed = 0;
  // 5 streams x 20 Gbps = the full 100 Gbps.
  for (int i = 0; i < 5; ++i) {
    link.start_transfer(megabytes(250), [&] { ++completed; });
  }
  sim.run();
  EXPECT_EQ(completed, 5);
  EXPECT_NEAR(sim.now(), 0.1, 1e-9);  // same 0.1 s as one capped stream
}

TEST(FlowLinkTest, ZeroByteTransferDeliversAfterLatency) {
  Simulator sim;
  FlowLink link(sim, "l", microseconds(7), gBps(1));
  Seconds done = -1;
  link.start_transfer(0, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 7e-6, 1e-12);
}

TEST(FlowLinkTest, StalledLinkResumesOnCapacityRestore) {
  Simulator sim;
  FlowLink link(sim, "l", 0.0, gBps(1));
  Seconds done = -1;
  link.start_transfer(megabytes(100), [&] { done = sim.now(); });
  // Raw FlowLink under test, no cluster shaper exists here. lint:chaos
  sim.schedule_at(0.05, [&] { link.set_capacity(1e-6); });  // outage
  sim.schedule_at(1.0, [&] { link.set_capacity(gBps(1)); });  // lint:chaos
  sim.run();
  // 50 MB before the outage, stalled until t=1, then 50 MB more.
  EXPECT_NEAR(done, 1.05, 1e-6);
}

TEST(FlowLinkTest, BusyTimeTracksActivity) {
  Simulator sim;
  FlowLink link(sim, "l", 0.0, gBps(1));
  link.start_transfer(megabytes(100), nullptr);
  sim.run();
  EXPECT_NEAR(link.busy_time(), 0.1, 1e-9);
}

// --- GpuStream --------------------------------------------------------------

TEST(FlowLinkTest, DueTransferCompletesDespiteClampWindowPokes) {
  // Regression pin, found by the ADAPCC_AUDIT byte-conservation checks: a
  // completion whose exact ETA underflows the kMinEta floor fires up to one
  // nanosecond after the true crossing. A link event landing inside that
  // window advances the service counter past the target; rescheduling used
  // to re-clamp the already-due transfer another kMinEta into the future,
  // adding a spurious nanosecond of in-flight time per poke. It must now
  // complete via a zero-delay event at the poke itself.
  Simulator sim;
  FlowLink link(sim, "l", 0.0, gBps(1));  // 1000 bytes -> crossing at 1 us
  Seconds done_at = -1;
  link.start_transfer(1000, [&] { done_at = sim.now(); });
  // Just before the crossing: remaining is 0.25 bytes, exact ETA 0.25 ns,
  // so the completion event is clamped to fire 1 ns out.
  sim.schedule_at(1e-6 - 0.25e-9, [&] { link.set_capacity(gBps(1)); });  // lint:chaos
  // Inside the clamp window, past the crossing: the counter is now beyond
  // the target. The poke must finish the transfer here, not postpone it.
  sim.schedule_at(1e-6 + 0.5e-9, [&] { link.set_capacity(gBps(1)); });  // lint:chaos
  sim.run();
  EXPECT_GE(done_at, 1e-6);
  EXPECT_LE(done_at, 1e-6 + 1e-9);
  EXPECT_EQ(link.bytes_delivered(), 1000u);
}

TEST(GpuStreamTest, OperationsSerialize) {
  Simulator sim;
  GpuStream stream(sim);
  std::vector<Seconds> completions;
  stream.enqueue(1.0, [&] { completions.push_back(sim.now()); });
  stream.enqueue(2.0, [&] { completions.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 3.0);
  EXPECT_DOUBLE_EQ(stream.total_busy(), 3.0);
}

TEST(GpuStreamTest, IdleStreamStartsOpsImmediately) {
  Simulator sim;
  GpuStream stream(sim);
  stream.enqueue(1.0, nullptr);
  sim.run();
  Seconds done = -1;
  stream.enqueue(0.5, [&] { done = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 1.5);
}

// --- EdgeChannel ------------------------------------------------------------

TEST(EdgeChannelTest, SingleChunkCrossesBothLinks) {
  Simulator sim;
  FlowLink egress(sim, "e", microseconds(4), gbps(100));
  FlowLink ingress(sim, "i", microseconds(4), gbps(100));
  EdgeChannel channel(sim, {&egress, &ingress});
  Seconds done = -1;
  channel.send(megabytes(125), [&] { done = sim.now(); });
  sim.run();
  // 125 MB at 12.5 GB/s = 10 ms per link, store-and-forward + 2x alpha.
  EXPECT_NEAR(done, 0.02 + 8e-6, 1e-8);
}

TEST(EdgeChannelTest, ChunksPipelineAcrossLinks) {
  Simulator sim;
  FlowLink egress(sim, "e", 0.0, gbps(100));
  FlowLink ingress(sim, "i", 0.0, gbps(100));
  EdgeChannel channel(sim, {&egress, &ingress});
  const int chunks = 10;
  int delivered = 0;
  for (int i = 0; i < chunks; ++i) {
    channel.send(megabytes(12.5), [&] { ++delivered; });
  }
  sim.run();
  EXPECT_EQ(delivered, chunks);
  // Each chunk: 1 ms per link. Pipelined: (chunks + 1) * 1 ms, far below the
  // store-and-forward bound of chunks * 2 ms.
  EXPECT_NEAR(sim.now(), (chunks + 1) * 1e-3, 1e-6);
}

TEST(EdgeChannelTest, LatencyIsHiddenByPipelining) {
  Simulator sim;
  // High-latency link: with serialization-only occupancy the alphas of
  // successive chunks overlap.
  FlowLink link(sim, "l", milliseconds(1), gbps(100));
  EdgeChannel channel(sim, {&link});
  const int chunks = 20;
  int delivered = 0;
  for (int i = 0; i < chunks; ++i) {
    channel.send(megabytes(12.5), [&] { ++delivered; });
  }
  sim.run();
  EXPECT_EQ(delivered, chunks);
  // Serialization: 20 x 1 ms service + one final 1 ms propagation,
  // NOT 20 x (1 ms + 1 ms).
  EXPECT_NEAR(sim.now(), chunks * 1e-3 + 1e-3, 1e-6);
}

TEST(EdgeChannelTest, DeliveriesPreserveFifoOrder) {
  Simulator sim;
  FlowLink a(sim, "a", microseconds(5), gbps(50));
  FlowLink b(sim, "b", microseconds(5), gbps(100));
  EdgeChannel channel(sim, {&a, &b});
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    channel.send(1_MiB, [&order, i] { order.push_back(i); });
  }
  sim.run();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EdgeChannelTest, PipelinedTransferHelperCompletes) {
  Simulator sim;
  FlowLink link(sim, "l", 0.0, gBps(1));
  bool done = false;
  sim::pipelined_transfer(sim, {&link}, megabytes(100), megabytes(10), [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(sim.now(), 0.1, 1e-9);
}

TEST(EdgeChannelTest, ZeroByteTransferCompletes) {
  Simulator sim;
  FlowLink link(sim, "l", 0.0, gBps(1));
  bool done = false;
  sim::pipelined_transfer(sim, {&link}, 0, 1_MiB, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(EdgeChannelTest, TwoChannelsOnOneLinkShareBandwidth) {
  Simulator sim;
  FlowLink link(sim, "l", 0.0, gBps(1));
  EdgeChannel c1(sim, {&link});
  EdgeChannel c2(sim, {&link});
  Seconds done1 = -1, done2 = -1;
  c1.send(megabytes(100), [&] { done1 = sim.now(); });
  c2.send(megabytes(100), [&] { done2 = sim.now(); });
  sim.run();
  EXPECT_NEAR(done1, 0.2, 1e-9);
  EXPECT_NEAR(done2, 0.2, 1e-9);
}

}  // namespace
}  // namespace adapcc
