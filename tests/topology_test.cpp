#include <gtest/gtest.h>

#include <set>

#include "sim/simulator.h"
#include "topology/cluster.h"
#include "topology/detector.h"
#include "topology/hardware.h"
#include "topology/logical_topology.h"
#include "topology/node.h"
#include "topology/testbeds.h"
#include "util/rng.h"

namespace adapcc {
namespace {

using topology::Cluster;
using topology::DetectionResult;
using topology::Detector;
using topology::EdgeType;
using topology::GpuKind;
using topology::InstanceSpec;
using topology::LogicalTopology;
using topology::NodeId;

TEST(Hardware, ComputeScaleOrdering) {
  EXPECT_GT(topology::compute_scale(GpuKind::kA100), topology::compute_scale(GpuKind::kV100));
  EXPECT_GT(topology::compute_scale(GpuKind::kH100), topology::compute_scale(GpuKind::kA100));
}

TEST(Hardware, NvlinkGenerationsDiffer) {
  // NVLink4.0 on H100 is ~10x NVLink1.0 (Sec. II-A).
  EXPECT_GT(topology::nvlink_bandwidth(GpuKind::kH100),
            9 * topology::nvlink_bandwidth(GpuKind::kM40));
}

TEST(InstanceSpecTest, DefaultSwitchAssignmentPairsGpus) {
  const InstanceSpec spec = topology::a100_server("s0");
  EXPECT_EQ(spec.pcie_switch_count(), 2);
  EXPECT_EQ(spec.switch_of_gpu(0), 0);
  EXPECT_EQ(spec.switch_of_gpu(1), 0);
  EXPECT_EQ(spec.switch_of_gpu(2), 1);
  EXPECT_EQ(spec.switch_of_gpu(3), 1);
  EXPECT_THROW(spec.switch_of_gpu(4), std::out_of_range);
}

TEST(InstanceSpecTest, FragmentedNvlinkWiring) {
  const InstanceSpec spec = topology::fragmented_a100_server("s0");
  EXPECT_TRUE(spec.nvlink_connected(0, 1));
  EXPECT_TRUE(spec.nvlink_connected(1, 0));
  EXPECT_TRUE(spec.nvlink_connected(2, 3));
  EXPECT_FALSE(spec.nvlink_connected(1, 2));
  EXPECT_FALSE(spec.nvlink_connected(0, 3));
  EXPECT_FALSE(spec.nvlink_connected(0, 0));
}

TEST(ClusterTest, RankMappingOnPaperTestbed) {
  sim::Simulator sim;
  Cluster cluster(sim, topology::paper_testbed());
  EXPECT_EQ(cluster.instance_count(), 6);
  EXPECT_EQ(cluster.world_size(), 24);
  EXPECT_EQ(cluster.instance_of_rank(0), 0);
  EXPECT_EQ(cluster.instance_of_rank(15), 3);
  EXPECT_EQ(cluster.instance_of_rank(16), 4);  // first V100 server
  EXPECT_EQ(cluster.local_index(17), 1);
  EXPECT_EQ(cluster.gpu_kind(0), GpuKind::kA100);
  EXPECT_EQ(cluster.gpu_kind(23), GpuKind::kV100);
  EXPECT_EQ(cluster.ranks_on_instance(5), (std::vector<int>{20, 21, 22, 23}));
  EXPECT_THROW(cluster.instance_of_rank(24), std::out_of_range);
}

TEST(ClusterTest, EdgeExistenceRules) {
  sim::Simulator sim;
  Cluster cluster(sim, topology::heter_testbed());
  // Same-instance GPUs are connected; cross-instance GPU pairs get the
  // composite network edge (staging through both NICs).
  EXPECT_TRUE(cluster.has_edge(NodeId::gpu(0), NodeId::gpu(1)));
  EXPECT_TRUE(cluster.has_edge(NodeId::gpu(0), NodeId::gpu(4)));
  EXPECT_EQ(cluster.edge_type(NodeId::gpu(0), NodeId::gpu(4)), EdgeType::kNetwork);
  // The composite path crosses both NICs and the PCIe staging links.
  EXPECT_EQ(cluster.edge_path(NodeId::gpu(0), NodeId::gpu(4)).size(), 4u);
  // GPU to its own NIC only.
  EXPECT_TRUE(cluster.has_edge(NodeId::gpu(0), NodeId::nic(0)));
  EXPECT_FALSE(cluster.has_edge(NodeId::gpu(0), NodeId::nic(1)));
  // NIC full mesh, no self loops.
  EXPECT_TRUE(cluster.has_edge(NodeId::nic(0), NodeId::nic(3)));
  EXPECT_FALSE(cluster.has_edge(NodeId::nic(2), NodeId::nic(2)));
  EXPECT_FALSE(cluster.has_edge(NodeId::gpu(3), NodeId::gpu(3)));
}

TEST(ClusterTest, EdgeTypesMatchWiring) {
  sim::Simulator sim;
  std::vector<InstanceSpec> specs{topology::fragmented_a100_server("s0"),
                                  topology::a100_server("s1")};
  Cluster cluster(sim, std::move(specs));
  EXPECT_EQ(cluster.edge_type(NodeId::gpu(0), NodeId::gpu(1)), EdgeType::kNvlink);
  EXPECT_EQ(cluster.edge_type(NodeId::gpu(1), NodeId::gpu(2)), EdgeType::kPcie);
  EXPECT_EQ(cluster.edge_type(NodeId::gpu(0), NodeId::nic(0)), EdgeType::kPcie);
  EXPECT_EQ(cluster.edge_type(NodeId::nic(0), NodeId::nic(1)), EdgeType::kNetwork);
}

TEST(ClusterTest, GroundTruthBandwidths) {
  sim::Simulator sim;
  Cluster cluster(sim, topology::paper_testbed());
  // NVLink on A100 servers.
  EXPECT_DOUBLE_EQ(cluster.true_bandwidth(NodeId::gpu(0), NodeId::gpu(1)),
                   topology::nvlink_bandwidth(GpuKind::kA100));
  // Network edge A100->V100 bottlenecked by the 50 Gbps NIC.
  EXPECT_DOUBLE_EQ(cluster.true_bandwidth(NodeId::nic(0), NodeId::nic(4)), gbps(50));
  // A100<->A100 gets the full 100 Gbps.
  EXPECT_DOUBLE_EQ(cluster.true_bandwidth(NodeId::nic(0), NodeId::nic(1)), gbps(100));
}

TEST(ClusterTest, TcpPerStreamCapAppearsInPath) {
  sim::Simulator sim;
  Cluster cluster(sim, topology::homo_testbed(topology::NetworkStack::kTcp));
  EXPECT_DOUBLE_EQ(cluster.true_bandwidth(NodeId::nic(0), NodeId::nic(1)), gbps(20));
}

TEST(ClusterTest, NicShapingAffectsCapacity) {
  sim::Simulator sim;
  Cluster cluster(sim, topology::homo_testbed());
  EXPECT_DOUBLE_EQ(cluster.nic_capacity(0), gbps(100));
  cluster.set_nic_capacity_fraction(0, 0.66);
  EXPECT_DOUBLE_EQ(cluster.nic_capacity(0), gbps(66));
  cluster.set_nic_capacity_fraction(0, 1.0);
  EXPECT_DOUBLE_EQ(cluster.nic_capacity(0), gbps(100));
  EXPECT_THROW(cluster.set_nic_capacity_fraction(0, 0.0), std::invalid_argument);
}

TEST(ClusterTest, AllEdgesConsistentWithHasEdge) {
  sim::Simulator sim;
  Cluster cluster(sim, topology::heter_testbed());
  const auto edges = cluster.all_edges();
  for (const auto& [a, b] : edges) EXPECT_TRUE(cluster.has_edge(a, b));
  // 4 instances x (4x3 intra GPU pairs + 4x2 GPU-NIC) + 4x3 NIC mesh
  // + 16x12 composite cross-instance GPU pairs.
  EXPECT_EQ(edges.size(), 4u * 12 + 4u * 8 + 12 + 16u * 12);
}

// --- Detector ---------------------------------------------------------------

class DetectorTest : public ::testing::Test {
 protected:
  DetectionResult detect(std::vector<InstanceSpec> specs) {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<Cluster>(*sim_, std::move(specs));
    Detector detector(*cluster_, util::Rng(123));
    return detector.detect();
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(DetectorTest, RecoversNicNumaAffinity) {
  const auto result = detect(topology::paper_testbed());
  for (const auto& inst : result.instances) {
    EXPECT_EQ(inst.nic_numa_node, cluster_->instance(inst.instance).nic.numa_node)
        << "instance " << inst.instance;
  }
}

TEST_F(DetectorTest, RecoversPcieSwitchGroups) {
  const auto result = detect(topology::heter_testbed());
  for (const auto& inst : result.instances) {
    const auto& spec = cluster_->instance(inst.instance);
    for (int a = 0; a < spec.gpu_count; ++a) {
      for (int b = 0; b < spec.gpu_count; ++b) {
        const bool same_detected = inst.switch_group_of[static_cast<std::size_t>(a)] ==
                                   inst.switch_group_of[static_cast<std::size_t>(b)];
        const bool same_truth = spec.switch_of_gpu(a) == spec.switch_of_gpu(b);
        EXPECT_EQ(same_detected, same_truth)
            << "instance " << inst.instance << " pair " << a << "," << b;
      }
    }
  }
}

TEST_F(DetectorTest, RecoversNicLocality) {
  const auto result = detect(topology::paper_testbed());
  for (const auto& inst : result.instances) {
    const auto& spec = cluster_->instance(inst.instance);
    // The detected NIC group must be the group of a GPU on the NIC's switch.
    int expected_group = -1;
    for (int g = 0; g < spec.gpu_count; ++g) {
      if (spec.switch_of_gpu(g) == spec.nic_pcie_switch) {
        expected_group = inst.switch_group_of[static_cast<std::size_t>(g)];
        break;
      }
    }
    EXPECT_EQ(inst.nic_switch_group, expected_group) << "instance " << inst.instance;
  }
}

TEST_F(DetectorTest, RecoversNvlinkAdjacency) {
  std::vector<InstanceSpec> specs{topology::fragmented_a100_server("frag"),
                                  topology::a100_server("full")};
  const auto result = detect(std::move(specs));
  // Fragmented server: only (0,1) and (2,3) wired.
  const auto& frag = result.instances[0];
  EXPECT_TRUE(frag.nvlink[0][1]);
  EXPECT_TRUE(frag.nvlink[2][3]);
  EXPECT_FALSE(frag.nvlink[1][2]);
  EXPECT_FALSE(frag.nvlink[0][3]);
  // Full server: everything wired.
  const auto& full = result.instances[1];
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a != b) {
        EXPECT_TRUE(full.nvlink[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]);
      }
    }
  }
}

TEST_F(DetectorTest, DetectionTimeIsSubSecondPerInstance) {
  const auto result = detect(topology::homo_testbed());
  // The paper reports ~1.2 s for topology inference, constant in job scale
  // because instances probe concurrently.
  EXPECT_GT(result.total_time, 0.0);
  EXPECT_LT(result.total_time, 5.0);
}

TEST_F(DetectorTest, LogicalTopologyHasAllNodes) {
  const auto result = detect(topology::heter_testbed());
  const LogicalTopology topo = Detector::build_logical_topology(*cluster_, result);
  EXPECT_EQ(topo.gpu_nodes().size(), 16u);
  EXPECT_EQ(topo.nic_nodes().size(), 4u);
  // NVLink edges detected on a fully wired server.
  EXPECT_EQ(topo.edge(NodeId::gpu(0), NodeId::gpu(1)).type, EdgeType::kNvlink);
  // NIC mesh present.
  EXPECT_TRUE(topo.has_edge(NodeId::nic(0), NodeId::nic(3)));
  EXPECT_FALSE(topo.has_edge(NodeId::nic(1), NodeId::nic(1)));
  // Cross-instance GPU pairs have composite network edges.
  EXPECT_TRUE(topo.has_edge(NodeId::gpu(0), NodeId::gpu(4)));
  EXPECT_EQ(topo.edge(NodeId::gpu(0), NodeId::gpu(4)).type, EdgeType::kNetwork);
}

TEST(LogicalTopologyTest, RejectsDuplicateEdges) {
  LogicalTopology topo;
  topo.add_edge({NodeId::gpu(0), NodeId::gpu(1), EdgeType::kNvlink});
  EXPECT_THROW(topo.add_edge({NodeId::gpu(0), NodeId::gpu(1), EdgeType::kPcie}),
               std::invalid_argument);
}

TEST(LogicalTopologyTest, EdgeCostModel) {
  topology::LogicalEdge edge;
  edge.alpha = microseconds(10);
  edge.beta = 1.0 / gbps(100);
  EXPECT_NEAR(edge.transfer_time(megabytes(125)), 10e-6 + 0.01, 1e-9);
  EXPECT_NEAR(edge.bandwidth(), gbps(100), 1e-3);
}

TEST(LogicalTopologyTest, OutAndInEdges) {
  LogicalTopology topo;
  topo.add_edge({NodeId::gpu(0), NodeId::gpu(1), EdgeType::kNvlink});
  topo.add_edge({NodeId::gpu(0), NodeId::gpu(2), EdgeType::kNvlink});
  topo.add_edge({NodeId::gpu(1), NodeId::gpu(0), EdgeType::kNvlink});
  EXPECT_EQ(topo.out_edges(NodeId::gpu(0)).size(), 2u);
  EXPECT_EQ(topo.in_edges(NodeId::gpu(0)).size(), 1u);
  EXPECT_EQ(topo.nodes().size(), 3u);
}

}  // namespace
}  // namespace adapcc
