#include <gtest/gtest.h>

#include <memory>

#include "collective/builders.h"
#include "collective/executor.h"
#include "profiler/profiler.h"
#include "synthesizer/cost_model.h"
#include "synthesizer/synthesizer.h"
#include "topology/detector.h"
#include "topology/testbeds.h"
#include "util/rng.h"

namespace adapcc {
namespace {

using collective::chain_tree;
using collective::Primitive;
using collective::Strategy;
using collective::SubCollective;
using collective::Tree;
using synthesizer::compute_link_loads;
using synthesizer::EdgeKey;
using synthesizer::estimate_completion_time;
using synthesizer::Synthesizer;
using topology::NodeId;

class SynthesizerTest : public ::testing::Test {
 protected:
  void build(std::vector<topology::InstanceSpec> specs) {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, std::move(specs));
    topology::Detector detector(*cluster_, util::Rng(3));
    topo_ = topology::Detector::build_logical_topology(*cluster_, detector.detect());
    profiler::Profiler profiler(*cluster_);
    profiler.profile(topo_);
  }

  std::vector<int> all_ranks() const {
    std::vector<int> ranks;
    for (int r = 0; r < cluster_->world_size(); ++r) ranks.push_back(r);
    return ranks;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
  topology::LogicalTopology topo_;
};

// --- cost model ---------------------------------------------------------------

TEST_F(SynthesizerTest, LinkLoadsAggregatedReduceIsOnePerEdge) {
  build({topology::a100_server("s0")});
  Strategy strategy = collective::single_tree_strategy(
      Primitive::kReduce, {0, 1, 2, 3},
      chain_tree({NodeId::gpu(3), NodeId::gpu(2), NodeId::gpu(1), NodeId::gpu(0)}), 4_MiB);
  const auto loads = compute_link_loads(strategy, {0, 1, 2, 3});
  for (const auto& [edge, load] : loads) EXPECT_DOUBLE_EQ(load, 1.0);
  EXPECT_EQ(loads.size(), 3u);
}

TEST_F(SynthesizerTest, LinkLoadsWithoutAggregationAccumulate) {
  build({topology::a100_server("s0")});
  Strategy strategy = collective::single_tree_strategy(
      Primitive::kReduce, {0, 1, 2, 3},
      chain_tree({NodeId::gpu(3), NodeId::gpu(2), NodeId::gpu(1), NodeId::gpu(0)}), 4_MiB);
  // Disable aggregation everywhere except the root: flows pile up.
  strategy.subs[0].aggregate_at[NodeId::gpu(1)] = false;
  strategy.subs[0].aggregate_at[NodeId::gpu(2)] = false;
  const auto loads = compute_link_loads(strategy, {0, 1, 2, 3});
  EXPECT_DOUBLE_EQ(loads.at(EdgeKey{NodeId::gpu(3), NodeId::gpu(2)}), 1.0);
  EXPECT_DOUBLE_EQ(loads.at(EdgeKey{NodeId::gpu(2), NodeId::gpu(1)}), 2.0);
  EXPECT_DOUBLE_EQ(loads.at(EdgeKey{NodeId::gpu(1), NodeId::gpu(0)}), 3.0);
}

TEST_F(SynthesizerTest, InactiveSubtreeCarriesNoLoad) {
  build({topology::a100_server("s0")});
  Strategy strategy = collective::single_tree_strategy(
      Primitive::kReduce, {0, 1, 2, 3},
      chain_tree({NodeId::gpu(3), NodeId::gpu(2), NodeId::gpu(1), NodeId::gpu(0)}), 4_MiB);
  const auto loads = compute_link_loads(strategy, {0, 1, 2});  // rank 3 inactive
  EXPECT_FALSE(loads.contains(EdgeKey{NodeId::gpu(3), NodeId::gpu(2)}));
  EXPECT_TRUE(loads.contains(EdgeKey{NodeId::gpu(2), NodeId::gpu(1)}));
}

TEST_F(SynthesizerTest, CostGrowsWithTensorSize) {
  build(topology::homo_testbed());
  Synthesizer synth(*cluster_, topo_);
  const auto strategy = synth.synthesize(Primitive::kAllReduce, all_ranks(), megabytes(256));
  const Seconds small = estimate_completion_time(strategy, topo_, megabytes(64), {});
  const Seconds large = estimate_completion_time(strategy, topo_, megabytes(256), {});
  EXPECT_GT(large, 2.0 * small);
}

TEST_F(SynthesizerTest, CostModelRejectsUnprofiledTopology) {
  build({topology::a100_server("s0")});
  topology::LogicalTopology empty_topo;
  empty_topo.add_edge({NodeId::gpu(0), NodeId::gpu(1), topology::EdgeType::kNvlink});
  Strategy strategy = collective::single_tree_strategy(
      Primitive::kReduce, {0, 1}, chain_tree({NodeId::gpu(1), NodeId::gpu(0)}), 4_MiB);
  EXPECT_THROW(estimate_completion_time(strategy, empty_topo, megabytes(16), {}),
               std::invalid_argument);
}

TEST_F(SynthesizerTest, AggregateBandwidthSumsUsedEdges) {
  build({topology::a100_server("s0")});
  Strategy strategy = collective::single_tree_strategy(
      Primitive::kReduce, {0, 1}, chain_tree({NodeId::gpu(1), NodeId::gpu(0)}), 4_MiB);
  const auto bw = synthesizer::aggregate_bandwidth(strategy, topo_);
  // One NVLink edge, ~300 GB/s.
  EXPECT_NEAR(bw, topology::nvlink_bandwidth(topology::GpuKind::kA100), 0.1 * gBps(300));
}

// --- synthesizer ---------------------------------------------------------------

TEST_F(SynthesizerTest, ProducesValidStrategyOnPaperTestbed) {
  build(topology::paper_testbed());
  Synthesizer synth(*cluster_, topo_);
  const auto strategy = synth.synthesize(Primitive::kAllReduce, all_ranks(), megabytes(256));
  // The S_m are decision variables: between 1 (collapsed) and M = 4 subs.
  ASSERT_GE(strategy.subs.size(), 1u);
  ASSERT_LE(strategy.subs.size(), 4u);
  EXPECT_NO_THROW(strategy.validate(topo_));
  EXPECT_GT(synth.last_report().candidates_evaluated, 10);
  EXPECT_GT(synth.last_report().solve_time_seconds, 0.0);
}

TEST_F(SynthesizerTest, RootAvoidsSlowNicOnHeterogeneousCluster) {
  build(topology::paper_testbed());
  Synthesizer synth(*cluster_, topo_);
  const auto strategy = synth.synthesize(Primitive::kReduce, all_ranks(), megabytes(256));
  for (const auto& sub : strategy.subs) {
    // The root must live on an A100 (100 Gbps) server: instances 0-3.
    ASSERT_TRUE(sub.tree.root.is_gpu());
    EXPECT_LT(cluster_->instance_of_rank(sub.tree.root.index), 4)
        << "root " << to_string(sub.tree.root) << " is on a V100 server";
  }
}

TEST_F(SynthesizerTest, RotatedRootsSpreadLoadAcrossSubs) {
  build(topology::homo_testbed());
  Synthesizer synth(*cluster_, topo_);
  const auto strategy = synth.synthesize(Primitive::kAllReduce, all_ranks(), megabytes(256));
  std::set<NodeId> roots;
  for (const auto& sub : strategy.subs) roots.insert(sub.tree.root);
  // On a homogeneous cluster the synthesizer should not funnel all four
  // sub-collectives through one root NIC.
  EXPECT_GT(roots.size(), 1u);
}

TEST_F(SynthesizerTest, ModelCostBeatsOrMatchesNaiveChain) {
  build(topology::paper_testbed());
  Synthesizer synth(*cluster_, topo_);
  const auto ranks = all_ranks();
  const auto strategy = synth.synthesize(Primitive::kReduce, ranks, megabytes(256));
  const Seconds synthesized = estimate_completion_time(strategy, topo_, megabytes(256), {});

  // Naive: one long chain threading every GPU and NIC in index order.
  std::vector<NodeId> order;
  for (int inst = cluster_->instance_count() - 1; inst >= 0; --inst) {
    for (const int rank : cluster_->ranks_on_instance(inst)) order.push_back(NodeId::gpu(rank));
    order.push_back(NodeId::nic(inst));
  }
  // Chain as gpu...->nic->gpu... is invalid (nic->gpu cross-instance edges
  // don't exist), so compare against the synthesizer's own single-tree
  // candidate instead: worst candidate must not beat the chosen one.
  Strategy single;
  single.primitive = Primitive::kReduce;
  single.participants = ranks;
  SubCollective sub;
  sub.fraction = 1.0;
  sub.chunk_bytes = strategy.subs[0].chunk_bytes;
  sub.tree = strategy.subs[0].tree;
  single.subs.push_back(std::move(sub));
  const Seconds single_cost = estimate_completion_time(single, topo_, megabytes(256), {});
  EXPECT_LE(synthesized, single_cost * 1.05);
}

TEST_F(SynthesizerTest, AllToAllStrategyCoversAllPairs) {
  build(topology::heter_testbed());
  Synthesizer synth(*cluster_, topo_);
  const auto ranks = all_ranks();
  const auto strategy = synth.synthesize(Primitive::kAllToAll, ranks, megabytes(256));
  ASSERT_FALSE(strategy.subs.empty());
  const std::size_t pairs = ranks.size() * (ranks.size() - 1);
  for (const auto& sub : strategy.subs) EXPECT_EQ(sub.flows.size(), pairs);
  EXPECT_NO_THROW(strategy.validate(topo_));
}

TEST_F(SynthesizerTest, SynthesizedStrategyExecutesCorrectly) {
  build(topology::heter_testbed());
  Synthesizer synth(*cluster_, topo_);
  const auto ranks = all_ranks();
  const auto strategy = synth.synthesize(Primitive::kAllReduce, ranks, megabytes(64));
  collective::Executor executor(*cluster_, strategy);
  const auto result = executor.run(megabytes(64));
  // Every rank ends with the full sum for every sub's chunk 0.
  double expected0 = 0.0;
  for (const int rank : ranks) expected0 += collective::payload_value(rank, 0, 0);
  for (const int rank : ranks) {
    ASSERT_TRUE(result.delivered.contains(rank)) << rank;
    EXPECT_DOUBLE_EQ(result.delivered.at(rank)[0][0], expected0) << rank;
  }
}

TEST_F(SynthesizerTest, ChunkSizeRespondsToLatency) {
  build(topology::homo_testbed());
  // With everything else equal, a strategy synthesized for a small tensor
  // should not pick a chunk size larger than the tensor itself demands.
  Synthesizer synth(*cluster_, topo_);
  const auto small = synth.synthesize(Primitive::kAllReduce, all_ranks(), megabytes(8));
  const auto large = synth.synthesize(Primitive::kAllReduce, all_ranks(), megabytes(512));
  EXPECT_LE(small.subs[0].chunk_bytes, large.subs[0].chunk_bytes);
}

TEST_F(SynthesizerTest, SubsetParticipantsSupported) {
  build(topology::paper_testbed());
  Synthesizer synth(*cluster_, topo_);
  // 2 GPUs per A100 server, none on V100 servers (the paper's Fig. 11 cases
  // include such subsets).
  std::vector<int> subset;
  for (int inst = 0; inst < 4; ++inst) {
    const auto ranks = cluster_->ranks_on_instance(inst);
    subset.push_back(ranks[0]);
    subset.push_back(ranks[1]);
  }
  const auto strategy = synth.synthesize(Primitive::kReduce, subset, megabytes(256));
  EXPECT_NO_THROW(strategy.validate(topo_));
  for (const auto& sub : strategy.subs) {
    for (const int rank : subset) EXPECT_TRUE(sub.tree.contains(NodeId::gpu(rank)));
  }
}

// --- incremental cost evaluator ----------------------------------------------

TEST_F(SynthesizerTest, CostEvaluatorMatchesOneShotEstimate) {
  build(topology::heter_testbed());
  Synthesizer synth(*cluster_, topo_);
  const auto ranks = all_ranks();
  for (const auto primitive : {Primitive::kAllReduce, Primitive::kReduce, Primitive::kBroadcast,
                               Primitive::kAllGather, Primitive::kAllToAll}) {
    const auto strategy = synth.synthesize(primitive, ranks, megabytes(256));
    synthesizer::CostEvaluator evaluator(strategy, topo_, megabytes(256), {});
    EXPECT_EQ(evaluator.completion_time(),
              estimate_completion_time(strategy, topo_, megabytes(256), {}))
        << static_cast<int>(primitive);
  }
}

TEST_F(SynthesizerTest, CostEvaluatorTracksChunkMutations) {
  build(topology::heter_testbed());
  Synthesizer synth(*cluster_, topo_);
  auto strategy = synth.synthesize(Primitive::kAllReduce, all_ranks(), megabytes(256));
  synthesizer::CostEvaluator evaluator(strategy, topo_, megabytes(256), {});
  for (const Bytes chunk : {512_KiB, 1_MiB, 4_MiB, 16_MiB, 64_MiB}) {
    for (auto& sub : strategy.subs) sub.chunk_bytes = chunk;
    ASSERT_EQ(evaluator.completion_time(),
              estimate_completion_time(strategy, topo_, megabytes(256), {}))
        << chunk;
  }
}

TEST_F(SynthesizerTest, CostEvaluatorIncrementalTogglesMatchFreshRebuild) {
  build(topology::heter_testbed());
  Synthesizer synth(*cluster_, topo_);
  auto strategy = synth.synthesize(Primitive::kAllReduce, all_ranks(), megabytes(256));
  synthesizer::CostEvaluator evaluator(strategy, topo_, megabytes(256), {});

  // Collect the togglable nodes (interior non-root GPUs — the same set the
  // synthesizer's aggregation search walks) and flip a random sequence of
  // them, checking after every flip that the incrementally maintained state
  // still reproduces a from-scratch evaluation bit for bit.
  std::vector<std::pair<std::size_t, NodeId>> togglable;
  for (std::size_t si = 0; si < strategy.subs.size(); ++si) {
    const auto& sub = strategy.subs[si];
    for (const NodeId node : sub.tree.nodes()) {
      if (!node.is_gpu() || node == sub.tree.root) continue;
      if (sub.tree.children_of(node).empty()) continue;
      togglable.emplace_back(si, node);
    }
  }
  ASSERT_FALSE(togglable.empty());

  util::Rng rng(2024);
  for (int step = 0; step < 50; ++step) {
    const auto& [si, node] = togglable[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(togglable.size()) - 1))];
    auto& sub = strategy.subs[si];
    sub.aggregate_at[node] = !sub.aggregates_at(node, strategy.primitive);
    evaluator.on_aggregation_toggled(si, node);
    ASSERT_EQ(evaluator.completion_time(),
              estimate_completion_time(strategy, topo_, megabytes(256), {}))
        << "step " << step;
  }
}

TEST_F(SynthesizerTest, CostEvaluatorHonorsActiveSubset) {
  build(topology::heter_testbed());
  Synthesizer synth(*cluster_, topo_);
  auto strategy = synth.synthesize(Primitive::kReduce, all_ranks(), megabytes(64));
  // Deactivate a couple of ranks: subtrees rooted at inactive nodes carry no
  // load and their (possibly unprofiled) edges must never be touched.
  std::set<int> active;
  for (const int rank : all_ranks())
    if (rank != 3 && rank != 7) active.insert(rank);
  synthesizer::CostEvaluator evaluator(strategy, topo_, megabytes(64), active);
  EXPECT_EQ(evaluator.completion_time(),
            estimate_completion_time(strategy, topo_, megabytes(64), active));
  EXPECT_EQ(evaluator.link_loads(), compute_link_loads(strategy, active));
}

// --- deterministic parallel search -------------------------------------------

// The tentpole guarantee (DESIGN.md §10): the multi-threaded candidate
// search must pick the bit-identical strategy — same graph, same chunk,
// same model cost, same number of candidates charged — as the serial loop,
// on every topology shape we ship.
TEST_F(SynthesizerTest, ParallelSearchIsBitIdenticalToSerial) {
  const std::vector<std::pair<const char*, std::vector<topology::InstanceSpec>>> testbeds = {
      {"paper", topology::paper_testbed()},
      {"homo", topology::homo_testbed()},
      {"heter", topology::heter_testbed()},
      {"fragmented", {topology::interleaved_a100_server("frag")}},
      {"fleet16", topology::a100_fleet(4)},
  };
  for (const auto& [name, specs] : testbeds) {
    build(specs);
    for (const Primitive primitive :
         {Primitive::kAllReduce, Primitive::kReduce, Primitive::kAllToAll}) {
      synthesizer::SynthesizerConfig serial_config;
      serial_config.solver_threads = 1;
      Synthesizer serial(*cluster_, topo_, serial_config);
      const Strategy want = serial.synthesize(primitive, all_ranks(), megabytes(64));
      const synthesizer::SynthesisReport want_report = serial.last_report();
      ASSERT_EQ(serial.solver_thread_count(), 1);

      synthesizer::SynthesizerConfig parallel_config;
      parallel_config.solver_threads = 8;
      Synthesizer parallel(*cluster_, topo_, parallel_config);
      const Strategy got = parallel.synthesize(primitive, all_ranks(), megabytes(64));
      ASSERT_EQ(parallel.solver_thread_count(), 8);

      EXPECT_EQ(got.fingerprint(), want.fingerprint())
          << name << " primitive=" << static_cast<int>(primitive);
      ASSERT_EQ(got.subs.size(), want.subs.size());
      for (std::size_t s = 0; s < got.subs.size(); ++s) {
        EXPECT_EQ(got.subs[s].chunk_bytes, want.subs[s].chunk_bytes) << name << " sub " << s;
      }
      EXPECT_EQ(parallel.last_report().model_cost, want_report.model_cost) << name;
      EXPECT_EQ(parallel.last_report().candidates_evaluated, want_report.candidates_evaluated)
          << name << " primitive=" << static_cast<int>(primitive);
    }
  }
}

}  // namespace
}  // namespace adapcc
