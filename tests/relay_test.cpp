#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "collective/builders.h"
#include "collective/payload.h"
#include "profiler/profiler.h"
#include "relay/control_inbox.h"
#include "relay/coordinator.h"
#include "relay/data_loader.h"
#include "relay/relay_collective.h"
#include "relay/rpc.h"
#include "relay/ski_rental.h"
#include "topology/detector.h"
#include "topology/testbeds.h"
#include "util/rng.h"
#include "util/stats.h"

namespace adapcc {
namespace {

using collective::Primitive;
using collective::Strategy;
using relay::Coordinator;
using relay::CoordinatorConfig;
using relay::DataLoader;
using relay::RelayCollectiveRunner;
using relay::SkiRentalPolicy;
using topology::NodeId;

TEST(SkiRental, BreakEvenRule) {
  EXPECT_EQ(SkiRentalPolicy::decide(0.0, 0.1), SkiRentalPolicy::Choice::kWait);
  EXPECT_EQ(SkiRentalPolicy::decide(0.1, 0.1), SkiRentalPolicy::Choice::kProceed);
  EXPECT_EQ(SkiRentalPolicy::decide(0.2, 0.1), SkiRentalPolicy::Choice::kProceed);
}

TEST(SkiRental, TwoCompetitiveBound) {
  // The break-even policy pays at most 2x the offline optimum: for any
  // straggler arrival time T and buy cost B, cost(policy) <= 2 * min(T, B).
  for (const double straggler : {0.001, 0.02, 0.05, 0.2, 1.0}) {
    for (const double buy : {0.01, 0.05, 0.1, 0.5}) {
      // Policy: waits until min(straggler, buy), then either finishes the
      // wait (all ready) or buys.
      const double policy_cost = straggler <= buy ? straggler : buy + buy;
      const double optimum = std::min(straggler, buy);
      EXPECT_LE(policy_cost, 2.0 * optimum + 1e-12)
          << "straggler=" << straggler << " buy=" << buy;
    }
  }
}

TEST(CollectiveTimeEstimate, VolumeOverBandwidth) {
  EXPECT_DOUBLE_EQ(relay::collective_time_estimate(1e9, 1e10), 0.1);
  EXPECT_DOUBLE_EQ(relay::collective_time_estimate(1e9, 0.0), 0.0);
}

TEST(DataVolumeFactors, MatchPaperFormulas) {
  EXPECT_DOUBLE_EQ(collective::data_volume_factor(Primitive::kAllReduce, 8), 14.0);  // 2(N-1)
  EXPECT_DOUBLE_EQ(collective::data_volume_factor(Primitive::kAllToAll, 8), 8.0);    // N
  EXPECT_DOUBLE_EQ(collective::data_volume_factor(Primitive::kBroadcast, 8), 1.0);
}

// --- DataLoader -----------------------------------------------------------

TEST(DataLoaderTest, SplitsEvenly) {
  DataLoader loader(128, {0, 1, 2, 3});
  for (const int w : {0, 1, 2, 3}) EXPECT_EQ(loader.batch_of(w), 32);
}

TEST(DataLoaderTest, RemainderSpread) {
  DataLoader loader(130, {0, 1, 2, 3});
  int total = 0;
  for (const int w : {0, 1, 2, 3}) total += loader.batch_of(w);
  EXPECT_EQ(total, 130);
  EXPECT_EQ(loader.batch_of(0), 33);
  EXPECT_EQ(loader.batch_of(3), 32);
}

TEST(DataLoaderTest, RedistributionKeepsGlobalBatch) {
  DataLoader loader(128, {0, 1, 2, 3});
  loader.redistribute({2});
  int total = 0;
  for (const int w : loader.workers()) total += loader.batch_of(w);
  EXPECT_EQ(total, 128);
  EXPECT_EQ(loader.workers().size(), 3u);
  EXPECT_THROW(loader.batch_of(2), std::out_of_range);
  EXPECT_THROW(loader.redistribute({0, 1, 3}), std::invalid_argument);
}

// --- Coordinator -----------------------------------------------------------

class RelayFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, topology::homo_testbed());
    topology::Detector detector(*cluster_, util::Rng(5));
    topo_ = topology::Detector::build_logical_topology(*cluster_, detector.detect());
    profiler::Profiler profiler(*cluster_);
    profiler.profile(topo_);
    std::vector<int> ranks;
    for (int r = 0; r < cluster_->world_size(); ++r) ranks.push_back(r);
    strategy_ = collective::single_tree_strategy(
        Primitive::kAllReduce, ranks, paper_tree(), 4_MiB);
  }

  // A simple hierarchical tree over the 16-GPU homogeneous testbed.
  collective::Tree paper_tree() {
    collective::Tree tree;
    tree.root = NodeId::gpu(0);
    for (int inst = 0; inst < 4; ++inst) {
      const auto ranks = cluster_->ranks_on_instance(inst);
      for (std::size_t i = 1; i < ranks.size(); ++i) {
        tree.parent[NodeId::gpu(ranks[i])] = NodeId::gpu(ranks[i - 1]);
      }
      if (inst != 0) {
        tree.parent[NodeId::gpu(ranks[0])] = NodeId::nic(inst);
        tree.parent[NodeId::nic(inst)] = NodeId::nic(0);
      }
    }
    tree.parent[NodeId::nic(0)] = NodeId::gpu(0);
    return tree;
  }

  /// Ready times relative to the current simulated time (detection and
  /// profiling have already advanced the clock).
  std::map<int, Seconds> ready_times(Seconds base, std::map<int, Seconds> overrides) {
    const Seconds now = sim_->now();
    std::map<int, Seconds> ready;
    for (int r = 0; r < cluster_->world_size(); ++r) ready[r] = now + base;
    for (const auto& [rank, t] : overrides) ready[rank] = now + t;
    return ready;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
  topology::LogicalTopology topo_;
  Strategy strategy_;
};

TEST_F(RelayFixture, CoordinatorWaitsForMildStragglers) {
  Coordinator coordinator(topo_);
  // Straggler 1 ms late: cheaper to wait than to pay phase 1 + phase 2.
  const Seconds now = sim_->now();
  const auto decision = coordinator.decide(ready_times(0.0, {{5, 0.001}}), now, strategy_,
                                           megabytes(512));
  EXPECT_FALSE(decision.partial);
  EXPECT_NEAR(decision.trigger_time, now + 0.001, 1e-9);
}

TEST_F(RelayFixture, CoordinatorProceedsForSevereStragglers) {
  Coordinator coordinator(topo_);
  // Straggler 5 s late: break-even crossed long before, phase 1 triggers.
  const Seconds now = sim_->now();
  const auto decision = coordinator.decide(ready_times(0.0, {{5, 5.0}}), now, strategy_,
                                           megabytes(512));
  EXPECT_TRUE(decision.partial);
  EXPECT_EQ(decision.relays, std::vector<int>{5});
  EXPECT_EQ(decision.phase1_active.size(), 15u);
  EXPECT_LT(decision.trigger_time, now + 1.0);
  // Trigger happens at a multiple of the 5 ms cycle once wait >= buy.
  EXPECT_GE(decision.waited, decision.buy_cost_estimate - coordinator.config().cycle);
}

TEST_F(RelayFixture, FaultDeadlineUsesMultiplier) {
  CoordinatorConfig config;
  config.fault_multiplier = 5.0;
  Coordinator coordinator(topo_, config);
  // Phase 1 done at t=2, requests started at t=1.5 -> T_fault = 5 * 0.5.
  EXPECT_DOUBLE_EQ(coordinator.fault_deadline(2.0, 1.5), 2.0 + 2.5);
}

// --- RelayCollectiveRunner ---------------------------------------------------

TEST_F(RelayFixture, FullCollectiveWhenEveryoneReady) {
  RelayCollectiveRunner runner(*cluster_, topo_);
  const auto result = runner.run_allreduce(strategy_, megabytes(64), ready_times(0.0, {}));
  EXPECT_FALSE(result.partial);
  EXPECT_TRUE(result.relays.empty());
  double expected = 0.0;
  for (int r = 0; r < 16; ++r) expected += collective::payload_value(r, 0, 0);
  for (int r = 0; r < 16; ++r) EXPECT_DOUBLE_EQ(result.final_values.at(r), expected) << r;
}

TEST_F(RelayFixture, PartialPlusPhase2MatchesFullSum) {
  RelayCollectiveRunner runner(*cluster_, topo_);
  // Rank 9 straggles 80 ms: long enough that the break-even rule triggers
  // phase 1, short enough to beat the fault deadline so phase 2 merges it.
  const auto result = runner.run_allreduce(strategy_, megabytes(64),
                                           ready_times(0.0, {{9, 0.08}}));
  ASSERT_TRUE(result.partial);
  EXPECT_EQ(result.relays, std::vector<int>{9});
  EXPECT_TRUE(result.faulty.empty());
  // Consistency invariant (Fig. 19b): the final tensor equals the full sum.
  double expected = 0.0;
  for (int r = 0; r < 16; ++r) expected += collective::payload_value(r, 0, 0);
  for (int r = 0; r < 16; ++r) {
    EXPECT_DOUBLE_EQ(result.final_values.at(r), expected) << "rank " << r;
  }
  EXPECT_EQ(result.final_mask, (collective::ContributorMask{1} << 16) - 1);
  EXPECT_GE(result.phase2_finish, sim_->now() - 10.0);  // sane absolute time
}

TEST_F(RelayFixture, PartialCommunicationBeatsWaitingForSevereStraggler) {
  // Compare iteration communication span: relay control vs naive wait-all.
  const Seconds base_now = sim_->now();
  const auto ready = ready_times(0.0, {{9, 2.0}});

  RelayCollectiveRunner runner(*cluster_, topo_);
  const auto adaptive = runner.run_allreduce(strategy_, megabytes(512), ready);
  ASSERT_TRUE(adaptive.partial);

  // Naive NCCL-style lockstep: everyone starts at the straggler's ready
  // time, then the full collective runs (fresh simulator).
  sim::Simulator sim2;
  topology::Cluster cluster2(sim2, topology::homo_testbed());
  collective::Executor executor(cluster2, strategy_);
  collective::CollectiveOptions options;
  Seconds slowest = 0.0;
  for (const auto& [rank, t] : ready) slowest = std::max(slowest, t - base_now);
  for (const auto& [rank, t] : ready) options.ready_at[rank] = slowest;
  const auto naive = executor.run(megabytes(512), options);
  const Seconds naive_total = naive.finished;

  // Phase 1 overlapped the straggler's compute, so the adaptive end-to-end
  // span must beat waiting.
  EXPECT_LT(adaptive.phase2_finish - base_now, naive_total);
}

TEST_F(RelayFixture, UnrecoverableStragglerDeclaredFaulty) {
  RelayCollectiveRunner runner(*cluster_, topo_);
  // Rank 9 "ready" only after 1000 s: far beyond any fault deadline.
  const auto result = runner.run_allreduce(strategy_, megabytes(64),
                                           ready_times(0.0, {{9, 1000.0}}));
  ASSERT_TRUE(result.partial);
  EXPECT_TRUE(result.faulty.contains(9));
  EXPECT_FALSE(result.final_values.contains(9));
  // Remaining workers hold the sum of the 15 contributors.
  double expected = 0.0;
  for (int r = 0; r < 16; ++r) {
    if (r != 9) expected += collective::payload_value(r, 0, 0);
  }
  for (int r = 0; r < 16; ++r) {
    if (r == 9) continue;
    EXPECT_DOUBLE_EQ(result.final_values.at(r), expected) << r;
  }
  // Training can proceed: far earlier than the 1000 s straggler.
  EXPECT_LT(result.phase2_finish, sim_->now() + 100.0);
}

TEST_F(RelayFixture, RpcLatencyIsMilliseconds) {
  util::Rng rng(7);
  std::vector<double> latencies;
  for (int i = 0; i < 200; ++i) {
    latencies.push_back(relay::measure_rpc_latency(*cluster_, 5, 0, rng) * 1e3);
  }
  // Fig. 19d: 90% of negotiation latencies below 1.5 ms.
  const double p90 = util::percentile(latencies, 0.9);
  EXPECT_LT(p90, 1.5);
  EXPECT_GT(p90, 0.05);
}

// --- Control inbox (thread-safe worker-report staging) -------------------------

// Real RPC handler threads post into the inbox; the TSan CI job runs these
// tests under -fsanitize=thread to certify the locking.

TEST(ControlInboxTest, ThreadedPostsFoldToLatestReportPerRank) {
  constexpr int kRanks = 4;
  constexpr int kReportsPerRank = 50;
  relay::ControlInbox inbox;
  std::vector<std::thread> workers;
  for (int rank = 0; rank < kRanks; ++rank) {
    workers.emplace_back([&inbox, rank] {
      for (int i = 0; i < kReportsPerRank; ++i) {
        // Each worker refines its own estimate; the last report must win.
        inbox.post(rank, relay::ControlMessage::Kind::kReady, 0.1 * rank + 0.001 * i);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(inbox.pending(), static_cast<std::size_t>(kRanks * kReportsPerRank));

  std::map<int, Seconds> ready_at;
  std::map<int, Seconds> fill_start;
  EXPECT_EQ(inbox.fold_reports(ready_at, fill_start),
            static_cast<std::size_t>(kRanks * kReportsPerRank));
  ASSERT_EQ(ready_at.size(), static_cast<std::size_t>(kRanks));
  EXPECT_TRUE(fill_start.empty());
  for (int rank = 0; rank < kRanks; ++rank) {
    EXPECT_DOUBLE_EQ(ready_at.at(rank), 0.1 * rank + 0.001 * (kReportsPerRank - 1));
  }
  EXPECT_EQ(inbox.pending(), 0u);
}

TEST(ControlInboxTest, FoldRoutesKindsAndSkipsFaultSuspects) {
  relay::ControlInbox inbox;
  EXPECT_EQ(inbox.post(0, relay::ControlMessage::Kind::kReady, 1.0), 1u);
  EXPECT_EQ(inbox.post(0, relay::ControlMessage::Kind::kFillStart, 0.25), 2u);
  EXPECT_EQ(inbox.post(1, relay::ControlMessage::Kind::kFaultSuspect, 9.0), 3u);
  EXPECT_EQ(inbox.post(0, relay::ControlMessage::Kind::kReady, 2.0), 4u);  // supersedes
  std::map<int, Seconds> ready_at;
  std::map<int, Seconds> fill_start;
  EXPECT_EQ(inbox.fold_reports(ready_at, fill_start), 4u);
  EXPECT_DOUBLE_EQ(ready_at.at(0), 2.0);
  EXPECT_DOUBLE_EQ(fill_start.at(0), 0.25);
  EXPECT_FALSE(ready_at.contains(1));  // fault suspicion is not readiness
}

TEST(ControlInboxTest, CloseRejectsLatePostsAndWakesWaiters) {
  relay::ControlInbox inbox;
  bool woke_with_messages = true;
  std::thread waiter(
      [&inbox, &woke_with_messages] { woke_with_messages = inbox.wait_for_messages(); });
  inbox.close();
  waiter.join();
  EXPECT_FALSE(woke_with_messages);
  EXPECT_TRUE(inbox.closed());
  EXPECT_EQ(inbox.post(0, relay::ControlMessage::Kind::kReady, 1.0), 0u);
  EXPECT_EQ(inbox.pending(), 0u);
}

}  // namespace
}  // namespace adapcc
