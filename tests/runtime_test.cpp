#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "collective/payload.h"
#include "relay/control_inbox.h"
#include "runtime/adapcc.h"
#include "runtime/adapcc_backend.h"
#include "topology/testbeds.h"

namespace adapcc {
namespace {

using collective::Primitive;
using runtime::Adapcc;
using runtime::AdapccBackend;
using runtime::AdapccConfig;

class RuntimeTest : public ::testing::Test {
 protected:
  void build(std::vector<topology::InstanceSpec> specs) {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, std::move(specs));
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
};

TEST_F(RuntimeTest, InitDetectsAndProfiles) {
  build(topology::heter_testbed());
  Adapcc adapcc(*cluster_);
  adapcc.init();
  EXPECT_TRUE(adapcc.initialized());
  EXPECT_EQ(adapcc.participants().size(), 16u);
  EXPECT_GT(adapcc.detection_time(), 0.0);
  for (const auto& edge : adapcc.topology().edges()) EXPECT_TRUE(edge.profiled);
}

TEST_F(RuntimeTest, CollectiveBeforeInitThrows) {
  build(topology::homo_testbed());
  Adapcc adapcc(*cluster_);
  EXPECT_THROW(adapcc.allreduce(megabytes(64)), std::logic_error);
  EXPECT_THROW(adapcc.setup(), std::logic_error);
}

TEST_F(RuntimeTest, SetupCostPaidOnce) {
  build(topology::homo_testbed());
  Adapcc adapcc(*cluster_);
  adapcc.init();
  const Seconds cost = adapcc.setup();
  EXPECT_GT(cost, 0.0);
  EXPECT_LT(cost, 1.0);  // sub-second context establishment
}

TEST_F(RuntimeTest, AllPrimitivesProduceCorrectResults) {
  build(topology::heter_testbed());
  Adapcc adapcc(*cluster_);
  adapcc.init();
  adapcc.setup();
  const int world = cluster_->world_size();

  const auto allreduce = adapcc.allreduce(megabytes(32));
  double expected = 0.0;
  for (int r = 0; r < world; ++r) expected += collective::payload_value(r, 0, 0);
  for (int r = 0; r < world; ++r) {
    EXPECT_DOUBLE_EQ(allreduce.delivered.at(r)[0][0], expected);
  }

  const auto reduce = adapcc.reduce(megabytes(32));
  ASSERT_FALSE(reduce.subs.empty());
  EXPECT_DOUBLE_EQ(reduce.subs[0].root_values.at(0), expected);

  const auto alltoall = adapcc.alltoall(megabytes(32));
  EXPECT_EQ(alltoall.alltoall_received.size(), static_cast<std::size_t>(world));

  const auto broadcast = adapcc.broadcast(megabytes(32));
  EXPECT_FALSE(broadcast.delivered.empty());
}

TEST_F(RuntimeTest, AdaptiveAllReducePreservesSumUnderStraggler) {
  build(topology::homo_testbed());
  AdapccConfig config;
  // Relax the fault deadline: this test exercises phase-2 merging, and with
  // every other worker ready instantly the 5x-span default would classify
  // the straggler as faulty.
  config.coordinator.fault_multiplier = 50.0;
  Adapcc adapcc(*cluster_, config);
  adapcc.init();
  adapcc.setup();
  std::map<int, Seconds> ready;
  const Seconds now = cluster_->simulator().now();
  for (int r = 0; r < cluster_->world_size(); ++r) ready[r] = now;
  ready[7] = now + 0.15;  // straggler: triggers phase 1, merged in phase 2
  const auto result = adapcc.allreduce_adaptive(megabytes(128), ready);
  EXPECT_TRUE(result.partial);
  EXPECT_TRUE(result.faulty.empty());
  double expected = 0.0;
  for (int r = 0; r < cluster_->world_size(); ++r) {
    expected += collective::payload_value(r, 0, 0);
  }
  for (int r = 0; r < cluster_->world_size(); ++r) {
    EXPECT_DOUBLE_EQ(result.final_values.at(r), expected);
  }
}

TEST_F(RuntimeTest, AdaptiveAllReduceViaControlInboxMatchesDirectMaps) {
  // The inbox overload is the worker-RPC-thread path: reports are posted
  // concurrently, folded latest-per-rank, then run through the same adaptive
  // AllReduce. Its outcome must match handing the folded maps in directly.
  build(topology::homo_testbed());
  AdapccConfig config;
  config.coordinator.fault_multiplier = 50.0;
  Adapcc adapcc(*cluster_, config);
  adapcc.init();
  adapcc.setup();
  const Seconds now = cluster_->simulator().now();

  relay::ControlInbox inbox;
  std::vector<std::thread> reporters;
  for (int r = 0; r < cluster_->world_size(); ++r) {
    reporters.emplace_back([&inbox, r, now] {
      // A stale estimate first, then the final one — latest must win.
      inbox.post(r, relay::ControlMessage::Kind::kReady, now + 5.0);
      inbox.post(r, relay::ControlMessage::Kind::kReady, r == 7 ? now + 0.15 : now);
    });
  }
  for (std::thread& reporter : reporters) reporter.join();
  const auto via_inbox = adapcc.allreduce_adaptive(megabytes(128), inbox);
  EXPECT_TRUE(via_inbox.partial);
  EXPECT_TRUE(via_inbox.faulty.empty());
  double expected = 0.0;
  for (int r = 0; r < cluster_->world_size(); ++r) {
    expected += collective::payload_value(r, 0, 0);
  }
  for (int r = 0; r < cluster_->world_size(); ++r) {
    EXPECT_DOUBLE_EQ(via_inbox.final_values.at(r), expected);
  }
}

TEST_F(RuntimeTest, ReprofileWithoutChangeSkipsReconstruction) {
  build(topology::homo_testbed());
  Adapcc adapcc(*cluster_);
  adapcc.init();
  adapcc.setup();
  adapcc.allreduce(megabytes(64));  // install a strategy
  const auto report = adapcc.reprofile(megabytes(64));
  // Stable network: same strategy, no context re-setup.
  EXPECT_FALSE(report.graph_changed);
  EXPECT_DOUBLE_EQ(report.context_setup_time, 0.0);
  EXPECT_GT(report.profiling_time, 0.0);
}

TEST_F(RuntimeTest, ReprofileAdaptsToDegradedNic) {
  build(topology::homo_testbed());
  Adapcc adapcc(*cluster_);
  adapcc.init();
  adapcc.setup();
  adapcc.allreduce(megabytes(256));
  const auto& before = adapcc.strategy_for(Primitive::kAllReduce, megabytes(256));
  // Degrade an instance that sits in the *interior* of the synthesized
  // chains (it relays other servers' transit traffic there). The adapted
  // strategy must restructure so the slow NIC stops carrying transit —
  // i.e. its head moves to a chain endpoint. Note an AllReduce chain always
  // crosses every NIC twice for that instance's own data; only the transit
  // load is avoidable, so the root need not move.
  const int root_instance = cluster_->instance_of_rank(before.subs[0].tree.root.index);
  const int degraded = (root_instance + 1) % cluster_->instance_count();
  cluster_->set_nic_capacity_fraction(degraded, 0.25);  // 25 Gbps
  const auto report = adapcc.reprofile(megabytes(256));
  EXPECT_TRUE(report.graph_changed);
  EXPECT_GT(report.context_setup_time, 0.0);
  const auto& after = adapcc.strategy_for(Primitive::kAllReduce, megabytes(256));
  // The degraded instance's head must not be an interior node (one with
  // both a parent and children among the other instances' heads).
  for (const auto& sub : after.subs) {
    for (const auto& node : sub.tree.nodes()) {
      if (!node.is_gpu() || cluster_->instance_of_rank(node.index) != degraded) continue;
      int cross_children = 0;
      for (const auto& child : sub.tree.children_of(node)) {
        if (child.is_gpu() && cluster_->instance_of_rank(child.index) != degraded) {
          ++cross_children;
        }
      }
      const bool has_cross_parent =
          sub.tree.parent.contains(node) &&
          cluster_->instance_of_rank(sub.tree.parent.at(node).index) != degraded;
      EXPECT_FALSE(cross_children > 0 && has_cross_parent)
          << to_string(node) << " relays transit traffic through the degraded NIC";
    }
  }
}

TEST_F(RuntimeTest, ExcludeWorkersShrinksGroup) {
  build(topology::homo_testbed());
  Adapcc adapcc(*cluster_);
  adapcc.init();
  adapcc.setup();
  adapcc.exclude_workers({3, 7});
  EXPECT_EQ(adapcc.participants().size(), 14u);
  const auto result = adapcc.allreduce(megabytes(32));
  double expected = 0.0;
  for (const int r : adapcc.participants()) expected += collective::payload_value(r, 0, 0);
  for (const int r : adapcc.participants()) {
    EXPECT_DOUBLE_EQ(result.delivered.at(r)[0][0], expected);
  }
  EXPECT_FALSE(result.delivered.contains(3));
}

TEST_F(RuntimeTest, RestartCostModelScalesWithWorldAndModel) {
  const Seconds small = runtime::nccl_restart_cost(8, megabytes(200));
  const Seconds large = runtime::nccl_restart_cost(24, megabytes(528));
  EXPECT_GT(large, small);
  EXPECT_GT(small, 3.0);  // checkpoint + rendezvous dominate
}

TEST_F(RuntimeTest, ReconstructionFarCheaperThanRestart) {
  build(topology::homo_testbed());
  Adapcc adapcc(*cluster_);
  adapcc.init();
  adapcc.setup();
  adapcc.allreduce(megabytes(256));
  cluster_->set_nic_capacity_fraction(1, 0.4);
  const auto report = adapcc.reprofile(megabytes(256));
  const Seconds nccl = runtime::nccl_restart_cost(cluster_->world_size(), megabytes(528));
  // The paper reports 74-91% time saved vs terminating and relaunching.
  EXPECT_LT(report.total(), 0.26 * nccl);
}

TEST_F(RuntimeTest, BackendWrapperMatchesDirectUse) {
  build(topology::heter_testbed());
  AdapccBackend backend(*cluster_);
  std::vector<int> ranks;
  for (int r = 0; r < cluster_->world_size(); ++r) ranks.push_back(r);
  const auto plan = backend.plan(Primitive::kAllReduce, ranks, megabytes(256));
  EXPECT_EQ(plan.origin, "adapcc");
  const auto result = backend.run(Primitive::kAllReduce, ranks, megabytes(64), {});
  EXPECT_GT(result.elapsed(), 0.0);
  EXPECT_EQ(backend.name(), "adapcc");
}

TEST_F(RuntimeTest, StrategyCacheServesRepeatSynthesis) {
  build(topology::homo_testbed());
  Adapcc adapcc(*cluster_);
  adapcc.init();
  const auto first =
      adapcc.synthesize(Primitive::kAllReduce, adapcc.participants(), megabytes(256));
  EXPECT_EQ(adapcc.last_synthesis().cache_misses, 1);
  EXPECT_EQ(adapcc.last_synthesis().cache_hits, 0);
  const double solved_cost = adapcc.last_synthesis().model_cost;
  const int solved_candidates = adapcc.last_synthesis().candidates_evaluated;

  // Same key: served from cache — same graph, same reported solve, no time
  // spent solving.
  const auto second =
      adapcc.synthesize(Primitive::kAllReduce, adapcc.participants(), megabytes(256));
  EXPECT_EQ(adapcc.last_synthesis().cache_hits, 1);
  EXPECT_EQ(adapcc.last_synthesis().cache_misses, 1);
  EXPECT_EQ(second.fingerprint(), first.fingerprint());
  EXPECT_EQ(adapcc.last_synthesis().model_cost, solved_cost);
  EXPECT_EQ(adapcc.last_synthesis().candidates_evaluated, solved_candidates);
  EXPECT_EQ(adapcc.last_synthesis().solve_time_seconds, 0.0);

  // 200 MB shares the 256 MB power-of-two bucket ([2^27, 2^28) bytes).
  adapcc.synthesize(Primitive::kAllReduce, adapcc.participants(), megabytes(200));
  EXPECT_EQ(adapcc.last_synthesis().cache_hits, 2);

  // A different primitive or size bucket is a miss.
  adapcc.synthesize(Primitive::kReduce, adapcc.participants(), megabytes(256));
  EXPECT_EQ(adapcc.last_synthesis().cache_misses, 2);
  adapcc.synthesize(Primitive::kAllReduce, adapcc.participants(), megabytes(64));
  EXPECT_EQ(adapcc.last_synthesis().cache_misses, 3);
  EXPECT_EQ(adapcc.last_synthesis().cache_hits, 2);
}

TEST_F(RuntimeTest, StrategyCacheInvalidatedOnReprofileAndMembership) {
  build(topology::homo_testbed());
  Adapcc adapcc(*cluster_);
  adapcc.init();
  adapcc.synthesize(Primitive::kAllReduce, adapcc.participants(), megabytes(64));
  adapcc.synthesize(Primitive::kAllReduce, adapcc.participants(), megabytes(64));
  EXPECT_EQ(adapcc.last_synthesis().cache_hits, 1);

  // Reprofiling re-measures the topology: the epoch advances and the next
  // lookup must re-solve even though the key fields are unchanged.
  adapcc.reprofile(megabytes(64));
  const int misses_after_reprofile = adapcc.last_synthesis().cache_misses;
  EXPECT_GE(misses_after_reprofile, 2);
  adapcc.synthesize(Primitive::kAllReduce, adapcc.participants(), megabytes(64));
  // reprofile() itself cached its fresh solve under the new epoch.
  EXPECT_EQ(adapcc.last_synthesis().cache_hits, 2);
  EXPECT_EQ(adapcc.last_synthesis().cache_misses, misses_after_reprofile);

  // Excluding and re-admitting workers invalidates as well: the re-grown
  // participant set must not be served a pre-exclusion graph.
  adapcc.exclude_workers({0});
  adapcc.synthesize(Primitive::kAllReduce, adapcc.participants(), megabytes(64));
  EXPECT_EQ(adapcc.last_synthesis().cache_misses, misses_after_reprofile + 1);
  adapcc.include_workers({0});
  adapcc.synthesize(Primitive::kAllReduce, adapcc.participants(), megabytes(64));
  EXPECT_EQ(adapcc.last_synthesis().cache_misses, misses_after_reprofile + 2);
  EXPECT_EQ(adapcc.last_synthesis().cache_hits, 2);
}

// Pins the strategy-cache thread-safety fix (DESIGN.md §10): a producer
// thread pre-solving upcoming tensor buckets through the shared cache while
// the main thread executes an adaptive AllReduce that consults the same
// cache. Runs under TSan in CI: lookup, solve, insert, and the hit/miss and
// last_synthesis() bookkeeping all happen under one lock, so the producer
// and the collective serialize instead of racing.
TEST_F(RuntimeTest, ProducerThreadSynthesisRacesAdaptiveAllReduce) {
  build(topology::homo_testbed());
  AdapccConfig config;
  config.coordinator.fault_multiplier = 50.0;
  config.solver_threads = 2;  // pooled solves from both calling threads
  Adapcc adapcc(*cluster_, config);
  adapcc.init();
  adapcc.setup();

  const auto bucket = [](int iter) { return megabytes(32 << (iter % 3)); };
  std::vector<std::string> producer_graphs(6);
  std::thread producer([&] {
    for (int iter = 0; iter < 6; ++iter) {
      const auto strategy =
          adapcc.synthesize(Primitive::kAllReduce, adapcc.participants(), bucket(iter));
      producer_graphs[static_cast<std::size_t>(iter)] = strategy.fingerprint();
    }
  });

  std::map<int, Seconds> ready;
  const Seconds now = cluster_->simulator().now();
  for (int r = 0; r < cluster_->world_size(); ++r) ready[r] = now;
  const auto result = adapcc.allreduce_adaptive(megabytes(128), ready);
  producer.join();

  EXPECT_TRUE(result.faulty.empty());
  double expected = 0.0;
  for (int r = 0; r < cluster_->world_size(); ++r) {
    expected += collective::payload_value(r, 0, 0);
  }
  for (int r = 0; r < cluster_->world_size(); ++r) {
    EXPECT_DOUBLE_EQ(result.final_values.at(r), expected);
  }

  // The cache stayed coherent: re-requesting each bucket is a hit returning
  // exactly the graph the producer saw mid-collective.
  for (int iter = 0; iter < 6; ++iter) {
    const auto strategy =
        adapcc.synthesize(Primitive::kAllReduce, adapcc.participants(), bucket(iter));
    EXPECT_EQ(strategy.fingerprint(), producer_graphs[static_cast<std::size_t>(iter)])
        << "bucket " << iter;
  }
  const auto report = adapcc.last_synthesis();
  EXPECT_GE(report.cache_hits + report.cache_misses, 12);
}

}  // namespace
}  // namespace adapcc
