// Tests for the Work/Result queues (Fig. 4) and the PyTorch-DDP
// communication hook with gradient bucketing (Sec. VI-A).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "collective/builders.h"
#include "runtime/adapcc.h"
#include "runtime/ddp_hook.h"
#include "runtime/submission_queue.h"
#include "runtime/work_queue.h"
#include "topology/testbeds.h"

namespace adapcc {
namespace {

using collective::Primitive;
using collective::Strategy;
using runtime::CommRequest;
using runtime::DdpCommHook;
using runtime::WorkQueue;
using topology::NodeId;

class QueueTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, topology::homo_testbed());
    Strategy strategy = collective::single_tree_strategy(
        Primitive::kAllReduce, all_ranks(), hierarchical_tree(), 1_MiB);
    executor_ = std::make_unique<collective::Executor>(*cluster_, std::move(strategy));
    queue_ = std::make_unique<WorkQueue>(*sim_, *executor_);
  }

  std::vector<int> all_ranks() const {
    std::vector<int> ranks;
    for (int r = 0; r < 16; ++r) ranks.push_back(r);
    return ranks;
  }

  collective::Tree hierarchical_tree() {
    collective::Tree tree;
    tree.root = NodeId::gpu(0);
    for (int inst = 0; inst < 4; ++inst) {
      const auto ranks = cluster_->ranks_on_instance(inst);
      for (std::size_t i = 1; i < ranks.size(); ++i) {
        tree.parent[NodeId::gpu(ranks[i])] = NodeId::gpu(ranks[i - 1]);
      }
      if (inst != 0) tree.parent[NodeId::gpu(ranks[0])] = NodeId::gpu(0);
    }
    return tree;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
  std::unique_ptr<collective::Executor> executor_;
  std::unique_ptr<WorkQueue> queue_;
};

TEST_F(QueueTest, ExecutesRequestsInSubmissionOrder) {
  CommRequest request;
  request.tensor_bytes = megabytes(8);
  const int id1 = queue_->submit(request);
  const int id2 = queue_->submit(request);
  const int id3 = queue_->submit(request);
  EXPECT_EQ(queue_->pending(), 3u);
  queue_->drain(*sim_);
  EXPECT_TRUE(queue_->idle());
  ASSERT_EQ(queue_->completed(), 3u);
  const auto r1 = queue_->try_fetch();
  const auto r2 = queue_->try_fetch();
  const auto r3 = queue_->try_fetch();
  ASSERT_TRUE(r1 && r2 && r3);
  EXPECT_EQ(r1->id, id1);
  EXPECT_EQ(r2->id, id2);
  EXPECT_EQ(r3->id, id3);
  // In-order execution: each collective finishes no earlier than the prior.
  EXPECT_LE(r1->result.finished, r2->result.finished);
  EXPECT_LE(r2->result.finished, r3->result.finished);
  EXPECT_FALSE(queue_->try_fetch().has_value());
}

TEST_F(QueueTest, BackToBackRequestsPipelineTighter ) {
  // Three queued 16 MB collectives must take less than 3x a lone one plus
  // slack (contexts are reused; only in-order dispatch separates them).
  CommRequest request;
  request.tensor_bytes = megabytes(16);
  const Seconds t0 = sim_->now();
  for (int i = 0; i < 3; ++i) queue_->submit(request);
  queue_->drain(*sim_);
  const Seconds three = sim_->now() - t0;

  const Seconds t1 = sim_->now();
  queue_->submit(request);
  queue_->drain(*sim_);
  const Seconds one = sim_->now() - t1;
  EXPECT_LT(three, 3.5 * one);
  EXPECT_GT(three, 2.0 * one);
}

TEST_F(QueueTest, FetchBeforeCompletionIsEmpty) {
  EXPECT_FALSE(queue_->try_fetch().has_value());
  CommRequest request;
  request.tensor_bytes = megabytes(4);
  queue_->submit(request);
  EXPECT_FALSE(queue_->try_fetch().has_value());  // nothing done yet
  queue_->drain(*sim_);
  EXPECT_TRUE(queue_->try_fetch().has_value());
}

// --- Submission queue (thread-safe staging inbox) ------------------------------

// These tests drive SubmissionQueue with real producer threads; the TSan CI
// job runs them under -fsanitize=thread to certify the locking.

TEST(SubmissionQueueTest, ConcurrentProducersGetDenseTicketsAndFifoDrain) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 64;
  runtime::SubmissionQueue inbox;
  std::vector<std::vector<std::uint64_t>> tickets(kThreads);
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&inbox, &tickets, t] {
      for (int i = 0; i < kPerThread; ++i) {
        CommRequest request;
        request.id = t * 1000 + i;
        tickets[static_cast<std::size_t>(t)].push_back(inbox.stage(std::move(request)));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();

  // Tickets are a dense 1..N permutation, and each producer saw its own
  // tickets strictly increase (its requests keep their relative order).
  std::vector<std::uint64_t> all;
  for (const auto& per_thread : tickets) {
    for (std::size_t i = 1; i < per_thread.size(); ++i) {
      EXPECT_LT(per_thread[i - 1], per_thread[i]);
    }
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i + 1);

  // drain() returns ticket order, which preserves each producer's FIFO.
  EXPECT_EQ(inbox.staged(), all.size());
  const std::vector<CommRequest> drained = inbox.drain();
  ASSERT_EQ(drained.size(), all.size());
  std::map<int, int> last_per_thread;
  for (const CommRequest& request : drained) {
    const int thread = request.id / 1000;
    const int index = request.id % 1000;
    const auto it = last_per_thread.find(thread);
    if (it != last_per_thread.end()) {
      EXPECT_GT(index, it->second);
    }
    last_per_thread[thread] = index;
  }
  EXPECT_EQ(inbox.staged(), 0u);
}

TEST(SubmissionQueueTest, WaitForWorkBlocksUntilStagedOrClosed) {
  runtime::SubmissionQueue inbox;
  bool woke_with_work = false;
  std::thread consumer([&inbox, &woke_with_work] { woke_with_work = inbox.wait_for_work(); });
  inbox.stage(CommRequest{});
  consumer.join();
  EXPECT_TRUE(woke_with_work);

  inbox.drain();
  bool woke_on_close = true;
  std::thread closed_consumer(
      [&inbox, &woke_on_close] { woke_on_close = inbox.wait_for_work(); });
  inbox.close();
  closed_consumer.join();
  EXPECT_FALSE(woke_on_close);
}

TEST(SubmissionQueueTest, CloseRejectsLateStaging) {
  runtime::SubmissionQueue inbox;
  EXPECT_EQ(inbox.stage(CommRequest{}), 1u);
  inbox.close();
  EXPECT_TRUE(inbox.closed());
  EXPECT_EQ(inbox.stage(CommRequest{}), 0u);  // ignored
  EXPECT_EQ(inbox.staged(), 1u);              // pre-close request survives
}

TEST_F(QueueTest, StagedRequestsFlowThroughWorkQueueInTicketOrder) {
  runtime::SubmissionQueue inbox;
  std::vector<std::thread> producers;
  for (int t = 0; t < 3; ++t) {
    producers.emplace_back([&inbox] {
      for (int i = 0; i < 4; ++i) {
        CommRequest request;
        request.tensor_bytes = megabytes(2);
        inbox.stage(std::move(request));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  EXPECT_EQ(inbox.drain_into(*queue_), 12u);
  queue_->drain(*sim_);
  ASSERT_EQ(queue_->completed(), 12u);
  Seconds previous = 0.0;
  while (const auto entry = queue_->try_fetch()) {
    EXPECT_GE(entry->result.finished, previous);
    previous = entry->result.finished;
  }
}

// --- DDP hook -----------------------------------------------------------------

class DdpHookTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, topology::homo_testbed());
    adapcc_ = std::make_unique<runtime::Adapcc>(*cluster_);
    adapcc_->init();
    adapcc_->setup();
  }

  DdpCommHook make_hook(Bytes tensor) {
    return DdpCommHook(*cluster_,
                       adapcc_->strategy_for(Primitive::kAllReduce, tensor));
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
  std::unique_ptr<runtime::Adapcc> adapcc_;
};

TEST_F(DdpHookTest, SplitsModelIntoDdpBuckets) {
  auto hook = make_hook(megabytes(475));
  std::map<int, Seconds> begin, end;
  const Seconds t0 = sim_->now();
  for (int r = 0; r < 16; ++r) {
    begin[r] = t0;
    end[r] = t0 + 0.2;
  }
  const auto result = hook.run_iteration(megabytes(475), begin, end);
  EXPECT_EQ(result.buckets, 19);  // ceil(475 / 25)
  ASSERT_EQ(result.bucket_finish.size(), 19u);
  for (std::size_t b = 1; b < result.bucket_finish.size(); ++b) {
    EXPECT_GE(result.bucket_finish[b], result.bucket_finish[b - 1]);
  }
}

TEST_F(DdpHookTest, OverlapHidesCommunicationBehindBackward) {
  // With bucketing, communication of early buckets overlaps the rest of
  // backward: the iteration ends shortly after the slowest rank's backward,
  // not backward + full collective.
  const Bytes tensor = megabytes(475);
  auto hook = make_hook(tensor);
  std::map<int, Seconds> begin, end;
  const Seconds t0 = sim_->now();
  for (int r = 0; r < 16; ++r) {
    begin[r] = t0 + 0.1;   // backward starts after forward
    end[r] = t0 + 0.45;    // and takes 350 ms
  }
  const auto bucketed = hook.run_iteration(tensor, begin, end);
  const Seconds backward_end = 0.45;
  const Seconds tail = bucketed.finished - t0 - backward_end;
  EXPECT_GT(tail, 0.0);
  EXPECT_LT(tail, 0.05);  // only the last bucket's collective remains

  // Whole-tensor synchronization at backward end for comparison.
  collective::Executor whole(*cluster_, adapcc_->strategy_for(Primitive::kAllReduce, tensor));
  collective::CollectiveOptions options;
  for (int r = 0; r < 16; ++r) options.ready_at[r] = sim_->now() + backward_end;
  const auto monolithic = whole.run(tensor, options);
  EXPECT_LT(tail, 0.5 * (monolithic.elapsed() - backward_end + 1e-9) + 0.05);
}

TEST_F(DdpHookTest, StragglersEarlyBucketsFlowEarly) {
  const Bytes tensor = megabytes(100);
  auto hook = make_hook(tensor);
  std::map<int, Seconds> begin, end;
  const Seconds t0 = sim_->now();
  for (int r = 0; r < 16; ++r) {
    begin[r] = t0;
    end[r] = t0 + 0.2;
  }
  end[5] = t0 + 1.0;  // straggler's backward is 5x longer
  const auto result = hook.run_iteration(tensor, begin, end);
  // First bucket completes long before the straggler finishes backward.
  EXPECT_LT(result.bucket_finish.front(), t0 + 0.5);
  // Last bucket is gated by the straggler, with a small tail.
  EXPECT_GT(result.bucket_finish.back(), t0 + 1.0);
  EXPECT_LT(result.bucket_finish.back(), t0 + 1.1);
}

TEST_F(DdpHookTest, RejectsNonAllReduceStrategy) {
  auto strategy = adapcc_->strategy_for(Primitive::kAllReduce, megabytes(64));
  strategy.primitive = Primitive::kReduce;
  EXPECT_THROW(DdpCommHook(*cluster_, strategy), std::invalid_argument);
}

// --- elastic scaling ------------------------------------------------------------

TEST_F(DdpHookTest, ExcludedWorkerCanRejoin) {
  adapcc_->exclude_workers({3});
  EXPECT_EQ(adapcc_->participants().size(), 15u);
  adapcc_->include_workers({3});
  EXPECT_EQ(adapcc_->participants().size(), 16u);
  const auto result = adapcc_->allreduce(megabytes(32));
  double expected = 0.0;
  for (int r = 0; r < 16; ++r) expected += collective::payload_value(r, 0, 0);
  for (int r = 0; r < 16; ++r) EXPECT_DOUBLE_EQ(result.delivered.at(r)[0][0], expected);
  EXPECT_THROW(adapcc_->include_workers({99}), std::invalid_argument);
}

}  // namespace
}  // namespace adapcc
