// Tests for the Work/Result queues (Fig. 4) and the PyTorch-DDP
// communication hook with gradient bucketing (Sec. VI-A).
#include <gtest/gtest.h>

#include <memory>

#include "collective/builders.h"
#include "runtime/adapcc.h"
#include "runtime/ddp_hook.h"
#include "runtime/work_queue.h"
#include "topology/testbeds.h"

namespace adapcc {
namespace {

using collective::Primitive;
using collective::Strategy;
using runtime::CommRequest;
using runtime::DdpCommHook;
using runtime::WorkQueue;
using topology::NodeId;

class QueueTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, topology::homo_testbed());
    Strategy strategy = collective::single_tree_strategy(
        Primitive::kAllReduce, all_ranks(), hierarchical_tree(), 1_MiB);
    executor_ = std::make_unique<collective::Executor>(*cluster_, std::move(strategy));
    queue_ = std::make_unique<WorkQueue>(*sim_, *executor_);
  }

  std::vector<int> all_ranks() const {
    std::vector<int> ranks;
    for (int r = 0; r < 16; ++r) ranks.push_back(r);
    return ranks;
  }

  collective::Tree hierarchical_tree() {
    collective::Tree tree;
    tree.root = NodeId::gpu(0);
    for (int inst = 0; inst < 4; ++inst) {
      const auto ranks = cluster_->ranks_on_instance(inst);
      for (std::size_t i = 1; i < ranks.size(); ++i) {
        tree.parent[NodeId::gpu(ranks[i])] = NodeId::gpu(ranks[i - 1]);
      }
      if (inst != 0) tree.parent[NodeId::gpu(ranks[0])] = NodeId::gpu(0);
    }
    return tree;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
  std::unique_ptr<collective::Executor> executor_;
  std::unique_ptr<WorkQueue> queue_;
};

TEST_F(QueueTest, ExecutesRequestsInSubmissionOrder) {
  CommRequest request;
  request.tensor_bytes = megabytes(8);
  const int id1 = queue_->submit(request);
  const int id2 = queue_->submit(request);
  const int id3 = queue_->submit(request);
  EXPECT_EQ(queue_->pending(), 3u);
  queue_->drain(*sim_);
  EXPECT_TRUE(queue_->idle());
  ASSERT_EQ(queue_->completed(), 3u);
  const auto r1 = queue_->try_fetch();
  const auto r2 = queue_->try_fetch();
  const auto r3 = queue_->try_fetch();
  ASSERT_TRUE(r1 && r2 && r3);
  EXPECT_EQ(r1->id, id1);
  EXPECT_EQ(r2->id, id2);
  EXPECT_EQ(r3->id, id3);
  // In-order execution: each collective finishes no earlier than the prior.
  EXPECT_LE(r1->result.finished, r2->result.finished);
  EXPECT_LE(r2->result.finished, r3->result.finished);
  EXPECT_FALSE(queue_->try_fetch().has_value());
}

TEST_F(QueueTest, BackToBackRequestsPipelineTighter ) {
  // Three queued 16 MB collectives must take less than 3x a lone one plus
  // slack (contexts are reused; only in-order dispatch separates them).
  CommRequest request;
  request.tensor_bytes = megabytes(16);
  const Seconds t0 = sim_->now();
  for (int i = 0; i < 3; ++i) queue_->submit(request);
  queue_->drain(*sim_);
  const Seconds three = sim_->now() - t0;

  const Seconds t1 = sim_->now();
  queue_->submit(request);
  queue_->drain(*sim_);
  const Seconds one = sim_->now() - t1;
  EXPECT_LT(three, 3.5 * one);
  EXPECT_GT(three, 2.0 * one);
}

TEST_F(QueueTest, FetchBeforeCompletionIsEmpty) {
  EXPECT_FALSE(queue_->try_fetch().has_value());
  CommRequest request;
  request.tensor_bytes = megabytes(4);
  queue_->submit(request);
  EXPECT_FALSE(queue_->try_fetch().has_value());  // nothing done yet
  queue_->drain(*sim_);
  EXPECT_TRUE(queue_->try_fetch().has_value());
}

// --- DDP hook -----------------------------------------------------------------

class DdpHookTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, topology::homo_testbed());
    adapcc_ = std::make_unique<runtime::Adapcc>(*cluster_);
    adapcc_->init();
    adapcc_->setup();
  }

  DdpCommHook make_hook(Bytes tensor) {
    return DdpCommHook(*cluster_,
                       adapcc_->strategy_for(Primitive::kAllReduce, tensor));
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
  std::unique_ptr<runtime::Adapcc> adapcc_;
};

TEST_F(DdpHookTest, SplitsModelIntoDdpBuckets) {
  auto hook = make_hook(megabytes(475));
  std::map<int, Seconds> begin, end;
  const Seconds t0 = sim_->now();
  for (int r = 0; r < 16; ++r) {
    begin[r] = t0;
    end[r] = t0 + 0.2;
  }
  const auto result = hook.run_iteration(megabytes(475), begin, end);
  EXPECT_EQ(result.buckets, 19);  // ceil(475 / 25)
  ASSERT_EQ(result.bucket_finish.size(), 19u);
  for (std::size_t b = 1; b < result.bucket_finish.size(); ++b) {
    EXPECT_GE(result.bucket_finish[b], result.bucket_finish[b - 1]);
  }
}

TEST_F(DdpHookTest, OverlapHidesCommunicationBehindBackward) {
  // With bucketing, communication of early buckets overlaps the rest of
  // backward: the iteration ends shortly after the slowest rank's backward,
  // not backward + full collective.
  const Bytes tensor = megabytes(475);
  auto hook = make_hook(tensor);
  std::map<int, Seconds> begin, end;
  const Seconds t0 = sim_->now();
  for (int r = 0; r < 16; ++r) {
    begin[r] = t0 + 0.1;   // backward starts after forward
    end[r] = t0 + 0.45;    // and takes 350 ms
  }
  const auto bucketed = hook.run_iteration(tensor, begin, end);
  const Seconds backward_end = 0.45;
  const Seconds tail = bucketed.finished - t0 - backward_end;
  EXPECT_GT(tail, 0.0);
  EXPECT_LT(tail, 0.05);  // only the last bucket's collective remains

  // Whole-tensor synchronization at backward end for comparison.
  collective::Executor whole(*cluster_, adapcc_->strategy_for(Primitive::kAllReduce, tensor));
  collective::CollectiveOptions options;
  for (int r = 0; r < 16; ++r) options.ready_at[r] = sim_->now() + backward_end;
  const auto monolithic = whole.run(tensor, options);
  const Seconds monolithic_tail = monolithic.finished - sim_->now() + 0.0;
  EXPECT_LT(tail, 0.5 * (monolithic.elapsed() - backward_end + 1e-9) + 0.05);
}

TEST_F(DdpHookTest, StragglersEarlyBucketsFlowEarly) {
  const Bytes tensor = megabytes(100);
  auto hook = make_hook(tensor);
  std::map<int, Seconds> begin, end;
  const Seconds t0 = sim_->now();
  for (int r = 0; r < 16; ++r) {
    begin[r] = t0;
    end[r] = t0 + 0.2;
  }
  end[5] = t0 + 1.0;  // straggler's backward is 5x longer
  const auto result = hook.run_iteration(tensor, begin, end);
  // First bucket completes long before the straggler finishes backward.
  EXPECT_LT(result.bucket_finish.front(), t0 + 0.5);
  // Last bucket is gated by the straggler, with a small tail.
  EXPECT_GT(result.bucket_finish.back(), t0 + 1.0);
  EXPECT_LT(result.bucket_finish.back(), t0 + 1.1);
}

TEST_F(DdpHookTest, RejectsNonAllReduceStrategy) {
  auto strategy = adapcc_->strategy_for(Primitive::kAllReduce, megabytes(64));
  strategy.primitive = Primitive::kReduce;
  EXPECT_THROW(DdpCommHook(*cluster_, strategy), std::invalid_argument);
}

// --- elastic scaling ------------------------------------------------------------

TEST_F(DdpHookTest, ExcludedWorkerCanRejoin) {
  adapcc_->exclude_workers({3});
  EXPECT_EQ(adapcc_->participants().size(), 15u);
  adapcc_->include_workers({3});
  EXPECT_EQ(adapcc_->participants().size(), 16u);
  const auto result = adapcc_->allreduce(megabytes(32));
  double expected = 0.0;
  for (int r = 0; r < 16; ++r) expected += collective::payload_value(r, 0, 0);
  for (int r = 0; r < 16; ++r) EXPECT_DOUBLE_EQ(result.delivered.at(r)[0][0], expected);
  EXPECT_THROW(adapcc_->include_workers({99}), std::invalid_argument);
}

}  // namespace
}  // namespace adapcc
