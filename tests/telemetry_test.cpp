#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/adapcc.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "topology/cluster.h"
#include "topology/testbeds.h"
#include "training/trainer.h"
#include "util/stats.h"

namespace adapcc {
namespace {

using telemetry::EventKind;
using telemetry::TraceRecorder;

/// Guards tests that flip the process-wide instance: always ends disabled.
struct TelemetryGuard {
  ~TelemetryGuard() { telemetry::disable(); }
};

TEST(TraceRecorderTest, InternsTracksStably) {
  TraceRecorder rec(16);
  const auto a = rec.track("link/a");
  const auto b = rec.track("link/b");
  EXPECT_NE(a, b);
  EXPECT_EQ(rec.track("link/a"), a);
  ASSERT_EQ(rec.tracks().size(), 2u);
  EXPECT_EQ(rec.tracks()[a], "link/a");
}

TEST(TraceRecorderTest, SpansNestAndCloseOutOfOrder) {
  TraceRecorder rec(16);
  const auto track = rec.track("t");
  const auto outer = rec.begin_span(track, "outer", 1.0);
  const auto inner = rec.begin_span(track, "inner", 2.0);
  EXPECT_EQ(rec.open_spans(), 2u);
  rec.end_span(inner, 3.0);
  rec.end_span(outer, 5.0);
  EXPECT_EQ(rec.open_spans(), 0u);

  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  // Completion order: the inner span closed first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_DOUBLE_EQ(events[0].ts, 2.0);
  EXPECT_DOUBLE_EQ(events[0].dur, 1.0);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_DOUBLE_EQ(events[1].ts, 1.0);
  EXPECT_DOUBLE_EQ(events[1].dur, 4.0);

  rec.end_span(outer, 9.0);  // already closed: ignored
  rec.end_span(12345, 9.0);  // never existed: ignored
  EXPECT_EQ(rec.size(), 2u);
}

TEST(TraceRecorderTest, RingKeepsMostRecentEvents) {
  TraceRecorder rec(4);
  const auto track = rec.track("t");
  for (int i = 0; i < 10; ++i) {
    rec.instant(track, "e" + std::to_string(i), static_cast<Seconds>(i));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].ts, 6.0 + i) << "oldest-first order";
  }
}

TEST(TraceRecorderTest, ClearDropsEventsButKeepsTracks) {
  TraceRecorder rec(8);
  const auto track = rec.track("t");
  rec.instant(track, "e", 1.0);
  rec.begin_span(track, "open", 2.0);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.open_spans(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.track("t"), track);
}

TEST(HistogramTest, MomentsAndPercentilesMatchUtilStats) {
  telemetry::Histogram hist(64);
  const std::vector<double> samples{2, 4, 4, 4, 5, 5, 7, 9};
  util::RunningStats reference;
  for (const double x : samples) {
    hist.observe(x);
    reference.add(x);
  }
  EXPECT_EQ(hist.count(), samples.size());
  EXPECT_DOUBLE_EQ(hist.mean(), reference.mean());
  EXPECT_DOUBLE_EQ(hist.stddev(), reference.stddev());
  EXPECT_DOUBLE_EQ(hist.min(), 2.0);
  EXPECT_DOUBLE_EQ(hist.max(), 9.0);
  // Below reservoir capacity the reservoir holds every sample, so the
  // percentile must agree exactly with util::percentile.
  for (const double q : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(hist.percentile(q), util::percentile(samples, q));
  }
}

TEST(HistogramTest, ReservoirStaysBoundedAndDeterministic) {
  telemetry::Histogram a(32);
  telemetry::Histogram b(32);
  for (int i = 0; i < 1000; ++i) {
    a.observe(i);
    b.observe(i);
  }
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_EQ(a.reservoir().size(), 32u);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 999.0);
  // Fixed-seed LCG: two identically-fed histograms sample identically.
  EXPECT_EQ(a.reservoir(), b.reservoir());
  EXPECT_GE(a.percentile(0.5), 0.0);
  EXPECT_LE(a.percentile(0.5), 999.0);
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStableReferences) {
  telemetry::MetricsRegistry registry(64);
  telemetry::Counter& bytes = registry.counter("bytes");
  bytes.add(2);
  registry.counter("bytes").add(3);
  EXPECT_DOUBLE_EQ(bytes.value(), 5.0);
  EXPECT_EQ(&registry.counter("bytes"), &bytes);
  registry.gauge("busy").set(0.25);
  EXPECT_DOUBLE_EQ(registry.gauge("busy").value(), 0.25);
  EXPECT_EQ(registry.counters().size(), 1u);
  EXPECT_EQ(registry.gauges().size(), 1u);
}

TEST(MetricsRegistryTest, SnapshotsFreezeValuesAtCallTime) {
  telemetry::MetricsRegistry registry(64);
  registry.counter("bytes").add(10);
  registry.histogram("lat").observe(1.0);
  registry.snapshot("iter 0", 1.5);
  registry.counter("bytes").add(90);
  registry.snapshot("iter 1", 2.5);

  ASSERT_EQ(registry.snapshots().size(), 2u);
  const auto value_of = [](const telemetry::MetricsSnapshot& snap, const std::string& name) {
    for (const auto& row : snap.rows) {
      if (row.name == name) return row.value;
    }
    ADD_FAILURE() << "row " << name << " missing from snapshot " << snap.label;
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(value_of(registry.snapshots()[0], "bytes"), 10.0);
  EXPECT_DOUBLE_EQ(value_of(registry.snapshots()[1], "bytes"), 100.0);
  EXPECT_DOUBLE_EQ(value_of(registry.snapshots()[0], "lat.p50"), 1.0);
  EXPECT_DOUBLE_EQ(registry.snapshots()[0].ts, 1.5);
}

TEST(TelemetryGlobal, EnableDisableAdvanceEpoch) {
  TelemetryGuard guard;
  telemetry::disable();
  EXPECT_EQ(telemetry::get(), nullptr);
  EXPECT_FALSE(telemetry::enabled());

  const auto e0 = telemetry::epoch();
  telemetry::Telemetry& t = telemetry::enable({.trace_capacity = 128});
  EXPECT_EQ(telemetry::get(), &t);
  EXPECT_GT(telemetry::epoch(), e0);
  EXPECT_EQ(t.trace().capacity(), 128u);
  t.metrics().counter("x").add(1);

  // Re-enabling discards previous data and bumps the epoch again.
  const auto e1 = telemetry::epoch();
  telemetry::Telemetry& fresh = telemetry::enable({});
  EXPECT_GT(telemetry::epoch(), e1);
  EXPECT_DOUBLE_EQ(fresh.metrics().counter("x").value(), 0.0);

  telemetry::disable();
  EXPECT_EQ(telemetry::get(), nullptr);
}

TEST(ChromeTraceExport, GoldenSmallTrace) {
  TraceRecorder rec(16);
  const auto cpu = rec.track("cpu");
  const auto net = rec.track("net");
  rec.complete(cpu, "work", milliseconds(1), milliseconds(0.5), telemetry::kv("bytes", 1024));
  rec.instant(net, "mark", milliseconds(2));
  rec.counter(net, "in_flight", milliseconds(3), 2.0);

  std::ostringstream out;
  telemetry::write_chrome_trace(rec, out);
  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"adapcc "
      "sim\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"cpu\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":"
      "1}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"net\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":"
      "2}},\n"
      "{\"pid\":1,\"tid\":1,\"ts\":1000.000,\"name\":\"work\",\"ph\":\"X\",\"dur\":500.000,"
      "\"args\":{\"bytes\":1024}},\n"
      "{\"pid\":1,\"tid\":2,\"ts\":2000.000,\"name\":\"mark\",\"ph\":\"i\",\"s\":\"t\"},\n"
      "{\"pid\":1,\"tid\":2,\"ts\":3000.000,\"name\":\"in_flight\",\"ph\":\"C\",\"args\":{"
      "\"value\":2}}\n"
      "]}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(ChromeTraceExport, EventsAreCompleteAndMonotonic) {
  TraceRecorder rec(256);
  const auto track = rec.track("t");
  // Interleave spans that close out of order with instants and counters, so
  // the recorder's completion order is far from timestamp order.
  std::vector<telemetry::SpanId> open;
  for (int i = 0; i < 20; ++i) {
    open.push_back(rec.begin_span(track, "span" + std::to_string(i), 0.1 * i));
    rec.counter(track, "depth", 0.1 * i + 0.01, i);
  }
  for (int i = 19; i >= 0; --i) rec.end_span(open[static_cast<std::size_t>(i)], 5.0 + i);
  rec.instant(track, "done", 30.0);

  std::ostringstream out;
  telemetry::write_chrome_trace(rec, out);
  const std::string json = out.str();

  // Split into the individual event objects the exporter emitted.
  std::vector<std::string> objects;
  std::size_t pos = json.find('{', 1);
  while (pos != std::string::npos) {
    std::size_t end = json.find("},\n", pos);
    if (end == std::string::npos) end = json.find("}\n", pos);
    ASSERT_NE(end, std::string::npos);
    objects.push_back(json.substr(pos, end - pos + 1));
    pos = json.find('{', end + 1);
    // Stop before the args of the final "]}" footer would confuse the scan.
    if (json.compare(end, 3, "}\n]") == 0) break;
  }
  ASSERT_GE(objects.size(), 41u);  // 1 process + 2 track meta + 41 events

  double last_ts = -1.0;
  int complete_events = 0;
  for (const std::string& object : objects) {
    if (object.find("\"ph\":\"M\"") != std::string::npos) continue;
    const std::size_t ts_at = object.find("\"ts\":");
    ASSERT_NE(ts_at, std::string::npos) << object;
    const double ts = std::stod(object.substr(ts_at + 5));
    EXPECT_GE(ts, last_ts) << "timestamps must be non-decreasing: " << object;
    last_ts = ts;
    if (object.find("\"ph\":\"X\"") != std::string::npos) {
      ++complete_events;
      EXPECT_NE(object.find("\"dur\":"), std::string::npos)
          << "X events need a duration: " << object;
    }
  }
  EXPECT_EQ(complete_events, 20);
}

TEST(MetricsExport, CsvHasOneRowPerMetricPerSnapshot) {
  telemetry::MetricsRegistry registry(64);
  registry.counter("bytes").add(5);
  registry.gauge("busy").set(0.5);
  registry.snapshot("iter 0", 1.5);

  std::ostringstream out;
  telemetry::write_metrics_csv(registry, out);
  const std::string csv = out.str();
  EXPECT_EQ(csv.rfind("snapshot,ts_seconds,name,kind,value\n", 0), 0u);
  EXPECT_NE(csv.find("\"iter 0\",1.5,bytes,counter,5\n"), std::string::npos);
  EXPECT_NE(csv.find("\"iter 0\",1.5,busy,gauge,0.5\n"), std::string::npos);
  // Trailing "final" snapshot of current values.
  EXPECT_NE(csv.find("\"final\",0,bytes,counter,5\n"), std::string::npos);
}

TEST(MetricsExport, JsonMirrorsSnapshots) {
  telemetry::MetricsRegistry registry(64);
  registry.counter("bytes").add(5);
  registry.snapshot("iter 0", 1.5);
  std::ostringstream out;
  telemetry::write_metrics_json(registry, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"snapshots\":["), std::string::npos);
  EXPECT_NE(json.find("{\"label\":\"iter 0\",\"ts_seconds\":1.5,\"metrics\":{\"bytes\":5}}"),
            std::string::npos);
  EXPECT_NE(json.find("\"final\":{\"bytes\":5}"), std::string::npos);
}

// A short training run on a single-instance cluster. Every edge path inside
// one instance is a single FlowLink (NVLink, PCIe p2p, or one PCIe hop to
// the NIC), so the bytes the executor reports sending must equal the bytes
// the links report carrying — the end-to-end check that the two independent
// instrumentation sites agree.
TEST(TelemetryIntegration, LinkByteCountersMatchExecutorPayload) {
  TelemetryGuard guard;
  sim::Simulator simulator;
  topology::InstanceSpec spec;
  spec.name = "tiny";
  spec.gpu_count = 2;
  topology::Cluster cluster(simulator, {spec});

  runtime::Adapcc adapcc(cluster);
  adapcc.init();  // telemetry still off: probe traffic stays uncounted
  adapcc.setup();
  telemetry::enable({.trace_capacity = 1 << 16});

  training::TrainerConfig config;
  config.iterations = 3;
  training::Trainer trainer(
      cluster, training::ComputeModel(cluster, training::gpt2(), util::Rng(3)), config);
  const auto stats = trainer.train_with_adapcc(adapcc);
  ASSERT_EQ(stats.iterations.size(), 3u);

  auto& metrics = telemetry::get()->metrics();
  const double executor_bytes = metrics.counter("executor.bytes_sent").value();
  EXPECT_GT(executor_bytes, 0.0);
  double link_bytes = 0.0;
  for (const auto& [name, counter] : metrics.counters()) {
    if (name.starts_with("link.") && name.ends_with(".bytes")) link_bytes += counter.value();
  }
  EXPECT_DOUBLE_EQ(link_bytes, executor_bytes);

  // The trace covers the stack: link, executor, coordinator and trainer
  // tracks must all be present (plus relay / stream activity).
  std::set<std::string> prefixes;
  for (const auto& track : telemetry::get()->trace().tracks()) {
    prefixes.insert(track.substr(0, track.find('/')));
  }
  for (const char* subsystem : {"link", "executor", "coordinator", "trainer"}) {
    EXPECT_TRUE(prefixes.contains(subsystem)) << "missing track prefix " << subsystem;
  }
  EXPECT_EQ(telemetry::get()->trace().dropped(), 0u);
  EXPECT_GT(metrics.counter("trainer.iterations").value(), 0.0);
}

TEST(TelemetryIntegration, HostSpansLandOnSolverWorkerTracks) {
  TelemetryGuard guard;
  sim::Simulator simulator;
  topology::Cluster cluster(simulator, topology::homo_testbed());

  // Off by default: wall-clock pool spans never pollute determinism traces.
  telemetry::enable({.trace_capacity = 1 << 14});
  EXPECT_FALSE(telemetry::host_spans_enabled());

  telemetry::enable({.trace_capacity = 1 << 14, .host_spans = true});
  EXPECT_TRUE(telemetry::host_spans_enabled());
  runtime::AdapccConfig config;
  config.solver_threads = 2;
  runtime::Adapcc adapcc(cluster, config);
  adapcc.init();
  adapcc.synthesize(collective::Primitive::kAllReduce, adapcc.participants(), megabytes(64));

  // Pool tasks show up tid-tagged on per-lane solver (and profiler) tracks.
  std::size_t solver_tracks = 0;
  for (const auto& track : telemetry::get()->trace().tracks()) {
    if (track.starts_with("solver/worker-")) ++solver_tracks;
  }
  EXPECT_GE(solver_tracks, 1u);
}

}  // namespace
}  // namespace adapcc
