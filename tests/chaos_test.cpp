// Chaos-harness tests: fault injection, executor watchdog/abort, RPC
// retransmission, recovery orchestration, and the fault-path regression
// tests (trainer mass-failure halt, data-loader re-admission, coordinator
// fault-deadline floor). Every scenario must terminate — a hang here is a
// product bug, not a test artifact.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "chaos/fault_injector.h"
#include "collective/builders.h"
#include "collective/executor.h"
#include "collective/payload.h"
#include "profiler/profiler.h"
#include "relay/coordinator.h"
#include "relay/data_loader.h"
#include "relay/relay_collective.h"
#include "relay/rpc.h"
#include "runtime/adapcc.h"
#include "sim/flow_link.h"
#include "sim/simulator.h"
#include "topology/cluster.h"
#include "topology/detector.h"
#include "topology/testbeds.h"
#include "training/compute_model.h"
#include "training/model_spec.h"
#include "training/trainer.h"
#include "util/rng.h"

namespace adapcc {
namespace {

using chaos::FaultInjector;
using chaos::FaultSchedule;
using collective::chain_tree;
using collective::CollectiveErrorCode;
using collective::CollectiveOptions;
using collective::Executor;
using collective::payload_value;
using collective::Primitive;
using collective::single_tree_strategy;
using collective::Strategy;
using relay::Coordinator;
using relay::CoordinatorConfig;
using relay::DataLoader;
using topology::NodeId;

// --- FlowLink cancellation (the abort primitive) ---------------------------

TEST(FlowLinkCancel, RemovesInServiceTransfer) {
  sim::Simulator sim;
  sim::FlowLink link(sim, "l", 0.0, gBps(1));
  Seconds survivor_done = -1.0;
  bool cancelled_done = false;
  const std::uint64_t survivor =
      link.start_transfer(megabytes(100), [&] { survivor_done = sim.now(); });
  const std::uint64_t victim =
      link.start_transfer(megabytes(100), [&] { cancelled_done = true; });
  ASSERT_NE(survivor, 0u);
  ASSERT_NE(victim, 0u);
  EXPECT_TRUE(link.cancel_transfer(victim));
  sim.run_until(1.0);
  // The cancelled transfer's callback never fires, and with the link to
  // itself again the survivor finishes as if it had run alone.
  EXPECT_FALSE(cancelled_done);
  EXPECT_NEAR(survivor_done, 0.1, 1e-9);
}

TEST(FlowLinkCancel, UnknownOrFinishedIdsAreRejected) {
  sim::Simulator sim;
  sim::FlowLink link(sim, "l", 0.0, gBps(1));
  EXPECT_FALSE(link.cancel_transfer(0));
  EXPECT_FALSE(link.cancel_transfer(12345));
  const std::uint64_t id = link.start_transfer(megabytes(1), [] {});
  sim.run_until(1.0);
  EXPECT_FALSE(link.cancel_transfer(id));  // already delivered
}

// --- FaultInjector ---------------------------------------------------------

class InjectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, topology::homo_testbed());
  }
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
};

TEST_F(InjectorTest, BlackoutDropsAndRestoresNicCapacity) {
  const BytesPerSecond nominal = cluster_->nic_capacity(1);
  FaultSchedule schedule;
  schedule.link_faults.push_back({1, milliseconds(1), milliseconds(5),
                                  chaos::kBlackoutFraction, 0, 0.0});
  FaultInjector injector(*cluster_, schedule, 1);
  injector.arm();
  EXPECT_EQ(injector.faults_armed(), 1);
  sim_->run_until(milliseconds(2));
  // During the blackout the NIC is effectively dead: below the minimum
  // progress rate of any flow crossing it.
  EXPECT_LT(cluster_->nic_capacity(1), 1e-3);
  sim_->run_until(milliseconds(10));
  EXPECT_DOUBLE_EQ(cluster_->nic_capacity(1), nominal);
}

TEST_F(InjectorTest, FlapTogglesCapacity) {
  const BytesPerSecond nominal = cluster_->nic_capacity(2);
  FaultSchedule schedule;
  chaos::LinkFault fault;
  fault.instance = 2;
  fault.start = milliseconds(1);
  fault.capacity_fraction = 0.5;
  fault.flaps = 2;
  fault.flap_period = milliseconds(2);
  schedule.link_faults.push_back(fault);
  FaultInjector injector(*cluster_, schedule, 1);
  injector.arm();
  sim_->run_until(milliseconds(2));  // first down window
  EXPECT_DOUBLE_EQ(cluster_->nic_capacity(2), 0.5 * nominal);
  sim_->run_until(milliseconds(4));  // first up window
  EXPECT_DOUBLE_EQ(cluster_->nic_capacity(2), nominal);
  sim_->run_until(milliseconds(6));  // second down window
  EXPECT_DOUBLE_EQ(cluster_->nic_capacity(2), 0.5 * nominal);
  sim_->run_until(milliseconds(10));
  EXPECT_DOUBLE_EQ(cluster_->nic_capacity(2), nominal);
}

TEST_F(InjectorTest, CrashAndPauseShapeReadyTimes) {
  FaultSchedule schedule;
  schedule.crashes.push_back({3, milliseconds(7)});
  schedule.pauses.push_back({5, milliseconds(2), milliseconds(10)});
  FaultInjector injector(*cluster_, schedule, 1);
  const auto dead = injector.dead_at();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_DOUBLE_EQ(dead.at(3), milliseconds(7));
  EXPECT_EQ(injector.crashed_ranks(), std::set<int>{3});
  // Ready before the pause starts: unaffected. Ready after: delayed by the
  // full pause.
  EXPECT_DOUBLE_EQ(injector.adjusted_ready(5, milliseconds(1)), milliseconds(1));
  EXPECT_DOUBLE_EQ(injector.adjusted_ready(5, milliseconds(4)), milliseconds(14));
  EXPECT_DOUBLE_EQ(injector.adjusted_ready(4, milliseconds(4)), milliseconds(4));
}

TEST_F(InjectorTest, RpcLossDropsOnlyInsideWindow) {
  FaultSchedule schedule;
  schedule.rpc_loss.push_back({milliseconds(10), milliseconds(5), 1.0});
  FaultInjector injector(*cluster_, schedule, 1);
  EXPECT_FALSE(injector.should_drop(1, 0, milliseconds(9)));
  EXPECT_TRUE(injector.should_drop(1, 0, milliseconds(12)));
  EXPECT_FALSE(injector.should_drop(1, 0, milliseconds(16)));
  EXPECT_EQ(injector.rpc_drops(), 1);
}

TEST_F(InjectorTest, RandomScheduleIsSeedDeterministic) {
  const FaultSchedule a = chaos::random_schedule(77, *cluster_);
  const FaultSchedule b = chaos::random_schedule(77, *cluster_);
  ASSERT_EQ(a.link_faults.size(), b.link_faults.size());
  for (std::size_t i = 0; i < a.link_faults.size(); ++i) {
    EXPECT_EQ(a.link_faults[i].instance, b.link_faults[i].instance);
    EXPECT_DOUBLE_EQ(a.link_faults[i].start, b.link_faults[i].start);
    EXPECT_DOUBLE_EQ(a.link_faults[i].duration, b.link_faults[i].duration);
    EXPECT_DOUBLE_EQ(a.link_faults[i].capacity_fraction, b.link_faults[i].capacity_fraction);
    EXPECT_EQ(a.link_faults[i].flaps, b.link_faults[i].flaps);
  }
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].rank, b.crashes[i].rank);
    EXPECT_DOUBLE_EQ(a.crashes[i].at, b.crashes[i].at);
  }
  ASSERT_EQ(a.pauses.size(), b.pauses.size());
  ASSERT_EQ(a.rpc_loss.size(), b.rpc_loss.size());
  // A different seed must actually change something.
  const FaultSchedule c = chaos::random_schedule(78, *cluster_);
  bool differs = c.link_faults.size() != a.link_faults.size();
  for (std::size_t i = 0; !differs && i < a.link_faults.size(); ++i) {
    differs = a.link_faults[i].instance != c.link_faults[i].instance ||
              a.link_faults[i].start != c.link_faults[i].start;
  }
  EXPECT_TRUE(differs);
}

TEST_F(InjectorTest, RandomScheduleKeepsTwoSurvivors) {
  chaos::RandomScheduleConfig config;
  config.crashes = 100;  // far more than the world can lose
  const FaultSchedule schedule = chaos::random_schedule(5, *cluster_, config);
  std::set<int> crashed;
  for (const auto& crash : schedule.crashes) crashed.insert(crash.rank);
  EXPECT_EQ(crashed.size(), schedule.crashes.size());  // distinct ranks
  EXPECT_LE(static_cast<int>(crashed.size()), cluster_->world_size() - 2);
}

// --- Executor watchdog / abort --------------------------------------------

class WatchdogTest : public ::testing::Test {
 protected:
  void build(std::vector<topology::InstanceSpec> specs) {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, std::move(specs));
  }
  Strategy chain_reduce() {
    return single_tree_strategy(
        Primitive::kReduce, {0, 1, 2, 3},
        chain_tree({NodeId::gpu(3), NodeId::gpu(2), NodeId::gpu(1), NodeId::gpu(0)}), 4_MiB);
  }
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
};

TEST_F(WatchdogTest, FiresOnMidCollectiveCrash) {
  build({topology::a100_server("s0")});
  Executor executor(*cluster_, chain_reduce());
  CollectiveOptions options;
  options.watchdog_timeout = milliseconds(50);
  // Rank 3's buffer fills incrementally during its backward pass and the
  // rank dies halfway through: the chunks produced before the crash were
  // contributed, the rest never arrive, so the aggregation stalls.
  options.fill_start[3] = 0.0;
  options.ready_at[3] = milliseconds(10);
  options.dead_at[3] = milliseconds(5);
  const auto result = executor.run(megabytes(64), options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error.code, CollectiveErrorCode::kWatchdogTimeout);
  EXPECT_TRUE(result.error.suspects.contains(3)) << result.error.detail;
  EXPECT_NEAR(result.error.at, result.started + milliseconds(50), milliseconds(1));
  EXPECT_FALSE(result.error.detail.empty());
}

TEST_F(WatchdogTest, HealthyRunIsUntouchedByWatchdog) {
  build({topology::a100_server("s0")});
  Executor executor(*cluster_, chain_reduce());
  CollectiveOptions options;
  options.watchdog_timeout = 10.0;  // generous; must not fire
  const auto result = executor.run(megabytes(64), options);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.error.code, CollectiveErrorCode::kNone);
  const auto& sub = result.subs[0];
  for (std::size_t c = 0; c < sub.root_values.size(); ++c) {
    double expected = 0.0;
    for (const int r : {0, 1, 2, 3}) expected += payload_value(r, 0, static_cast<int>(c));
    EXPECT_DOUBLE_EQ(sub.root_values[c], expected);
  }
}

TEST_F(WatchdogTest, AbortLeavesClusterReusable) {
  build({topology::a100_server("s0")});
  {
    Executor executor(*cluster_, chain_reduce());
    CollectiveOptions options;
    options.watchdog_timeout = milliseconds(20);
    // Rank 2 crashes before its tensor is ready: its chunks never enter the
    // chain and the collective stalls until the watchdog aborts it.
    options.ready_at[2] = milliseconds(10);
    options.dead_at[2] = milliseconds(1);
    const auto result = executor.run(megabytes(64), options);
    ASSERT_FALSE(result.ok());
  }
  // The abort must have cancelled every outstanding event and released all
  // link slots (ADAPCC_AUDIT verifies the slab accounting): a fresh
  // collective on the same cluster runs to the correct result.
  Executor executor(*cluster_, chain_reduce());
  const auto result = executor.run(megabytes(64));
  ASSERT_TRUE(result.ok());
  const auto& sub = result.subs[0];
  double expected = 0.0;
  for (const int r : {0, 1, 2, 3}) expected += payload_value(r, 0, 0);
  EXPECT_DOUBLE_EQ(sub.root_values[0], expected);
}

// --- RPC retransmission ----------------------------------------------------

class DropFirstN : public relay::RpcMessageFilter {
 public:
  explicit DropFirstN(int n) : remaining_(n) {}
  bool should_drop(int, int, Seconds) override {
    if (remaining_ <= 0) return false;
    --remaining_;
    return true;
  }

 private:
  int remaining_;
};

class RpcRetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, topology::homo_testbed());
  }
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
};

TEST_F(RpcRetryTest, FirstAttemptSucceedsWithoutFilter) {
  util::Rng rng(3);
  const auto result = relay::rpc_with_retry(*cluster_, 5, 0, rng);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 1);
  EXPECT_EQ(result.drops, 0);
  EXPECT_GT(result.latency, 0.0);
}

TEST_F(RpcRetryTest, RetriesThroughDroppedMessages) {
  util::Rng rng(3);
  DropFirstN filter(2);  // request of attempt 1, request of attempt 2
  const auto clean_start = sim_->now();
  const auto result = relay::rpc_with_retry(*cluster_, 5, 0, rng, {}, &filter);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(result.drops, 2);
  // Two ack timeouts plus backoff must dominate the latency, and the
  // reported latency covers the simulated advance plus host overheads (the
  // same convention as measure_rpc_latency).
  relay::RpcRetryConfig config;
  EXPECT_GT(result.latency, 2.0 * config.ack_timeout);
  EXPECT_GE(result.latency, sim_->now() - clean_start);
}

TEST_F(RpcRetryTest, GivesUpAfterMaxAttempts) {
  util::Rng rng(3);
  DropFirstN filter(1000);  // drops everything
  relay::RpcRetryConfig config;
  config.max_attempts = 3;
  const auto result = relay::rpc_with_retry(*cluster_, 5, 0, rng, config, &filter);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.attempts, 3);
  EXPECT_GE(result.drops, 3);
  EXPECT_GE(result.latency, 3.0 * config.ack_timeout);
}

// --- Coordinator fault deadline (regression: zero-span collapse) -----------

class DeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, topology::homo_testbed());
    topology::Detector detector(*cluster_, util::Rng(5));
    topo_ = topology::Detector::build_logical_topology(*cluster_, detector.detect());
  }
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
  topology::LogicalTopology topo_;
};

TEST_F(DeadlineTest, ZeroSpanTriggerKeepsAFloor) {
  CoordinatorConfig config;
  Coordinator coordinator(topo_, config);
  // Everyone ready the moment the request arrived: span would be 0 and,
  // before the floor, T_fault collapsed to the phase-1 finish itself — a
  // barely-late worker was instantly declared faulty.
  const Seconds phase1_finish = 1.0;
  const Seconds deadline = coordinator.fault_deadline(phase1_finish, phase1_finish);
  EXPECT_GE(deadline, phase1_finish + config.fault_multiplier * config.cycle - 1e-12);
}

TEST_F(DeadlineTest, WideSpanIsUnchangedByFloor) {
  CoordinatorConfig config;
  Coordinator coordinator(topo_, config);
  const Seconds deadline = coordinator.fault_deadline(2.0, 1.0);
  EXPECT_DOUBLE_EQ(deadline, 2.0 + config.fault_multiplier * 1.0);
}

// --- DataLoader re-admission (regression: include_workers divergence) ------

TEST(DataLoaderReadmit, RestoresShardsAfterRecovery) {
  DataLoader loader(128, {0, 1, 2, 3});
  loader.redistribute({1, 2});
  EXPECT_EQ(loader.batch_of(0), 64);
  loader.readmit({1, 2});
  for (const int w : {0, 1, 2, 3}) EXPECT_EQ(loader.batch_of(w), 32);
  EXPECT_EQ(loader.global_batch_size(), 128);
}

TEST(DataLoaderReadmit, IgnoresAlreadyPresentWorkers) {
  DataLoader loader(128, {0, 1, 2, 3});
  loader.readmit({0, 1});
  for (const int w : {0, 1, 2, 3}) EXPECT_EQ(loader.batch_of(w), 32);
}

TEST(DataLoaderReadmit, AdmitsNewWorkerAndPreservesGlobalBatch) {
  DataLoader loader(120, {0, 1, 2});
  loader.readmit({7});
  int total = 0;
  for (const int w : {0, 1, 2, 7}) total += loader.batch_of(w);
  EXPECT_EQ(total, 120);
  EXPECT_EQ(loader.batch_of(7), 30);
}

// --- Trainer mass-failure halt (regression: exception out of the loop) -----

TEST(TrainerHalt, MassFailureHaltsGracefully) {
  sim::Simulator sim;
  topology::Cluster cluster(sim, topology::homo_testbed());
  runtime::AdapccConfig config;
  config.coordinator.watchdog_timeout = milliseconds(250);
  runtime::Adapcc adapcc(cluster, config);
  adapcc.init();

  training::ComputeModel model(cluster, training::gpt2(), util::Rng(11));
  training::TrainerConfig trainer_config;
  trainer_config.iterations = 3;
  trainer_config.batch_per_gpu = 16;
  // Every rank except 0 crashes shortly after its tensor is ready: phase 1
  // aborts, the suspects are folded into `faulty`, and excluding them would
  // leave a single survivor — which exclude_workers rejects. The trainer
  // must absorb that as a halted terminal state, not leak the exception.
  const Seconds margin = 1.10 * model.mean_iteration_time(15, 16);
  trainer_config.crash_schedule = [margin, &cluster](int iteration,
                                                     Seconds t0) -> std::map<int, Seconds> {
    if (iteration != 0) return {};
    std::map<int, Seconds> dead;
    for (int rank = 1; rank < cluster.world_size(); ++rank) dead[rank] = t0 + margin;
    return dead;
  };
  training::Trainer trainer(cluster, std::move(model), trainer_config);
  training::TrainingStats stats;
  EXPECT_NO_THROW(stats = trainer.train_with_adapcc(adapcc));
  EXPECT_TRUE(stats.halted);
  EXPECT_EQ(stats.halted_at_iteration, 0);
  EXPECT_FALSE(stats.halt_reason.empty());
  EXPECT_EQ(stats.iterations.size(), 1u);  // stopped right there
}

// --- Resilient execution (recovery orchestrator) ---------------------------

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulator>();
    cluster_ = std::make_unique<topology::Cluster>(*sim_, topology::homo_testbed());
    adapcc_ = std::make_unique<runtime::Adapcc>(*cluster_);
    adapcc_->init();
    adapcc_->setup();
  }
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<topology::Cluster> cluster_;
  std::unique_ptr<runtime::Adapcc> adapcc_;
};

TEST_F(ResilienceTest, ExcludesCrashedRankAndReexecutes) {
  runtime::ResilienceOptions options;
  // Rank 5 dies before its tensor is ready: the collective stalls waiting
  // for its chunks until the watchdog aborts and the orchestrator excludes
  // it, resynthesizes, and re-executes for the survivors.
  options.collective.ready_at[5] = sim_->now() + milliseconds(10);
  options.collective.dead_at[5] = sim_->now() + milliseconds(1);
  const auto report = adapcc_->run_resilient(Primitive::kAllReduce, megabytes(64), options);
  EXPECT_TRUE(report.ok);
  EXPECT_FALSE(report.halted);
  EXPECT_GE(report.attempts, 2);
  EXPECT_TRUE(report.excluded.contains(5));
  EXPECT_GT(report.recovery_latency, 0.0);
  // Survivors hold the survivor-only aggregate; rank 5 is gone.
  EXPECT_EQ(adapcc_->participants().size(), 15u);
  ASSERT_TRUE(report.result.ok());
  double expected = 0.0;
  for (int r = 0; r < 16; ++r) {
    if (r != 5) expected += payload_value(r, 0, 0);
  }
  for (const int rank : adapcc_->participants()) {
    const auto it = report.result.delivered.find(rank);
    ASSERT_NE(it, report.result.delivered.end()) << rank;
    EXPECT_DOUBLE_EQ(it->second[0][0], expected) << rank;
  }
}

TEST_F(ResilienceTest, CleanRunNeedsNoRecovery) {
  const auto report = adapcc_->run_resilient(Primitive::kAllReduce, megabytes(64));
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.attempts, 1);
  EXPECT_TRUE(report.excluded.empty());
  EXPECT_DOUBLE_EQ(report.recovery_latency, 0.0);
}

TEST_F(ResilienceTest, MassFailureHaltsInsteadOfThrowing) {
  runtime::ResilienceOptions options;
  for (int rank = 1; rank < 16; ++rank) {
    options.collective.ready_at[rank] = sim_->now() + milliseconds(10);
    options.collective.dead_at[rank] = sim_->now() + milliseconds(1);
  }
  runtime::ResilienceReport report;
  EXPECT_NO_THROW(report = adapcc_->run_resilient(Primitive::kAllReduce, megabytes(64), options));
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.halted);
  EXPECT_FALSE(report.halt_reason.empty());
}

TEST_F(ResilienceTest, BlackoutHealsWithBackoffRetries) {
  // NIC 1 blacks out just before the collective and heals while the
  // orchestrator backs off: no rank is excluded, the retry succeeds.
  FaultSchedule schedule;
  schedule.link_faults.push_back(
      {1, sim_->now() + milliseconds(1), milliseconds(120), chaos::kBlackoutFraction, 0, 0.0});
  FaultInjector injector(*cluster_, schedule, 9);
  injector.arm();
  runtime::ResilienceOptions options;
  options.watchdog_timeout = milliseconds(60);
  options.max_attempts = 6;
  const auto report = adapcc_->run_resilient(Primitive::kAllReduce, megabytes(64), options);
  EXPECT_TRUE(report.ok) << report.halt_reason;
  EXPECT_TRUE(report.excluded.empty());
  EXPECT_GE(report.attempts, 2);
  EXPECT_EQ(adapcc_->participants().size(), 16u);
}

// --- Determinism: one seed, one outcome ------------------------------------

struct ChaosOutcome {
  std::map<int, double> final_values;
  std::set<int> faulty;
  Seconds comm_time = 0.0;
  Seconds phase2_finish = 0.0;
};

/// Runs a crash + degradation + pause schedule derived from `fault_seed`
/// through the relay runner on a fresh cluster; `shuffle_seed` perturbs
/// simulator tie-breaking order, which must not leak into results.
ChaosOutcome run_chaos_scenario(std::uint64_t fault_seed, std::uint64_t shuffle_seed) {
  sim::Simulator sim;
  sim.set_tie_shuffle_seed(shuffle_seed);
  topology::Cluster cluster(sim, topology::homo_testbed());
  topology::Detector detector(cluster, util::Rng(5));
  auto topo = topology::Detector::build_logical_topology(cluster, detector.detect());
  profiler::Profiler profiler(cluster);
  profiler.profile(topo);

  chaos::RandomScheduleConfig schedule_config;
  schedule_config.rpc_windows = 0;  // RPC loss is exercised separately
  FaultSchedule schedule = chaos::random_schedule(fault_seed, cluster, schedule_config);
  // Detection advanced the clock; aim the schedule at the collective below.
  schedule.shift(sim.now());
  FaultInjector injector(cluster, schedule, fault_seed);
  injector.arm();

  CoordinatorConfig coordinator_config;
  coordinator_config.watchdog_timeout = milliseconds(80);
  relay::RelayCollectiveRunner runner(cluster, topo, coordinator_config);
  std::vector<int> ranks;
  for (int r = 0; r < cluster.world_size(); ++r) ranks.push_back(r);
  const Strategy strategy = single_tree_strategy(
      Primitive::kAllReduce, ranks,
      collective::kary_tree([&] {
        std::vector<NodeId> nodes;
        for (const int r : ranks) nodes.push_back(NodeId::gpu(r));
        return nodes;
      }(), 4),
      4_MiB);
  std::map<int, Seconds> ready;
  for (const int r : ranks) ready[r] = sim.now() + milliseconds(1) + 1e-4 * r;
  ready = injector.adjust_ready(ready);
  // Crashed ranks die before their tensor is ready, so their chunks are the
  // ones the survivors end up waiting on.
  for (const auto& crash : schedule.crashes) {
    ready[crash.rank] = std::max(ready[crash.rank], crash.at + milliseconds(5));
  }
  const auto result =
      runner.run_allreduce(strategy, megabytes(32), ready, {}, injector.dead_at());

  ChaosOutcome outcome;
  outcome.final_values = result.final_values;
  outcome.faulty = result.faulty;
  outcome.comm_time = result.comm_time;
  outcome.phase2_finish = result.phase2_finish;
  return outcome;
}

TEST(ChaosDeterminism, SameFaultSeedIsByteIdenticalUnderTieShuffling) {
  for (const std::uint64_t fault_seed : {101ull, 202ull, 303ull}) {
    const ChaosOutcome a = run_chaos_scenario(fault_seed, 1);
    const ChaosOutcome b = run_chaos_scenario(fault_seed, 99);
    // Bit-exact: map equality compares doubles with ==.
    EXPECT_EQ(a.final_values, b.final_values) << "fault seed " << fault_seed;
    EXPECT_EQ(a.faulty, b.faulty) << "fault seed " << fault_seed;
    EXPECT_DOUBLE_EQ(a.comm_time, b.comm_time) << "fault seed " << fault_seed;
    EXPECT_DOUBLE_EQ(a.phase2_finish, b.phase2_finish) << "fault seed " << fault_seed;
  }
}

}  // namespace
}  // namespace adapcc
