// Tests for the deterministic task pool (DESIGN.md §10): thread-count
// resolution, degenerate serial pools, exception propagation by lowest
// index, and bit-identical reductions under deliberately skewed schedules.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/task_pool.h"

namespace adapcc::util {
namespace {

/// Scoped ADAPCC_SOLVER_THREADS override; restores the prior value on exit.
class ScopedEnv {
 public:
  explicit ScopedEnv(const char* value) {
    const char* prev = std::getenv("ADAPCC_SOLVER_THREADS");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    if (value != nullptr) {
      ::setenv("ADAPCC_SOLVER_THREADS", value, 1);
    } else {
      ::unsetenv("ADAPCC_SOLVER_THREADS");
    }
  }
  ~ScopedEnv() {
    if (had_prev_) {
      ::setenv("ADAPCC_SOLVER_THREADS", prev_.c_str(), 1);
    } else {
      ::unsetenv("ADAPCC_SOLVER_THREADS");
    }
  }

 private:
  bool had_prev_ = false;
  std::string prev_;
};

TEST(SolverThreads, ConfiguredValueWins) {
  ScopedEnv env("7");
  EXPECT_EQ(solver_threads(3), 3);
  EXPECT_EQ(solver_threads(1), 1);
}

TEST(SolverThreads, FallsBackToEnvThenSerial) {
  {
    ScopedEnv env("5");
    EXPECT_EQ(solver_threads(0), 5);
    EXPECT_EQ(solver_threads(-2), 5);
  }
  {
    ScopedEnv env(nullptr);
    EXPECT_EQ(solver_threads(0), 1);
  }
}

TEST(SolverThreads, RejectsGarbageAndClamps) {
  {
    ScopedEnv env("not-a-number");
    EXPECT_EQ(solver_threads(0), 1);
  }
  {
    ScopedEnv env("0");
    EXPECT_EQ(solver_threads(0), 1);
  }
  {
    ScopedEnv env("-8");
    EXPECT_EQ(solver_threads(0), 1);
  }
  {
    ScopedEnv env("100000");
    EXPECT_EQ(solver_threads(0), 256);
  }
  EXPECT_EQ(solver_threads(100000), 256);
}

TEST(TaskPool, DegenerateSerialPools) {
  // 0 and 1 both collapse to the inline serial path: one lane, no workers,
  // every task on the calling thread in index order.
  for (const int threads : {0, 1}) {
    TaskPool pool(threads);
    EXPECT_EQ(pool.thread_count(), 1);
    EXPECT_TRUE(pool.serial());
    std::vector<std::size_t> order;
    std::vector<int> lanes;
    pool.parallel_for_indexed(8, [&](std::size_t index, int lane) {
      order.push_back(index);
      lanes.push_back(lane);
    });
    std::vector<std::size_t> expected(8);
    std::iota(expected.begin(), expected.end(), std::size_t{0});
    EXPECT_EQ(order, expected);
    EXPECT_EQ(lanes, std::vector<int>(8, 0));
  }
}

TEST(TaskPool, EmptyBatchIsNoop) {
  TaskPool pool(4);
  int calls = 0;
  pool.parallel_for_indexed(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_TRUE(pool.map_indexed<int>(0, [](std::size_t, int) { return 1; }).empty());
  EXPECT_EQ(pool.argmin_indexed(0, [](std::size_t) { return 0.0; }), 0u);
}

TEST(TaskPool, MapCollectsBySubmissionIndex) {
  TaskPool pool(4);
  const std::vector<int> out =
      pool.map_indexed<int>(100, [](std::size_t index, int) { return static_cast<int>(index) * 3; });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 3);
}

TEST(TaskPool, LanesStayInRangeAndCallerParticipates) {
  TaskPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  EXPECT_FALSE(pool.serial());
  const std::vector<int> lanes =
      pool.map_indexed<int>(64, [](std::size_t, int lane) { return lane; });
  for (const int lane : lanes) {
    EXPECT_GE(lane, 0);
    EXPECT_LT(lane, 4);
  }
}

TEST(TaskPool, LowestIndexExceptionWinsAndBatchDrains) {
  TaskPool pool(4);
  std::vector<std::atomic<int>> ran(32);
  try {
    pool.parallel_for_indexed(32, [&](std::size_t index, int) {
      ran[index].store(1);
      if (index == 21 || index == 5 || index == 30) {
        throw std::runtime_error("boom " + std::to_string(index));
      }
    });
    FAIL() << "expected the batch to rethrow";
  } catch (const std::runtime_error& err) {
    // Deterministic regardless of which thread hit its throw first.
    EXPECT_STREQ(err.what(), "boom 5");
  }
  // Unlike a serial loop, the parallel batch drains fully before rethrowing.
  for (const auto& flag : ran) EXPECT_EQ(flag.load(), 1);
}

TEST(TaskPool, SerialPoolPropagatesExceptionInline) {
  TaskPool pool(1);
  int calls = 0;
  EXPECT_THROW(pool.parallel_for_indexed(8,
                                         [&](std::size_t index, int) {
                                           ++calls;
                                           if (index == 2) throw std::logic_error("stop");
                                         }),
               std::logic_error);
  // Serial semantics: the first exception aborts the remaining iterations.
  EXPECT_EQ(calls, 3);
}

TEST(TaskPool, PoolIsReusableAfterFailedBatch) {
  TaskPool pool(3);
  EXPECT_THROW(
      pool.parallel_for_indexed(4, [](std::size_t, int) { throw std::runtime_error("x"); }),
      std::runtime_error);
  const std::vector<int> out = pool.map_indexed<int>(4, [](std::size_t i, int) {
    return static_cast<int>(i) + 1;
  });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));
}

/// Burns a schedule-skewing amount of CPU that depends on the index, so fast
/// and slow tasks interleave differently on every run and thread count.
double skewed_cost(std::size_t index) {
  volatile double sink = 0.0;
  const std::size_t spin = (index * 7919) % 997;
  for (std::size_t i = 0; i < spin; ++i) sink += static_cast<double>(i) * 1e-9;
  // Coarse costs with plenty of exact ties; the tie-break is index order.
  return static_cast<double>((index * 37) % 11) + sink * 0.0;
}

TEST(TaskPool, ArgminIsBitIdenticalAcrossThreadCountsAndRuns) {
  constexpr std::size_t kTasks = 333;
  // Serial reference: first strictly-smaller index wins.
  TaskPool serial(1);
  const std::size_t expected = serial.argmin_indexed(kTasks, skewed_cost);
  std::size_t manual = kTasks;
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < kTasks; ++i) {
    if (skewed_cost(i) < best) {
      best = skewed_cost(i);
      manual = i;
    }
  }
  EXPECT_EQ(expected, manual);
  for (const int threads : {2, 4, 8}) {
    TaskPool pool(threads);
    for (int rep = 0; rep < 5; ++rep) {
      EXPECT_EQ(pool.argmin_indexed(kTasks, skewed_cost), expected)
          << "threads=" << threads << " rep=" << rep;
    }
  }
}

TEST(TaskPool, MapIsBitIdenticalUnderStressSchedule) {
  constexpr std::size_t kTasks = 500;
  TaskPool serial(1);
  const std::vector<double> expected = serial.map_indexed<double>(
      kTasks, [](std::size_t index, int) { return skewed_cost(index); });
  TaskPool pool(8);
  for (int rep = 0; rep < 10; ++rep) {
    const std::vector<double> got = pool.map_indexed<double>(
        kTasks, [](std::size_t index, int) { return skewed_cost(index); });
    EXPECT_EQ(got, expected) << "rep=" << rep;
  }
}

TEST(TaskPool, RecordsOneSpanPerTaskInIndexOrder) {
  for (const int threads : {1, 4}) {
    TaskPool pool(threads);
    pool.set_record_spans(true);
    pool.parallel_for_indexed(16, [](std::size_t, int) {});
    const std::vector<TaskSpan> spans = pool.take_spans();
    ASSERT_EQ(spans.size(), 16u) << "threads=" << threads;
    for (std::size_t i = 0; i < spans.size(); ++i) {
      EXPECT_EQ(spans[i].task, i);
      EXPECT_GE(spans[i].lane, 0);
      EXPECT_LT(spans[i].lane, threads);
      EXPECT_GE(spans[i].start_seconds, 0.0);
      EXPECT_GE(spans[i].duration_seconds, 0.0);
    }
    // take_spans() drains; the next batch starts fresh.
    EXPECT_TRUE(pool.take_spans().empty());
    pool.set_record_spans(false);
    pool.parallel_for_indexed(4, [](std::size_t, int) {});
    EXPECT_TRUE(pool.take_spans().empty());
  }
}

TEST(TaskPool, NestedSubmissionThrows) {
  TaskPool pool(2);
  EXPECT_THROW(pool.parallel_for_indexed(8,
                                         [&](std::size_t, int) {
                                           pool.parallel_for_indexed(
                                               2, [](std::size_t, int) {});
                                         }),
               std::logic_error);
}

}  // namespace
}  // namespace adapcc::util
