// AdapCC exposed through the common Backend interface, so benches can sweep
// {NCCL, MSCCL, Blink, AdapCC} uniformly (Figs. 11-14).
#pragma once

#include <map>

#include "baselines/backend.h"
#include "runtime/adapcc.h"

namespace adapcc::runtime {

class AdapccBackend : public baselines::Backend {
 public:
  explicit AdapccBackend(topology::Cluster& cluster, AdapccConfig config = {})
      : cluster_(cluster), adapcc_(cluster, std::move(config)) {}

  std::string name() const override { return "adapcc"; }

  collective::CollectiveResult run(collective::Primitive primitive,
                                   const std::vector<int>& participants, Bytes tensor_bytes,
                                   collective::CollectiveOptions options = {}) override {
    collective::Executor executor(cluster_, plan(primitive, participants, tensor_bytes));
    return executor.run(tensor_bytes, std::move(options));
  }

  collective::Strategy plan(collective::Primitive primitive,
                            const std::vector<int>& participants, Bytes tensor_bytes) override {
    ensure_init();
    const auto key = std::make_pair(primitive, participants);
    const auto it = plans_.find(key);
    if (it != plans_.end()) return it->second;
    collective::Strategy strategy = adapcc_.synthesize(primitive, participants, tensor_bytes);
    plans_.emplace(key, strategy);
    return strategy;
  }

  Adapcc& adapcc() {
    ensure_init();
    return adapcc_;
  }

 private:
  void ensure_init() {
    if (!adapcc_.initialized()) {
      adapcc_.init();
      adapcc_.setup();
    }
  }

  topology::Cluster& cluster_;
  Adapcc adapcc_;
  std::map<std::pair<collective::Primitive, std::vector<int>>, collective::Strategy> plans_;
};

}  // namespace adapcc::runtime
