// PyTorch-DDP communication hook (Sec. VI-A: "we also provide a
// communication hook for PyTorch DDP").
//
// DDP splits the model's gradients into buckets and fires the hook per
// bucket as backward produces it. The hook pushes each bucket into the Work
// Queue, where it is all-reduced in order while later buckets are still
// being computed — communication overlaps backward. Per-rank bucket ready
// times follow the backward pass: bucket b of rank r is ready at
//   backward_start(r) + (b+1)/B * backward_duration(r),
// so the straggler's early buckets flow long before it finishes.
#pragma once

#include <map>
#include <vector>

#include "collective/executor.h"
#include "runtime/submission_queue.h"
#include "runtime/work_queue.h"
#include "topology/cluster.h"

namespace adapcc::runtime {

struct DdpHookConfig {
  /// DDP default bucket cap is 25 MB.
  Bytes bucket_bytes = megabytes(25);
};

struct BucketedRunResult {
  Seconds started = 0.0;
  Seconds finished = 0.0;   ///< last bucket's allreduce completed
  int buckets = 0;
  /// Completion time of each bucket's collective, in bucket order.
  std::vector<Seconds> bucket_finish;
  Seconds elapsed() const noexcept { return finished - started; }
};

class DdpCommHook {
 public:
  /// `strategy` is the installed AllReduce strategy; the hook owns one
  /// executor (transmission contexts) reused by every bucket.
  DdpCommHook(topology::Cluster& cluster, collective::Strategy strategy,
              DdpHookConfig config = {});

  /// Runs one iteration's gradient synchronization: the model of
  /// `tensor_bytes` is split into buckets; rank r's backward runs over
  /// [backward_start[r], backward_end[r]] and emits buckets evenly.
  /// Advances simulated time until the last bucket completes.
  BucketedRunResult run_iteration(Bytes tensor_bytes,
                                  const std::map<int, Seconds>& backward_start,
                                  const std::map<int, Seconds>& backward_end);

  const DdpHookConfig& config() const noexcept { return config_; }

  /// The staging inbox bucket hooks post into. In the real library the
  /// autograd threads call submission().stage() directly; run_iteration
  /// drains it into the Work Queue in ticket order.
  SubmissionQueue& submission() noexcept { return submission_; }

 private:
  topology::Cluster& cluster_;
  collective::Strategy strategy_;
  DdpHookConfig config_;
  collective::Executor executor_;
  SubmissionQueue submission_;
  WorkQueue queue_;
};

}  // namespace adapcc::runtime
