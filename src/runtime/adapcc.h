// AdapCC public API (Sec. VI-A).
//
// The real library is imported in a training script as `import adapcc`;
// users call adapcc.init() (topology detection, profiling, strategy
// generation), adapcc.setup() (transmission-context set-up: buffer
// registration and CUDA-IPC handle exchange, done once before training),
// the primitives (allreduce(), alltoall(), ...), and adapcc.profile() to set
// the runtime re-profiling period. This class is that API over the
// simulated cluster; it is what the examples and the training loop use.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "collective/executor.h"
#include "profiler/profiler.h"
#include "relay/control_inbox.h"
#include "relay/relay_collective.h"
#include "synthesizer/synthesizer.h"
#include "telemetry/telemetry.h"
#include "topology/cluster.h"
#include "topology/detector.h"
#include "topology/logical_topology.h"
#include "util/rng.h"

namespace adapcc::runtime {

struct AdapccConfig {
  synthesizer::SynthesizerConfig synthesizer;
  profiler::ProfilerConfig profiler;
  relay::CoordinatorConfig coordinator;
  /// Re-profile every this many iterations (adapcc.profile(); Sec. VI-D
  /// uses 500). Zero disables runtime profiling.
  int profile_period_iterations = 500;
  /// Host threads for the synthesizer search and the profiler's model fits;
  /// propagated into both sub-configs when they leave theirs at 0. 0 = the
  /// ADAPCC_SOLVER_THREADS environment variable (default 1 = serial).
  /// Solved strategies are identical at every value.
  int solver_threads = 0;
  std::uint64_t seed = 42;
};

/// What one graph reconstruction cost (Fig. 19c): profiling, solving the
/// optimization, and re-establishing transmission contexts — all without
/// checkpointing or relaunching the job.
struct ReconstructionReport {
  Seconds profiling_time = 0.0;      ///< simulated, training blocked
  double solve_time_seconds = 0.0;   ///< host wall-clock of the synthesizer
  Seconds context_setup_time = 0.0;  ///< simulated buffer/IPC re-setup
  bool graph_changed = false;
  Seconds total() const noexcept {
    return profiling_time + solve_time_seconds + context_setup_time;
  }
};

/// Options of Adapcc::run_resilient (Sec. IV-C-2: fault recovery without
/// restarting the job).
struct ResilienceOptions {
  /// Base options for each attempt (ready/fill/dead times, active set). The
  /// active set is re-restricted to the surviving participants per attempt.
  collective::CollectiveOptions collective;
  /// Per-attempt watchdog; 0 = auto: watchdog_multiplier x the synthesizer's
  /// completion estimate for the current strategy, floored at watchdog_floor.
  Seconds watchdog_timeout = 0.0;
  double watchdog_multiplier = 8.0;
  Seconds watchdog_floor = milliseconds(50);
  /// Total executions (first try + retries) before giving up.
  int max_attempts = 4;
  /// Wait before retrying a stall with no rank-level suspects (a link
  /// blackout may heal); doubles per retry, on the simulated clock.
  Seconds retry_backoff = milliseconds(20);
};

/// Outcome of a resilient collective: the (last) executor result plus the
/// recovery trail.
struct ResilienceReport {
  collective::CollectiveResult result;
  bool ok = false;
  /// Terminal failure: survivors fell below the 2-rank floor. The training
  /// job cannot continue (distinct from a retryable/unrecovered stall).
  bool halted = false;
  std::string halt_reason;
  int attempts = 0;
  /// Ranks this call excluded from the participant set (crash suspects).
  std::set<int> excluded;
  /// First abort -> successful completion; 0 when the first attempt
  /// succeeded (Fig. 19c: recovery without checkpoint/restart).
  Seconds recovery_latency = 0.0;
};

/// Runtime telemetry wiring (observability, disabled by default): where to
/// export the trace / metrics when the runtime shuts down.
struct TelemetryOptions {
  telemetry::TelemetryConfig config;
  /// Chrome trace-event JSON (open in Perfetto / chrome://tracing); empty =
  /// no trace export.
  std::string trace_path;
  /// Flat per-iteration metrics dump; empty = no export.
  std::string metrics_csv_path;
  std::string metrics_json_path;
};

class Adapcc {
 public:
  explicit Adapcc(topology::Cluster& cluster, AdapccConfig config = {});

  /// Exports telemetry (when enabled via enable_telemetry) on shutdown.
  ~Adapcc();

  /// Turns the process-wide telemetry subsystem on (adapcc.telemetry() in
  /// the library's API surface). Any previously recorded data is discarded.
  /// The configured exports are written by the destructor or by an explicit
  /// export_telemetry() call.
  void enable_telemetry(TelemetryOptions options);

  /// Writes the configured telemetry exports now. Returns false when
  /// telemetry is disabled or any configured path could not be written.
  bool export_telemetry() const;

  /// adapcc.init(): detect topology, profile links, warm the synthesizer.
  void init();

  /// adapcc.setup(): registers buffers and exchanges CUDA-IPC handles for
  /// the transmission contexts; returns the simulated set-up time. Must be
  /// called after init() and before the first collective.
  Seconds setup();

  /// Collective primitives; each advances simulated time to completion.
  /// Empty `participants` means all ranks. The AllReduce variant runs under
  /// adaptive relay control when `ready_at` exhibits stragglers.
  collective::CollectiveResult allreduce(Bytes tensor_bytes,
                                         collective::CollectiveOptions options = {});
  collective::CollectiveResult reduce(Bytes tensor_bytes,
                                      collective::CollectiveOptions options = {});
  collective::CollectiveResult broadcast(Bytes tensor_bytes,
                                         collective::CollectiveOptions options = {});
  collective::CollectiveResult allgather(Bytes tensor_bytes,
                                         collective::CollectiveOptions options = {});
  collective::CollectiveResult reduce_scatter(Bytes tensor_bytes,
                                              collective::CollectiveOptions options = {});
  collective::CollectiveResult alltoall(Bytes tensor_bytes,
                                        collective::CollectiveOptions options = {});

  /// AllReduce under the relay coordinator (Sec. IV-C): decides wait vs
  /// phase-1/phase-2 from the per-rank ready times. `fill_start` optionally
  /// models incremental gradient production during the backward pass.
  /// `dead_at` (chaos harness) marks mid-collective crashes — see
  /// RelayCollectiveRunner::run_allreduce.
  relay::RelayRunResult allreduce_adaptive(Bytes tensor_bytes,
                                           const std::map<int, Seconds>& ready_at,
                                           const std::map<int, Seconds>& fill_start = {},
                                           const std::map<int, Seconds>& dead_at = {});

  /// Same, but with the per-rank ready / fill-start reports delivered
  /// through the coordinator's thread-safe control inbox (the path worker
  /// RPC handler threads use): drains the inbox, folds the reports
  /// (latest per rank wins), and runs the adaptive AllReduce.
  relay::RelayRunResult allreduce_adaptive(Bytes tensor_bytes, relay::ControlInbox& inbox);

  /// Recovery orchestrator (Sec. IV-C-2): runs a collective under a
  /// watchdog and, on a mid-collective failure, excludes the crashed ranks,
  /// bumps the topology epoch (invalidating every cached strategy),
  /// resynthesizes for the survivors, and re-executes — without restarting
  /// the job. Rank-less stalls (link blackouts) are retried with backoff on
  /// the simulated clock. Never hangs and never throws on mass failure: a
  /// survivor set below 2 ranks is reported as a halted terminal state.
  ResilienceReport run_resilient(collective::Primitive primitive, Bytes tensor_bytes,
                                 ResilienceOptions options = {});

  /// Runtime re-profiling + strategy regeneration (adapcc.profile() period
  /// hits). Reconstructs the communication graph in place — no checkpoint,
  /// no process-group rebuild. Returns the cost breakdown for Fig. 19c.
  ReconstructionReport reprofile(Bytes tensor_bytes = megabytes(256));

  /// Removes faulty workers from the participant set (fault recovery).
  void exclude_workers(const std::set<int>& failed);

  /// Re-admits previously excluded (recovered/replaced) workers — the
  /// elastic-scaling scenario of Sec. IV-A. Detection already covers the
  /// whole cluster, so only strategy regeneration is needed.
  void include_workers(const std::set<int>& recovered);

  const topology::LogicalTopology& topology() const { return topo_; }
  const topology::DetectionResult& detection() const { return detection_; }
  const std::vector<int>& participants() const noexcept { return participants_; }
  /// Report of the most recent synthesis through this runtime, including the
  /// cumulative strategy-cache hit/miss counters. A cache hit reports the
  /// cached solve's model cost and candidate count with zero solve time.
  /// Returns a snapshot by value: the report may be refreshed concurrently
  /// by producer-thread synthesis (see synthesize()).
  synthesizer::SynthesisReport last_synthesis() const;
  Seconds detection_time() const noexcept { return detection_.total_time; }
  bool initialized() const noexcept { return initialized_; }

  /// The strategy currently installed for a primitive (synthesizing it on
  /// first use).
  const collective::Strategy& strategy_for(collective::Primitive primitive, Bytes tensor_bytes);

  /// One-off synthesis for an explicit participant subset (used by the
  /// backend wrapper and by benches that vary the GPU configuration).
  ///
  /// Thread-safe against itself and against the collectives above: the
  /// strategy cache, the cumulative hit/miss counters, and last_synthesis()
  /// are guarded by one mutex, so a producer thread (a submission-queue /
  /// DDP-hook worker) may request strategies while the main thread drives
  /// simulated collectives. Topology-mutating calls (reprofile,
  /// exclude_workers, include_workers, init) remain main-thread-only — they
  /// rewrite the topology the solver reads.
  collective::Strategy synthesize(collective::Primitive primitive,
                                  const std::vector<int>& participants, Bytes tensor_bytes);

 private:
  collective::CollectiveResult run_primitive(collective::Primitive primitive, Bytes tensor_bytes,
                                             collective::CollectiveOptions options);

  /// Strategy-cache key: (primitive, participant set, log2 size bucket,
  /// topology epoch). Tensor sizes within one power-of-two band synthesize
  /// against the same candidate chunk list, so they share an entry.
  using StrategyCacheKey = std::tuple<int, std::vector<int>, int, std::uint64_t>;
  struct CachedStrategy {
    collective::Strategy strategy;
    synthesizer::SynthesisReport report;
  };

  /// All synthesis requests funnel through here: serves a cached strategy
  /// when the key matches the current topology epoch, otherwise solves and
  /// caches. Updates last_synthesis() either way.
  collective::Strategy synthesize_cached(collective::Primitive primitive,
                                         const std::vector<int>& participants, Bytes tensor_bytes);

  /// Bumps the topology epoch and drops every cached strategy — called
  /// whenever the profiled topology or the participant set changes
  /// (reprofile, exclude_workers, include_workers), so a stale graph can
  /// never be served against a changed cluster view.
  void invalidate_strategy_cache();

  topology::Cluster& cluster_;
  AdapccConfig config_;
  util::Rng rng_;
  topology::LogicalTopology topo_;
  topology::DetectionResult detection_;
  std::unique_ptr<synthesizer::Synthesizer> synthesizer_;
  std::unique_ptr<relay::RelayCollectiveRunner> relay_runner_;
  std::vector<int> participants_;
  /// Installed per-primitive strategies: main-thread-only (collectives run
  /// the simulated clock, which is single-threaded).
  std::map<collective::Primitive, collective::Strategy> strategies_;
  /// Guards strategy_cache_, topology_epoch_ reads on the cache path,
  /// last_report_, and the hit/miss totals — the state producer-thread
  /// synthesize() calls touch. Held across the solve, so concurrent
  /// synthesis requests serialize on the one Synthesizer (whose task pool
  /// parallelizes inside a solve instead).
  mutable std::mutex strategy_mutex_;
  std::map<StrategyCacheKey, CachedStrategy> strategy_cache_;
  std::uint64_t topology_epoch_ = 0;
  synthesizer::SynthesisReport last_report_;
  int cache_hits_total_ = 0;
  int cache_misses_total_ = 0;
  bool initialized_ = false;
  bool set_up_ = false;
  bool telemetry_owner_ = false;  ///< this runtime enabled telemetry
  TelemetryOptions telemetry_options_;
};

/// Simulated cost of establishing transmission contexts: per-context GPU
/// buffer allocation + CUDA-IPC handle exchange (an AllGather of handles) +
/// registration, executed once up front and reused afterwards (Sec. V-A).
Seconds context_setup_cost(int world_size, int contexts);

/// Cost model for the NCCL alternative in Fig. 19c: reconstructing a graph
/// requires checkpointing the model, terminating, rebuilding the process
/// group and restoring — magnitudes calibrated to the paper's description
/// of PyTorch behaviour.
Seconds nccl_restart_cost(int world_size, Bytes model_bytes);

}  // namespace adapcc::runtime
