#include "runtime/submission_queue.h"

namespace adapcc::runtime {

std::uint64_t SubmissionQueue::stage(CommRequest request) {
  std::uint64_t ticket = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return 0;
    ticket = next_ticket_++;
    staged_.push_back(std::move(request));
  }
  cv_.notify_one();
  return ticket;
}

std::vector<CommRequest> SubmissionQueue::drain() {
  std::deque<CommRequest> taken;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    taken.swap(staged_);
  }
  return {std::make_move_iterator(taken.begin()), std::make_move_iterator(taken.end())};
}

std::size_t SubmissionQueue::drain_into(WorkQueue& queue) {
  std::vector<CommRequest> requests = drain();
  for (CommRequest& request : requests) queue.submit(std::move(request));
  return requests.size();
}

bool SubmissionQueue::wait_for_work() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !staged_.empty() || closed_; });
  return !staged_.empty();
}

void SubmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool SubmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t SubmissionQueue::staged() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return staged_.size();
}

}  // namespace adapcc::runtime
