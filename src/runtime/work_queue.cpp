#include "runtime/work_queue.h"

#include <stdexcept>

namespace adapcc::runtime {

int WorkQueue::submit(CommRequest request) {
  request.id = next_id_++;
  queue_.push_back(std::move(request));
  if (!in_flight_) dispatch_next();
  return next_id_ - 1;
}

void WorkQueue::dispatch_next() {
  if (queue_.empty() || in_flight_) return;
  if (executor_.busy()) {
    // The previous invocation's tail traffic (relay-bound forwards) is
    // still draining; retry shortly — back-to-back requests reuse the same
    // transmission contexts, so ordering is preserved.
    sim_.schedule_after(microseconds(1), [this] { dispatch_next(); });
    return;
  }
  CommRequest request = std::move(queue_.front());
  queue_.pop_front();
  in_flight_ = true;
  executor_.start(request.tensor_bytes, request.options,
                  [this, id = request.id](const collective::CollectiveResult& result) {
                    results_.push_back(CommResultEntry{id, result});
                    in_flight_ = false;
                    dispatch_next();
                  });
}

std::optional<CommResultEntry> WorkQueue::try_fetch() {
  if (results_.empty()) return std::nullopt;
  CommResultEntry entry = std::move(results_.front());
  results_.pop_front();
  return entry;
}

void WorkQueue::drain(sim::Simulator& sim) {
  while (!idle() && sim.step()) {
  }
  if (!idle()) throw std::logic_error("WorkQueue::drain: simulation drained early");
}

}  // namespace adapcc::runtime
