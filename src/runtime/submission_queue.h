// Thread-safe staging inbox between framework threads and the dispatch loop
// (Sec. V-A: per-context polling threads).
//
// In the real library, DDP fires gradient-bucket hooks from autograd worker
// threads while AdapCC's polling thread drains them into the Work Queue. The
// simulation itself is single-threaded, so this queue is the one boundary
// where genuinely concurrent callers meet the runtime: stage() may be called
// from any thread at any time; drain()/drain_into() must only be called from
// the thread driving the simulator. The TSan CI job exercises this surface
// with real producer threads (tests/queue_test.cpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "runtime/work_queue.h"

namespace adapcc::runtime {

class SubmissionQueue {
 public:
  SubmissionQueue() = default;
  SubmissionQueue(const SubmissionQueue&) = delete;
  SubmissionQueue& operator=(const SubmissionQueue&) = delete;

  /// Stages a request (any thread). Returns the 1-based staging ticket;
  /// tickets fix the global submission order across producer threads.
  /// Staging to a closed queue is ignored and returns 0.
  std::uint64_t stage(CommRequest request);

  /// Removes and returns all staged requests in ticket order (dispatch
  /// thread only).
  std::vector<CommRequest> drain();

  /// Drains and submits everything to `queue` in ticket order; returns how
  /// many requests were handed over (dispatch thread only).
  std::size_t drain_into(WorkQueue& queue);

  /// Blocks until at least one request is staged or the queue is closed.
  /// Returns true when requests are available, false on closed-and-empty.
  /// This is the polling thread's idle wait — host wall time, deliberately
  /// outside the simulated clock (nothing simulated happens while blocked).
  bool wait_for_work();

  /// Wakes every waiter; subsequent stage() calls are ignored.
  void close();

  bool closed() const;
  std::size_t staged() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<CommRequest> staged_;
  std::uint64_t next_ticket_ = 1;
  bool closed_ = false;
};

}  // namespace adapcc::runtime
