#include "runtime/adapcc.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "synthesizer/cost_model.h"
#include "telemetry/export.h"
#include "util/logging.h"

namespace adapcc::runtime {

namespace {
using collective::CollectiveOptions;
using collective::CollectiveResult;
using collective::Executor;
using collective::Primitive;
using collective::Strategy;
}  // namespace

Seconds context_setup_cost(int world_size, int contexts) {
  // Buffer allocation + cudaIpcGetMemHandle per context (~2 ms each), plus
  // an AllGather of the handle table whose latency grows mildly with the
  // number of processes, plus host-IP table exchange.
  const Seconds per_context = milliseconds(2.0);
  const Seconds handle_allgather = milliseconds(0.5) * world_size;
  return per_context * contexts + handle_allgather + milliseconds(10);
}

Seconds nccl_restart_cost(int world_size, Bytes model_bytes) {
  // Checkpoint gradients/model to disk (~1 GB/s), tear down, rebuild the
  // process group (rendezvous grows with world size), restore the model and
  // rebuild NCCL communicators.
  const Seconds checkpoint = static_cast<double>(model_bytes) / 1e9;
  const Seconds restore = static_cast<double>(model_bytes) / 1e9;
  const Seconds process_group = 2.0 + 0.25 * world_size;
  const Seconds communicator_init = 1.0 + 0.05 * world_size;
  return checkpoint + restore + process_group + communicator_init;
}

Adapcc::Adapcc(topology::Cluster& cluster, AdapccConfig config)
    : cluster_(cluster), config_(std::move(config)), rng_(config_.seed) {
  // The runtime-level thread knob flows into both solver surfaces unless a
  // sub-config pinned its own count.
  if (config_.solver_threads > 0) {
    if (config_.synthesizer.solver_threads == 0) {
      config_.synthesizer.solver_threads = config_.solver_threads;
    }
    if (config_.profiler.solver_threads == 0) {
      config_.profiler.solver_threads = config_.solver_threads;
    }
  }
  for (int r = 0; r < cluster_.world_size(); ++r) participants_.push_back(r);
}

Adapcc::~Adapcc() {
  if (!telemetry_owner_) return;
  export_telemetry();
  telemetry::disable();
}

void Adapcc::enable_telemetry(TelemetryOptions options) {
  telemetry_options_ = std::move(options);
  telemetry::enable(telemetry_options_.config);
  telemetry_owner_ = true;
}

bool Adapcc::export_telemetry() const {
  auto* t = telemetry::get();
  if (t == nullptr) return false;
  bool ok = true;
  if (!telemetry_options_.trace_path.empty()) {
    ok = telemetry::export_chrome_trace(*t, telemetry_options_.trace_path) && ok;
  }
  if (!telemetry_options_.metrics_csv_path.empty()) {
    ok = telemetry::export_metrics_csv(*t, telemetry_options_.metrics_csv_path) && ok;
  }
  if (!telemetry_options_.metrics_json_path.empty()) {
    ok = telemetry::export_metrics_json(*t, telemetry_options_.metrics_json_path) && ok;
  }
  return ok;
}

void Adapcc::init() {
  const Seconds start = cluster_.simulator().now();
  topology::Detector detector(cluster_, rng_.fork());
  detection_ = detector.detect();
  topo_ = topology::Detector::build_logical_topology(cluster_, detection_);
  profiler::Profiler profiler(cluster_, config_.profiler);
  profiler.profile(topo_);
  synthesizer_ = std::make_unique<synthesizer::Synthesizer>(cluster_, topo_, config_.synthesizer);
  relay_runner_ =
      std::make_unique<relay::RelayCollectiveRunner>(cluster_, topo_, config_.coordinator);
  initialized_ = true;
  if (auto* t = telemetry::get()) {
    t->trace().complete(t->trace().track("runtime"), "init", start,
                        cluster_.simulator().now() - start,
                        telemetry::kv("ranks", cluster_.world_size()) + "," +
                            telemetry::kv("edges", static_cast<double>(topo_.edge_count())));
  }
  ADAPCC_LOG(kInfo, "adapcc") << "init complete: " << cluster_.world_size() << " ranks, "
                              << topo_.edge_count() << " logical edges";
}

Seconds Adapcc::setup() {
  if (!initialized_) throw std::logic_error("adapcc.setup() before adapcc.init()");
  const Seconds cost =
      context_setup_cost(cluster_.world_size(), config_.synthesizer.parallel_subs);
  cluster_.simulator().run_until(cluster_.simulator().now() + cost);
  set_up_ = true;
  return cost;
}

namespace {
/// Log2 bucket of the tensor size: the synthesizer sweeps the same chunk
/// candidates within a power-of-two size band, so nearby sizes solve to
/// structurally equal graphs and can share a cache entry.
int tensor_size_bucket(Bytes tensor_bytes) noexcept {
  int bucket = 0;
  while (tensor_bytes > 1) {
    tensor_bytes >>= 1;
    ++bucket;
  }
  return bucket;
}
}  // namespace

const collective::Strategy& Adapcc::strategy_for(Primitive primitive, Bytes tensor_bytes) {
  if (!initialized_) throw std::logic_error("adapcc: collective before init()");
  const auto it = strategies_.find(primitive);
  if (it != strategies_.end()) return it->second;
  Strategy strategy = synthesize_cached(primitive, participants_, tensor_bytes);
  return strategies_.emplace(primitive, std::move(strategy)).first->second;
}

collective::Strategy Adapcc::synthesize(Primitive primitive, const std::vector<int>& participants,
                                        Bytes tensor_bytes) {
  if (!initialized_) throw std::logic_error("adapcc: synthesize before init()");
  return synthesize_cached(primitive, participants, tensor_bytes);
}

collective::Strategy Adapcc::synthesize_cached(Primitive primitive,
                                               const std::vector<int>& participants,
                                               Bytes tensor_bytes) {
  // One lock covers lookup, solve, insert, and the report/counter updates:
  // producer threads (submission queue / DDP hook) may request strategies
  // while the main thread synthesizes for a collective, and the Synthesizer
  // itself is a single instance whose parallelism lives in its task pool.
  const std::lock_guard<std::mutex> lock(strategy_mutex_);
  StrategyCacheKey key{static_cast<int>(primitive), participants,
                       tensor_size_bucket(tensor_bytes), topology_epoch_};
  if (const auto it = strategy_cache_.find(key); it != strategy_cache_.end()) {
    ++cache_hits_total_;
    last_report_ = it->second.report;
    last_report_.solve_time_seconds = 0.0;  // served from cache, nothing solved
    last_report_.cache_hits = cache_hits_total_;
    last_report_.cache_misses = cache_misses_total_;
    if (auto* t = telemetry::get()) t->metrics().counter("runtime.strategy_cache_hits").add(1.0);
    return it->second.strategy;
  }
  ++cache_misses_total_;
  Strategy strategy = synthesizer_->synthesize(primitive, participants, tensor_bytes);
  last_report_ = synthesizer_->last_report();
  last_report_.cache_hits = cache_hits_total_;
  last_report_.cache_misses = cache_misses_total_;
  strategy_cache_.emplace(std::move(key),
                          CachedStrategy{strategy, synthesizer_->last_report()});
  return strategy;
}

void Adapcc::invalidate_strategy_cache() {
  const std::lock_guard<std::mutex> lock(strategy_mutex_);
  ++topology_epoch_;  // stale keys can never match again
  strategy_cache_.clear();
}

CollectiveResult Adapcc::run_primitive(Primitive primitive, Bytes tensor_bytes,
                                       CollectiveOptions options) {
  if (!set_up_) setup();
  const Strategy& strategy = strategy_for(primitive, tensor_bytes);
  Executor executor(cluster_, strategy);
  return executor.run(tensor_bytes, std::move(options));
}

CollectiveResult Adapcc::allreduce(Bytes tensor_bytes, CollectiveOptions options) {
  return run_primitive(Primitive::kAllReduce, tensor_bytes, std::move(options));
}
CollectiveResult Adapcc::reduce(Bytes tensor_bytes, CollectiveOptions options) {
  return run_primitive(Primitive::kReduce, tensor_bytes, std::move(options));
}
CollectiveResult Adapcc::broadcast(Bytes tensor_bytes, CollectiveOptions options) {
  return run_primitive(Primitive::kBroadcast, tensor_bytes, std::move(options));
}
CollectiveResult Adapcc::allgather(Bytes tensor_bytes, CollectiveOptions options) {
  return run_primitive(Primitive::kAllGather, tensor_bytes, std::move(options));
}
CollectiveResult Adapcc::reduce_scatter(Bytes tensor_bytes, CollectiveOptions options) {
  return run_primitive(Primitive::kReduceScatter, tensor_bytes, std::move(options));
}
CollectiveResult Adapcc::alltoall(Bytes tensor_bytes, CollectiveOptions options) {
  return run_primitive(Primitive::kAllToAll, tensor_bytes, std::move(options));
}

relay::RelayRunResult Adapcc::allreduce_adaptive(Bytes tensor_bytes,
                                                 const std::map<int, Seconds>& ready_at,
                                                 const std::map<int, Seconds>& fill_start,
                                                 const std::map<int, Seconds>& dead_at) {
  if (!set_up_) setup();
  const Strategy& strategy = strategy_for(Primitive::kAllReduce, tensor_bytes);
  return relay_runner_->run_allreduce(strategy, tensor_bytes, ready_at, fill_start, dead_at);
}

relay::RelayRunResult Adapcc::allreduce_adaptive(Bytes tensor_bytes,
                                                 relay::ControlInbox& inbox) {
  std::map<int, Seconds> ready_at;
  std::map<int, Seconds> fill_start;
  inbox.fold_reports(ready_at, fill_start);
  return allreduce_adaptive(tensor_bytes, ready_at, fill_start);
}

ResilienceReport Adapcc::run_resilient(Primitive primitive, Bytes tensor_bytes,
                                       ResilienceOptions options) {
  if (!set_up_) setup();
  sim::Simulator& sim = cluster_.simulator();
  ResilienceReport report;
  Seconds first_failure = -1.0;
  Seconds backoff = options.retry_backoff;
  while (report.attempts < options.max_attempts) {
    ++report.attempts;
    // strategy_for resynthesizes after an exclusion: exclude_workers cleared
    // the installed strategies and bumped the topology epoch, so the cache
    // cannot serve a graph containing the dead ranks.
    const Strategy& strategy = strategy_for(primitive, tensor_bytes);
    CollectiveOptions run_options = options.collective;
    // Restrict the active set to the survivors.
    if (run_options.active_ranks.empty()) {
      run_options.active_ranks.insert(participants_.begin(), participants_.end());
    } else {
      std::erase_if(run_options.active_ranks, [this](int rank) {
        return std::find(participants_.begin(), participants_.end(), rank) ==
               participants_.end();
      });
    }
    run_options.watchdog_timeout =
        options.watchdog_timeout > 0.0
            ? options.watchdog_timeout
            : std::max(options.watchdog_multiplier * synthesizer::estimate_completion_time(
                                                         strategy, topo_, tensor_bytes, {}),
                       options.watchdog_floor);
    Executor executor(cluster_, strategy);
    report.result = executor.run(tensor_bytes, std::move(run_options));
    if (report.result.ok()) {
      report.ok = true;
      if (first_failure >= 0.0) {
        report.recovery_latency = sim.now() - first_failure;
        if (auto* t = telemetry::get()) {
          t->metrics().counter("runtime.recoveries").add(1.0);
          t->metrics().histogram("runtime.recovery_seconds").observe(report.recovery_latency);
          t->trace().instant(t->trace().track("runtime"), "recovery-complete", sim.now(),
                             telemetry::kv("latency", report.recovery_latency) + "," +
                                 telemetry::kv("attempts", report.attempts));
        }
        ADAPCC_LOG(kInfo, "adapcc") << "recovered after " << report.attempts << " attempts ("
                                    << report.recovery_latency << "s, excluded "
                                    << report.excluded.size() << " ranks)";
      }
      return report;
    }
    if (first_failure < 0.0) first_failure = report.result.error.at;
    if (auto* t = telemetry::get()) t->metrics().counter("runtime.watchdog_aborts").add(1.0);
    const std::set<int> suspects = report.result.error.suspects;
    if (!suspects.empty()) {
      try {
        exclude_workers(suspects);
      } catch (const std::invalid_argument&) {
        // Mass failure: fewer than 2 survivors — a terminal state, not an
        // exception for the caller to chase.
        report.halted = true;
        std::ostringstream reason;
        reason << "insufficient workers: excluding " << suspects.size()
               << " crash suspects leaves < 2 of " << participants_.size();
        report.halt_reason = reason.str();
        ADAPCC_LOG(kWarn, "adapcc") << "resilient collective halted: " << report.halt_reason;
        return report;
      }
      report.excluded.insert(suspects.begin(), suspects.end());
    } else if (report.attempts < options.max_attempts) {
      // No rank-level culprit (link blackout / degradation): give the
      // network time to heal before re-executing.
      sim.run_until(sim.now() + backoff);
      backoff *= 2.0;
    }
  }
  std::ostringstream reason;
  reason << "collective still failing after " << report.attempts << " attempts: "
         << report.result.error.detail;
  report.halt_reason = reason.str();
  ADAPCC_LOG(kWarn, "adapcc") << "resilient collective gave up: " << report.halt_reason;
  return report;
}

ReconstructionReport Adapcc::reprofile(Bytes tensor_bytes) {
  if (!initialized_) throw std::logic_error("adapcc: reprofile before init()");
  ReconstructionReport report;

  // 1. Profiling on the fly (training blocked, no checkpoint). The profiled
  //    costs changed, so every cached strategy is stale: bump the epoch
  //    before re-solving.
  profiler::Profiler profiler(cluster_, config_.profiler);
  report.profiling_time = profiler.profile(topo_).wall_time;
  invalidate_strategy_cache();

  // 2. Re-synthesize each installed primitive; detect graph changes by
  //    fingerprint (Sec. IV-B: unchanged graph -> resume immediately).
  std::map<Primitive, Strategy> fresh;
  for (const auto& [primitive, old_strategy] : strategies_) {
    Strategy next = synthesize_cached(primitive, participants_, tensor_bytes);
    report.solve_time_seconds += last_synthesis().solve_time_seconds;
    if (next.fingerprint() != old_strategy.fingerprint()) report.graph_changed = true;
    fresh.emplace(primitive, std::move(next));
  }
  if (strategies_.empty()) {
    // Nothing installed yet: synthesize the default AllReduce once so the
    // reconstruction cost is representative.
    Strategy next = synthesize_cached(Primitive::kAllReduce, participants_, tensor_bytes);
    report.solve_time_seconds += last_synthesis().solve_time_seconds;
    fresh.emplace(Primitive::kAllReduce, std::move(next));
    report.graph_changed = true;
  }

  // 3. Re-establish transmission contexts only when the graph changed.
  if (report.graph_changed) {
    strategies_ = std::move(fresh);
    report.context_setup_time =
        context_setup_cost(cluster_.world_size(), config_.synthesizer.parallel_subs);
    cluster_.simulator().run_until(cluster_.simulator().now() + report.context_setup_time);
  }
  if (auto* t = telemetry::get()) {
    t->trace().instant(t->trace().track("runtime"), "reprofile", cluster_.simulator().now(),
                       telemetry::kv("graph_changed", report.graph_changed ? 1.0 : 0.0) + "," +
                           telemetry::kv("total_seconds", report.total()));
    t->metrics().counter("runtime.reprofiles").add(1.0);
  }
  return report;
}

void Adapcc::exclude_workers(const std::set<int>& failed) {
  std::vector<int> remaining;
  for (const int rank : participants_) {
    if (!failed.contains(rank)) remaining.push_back(rank);
  }
  if (remaining.size() < 2) throw std::invalid_argument("exclude_workers: < 2 workers remain");
  participants_ = std::move(remaining);
  strategies_.clear();  // graphs must be rebuilt for the smaller group
  invalidate_strategy_cache();
  if (auto* t = telemetry::get()) {
    t->trace().instant(t->trace().track("runtime"), "exclude-workers",
                       cluster_.simulator().now(),
                       telemetry::kv("failed", static_cast<double>(failed.size())) + "," +
                           telemetry::kv("remaining", static_cast<double>(participants_.size())));
    t->metrics().counter("runtime.workers_excluded").add(static_cast<double>(failed.size()));
  }
}

void Adapcc::include_workers(const std::set<int>& recovered) {
  std::set<int> members(participants_.begin(), participants_.end());
  for (const int rank : recovered) {
    if (rank < 0 || rank >= cluster_.world_size()) {
      throw std::invalid_argument("include_workers: rank outside the cluster");
    }
    members.insert(rank);
  }
  participants_.assign(members.begin(), members.end());
  strategies_.clear();  // graphs must be rebuilt for the larger group
  invalidate_strategy_cache();
  if (auto* t = telemetry::get()) {
    t->trace().instant(t->trace().track("runtime"), "include-workers",
                       cluster_.simulator().now(),
                       telemetry::kv("recovered", static_cast<double>(recovered.size())) + "," +
                           telemetry::kv("total", static_cast<double>(participants_.size())));
  }
}

synthesizer::SynthesisReport Adapcc::last_synthesis() const {
  if (synthesizer_ == nullptr) throw std::logic_error("adapcc: no synthesizer yet");
  const std::lock_guard<std::mutex> lock(strategy_mutex_);
  return last_report_;
}

}  // namespace adapcc::runtime
