// Work / Result queues (Fig. 4, Sec. III).
//
// "Queues store consecutive communication requests. In each iteration,
// tensors are pushed into the Work Queue by the ML framework and executed
// in order. Communicated tensors are fetched from the Result Queue for
// continued computation." This module implements those queues over the
// simulator: requests are drained strictly in order by a persistent
// dispatcher (the per-context polling thread of Sec. V-A), and completed
// results become available for the framework to fetch.
#pragma once

#include <deque>
#include <functional>
#include <optional>

#include "collective/executor.h"
#include "collective/primitive.h"

namespace adapcc::runtime {

struct CommRequest {
  int id = 0;
  collective::Primitive primitive = collective::Primitive::kAllReduce;
  Bytes tensor_bytes = 0;
  collective::CollectiveOptions options;
};

struct CommResultEntry {
  int id = 0;
  collective::CollectiveResult result;
};

/// In-order dispatcher over one Executor. Requests submitted while a
/// collective is in flight queue up and start back-to-back, preserving the
/// framework's tensor order (the DDP bucket order).
class WorkQueue {
 public:
  /// `executor` must outlive the queue.
  WorkQueue(sim::Simulator& sim, collective::Executor& executor)
      : sim_(sim), executor_(executor) {}
  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  /// Enqueues a request; returns its id. Dispatch starts immediately if the
  /// executor is idle.
  int submit(CommRequest request);

  /// Oldest unfetched completed result, if any.
  std::optional<CommResultEntry> try_fetch();

  std::size_t pending() const noexcept { return queue_.size() + (in_flight_ ? 1 : 0); }
  std::size_t completed() const noexcept { return results_.size(); }
  bool idle() const noexcept { return queue_.empty() && !in_flight_; }

  /// Runs the simulator until every submitted request has completed.
  void drain(sim::Simulator& sim);

 private:
  void dispatch_next();

  sim::Simulator& sim_;
  collective::Executor& executor_;
  std::deque<CommRequest> queue_;
  std::deque<CommResultEntry> results_;
  bool in_flight_ = false;
  int next_id_ = 1;
};

}  // namespace adapcc::runtime
