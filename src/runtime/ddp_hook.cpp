#include "runtime/ddp_hook.h"

#include <algorithm>
#include <stdexcept>

namespace adapcc::runtime {

DdpCommHook::DdpCommHook(topology::Cluster& cluster, collective::Strategy strategy,
                         DdpHookConfig config)
    : cluster_(cluster),
      strategy_(std::move(strategy)),
      config_(config),
      executor_(cluster_, strategy_),
      queue_(cluster_.simulator(), executor_) {
  if (config_.bucket_bytes == 0) throw std::invalid_argument("DdpCommHook: zero bucket size");
  if (strategy_.primitive != collective::Primitive::kAllReduce) {
    throw std::invalid_argument("DdpCommHook: strategy must be an AllReduce");
  }
}

BucketedRunResult DdpCommHook::run_iteration(Bytes tensor_bytes,
                                             const std::map<int, Seconds>& backward_start,
                                             const std::map<int, Seconds>& backward_end) {
  sim::Simulator& sim = cluster_.simulator();
  BucketedRunResult result;
  result.started = sim.now();
  const int buckets =
      static_cast<int>((tensor_bytes + config_.bucket_bytes - 1) / config_.bucket_bytes);
  result.buckets = buckets;

  for (int bucket = 0; bucket < buckets; ++bucket) {
    const Bytes offset = config_.bucket_bytes * static_cast<Bytes>(bucket);
    const Bytes bytes = std::min<Bytes>(config_.bucket_bytes, tensor_bytes - offset);
    CommRequest request;
    request.primitive = collective::Primitive::kAllReduce;
    request.tensor_bytes = bytes;
    // Rank r's bucket becomes ready as its backward pass reaches it.
    const double fraction = static_cast<double>(bucket + 1) / static_cast<double>(buckets);
    for (const int rank : strategy_.participants) {
      const auto begin_it = backward_start.find(rank);
      const auto end_it = backward_end.find(rank);
      const Seconds begin = begin_it == backward_start.end() ? sim.now() : begin_it->second;
      const Seconds end = end_it == backward_end.end() ? begin : end_it->second;
      request.options.ready_at[rank] = begin + fraction * (end - begin);
    }
    // Through the staging inbox, as the real autograd-thread hooks would go.
    submission_.stage(std::move(request));
  }
  submission_.drain_into(queue_);

  queue_.drain(sim);
  while (auto entry = queue_.try_fetch()) {
    result.bucket_finish.push_back(entry->result.finished);
  }
  result.finished = result.bucket_finish.empty() ? sim.now() : result.bucket_finish.back();
  return result;
}

}  // namespace adapcc::runtime
