// Seeded, simulated-time fault injection (the chaos harness behind the
// fault-tolerance claims of Sec. IV-C-2 / Fig. 19).
//
// A FaultSchedule describes *what* goes wrong and *when* on the simulated
// clock: NIC blackouts and degradation windows (driven through the
// sanctioned Cluster::set_nic_capacity_fraction shaper), link flapping,
// worker crashes at an absolute time (mid-collective, after some chunks have
// been contributed), worker pause/resume windows, and probabilistic loss of
// coordinator control messages. FaultInjector::arm() turns the schedule into
// simulator events; everything downstream — executor watchdog, RPC
// retransmission, the runtime's recovery orchestrator — is exercised by
// replaying a schedule, and the same seed replays the same faults
// bit-for-bit.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "relay/rpc.h"
#include "topology/cluster.h"
#include "util/rng.h"
#include "util/units.h"

namespace adapcc::chaos {

/// NIC capacity fraction that stalls every flow crossing the NIC: small
/// enough that capacity * fraction lands below FlowLink's minimum progress
/// rate for any realistic NIC, yet positive so the shaper accepts it.
inline constexpr double kBlackoutFraction = 1e-15;

/// One NIC-level fault window on an instance. Plain degradation holds the
/// capacity at `capacity_fraction` for `duration`; with `flaps` > 0 the
/// window is instead `flaps` down/up cycles of `flap_period` each (link
/// flapping), starting at `start`.
struct LinkFault {
  int instance = 0;
  Seconds start = 0.0;
  Seconds duration = 0.0;
  double capacity_fraction = kBlackoutFraction;
  int flaps = 0;
  Seconds flap_period = 0.0;
};

/// Worker `rank` dies at absolute time `at`: chunks it produced before `at`
/// were contributed, everything after is missing (see
/// collective::CollectiveOptions::dead_at).
struct WorkerCrash {
  int rank = 0;
  Seconds at = 0.0;
};

/// Worker `rank` is paused (cgroup freeze, GC stall, preemption) for
/// `duration` starting at `start`; a tensor that would have been ready
/// after the pause began is delayed by the pause length.
struct WorkerPause {
  int rank = 0;
  Seconds start = 0.0;
  Seconds duration = 0.0;
};

/// Control messages handed to the network inside the window are dropped
/// with `probability` (exercises RPC retransmission).
struct RpcLossWindow {
  Seconds start = 0.0;
  Seconds duration = 0.0;
  double probability = 0.0;
};

struct FaultSchedule {
  std::vector<LinkFault> link_faults;
  std::vector<WorkerCrash> crashes;
  std::vector<WorkerPause> pauses;
  std::vector<RpcLossWindow> rpc_loss;

  bool empty() const noexcept {
    return link_faults.empty() && crashes.empty() && pauses.empty() && rpc_loss.empty();
  }

  /// Shifts every fault time by `offset`. Schedules are typically generated
  /// relative to t = 0; shift by Simulator::now() to aim them at a workload
  /// starting after detection/profiling has already advanced the clock.
  void shift(Seconds offset);
};

class FaultInjector : public relay::RpcMessageFilter {
 public:
  /// `seed` drives only the probabilistic parts (RPC loss draws); the
  /// schedule itself is deterministic, so one seed means one fault replay.
  FaultInjector(topology::Cluster& cluster, FaultSchedule schedule, std::uint64_t seed);

  /// Schedules every link fault (and crash/pause telemetry marker) on the
  /// cluster's simulator. All schedule times are absolute simulated times —
  /// run the schedule against a fresh simulator (or arm at t = 0) for
  /// reproducible replays. Call once before running the workload; a second
  /// call is a no-op.
  void arm();

  /// Crash times keyed by rank, for CollectiveOptions::dead_at.
  std::map<int, Seconds> dead_at() const;
  std::set<int> crashed_ranks() const;

  /// Pause-adjusted readiness: every pause that begins before the nominal
  /// ready time delays the rank by its full duration.
  Seconds adjusted_ready(int rank, Seconds nominal) const;
  std::map<int, Seconds> adjust_ready(const std::map<int, Seconds>& nominal) const;

  /// relay::RpcMessageFilter: loses the message when `now` falls in an RPC
  /// loss window and the seeded coin says so.
  bool should_drop(int from_rank, int to_rank, Seconds now) override;

  const FaultSchedule& schedule() const noexcept { return schedule_; }
  int faults_armed() const noexcept { return faults_armed_; }
  int rpc_drops() const noexcept { return rpc_drops_; }

 private:
  void arm_link_fault(const LinkFault& fault);
  /// Applies the shaper at simulated-fire-time with telemetry + logging.
  void apply_fraction(int instance, double fraction, const char* what);

  topology::Cluster& cluster_;
  FaultSchedule schedule_;
  util::Rng rng_;
  bool armed_ = false;
  int faults_armed_ = 0;
  int rpc_drops_ = 0;
};

/// Knobs of random_schedule(). Defaults produce a mixed schedule (blackout
/// or degradation windows, possibly flapping, one crash, one pause, one RPC
/// loss window) inside a 200 ms horizon.
struct RandomScheduleConfig {
  Seconds horizon = milliseconds(200);
  int link_faults = 2;
  int crashes = 1;
  int pauses = 1;
  int rpc_windows = 1;
  double blackout_probability = 0.5;
  double flap_probability = 0.25;
  double degraded_fraction = 0.1;
  double rpc_loss_probability = 0.3;
  Seconds min_fault_duration = milliseconds(5);
  Seconds max_fault_duration = milliseconds(40);
};

/// Seeded random fault schedule over the cluster: same (seed, cluster,
/// config) always yields the same schedule. Crash ranks are distinct and
/// capped so at least two survivors remain.
FaultSchedule random_schedule(std::uint64_t seed, const topology::Cluster& cluster,
                              const RandomScheduleConfig& config = {});

}  // namespace adapcc::chaos
