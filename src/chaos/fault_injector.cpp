#include "chaos/fault_injector.h"

#include <algorithm>
#include <string>

#include "telemetry/telemetry.h"
#include "util/logging.h"

namespace adapcc::chaos {

namespace {

void count_fault(const char* kind, Seconds at) {
  auto* t = telemetry::get();
  if (t == nullptr) return;
  t->metrics().counter("chaos.faults_injected").add(1.0);
  t->metrics().counter(std::string("chaos.") + kind).add(1.0);
  t->trace().instant(t->trace().track("chaos"), std::string("fault:") + kind, at);
}

}  // namespace

void FaultSchedule::shift(Seconds offset) {
  for (LinkFault& fault : link_faults) fault.start += offset;
  for (WorkerCrash& crash : crashes) crash.at += offset;
  for (WorkerPause& pause : pauses) pause.start += offset;
  for (RpcLossWindow& window : rpc_loss) window.start += offset;
}

FaultInjector::FaultInjector(topology::Cluster& cluster, FaultSchedule schedule,
                             std::uint64_t seed)
    : cluster_(cluster), schedule_(std::move(schedule)), rng_(seed) {}

void FaultInjector::apply_fraction(int instance, double fraction, const char* what) {
  cluster_.set_nic_capacity_fraction(instance, fraction);
  count_fault(what, cluster_.simulator().now());
  ADAPCC_LOG(kInfo, "chaos") << what << ": instance " << instance << " capacity fraction "
                             << fraction;
}

void FaultInjector::arm_link_fault(const LinkFault& fault) {
  sim::Simulator& sim = cluster_.simulator();
  const bool blackout = fault.capacity_fraction <= kBlackoutFraction;
  const char* down_kind = fault.flaps > 0 ? "link_flap" : (blackout ? "link_blackout" : "link_degraded");
  if (fault.flaps > 0 && fault.flap_period > 0) {
    for (int k = 0; k < fault.flaps; ++k) {
      const Seconds down = fault.start + 2.0 * static_cast<double>(k) * fault.flap_period;
      const Seconds up = down + fault.flap_period;
      sim.schedule_at(down, [this, fault, down_kind] {
        apply_fraction(fault.instance, fault.capacity_fraction, down_kind);
      });
      sim.schedule_at(up, [this, fault] { apply_fraction(fault.instance, 1.0, "link_restored"); });
      ++faults_armed_;
    }
    return;
  }
  sim.schedule_at(fault.start, [this, fault, down_kind] {
    apply_fraction(fault.instance, fault.capacity_fraction, down_kind);
  });
  sim.schedule_at(fault.start + fault.duration,
                  [this, fault] { apply_fraction(fault.instance, 1.0, "link_restored"); });
  ++faults_armed_;
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  sim::Simulator& sim = cluster_.simulator();
  for (const LinkFault& fault : schedule_.link_faults) arm_link_fault(fault);
  // Crashes and pauses act through dead_at()/adjust_ready(), not through the
  // simulator; the events below only mark them on the trace so a chaos run's
  // timeline shows every fault at its fire time.
  for (const WorkerCrash& crash : schedule_.crashes) {
    sim.schedule_at(crash.at, [this, crash] {
      count_fault("worker_crash", cluster_.simulator().now());
      ADAPCC_LOG(kWarn, "chaos") << "worker " << crash.rank << " crashed";
    });
    ++faults_armed_;
  }
  for (const WorkerPause& pause : schedule_.pauses) {
    sim.schedule_at(pause.start, [this, pause] {
      count_fault("worker_pause", cluster_.simulator().now());
      ADAPCC_LOG(kInfo, "chaos") << "worker " << pause.rank << " paused for " << pause.duration
                                 << "s";
    });
    ++faults_armed_;
  }
  faults_armed_ += static_cast<int>(schedule_.rpc_loss.size());
  ADAPCC_LOG(kInfo, "chaos") << "armed " << faults_armed_ << " fault(s)";
}

std::map<int, Seconds> FaultInjector::dead_at() const {
  std::map<int, Seconds> out;
  for (const WorkerCrash& crash : schedule_.crashes) {
    const auto it = out.find(crash.rank);
    if (it == out.end() || crash.at < it->second) out[crash.rank] = crash.at;
  }
  return out;
}

std::set<int> FaultInjector::crashed_ranks() const {
  std::set<int> out;
  for (const WorkerCrash& crash : schedule_.crashes) out.insert(crash.rank);
  return out;
}

Seconds FaultInjector::adjusted_ready(int rank, Seconds nominal) const {
  Seconds ready = nominal;
  for (const WorkerPause& pause : schedule_.pauses) {
    if (pause.rank == rank && ready >= pause.start) ready += pause.duration;
  }
  return ready;
}

std::map<int, Seconds> FaultInjector::adjust_ready(const std::map<int, Seconds>& nominal) const {
  std::map<int, Seconds> out;
  for (const auto& [rank, ready] : nominal) out[rank] = adjusted_ready(rank, ready);
  return out;
}

bool FaultInjector::should_drop(int from_rank, int to_rank, Seconds now) {
  for (const RpcLossWindow& window : schedule_.rpc_loss) {
    if (now < window.start || now >= window.start + window.duration) continue;
    if (!rng_.bernoulli(window.probability)) continue;
    ++rpc_drops_;
    count_fault("rpc_drop", now);
    ADAPCC_LOG(kDebug, "chaos") << "dropped control message " << from_rank << " -> " << to_rank;
    return true;
  }
  return false;
}

FaultSchedule random_schedule(std::uint64_t seed, const topology::Cluster& cluster,
                              const RandomScheduleConfig& config) {
  util::Rng rng(seed);
  FaultSchedule schedule;
  const int instances = cluster.instance_count();
  const int world = cluster.world_size();
  const auto duration = [&rng, &config] {
    return rng.uniform(config.min_fault_duration, config.max_fault_duration);
  };
  for (int i = 0; i < config.link_faults && instances > 0; ++i) {
    LinkFault fault;
    fault.instance = static_cast<int>(rng.uniform_int(0, instances - 1));
    fault.start = rng.uniform(0.0, 0.5 * config.horizon);
    fault.duration = duration();
    fault.capacity_fraction =
        rng.bernoulli(config.blackout_probability) ? kBlackoutFraction : config.degraded_fraction;
    if (rng.bernoulli(config.flap_probability)) {
      fault.flaps = static_cast<int>(rng.uniform_int(2, 4));
      fault.flap_period = fault.duration / static_cast<double>(2 * fault.flaps);
    }
    schedule.link_faults.push_back(fault);
  }
  // Distinct crash ranks, capped so at least two survivors remain.
  const int max_crashes = std::min(config.crashes, std::max(world - 2, 0));
  std::set<int> crashed;
  while (static_cast<int>(crashed.size()) < max_crashes) {
    const int rank = static_cast<int>(rng.uniform_int(0, world - 1));
    if (!crashed.insert(rank).second) continue;
    schedule.crashes.push_back({rank, rng.uniform(0.1 * config.horizon, 0.6 * config.horizon)});
  }
  for (int i = 0; i < config.pauses && world > 0; ++i) {
    WorkerPause pause;
    pause.rank = static_cast<int>(rng.uniform_int(0, world - 1));
    pause.start = rng.uniform(0.0, 0.5 * config.horizon);
    pause.duration = duration();
    schedule.pauses.push_back(pause);
  }
  for (int i = 0; i < config.rpc_windows; ++i) {
    RpcLossWindow window;
    window.start = rng.uniform(0.0, 0.5 * config.horizon);
    window.duration = duration();
    window.probability = config.rpc_loss_probability;
    schedule.rpc_loss.push_back(window);
  }
  return schedule;
}

}  // namespace adapcc::chaos
