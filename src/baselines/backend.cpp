#include "baselines/backend.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "collective/builders.h"

namespace adapcc::baselines {

namespace {

using collective::chain_tree;
using collective::CollectiveOptions;
using collective::CollectiveResult;
using collective::Executor;
using collective::Primitive;
using collective::Strategy;
using collective::SubCollective;
using collective::Tree;
using topology::NodeId;

constexpr Bytes kNcclSlice = 512_KiB;  // NCCL pipeline slice granularity
constexpr Bytes kMscclChunk = 1_MiB;   // fixed chunk in the provided sketches
constexpr Bytes kBlinkChunk = megabytes(8);  // Blink sets chunk size empirically (8 MB)

std::map<int, std::vector<int>> group_by_instance(const topology::Cluster& cluster,
                                                  const std::vector<int>& participants) {
  std::map<int, std::vector<int>> by_instance;
  for (const int rank : participants) {
    by_instance[cluster.instance_of_rank(rank)].push_back(rank);
  }
  for (auto& [_, ranks] : by_instance) std::sort(ranks.begin(), ranks.end());
  return by_instance;
}

/// The GPU "closest to the NIC": lowest local rank on the NIC's PCIe switch
/// (NCCL reduces onto it, Sec. VI-C).
int nic_proximal_rank(const topology::Cluster& cluster, int instance,
                      const std::vector<int>& ranks) {
  const auto& spec = cluster.instance(instance);
  for (const int rank : ranks) {
    if (spec.switch_of_gpu(cluster.local_index(rank)) == spec.nic_pcie_switch) return rank;
  }
  return ranks.front();
}

/// Intra-instance chain in plain rank order feeding `head` (NCCL's single
/// channel; ignores NVLink wiring, hence the PCIe fallback on fragmented
/// boxes, Sec. II-A).
void add_rank_order_chain(Tree& tree, const std::vector<int>& ranks, int head) {
  std::vector<int> order{head};
  for (const int rank : ranks) {
    if (rank != head) order.push_back(rank);
  }
  for (std::size_t i = order.size(); i-- > 1;) {
    tree.parent[NodeId::gpu(order[i])] = NodeId::gpu(order[i - 1]);
  }
}

/// Intra-instance chain that greedily follows NVLink wiring (Blink's
/// spanning trees).
void add_wiring_aware_chain(const topology::Cluster& cluster, Tree& tree,
                            const std::vector<int>& ranks, int head) {
  std::vector<int> chain{head};
  std::vector<int> remaining;
  for (const int rank : ranks) {
    if (rank != head) remaining.push_back(rank);
  }
  while (!remaining.empty()) {
    auto best = remaining.begin();
    bool best_nvlink = false;
    for (auto it = remaining.begin(); it != remaining.end(); ++it) {
      const bool nvlink = cluster.edge_type(NodeId::gpu(*it), NodeId::gpu(chain.back())) ==
                          topology::EdgeType::kNvlink;
      if (nvlink && !best_nvlink) {
        best = it;
        best_nvlink = true;
      }
    }
    chain.push_back(*best);
    remaining.erase(best);
  }
  for (std::size_t i = chain.size(); i-- > 1;) {
    tree.parent[NodeId::gpu(chain[i])] = NodeId::gpu(chain[i - 1]);
  }
}

/// Binary tree over the instances' head GPUs in index order — NCCL's
/// inter-server structure, oblivious to per-NIC bandwidth. Parents
/// aggregate their children's data before forwarding (rank-level trees),
/// so each inter-server hop carries one combined tensor.
void add_binary_head_tree(Tree& tree, const std::vector<int>& instances, int root_instance,
                          const std::map<int, NodeId>& head_of) {
  std::vector<NodeId> heads{head_of.at(root_instance)};
  for (const int inst : instances) {
    if (inst != root_instance) heads.push_back(head_of.at(inst));
  }
  for (std::size_t i = 1; i < heads.size(); ++i) {
    tree.parent[heads[i]] = heads[(i - 1) / 2];
  }
}

Strategy alltoall_strategy(const topology::Cluster& cluster,
                           const std::vector<int>& participants, int subs, Bytes chunk,
                           bool rotated, int concurrency, std::string origin) {
  Strategy strategy;
  strategy.primitive = Primitive::kAllToAll;
  strategy.participants = participants;
  strategy.origin = std::move(origin);
  std::vector<int> instance_of(static_cast<std::size_t>(cluster.world_size()));
  for (int r = 0; r < cluster.world_size(); ++r) {
    instance_of[static_cast<std::size_t>(r)] = cluster.instance_of_rank(r);
  }
  const auto routes = rotated
                          ? collective::rotated_alltoall_routes(participants, instance_of)
                          : collective::direct_alltoall_routes(participants, instance_of);
  for (int m = 0; m < subs; ++m) {
    SubCollective sub;
    sub.id = m;
    sub.fraction = 1.0 / subs;
    sub.chunk_bytes = chunk;
    sub.flows = routes;
    sub.alltoall_concurrency = concurrency;
    strategy.subs.push_back(std::move(sub));
  }
  return strategy;
}

/// Starts several executors concurrently and drains the simulator until all
/// complete; returns the stage's elapsed time (max across executors).
Seconds run_stage(topology::Cluster& cluster, std::vector<std::unique_ptr<Executor>>& executors,
                  Bytes tensor_bytes, const CollectiveOptions& options,
                  std::vector<CollectiveResult>* results_out) {
  sim::Simulator& sim = cluster.simulator();
  const Seconds start = sim.now();
  std::size_t outstanding = executors.size();
  std::vector<CollectiveResult> results(executors.size());
  for (std::size_t i = 0; i < executors.size(); ++i) {
    executors[i]->start(tensor_bytes, options,
                        [&results, &outstanding, i](const CollectiveResult& r) {
                          results[i] = r;
                          --outstanding;
                        });
  }
  while (outstanding > 0 && sim.step()) {
  }
  if (outstanding > 0) throw std::logic_error("run_stage: simulation drained early");
  Seconds end = start;
  for (const auto& result : results) end = std::max(end, result.finished);
  if (results_out != nullptr) *results_out = std::move(results);
  // Drain executor tail traffic so subsequent stages start clean.
  bool busy = true;
  while (busy) {
    busy = false;
    for (const auto& executor : executors) busy = busy || executor->busy();
    if (busy && !sim.step()) break;
  }
  return end - start;
}

}  // namespace

// --- NCCL -------------------------------------------------------------------

Strategy NcclBackend::plan(Primitive primitive, const std::vector<int>& participants,
                           Bytes tensor_bytes) {
  (void)tensor_bytes;
  if (primitive == Primitive::kAllToAll) {
    // Implemented with point-to-point ncclSend/ncclRecv pairs (Sec. VI-C):
    // every source works through its peers in the same rank order with the
    // default two P2P channels, so receivers are hit in lockstep (incast).
    return alltoall_strategy(cluster_, participants, /*subs=*/1, kNcclSlice,
                             /*rotated=*/false, /*concurrency=*/2, "nccl");
  }
  const auto by_instance = group_by_instance(cluster_, participants);
  Tree tree;
  std::map<int, NodeId> head_of;
  for (const auto& [inst, ranks] : by_instance) {
    const int head = nic_proximal_rank(cluster_, inst, ranks);
    head_of[inst] = NodeId::gpu(head);
    add_rank_order_chain(tree, ranks, head);
  }
  const int root_instance = by_instance.begin()->first;
  const NodeId root_gpu = head_of.at(root_instance);
  tree.root = root_gpu;
  if (by_instance.size() > 1) {
    std::vector<int> instances;
    for (const auto& [inst, _] : by_instance) instances.push_back(inst);
    add_binary_head_tree(tree, instances, root_instance, head_of);
  }
  Strategy strategy =
      collective::single_tree_strategy(primitive, participants, std::move(tree), kNcclSlice);
  strategy.origin = "nccl";
  return strategy;
}

CollectiveResult NcclBackend::run(Primitive primitive, const std::vector<int>& participants,
                                  Bytes tensor_bytes, CollectiveOptions options) {
  Executor executor(cluster_, plan(primitive, participants, tensor_bytes));
  return executor.run(tensor_bytes, std::move(options));
}

// --- MSCCL ------------------------------------------------------------------

Strategy MscclBackend::plan(Primitive primitive, const std::vector<int>& participants,
                            Bytes tensor_bytes) {
  (void)tensor_bytes;
  if (primitive == Primitive::kAllToAll) {
    // MSCCL sketches use a balanced (rotated) exchange but keep the fixed
    // chunk size and modest channel parallelism.
    return alltoall_strategy(cluster_, participants, /*subs=*/2, kMscclChunk,
                             /*rotated=*/true, /*concurrency=*/2, "msccl");
  }
  const auto by_instance = group_by_instance(cluster_, participants);
  // Two parallel channels (the pareto latency-bandwidth tradeoff), but the
  // sketch is rank-ordered and chunk size fixed: no link awareness.
  std::vector<Tree> trees;
  for (int channel = 0; channel < 2; ++channel) {
    Tree tree;
    std::map<int, NodeId> head_of;
    for (const auto& [inst, ranks] : by_instance) {
      // Channel 1 reverses the local chain to spread NVLink load.
      std::vector<int> order = ranks;
      if (channel == 1) std::reverse(order.begin(), order.end());
      const int head = order.front();
      head_of[inst] = NodeId::gpu(head);
      add_rank_order_chain(tree, order, head);
    }
    const int root_instance = by_instance.begin()->first;
    const NodeId root_gpu = head_of.at(root_instance);
    tree.root = root_gpu;
    if (by_instance.size() > 1) {
      std::vector<int> instances;
      for (const auto& [inst, _] : by_instance) instances.push_back(inst);
      if (channel == 0) {
        add_binary_head_tree(tree, instances, root_instance, head_of);
      } else {
        // Chain over the heads in index order.
        NodeId up = root_gpu;
        for (const int inst : instances) {
          if (inst == root_instance) continue;
          tree.parent[head_of.at(inst)] = up;
          up = head_of.at(inst);
        }
      }
    }
    trees.push_back(std::move(tree));
  }
  Strategy strategy = collective::multi_tree_strategy(primitive, participants, std::move(trees),
                                                      kMscclChunk);
  strategy.origin = "msccl";
  return strategy;
}

CollectiveResult MscclBackend::run(Primitive primitive, const std::vector<int>& participants,
                                   Bytes tensor_bytes, CollectiveOptions options) {
  Executor executor(cluster_, plan(primitive, participants, tensor_bytes));
  return executor.run(tensor_bytes, std::move(options));
}

// --- Blink -------------------------------------------------------------------

bool BlinkBackend::supports(Primitive primitive) {
  return primitive != Primitive::kAllToAll;  // no multi-server AllToAll
}

Strategy BlinkBackend::plan(Primitive primitive, const std::vector<int>& participants,
                            Bytes tensor_bytes) {
  (void)tensor_bytes;
  // For inspection only: the combined (unstaged) graph Blink would use.
  const auto by_instance = group_by_instance(cluster_, participants);
  Tree tree;
  std::map<int, NodeId> head_of;
  for (const auto& [inst, ranks] : by_instance) {
    const int head = nic_proximal_rank(cluster_, inst, ranks);
    head_of[inst] = NodeId::gpu(head);
    add_wiring_aware_chain(cluster_, tree, ranks, head);
  }
  const int root_instance = by_instance.begin()->first;
  const NodeId root_gpu = head_of.at(root_instance);
  tree.root = root_gpu;
  if (by_instance.size() > 1) {
    std::vector<int> instances;
    for (const auto& [inst, _] : by_instance) instances.push_back(inst);
    add_binary_head_tree(tree, instances, root_instance, head_of);
  }
  Strategy strategy =
      collective::single_tree_strategy(primitive, participants, std::move(tree), kBlinkChunk);
  strategy.origin = "blink";
  return strategy;
}

CollectiveResult BlinkBackend::run(Primitive primitive, const std::vector<int>& participants,
                                   Bytes tensor_bytes, CollectiveOptions options) {
  if (!supports(primitive)) {
    throw std::invalid_argument("Blink does not support multi-server AllToAll");
  }
  const auto by_instance = group_by_instance(cluster_, participants);
  sim::Simulator& sim = cluster_.simulator();
  const Seconds started = sim.now();

  // Stage 1: intra-server spanning-tree stage (reduce for reducing
  // primitives; skipped for pure broadcast).
  std::map<int, NodeId> head_of;
  std::vector<std::unique_ptr<Executor>> intra;
  for (const auto& [inst, ranks] : by_instance) {
    const int head = nic_proximal_rank(cluster_, inst, ranks);
    head_of[inst] = NodeId::gpu(head);
    if (ranks.size() < 2) continue;
    Tree tree;
    tree.root = NodeId::gpu(head);
    add_wiring_aware_chain(cluster_, tree, ranks, head);
    const Primitive stage_primitive =
        collective::requires_aggregation(primitive) ? Primitive::kReduce : Primitive::kBroadcast;
    Strategy strategy =
        collective::single_tree_strategy(stage_primitive, ranks, std::move(tree), kBlinkChunk);
    strategy.origin = "blink";
    intra.push_back(std::make_unique<Executor>(cluster_, std::move(strategy)));
  }
  if (collective::requires_aggregation(primitive) && !intra.empty()) {
    run_stage(cluster_, intra, tensor_bytes, options, nullptr);
  }

  // Stage 2: inter-server stage over the heads (NCCL-style binary tree),
  // started only after stage 1 completes (no pipelining across stages).
  CollectiveResult inter_result;
  std::vector<int> heads;
  for (const auto& [_, head] : head_of) heads.push_back(head.index);
  std::sort(heads.begin(), heads.end());
  if (heads.size() > 1) {
    NcclBackend inter(cluster_);
    // Heads are ready immediately now; stage-1 stragglers already absorbed.
    inter_result = inter.run(primitive, heads, tensor_bytes, {});
  }

  // Stage 3: intra-server broadcast of the aggregated result for AllReduce /
  // Broadcast-style primitives.
  if (primitive == Primitive::kAllReduce || primitive == Primitive::kBroadcast ||
      primitive == Primitive::kAllGather) {
    std::vector<std::unique_ptr<Executor>> down;
    for (const auto& [inst, ranks] : by_instance) {
      if (ranks.size() < 2) continue;
      Tree tree;
      tree.root = head_of.at(inst);
      add_wiring_aware_chain(cluster_, tree, ranks, head_of.at(inst).index);
      Strategy strategy =
          collective::single_tree_strategy(Primitive::kBroadcast, ranks, std::move(tree),
                                           kBlinkChunk);
      strategy.origin = "blink";
      down.push_back(std::make_unique<Executor>(cluster_, std::move(strategy)));
    }
    if (!down.empty()) run_stage(cluster_, down, tensor_bytes, {}, nullptr);
  }

  CollectiveResult result = std::move(inter_result);
  result.started = started;
  result.finished = sim.now();
  return result;
}

}  // namespace adapcc::baselines
