// Common interface for communication backends (Sec. VI-B).
//
// Every system under evaluation — AdapCC and the three baselines — executes
// through the same simulator and Executor, differing only in the strategies
// it builds (and, for Blink, in its lack of cross-stage pipelining). Benches
// iterate over Backend* to produce the per-system bars of Figs. 11-14.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "collective/executor.h"
#include "collective/primitive.h"
#include "topology/cluster.h"

namespace adapcc::baselines {

class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string name() const = 0;

  /// Runs one collective among `participants` with `tensor_bytes` per GPU;
  /// blocks (in simulated time) until completion.
  virtual collective::CollectiveResult run(collective::Primitive primitive,
                                           const std::vector<int>& participants,
                                           Bytes tensor_bytes,
                                           collective::CollectiveOptions options = {}) = 0;

  /// The strategy the backend would execute (for inspection/ablation). May
  /// be empty for staged backends whose execution is not a single strategy.
  virtual collective::Strategy plan(collective::Primitive primitive,
                                    const std::vector<int>& participants,
                                    Bytes tensor_bytes) = 0;
};

/// NCCL v2.14 model (Sec. VI-B/VI-C): rank-ordered intra-server chain onto
/// the GPU nearest the NIC (one channel), binary tree over servers in index
/// order with empirically assumed homogeneous bandwidth, fixed pipeline
/// slices, AllToAll via point-to-point send/recv. No profiling: the tree
/// ignores actual link speeds, which is what makes the slowest NIC the
/// bottleneck in heterogeneous settings.
class NcclBackend : public Backend {
 public:
  explicit NcclBackend(topology::Cluster& cluster) : cluster_(cluster) {}
  std::string name() const override { return "nccl"; }
  collective::CollectiveResult run(collective::Primitive primitive,
                                   const std::vector<int>& participants, Bytes tensor_bytes,
                                   collective::CollectiveOptions options = {}) override;
  collective::Strategy plan(collective::Primitive primitive,
                            const std::vector<int>& participants, Bytes tensor_bytes) override;

 private:
  topology::Cluster& cluster_;
};

/// MSCCL model: pareto-optimal SCCL-style algorithms with two parallel
/// channels, but sketches designed for DGX-like boxes — rank-ordered
/// structure, fixed chunk size, no awareness of measured link properties.
class MscclBackend : public Backend {
 public:
  explicit MscclBackend(topology::Cluster& cluster) : cluster_(cluster) {}
  std::string name() const override { return "msccl"; }
  collective::CollectiveResult run(collective::Primitive primitive,
                                   const std::vector<int>& participants, Bytes tensor_bytes,
                                   collective::CollectiveOptions options = {}) override;
  collective::Strategy plan(collective::Primitive primitive,
                            const std::vector<int>& participants, Bytes tensor_bytes) override;

 private:
  topology::Cluster& cluster_;
};

/// Blink model: topology-aware intra-server spanning trees, NCCL-style
/// inter-server aggregation, 8 MB empirical chunks — and, crucially, the
/// intra- and inter-server stages are NOT pipelined (Sec. VI-C), so each
/// stage runs to completion before the next starts.
class BlinkBackend : public Backend {
 public:
  explicit BlinkBackend(topology::Cluster& cluster) : cluster_(cluster) {}
  std::string name() const override { return "blink"; }
  collective::CollectiveResult run(collective::Primitive primitive,
                                   const std::vector<int>& participants, Bytes tensor_bytes,
                                   collective::CollectiveOptions options = {}) override;
  collective::Strategy plan(collective::Primitive primitive,
                            const std::vector<int>& participants, Bytes tensor_bytes) override;

  /// Blink does not support multi-server AllToAll (Sec. VI-C).
  static bool supports(collective::Primitive primitive);

 private:
  topology::Cluster& cluster_;
};

}  // namespace adapcc::baselines
