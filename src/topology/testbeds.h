// Ready-made cluster configurations matching the paper's evaluation
// (Sec. VI-B): four 4xA100 servers (100 Gbps) and two 4xV100 servers
// (50 Gbps), combined into the homogeneous and heterogeneous settings used
// throughout Figs. 11-19.
#pragma once

#include <vector>

#include "topology/hardware.h"

namespace adapcc::topology {

/// The full six-server testbed: A100 x4 (100 Gbps NIC) + V100 x2 (50 Gbps).
std::vector<InstanceSpec> paper_testbed(NetworkStack stack = NetworkStack::kRdma);

/// Homogeneous setting: four A100 servers ("Homo" in Fig. 14).
std::vector<InstanceSpec> homo_testbed(NetworkStack stack = NetworkStack::kRdma);

/// Heterogeneous setting: two A100 + two V100 servers ("Heter" in Fig. 14).
std::vector<InstanceSpec> heter_testbed(NetworkStack stack = NetworkStack::kRdma);

/// `servers` A100 boxes with `gpus_per_server` GPUs each; used for scale
/// sweeps (Fig. 19c) and the motivation experiments.
std::vector<InstanceSpec> a100_fleet(int servers, int gpus_per_server = 4,
                                     NetworkStack stack = NetworkStack::kRdma);

/// An instance with irregular NVLink wiring (Sec. II-A: GPUs without direct
/// NVLinks due to fragmentation): only consecutive pairs are wired.
InstanceSpec fragmented_a100_server(std::string name,
                                    NetworkStack stack = NetworkStack::kRdma);

/// An 8-GPU instance whose NVLinks form two interleaved islands
/// ({0,2,4,6} and {1,3,5,7}): a rank-order chain crosses PCIe on every hop,
/// while a wiring-aware chain crosses only once — the worst case for
/// NCCL's topology-oblivious intra-server channel.
InstanceSpec interleaved_a100_server(std::string name,
                                     NetworkStack stack = NetworkStack::kRdma);

}  // namespace adapcc::topology
