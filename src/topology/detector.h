// Detector (Sec. IV-A): infers the intra-instance topology by running probe
// traffic on the simulated hardware, then assembles the logical topology.
//
// Probes implemented exactly as the paper describes:
//  (1) NIC NUMA affinity — bind to each NUMA node, socket-loopback to the
//      NIC, pick the node with the smallest latency.
//  (2) PCIe switch co-location — for each GPU pair, both send 20 MB to the
//      CPU simultaneously (8 parallel transmissions each); depressed
//      bandwidth vs. a solo copy implies a shared switch uplink.
//  (3) NIC PCIe locality — each GPU copies to the CPU while the CPU runs a
//      socket loopback to the NIC; the GPU with the lowest copy bandwidth
//      shares the NIC's switch.
//  (+) NVLink adjacency — pairwise peer-to-peer probes; bandwidth far above
//      the PCIe ceiling indicates a direct NVLink.
//
// Probes (2), (3) and (+) run as real transfers through the FlowLink model,
// so contention is *measured*, not read from the spec. Probe (1) uses a
// synthesized latency sample (see Cluster::numa_loopback_latency).
#pragma once

#include <vector>

#include "topology/cluster.h"
#include "topology/logical_topology.h"
#include "util/rng.h"

namespace adapcc::topology {

struct InstanceDetection {
  int instance = 0;
  int nic_numa_node = 0;
  /// Detected switch-group id per local GPU (group numbering is arbitrary).
  std::vector<int> switch_group_of;
  /// Group id sharing a PCIe switch with the NIC.
  int nic_switch_group = 0;
  /// Detected NVLink adjacency, nvlink[a][b] for local indices.
  std::vector<std::vector<bool>> nvlink;
  /// Simulated time this instance spent probing.
  Seconds detection_time = 0.0;
};

struct DetectionResult {
  std::vector<InstanceDetection> instances;
  /// Wall time of the whole detection stage; instances probe concurrently,
  /// so this is the max across instances (the paper reports ~1.2 s constant).
  Seconds total_time = 0.0;
};

class Detector {
 public:
  Detector(Cluster& cluster, util::Rng rng) : cluster_(cluster), rng_(rng) {}

  /// Runs all probes on the simulator. Advances simulated time.
  DetectionResult detect();

  /// Builds the logical topology (Fig. 5a) from detection output: NVLink
  /// edges for detected pairs, PCIe fallback edges for unwired local pairs,
  /// GPU<->NIC edges, and a full NIC<->NIC mesh across instances.
  static LogicalTopology build_logical_topology(const Cluster& cluster,
                                                const DetectionResult& detection);

 private:
  InstanceDetection detect_instance(int instance);

  /// Starts `paths` concurrently (each store-and-forward over its links) and
  /// runs the simulator until all complete; returns elapsed simulated time.
  Seconds run_probe(const std::vector<std::pair<std::vector<sim::FlowLink*>, Bytes>>& paths);

  Cluster& cluster_;
  util::Rng rng_;
};

}  // namespace adapcc::topology
