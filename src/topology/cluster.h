// Simulated cluster: instantiates the physical resources described by
// InstanceSpecs as FlowLinks on a Simulator and maps logical-topology edges
// onto sequences of those links.
//
// Physical resources modelled per instance:
//   * one directed FlowLink per wired NVLink pair,
//   * per PCIe switch: an uplink (device->host), a downlink (host->device)
//     and an intra-switch peer-to-peer lane — sharing on the uplink is what
//     the Detector's probe (2) measures to discover switch co-location,
//   * per NIC: an egress and an ingress FlowLink (capacity = NIC bandwidth,
//     per-stream cap for TCP). Every inter-instance flow crosses the source
//     egress and the destination ingress, so fan-in/fan-out contention at a
//     NIC is captured even though instance-to-instance connectivity is a
//     full mesh (Sec. IV-A).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/flow_link.h"
#include "sim/simulator.h"
#include "topology/hardware.h"
#include "topology/node.h"

namespace adapcc::topology {

class Cluster {
 public:
  Cluster(sim::Simulator& sim, std::vector<InstanceSpec> instances);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Simulator& simulator() noexcept { return sim_; }

  int instance_count() const noexcept { return static_cast<int>(instances_.size()); }
  int world_size() const noexcept { return world_size_; }
  const InstanceSpec& instance(int index) const { return instances_.at(static_cast<std::size_t>(index)); }

  int instance_of_rank(int rank) const;
  int local_index(int rank) const;
  GpuKind gpu_kind(int rank) const;
  std::vector<int> ranks_on_instance(int instance) const;

  /// True when a logical edge exists between the two nodes. Edges:
  /// GPU<->GPU on one instance (NVLink if wired, else PCIe), GPU<->its own
  /// instance's NIC (PCIe), NIC<->NIC across instances (network), and
  /// composite GPU<->GPU network edges across instances (staging through
  /// both NICs; this is how one rank's aggregation kernel receives a remote
  /// rank's data, GPU-direct style).
  bool has_edge(NodeId from, NodeId to) const;
  EdgeType edge_type(NodeId from, NodeId to) const;

  /// The simulated links a chunk crosses when traversing the edge, in order.
  std::vector<sim::FlowLink*> edge_path(NodeId from, NodeId to);

  /// Ground-truth cost of a logical edge: sum of link alphas and the
  /// bottleneck bandwidth along the path. The Profiler must *recover* these
  /// from probes; tests compare its estimates against these oracles.
  Seconds true_alpha(NodeId from, NodeId to) const;
  BytesPerSecond true_bandwidth(NodeId from, NodeId to) const;

  /// All logical nodes / edges (used to seed the logical topology).
  std::vector<NodeId> all_nodes() const;
  std::vector<std::pair<NodeId, NodeId>> all_edges() const;

  /// Raw link accessors used by the Detector's probes (Sec. IV-A): GPU->CPU
  /// copies ride the uplink of the GPU's switch; a CPU<->NIC socket loopback
  /// occupies both links of the switch the NIC hangs off.
  int pcie_switch_count(int index) const { return instance(index).pcie_switch_count(); }
  sim::FlowLink& pcie_uplink(int instance, int switch_id);
  sim::FlowLink& pcie_downlink(int instance, int switch_id);
  sim::FlowLink& nic_egress(int instance);
  sim::FlowLink& nic_ingress(int instance);

  /// Synthesized measurement for detection probe (1): latency of a socket
  /// loopback to the NIC with the host process bound to `numa_node`.
  /// Derived from the spec's ground-truth NUMA affinity plus noise, since
  /// NUMA interconnects are not part of the flow-level model (see DESIGN.md).
  Seconds numa_loopback_latency(int instance, int numa_node, double noise) const;

  /// Volatile-network shaping (Sec. VI-D): rescales the NIC's egress and
  /// ingress capacity. `fraction` of 1.0 restores the spec value.
  void set_nic_capacity_fraction(int instance, double fraction);
  BytesPerSecond nic_capacity(int instance) const;

 private:
  struct InstanceLinks {
    // key: local_src * 64 + local_dst
    std::unordered_map<int, std::unique_ptr<sim::FlowLink>> nvlink;
    std::vector<std::unique_ptr<sim::FlowLink>> pcie_up;    // per switch
    std::vector<std::unique_ptr<sim::FlowLink>> pcie_down;  // per switch
    std::vector<std::unique_ptr<sim::FlowLink>> pcie_p2p;   // per switch
    std::unique_ptr<sim::FlowLink> nic_egress;
    std::unique_ptr<sim::FlowLink> nic_ingress;
  };

  void check_rank(int rank) const;
  const InstanceLinks& links_of(int instance) const {
    return links_.at(static_cast<std::size_t>(instance));
  }

  sim::Simulator& sim_;
  std::vector<InstanceSpec> instances_;
  std::vector<InstanceLinks> links_;
  std::vector<int> rank_to_instance_;
  std::vector<int> rank_to_local_;
  std::vector<int> first_rank_;  // per instance
  int world_size_ = 0;
};

}  // namespace adapcc::topology
