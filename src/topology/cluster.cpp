#include "topology/cluster.h"

#include <algorithm>
#include <stdexcept>

namespace adapcc::topology {

namespace {
int pair_key(int src, int dst) { return src * 64 + dst; }
}  // namespace

Cluster::Cluster(sim::Simulator& sim, std::vector<InstanceSpec> instances)
    : sim_(sim), instances_(std::move(instances)) {
  if (instances_.empty()) throw std::invalid_argument("Cluster: no instances");
  links_.reserve(instances_.size());
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const InstanceSpec& spec = instances_[i];
    if (spec.gpu_count <= 0 || spec.gpu_count > 63) {
      throw std::invalid_argument("Cluster: gpu_count out of range");
    }
    first_rank_.push_back(world_size_);
    for (int g = 0; g < spec.gpu_count; ++g) {
      rank_to_instance_.push_back(static_cast<int>(i));
      rank_to_local_.push_back(g);
      ++world_size_;
    }

    InstanceLinks links;
    const std::string prefix = spec.name.empty() ? "inst" + std::to_string(i) : spec.name;
    // NVLink: one directed link per wired ordered pair.
    for (int a = 0; a < spec.gpu_count; ++a) {
      for (int b = 0; b < spec.gpu_count; ++b) {
        if (a != b && spec.nvlink_connected(a, b)) {
          links.nvlink.emplace(
              pair_key(a, b),
              std::make_unique<sim::FlowLink>(
                  sim_, prefix + ".nvlink." + std::to_string(a) + ">" + std::to_string(b),
                  nvlink_alpha(), nvlink_bandwidth(spec.gpu_kind)));
        }
      }
    }
    // PCIe switches.
    const int switches = spec.pcie_switch_count();
    const BytesPerSecond pcie_bw = pcie_bandwidth(spec.pcie);
    for (int s = 0; s < switches; ++s) {
      const std::string tag = prefix + ".pcie.sw" + std::to_string(s);
      links.pcie_up.push_back(
          std::make_unique<sim::FlowLink>(sim_, tag + ".up", pcie_alpha(), pcie_bw));
      links.pcie_down.push_back(
          std::make_unique<sim::FlowLink>(sim_, tag + ".down", pcie_alpha(), pcie_bw));
      links.pcie_p2p.push_back(
          std::make_unique<sim::FlowLink>(sim_, tag + ".p2p", pcie_alpha(), pcie_bw));
    }
    // NIC egress/ingress; one-way network alpha is split across the two.
    const Seconds half_alpha = network_alpha(spec.nic.stack) / 2;
    const BytesPerSecond cap =
        spec.nic.stack == NetworkStack::kTcp ? tcp_per_stream_cap() : 0.0;
    links.nic_egress = std::make_unique<sim::FlowLink>(sim_, prefix + ".nic.egress", half_alpha,
                                                       spec.nic.bandwidth, cap);
    links.nic_ingress = std::make_unique<sim::FlowLink>(sim_, prefix + ".nic.ingress", half_alpha,
                                                        spec.nic.bandwidth, cap);
    links_.push_back(std::move(links));
  }
}

void Cluster::check_rank(int rank) const {
  if (rank < 0 || rank >= world_size_) throw std::out_of_range("Cluster: bad rank");
}

int Cluster::instance_of_rank(int rank) const {
  check_rank(rank);
  return rank_to_instance_[static_cast<std::size_t>(rank)];
}

int Cluster::local_index(int rank) const {
  check_rank(rank);
  return rank_to_local_[static_cast<std::size_t>(rank)];
}

GpuKind Cluster::gpu_kind(int rank) const {
  return instance(instance_of_rank(rank)).gpu_kind;
}

std::vector<int> Cluster::ranks_on_instance(int inst) const {
  const InstanceSpec& spec = instance(inst);
  std::vector<int> ranks(static_cast<std::size_t>(spec.gpu_count));
  const int base = first_rank_[static_cast<std::size_t>(inst)];
  for (int g = 0; g < spec.gpu_count; ++g) ranks[static_cast<std::size_t>(g)] = base + g;
  return ranks;
}

bool Cluster::has_edge(NodeId from, NodeId to) const {
  if (from == to) return false;
  if (from.is_gpu() && to.is_gpu()) return true;  // same-instance or composite network edge
  if (from.is_gpu() && to.is_nic()) return instance_of_rank(from.index) == to.index;
  if (from.is_nic() && to.is_gpu()) return from.index == instance_of_rank(to.index);
  return from.index != to.index;  // NIC<->NIC across instances
}

EdgeType Cluster::edge_type(NodeId from, NodeId to) const {
  if (!has_edge(from, to)) throw std::invalid_argument("edge_type: no such edge");
  if (from.is_nic() && to.is_nic()) return EdgeType::kNetwork;
  if (from.is_gpu() && to.is_gpu()) {
    const int inst = instance_of_rank(from.index);
    if (inst != instance_of_rank(to.index)) return EdgeType::kNetwork;
    const InstanceSpec& spec = instance(inst);
    return spec.nvlink_connected(local_index(from.index), local_index(to.index))
               ? EdgeType::kNvlink
               : EdgeType::kPcie;
  }
  return EdgeType::kPcie;  // GPU<->NIC staging
}

std::vector<sim::FlowLink*> Cluster::edge_path(NodeId from, NodeId to) {
  if (!has_edge(from, to)) throw std::invalid_argument("edge_path: no such edge");
  std::vector<sim::FlowLink*> path;
  if (from.is_nic() && to.is_nic()) {
    path.push_back(links_[static_cast<std::size_t>(from.index)].nic_egress.get());
    path.push_back(links_[static_cast<std::size_t>(to.index)].nic_ingress.get());
    return path;
  }
  if (from.is_gpu() && to.is_gpu()) {
    const int inst = instance_of_rank(from.index);
    const int to_inst = instance_of_rank(to.index);
    if (inst != to_inst) {
      // Composite cross-instance edge: PCIe staging out, both NICs, PCIe in.
      const InstanceSpec& from_spec = instance(inst);
      const InstanceSpec& to_spec = instance(to_inst);
      path.push_back(links_[static_cast<std::size_t>(inst)]
                         .pcie_up[static_cast<std::size_t>(
                             from_spec.switch_of_gpu(local_index(from.index)))]
                         .get());
      path.push_back(links_[static_cast<std::size_t>(inst)].nic_egress.get());
      path.push_back(links_[static_cast<std::size_t>(to_inst)].nic_ingress.get());
      path.push_back(links_[static_cast<std::size_t>(to_inst)]
                         .pcie_down[static_cast<std::size_t>(
                             to_spec.switch_of_gpu(local_index(to.index)))]
                         .get());
      return path;
    }
    const InstanceSpec& spec = instance(inst);
    InstanceLinks& links = links_[static_cast<std::size_t>(inst)];
    const int a = local_index(from.index);
    const int b = local_index(to.index);
    if (spec.nvlink_connected(a, b)) {
      path.push_back(links.nvlink.at(pair_key(a, b)).get());
      return path;
    }
    const int sa = spec.switch_of_gpu(a);
    const int sb = spec.switch_of_gpu(b);
    if (sa == sb) {
      path.push_back(links.pcie_p2p[static_cast<std::size_t>(sa)].get());
    } else {
      path.push_back(links.pcie_up[static_cast<std::size_t>(sa)].get());
      path.push_back(links.pcie_down[static_cast<std::size_t>(sb)].get());
    }
    return path;
  }
  if (from.is_gpu()) {  // GPU -> NIC: device-to-host staging over the uplink
    const int inst = instance_of_rank(from.index);
    const InstanceSpec& spec = instance(inst);
    InstanceLinks& links = links_[static_cast<std::size_t>(inst)];
    path.push_back(links.pcie_up[static_cast<std::size_t>(spec.switch_of_gpu(local_index(from.index)))].get());
    return path;
  }
  // NIC -> GPU: host-to-device staging over the downlink.
  const int inst = to.index >= 0 ? instance_of_rank(to.index) : 0;
  const InstanceSpec& spec = instance(inst);
  InstanceLinks& links = links_[static_cast<std::size_t>(inst)];
  path.push_back(links.pcie_down[static_cast<std::size_t>(spec.switch_of_gpu(local_index(to.index)))].get());
  return path;
}

Seconds Cluster::true_alpha(NodeId from, NodeId to) const {
  auto* self = const_cast<Cluster*>(this);
  Seconds alpha = 0;
  for (const auto* link : self->edge_path(from, to)) alpha += link->alpha();
  return alpha;
}

BytesPerSecond Cluster::true_bandwidth(NodeId from, NodeId to) const {
  auto* self = const_cast<Cluster*>(this);
  BytesPerSecond bw = 0;
  bool first = true;
  for (const auto* link : self->edge_path(from, to)) {
    BytesPerSecond effective = link->capacity();
    if (link->per_transfer_cap() > 0) effective = std::min(effective, link->per_transfer_cap());
    bw = first ? effective : std::min(bw, effective);
    first = false;
  }
  return bw;
}

std::vector<NodeId> Cluster::all_nodes() const {
  std::vector<NodeId> nodes;
  for (int r = 0; r < world_size_; ++r) nodes.push_back(NodeId::gpu(r));
  for (int i = 0; i < instance_count(); ++i) nodes.push_back(NodeId::nic(i));
  return nodes;
}

std::vector<std::pair<NodeId, NodeId>> Cluster::all_edges() const {
  std::vector<std::pair<NodeId, NodeId>> edges;
  const auto nodes = all_nodes();
  for (const NodeId& a : nodes) {
    for (const NodeId& b : nodes) {
      if (has_edge(a, b)) edges.emplace_back(a, b);
    }
  }
  return edges;
}

sim::FlowLink& Cluster::pcie_uplink(int inst, int switch_id) {
  return *links_.at(static_cast<std::size_t>(inst)).pcie_up.at(static_cast<std::size_t>(switch_id));
}

sim::FlowLink& Cluster::pcie_downlink(int inst, int switch_id) {
  return *links_.at(static_cast<std::size_t>(inst)).pcie_down.at(static_cast<std::size_t>(switch_id));
}

sim::FlowLink& Cluster::nic_egress(int inst) {
  return *links_.at(static_cast<std::size_t>(inst)).nic_egress;
}

sim::FlowLink& Cluster::nic_ingress(int inst) {
  return *links_.at(static_cast<std::size_t>(inst)).nic_ingress;
}

Seconds Cluster::numa_loopback_latency(int inst, int numa_node, double noise) const {
  const InstanceSpec& spec = instance(inst);
  const Seconds base = microseconds(20);
  const Seconds cross_penalty = numa_node == spec.nic.numa_node ? 0.0 : microseconds(9);
  return std::max(microseconds(1), base + cross_penalty + noise);
}

void Cluster::set_nic_capacity_fraction(int inst, double fraction) {
  if (fraction <= 0) throw std::invalid_argument("set_nic_capacity_fraction: non-positive");
  const InstanceSpec& spec = instance(inst);
  InstanceLinks& links = links_[static_cast<std::size_t>(inst)];
  links.nic_egress->set_capacity(spec.nic.bandwidth * fraction);
  links.nic_ingress->set_capacity(spec.nic.bandwidth * fraction);
}

BytesPerSecond Cluster::nic_capacity(int inst) const {
  return links_of(inst).nic_egress->capacity();
}

}  // namespace adapcc::topology
