// The logical topology (Fig. 5a): the graph over GPU and NIC nodes that the
// Profiler annotates with alpha-beta costs and the Synthesizer routes flows
// on. Constructed by the Detector from probe results, not from the cluster's
// ground truth.
#pragma once

#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "topology/node.h"
#include "util/units.h"

namespace adapcc::topology {

struct LogicalEdge {
  NodeId from;
  NodeId to;
  EdgeType type = EdgeType::kNetwork;
  /// alpha-beta cost (Sec. IV-B): alpha in seconds, beta in seconds/byte.
  /// Zero until the Profiler fills them in. `beta` is the cost seen by a
  /// single stream; `port_beta` is the inverse of the full port capacity
  /// reachable with parallel streams (for RDMA the two coincide; a TCP
  /// stream is kernel-limited to ~20 Gbps while the NIC port is faster).
  Seconds alpha = 0.0;
  double beta = 0.0;
  double port_beta = 0.0;  ///< 0 = same as beta
  bool profiled = false;

  double effective_port_beta() const noexcept { return port_beta > 0 ? port_beta : beta; }

  BytesPerSecond bandwidth() const noexcept { return beta > 0 ? 1.0 / beta : 0.0; }
  /// Transfer time of `size` bytes under the alpha-beta model.
  Seconds transfer_time(Bytes size) const noexcept {
    return alpha + beta * static_cast<double>(size);
  }
};

class LogicalTopology {
 public:
  void add_node(NodeId node);
  void add_edge(LogicalEdge edge);

  const std::vector<NodeId>& nodes() const noexcept { return nodes_; }
  const std::vector<LogicalEdge>& edges() const noexcept { return edges_; }
  std::vector<LogicalEdge>& mutable_edges() noexcept { return edges_; }

  bool has_node(NodeId node) const noexcept;
  bool has_edge(NodeId from, NodeId to) const noexcept;

  /// Throws std::out_of_range when the edge does not exist.
  const LogicalEdge& edge(NodeId from, NodeId to) const;
  LogicalEdge& mutable_edge(NodeId from, NodeId to);

  /// Outgoing edges of `node`, in insertion order.
  std::vector<const LogicalEdge*> out_edges(NodeId node) const;
  std::vector<const LogicalEdge*> in_edges(NodeId node) const;

  std::vector<NodeId> gpu_nodes() const;
  std::vector<NodeId> nic_nodes() const;

  std::size_t edge_count() const noexcept { return edges_.size(); }

  /// GPU placement: which instance (and hence which NIC) a rank lives on.
  /// Network-edge bandwidth is shared per NIC port, so the cost model needs
  /// this to aggregate loads (Eq. 3) even for composite GPU-GPU edges.
  void set_instance_of(int rank, int instance) { instance_of_[rank] = instance; }
  /// Instance of a node: the stored placement for GPUs, the index for NICs.
  /// Throws std::out_of_range for GPUs with no recorded placement.
  int instance_of(NodeId node) const {
    return node.is_nic() ? node.index : instance_of_.at(node.index);
  }
  bool has_placement(NodeId node) const noexcept {
    return node.is_nic() || instance_of_.contains(node.index);
  }

 private:
  std::vector<NodeId> nodes_;
  std::vector<LogicalEdge> edges_;
  std::unordered_map<NodeId, std::unordered_map<NodeId, std::size_t>> index_;
  std::unordered_map<int, int> instance_of_;
};

}  // namespace adapcc::topology
