#include "topology/logical_topology.h"

#include <algorithm>

namespace adapcc::topology {

void LogicalTopology::add_node(NodeId node) {
  if (!has_node(node)) {
    nodes_.push_back(node);
    index_.emplace(node, std::unordered_map<NodeId, std::size_t>{});
  }
}

void LogicalTopology::add_edge(LogicalEdge edge) {
  add_node(edge.from);
  add_node(edge.to);
  if (has_edge(edge.from, edge.to)) {
    throw std::invalid_argument("LogicalTopology: duplicate edge " + to_string(edge.from) +
                                "->" + to_string(edge.to));
  }
  index_[edge.from][edge.to] = edges_.size();
  edges_.push_back(edge);
}

bool LogicalTopology::has_node(NodeId node) const noexcept { return index_.contains(node); }

bool LogicalTopology::has_edge(NodeId from, NodeId to) const noexcept {
  const auto it = index_.find(from);
  return it != index_.end() && it->second.contains(to);
}

const LogicalEdge& LogicalTopology::edge(NodeId from, NodeId to) const {
  return edges_.at(index_.at(from).at(to));
}

LogicalEdge& LogicalTopology::mutable_edge(NodeId from, NodeId to) {
  return edges_.at(index_.at(from).at(to));
}

std::vector<const LogicalEdge*> LogicalTopology::out_edges(NodeId node) const {
  std::vector<const LogicalEdge*> result;
  for (const auto& edge : edges_) {
    if (edge.from == node) result.push_back(&edge);
  }
  return result;
}

std::vector<const LogicalEdge*> LogicalTopology::in_edges(NodeId node) const {
  std::vector<const LogicalEdge*> result;
  for (const auto& edge : edges_) {
    if (edge.to == node) result.push_back(&edge);
  }
  return result;
}

std::vector<NodeId> LogicalTopology::gpu_nodes() const {
  std::vector<NodeId> result;
  std::copy_if(nodes_.begin(), nodes_.end(), std::back_inserter(result),
               [](const NodeId& n) { return n.is_gpu(); });
  return result;
}

std::vector<NodeId> LogicalTopology::nic_nodes() const {
  std::vector<NodeId> result;
  std::copy_if(nodes_.begin(), nodes_.end(), std::back_inserter(result),
               [](const NodeId& n) { return n.is_nic(); });
  return result;
}

}  // namespace adapcc::topology
