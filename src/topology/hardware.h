// Hardware description of the simulated cluster: GPU kinds, NICs, link
// technologies, and instance (server) specifications. These specs are the
// *ground truth* of the simulation; the Detector and Profiler must rediscover
// them from probes, exactly as AdapCC does on real hardware (Sec. IV-A/B).
#pragma once

#include <string>
#include <vector>

#include "util/units.h"

namespace adapcc::topology {

/// GPU generations used in the paper's testbed and motivation (Sec. II-A).
enum class GpuKind { kV100, kA100, kH100, kM40 };

std::string to_string(GpuKind kind);

/// Relative compute throughput, normalized to V100 = 1.0. Drives the
/// computation-time model in src/training (heterogeneous stragglers).
double compute_scale(GpuKind kind);

/// Effective per-direction NVLink bandwidth between a directly wired pair.
BytesPerSecond nvlink_bandwidth(GpuKind kind);

/// NVLink latency (alpha) — a few microseconds regardless of generation.
Seconds nvlink_alpha();

/// Effective throughput of an element-wise aggregation (reduce) kernel,
/// bounded by device memory bandwidth. Drives the cost of a_{m,g} = 1.
BytesPerSecond reduce_kernel_throughput(GpuKind kind);

/// Fixed cost of launching one CUDA kernel / recording one event. Pipelined
/// chunks overlap this with transmission (Sec. V-B).
Seconds kernel_launch_overhead();

enum class PcieGen { kGen3, kGen4 };

/// Usable x16 bandwidth of one PCIe switch uplink.
BytesPerSecond pcie_bandwidth(PcieGen gen);
Seconds pcie_alpha();

enum class NetworkStack { kRdma, kTcp };

std::string to_string(NetworkStack stack);

/// Single-stream ceiling for TCP (Sec. VI-D observes ~20 Gbps per channel
/// caused by kernel-space overhead). RDMA streams are uncapped.
BytesPerSecond tcp_per_stream_cap();

Seconds network_alpha(NetworkStack stack);

struct NicSpec {
  BytesPerSecond bandwidth = gbps(100);
  NetworkStack stack = NetworkStack::kRdma;
  int numa_node = 0;  ///< ground truth for detection probe (1)
};

/// One server / cloud instance.
struct InstanceSpec {
  std::string name;
  GpuKind gpu_kind = GpuKind::kA100;
  int gpu_count = 4;
  PcieGen pcie = PcieGen::kGen4;
  NicSpec nic;
  /// Pairs of local GPU indices wired with NVLink. An empty list with
  /// `nvlink_all_to_all` set means every pair is wired (DGX-style).
  std::vector<std::pair<int, int>> nvlink_pairs;
  bool nvlink_all_to_all = true;
  /// PCIe switch membership: pcie_switch_of[i] is the switch id of GPU i.
  /// Empty means two GPUs per switch ({0,1} -> switch 0, {2,3} -> switch 1).
  std::vector<int> pcie_switch_of;
  /// Switch id the NIC hangs off (ground truth for detection probe (3)).
  int nic_pcie_switch = 0;
  int numa_nodes = 2;

  int pcie_switch_count() const;
  int switch_of_gpu(int local_gpu) const;
  bool nvlink_connected(int a, int b) const;
};

/// Convenience builders for the paper's server types (Sec. VI-B).
InstanceSpec a100_server(std::string name, NetworkStack stack = NetworkStack::kRdma);
InstanceSpec v100_server(std::string name, NetworkStack stack = NetworkStack::kRdma);

}  // namespace adapcc::topology
