#include "topology/testbeds.h"

namespace adapcc::topology {

std::vector<InstanceSpec> paper_testbed(NetworkStack stack) {
  std::vector<InstanceSpec> specs;
  for (int i = 0; i < 4; ++i) specs.push_back(a100_server("a100-" + std::to_string(i), stack));
  for (int i = 0; i < 2; ++i) specs.push_back(v100_server("v100-" + std::to_string(i), stack));
  return specs;
}

std::vector<InstanceSpec> homo_testbed(NetworkStack stack) {
  return a100_fleet(4, 4, stack);
}

std::vector<InstanceSpec> heter_testbed(NetworkStack stack) {
  std::vector<InstanceSpec> specs;
  for (int i = 0; i < 2; ++i) specs.push_back(a100_server("a100-" + std::to_string(i), stack));
  for (int i = 0; i < 2; ++i) specs.push_back(v100_server("v100-" + std::to_string(i), stack));
  return specs;
}

std::vector<InstanceSpec> a100_fleet(int servers, int gpus_per_server, NetworkStack stack) {
  std::vector<InstanceSpec> specs;
  for (int i = 0; i < servers; ++i) {
    InstanceSpec spec = a100_server("a100-" + std::to_string(i), stack);
    spec.gpu_count = gpus_per_server;
    specs.push_back(std::move(spec));
  }
  return specs;
}

InstanceSpec interleaved_a100_server(std::string name, NetworkStack stack) {
  InstanceSpec spec = a100_server(std::move(name), stack);
  spec.gpu_count = 8;
  spec.nvlink_all_to_all = false;
  spec.nvlink_pairs = {{0, 2}, {2, 4}, {4, 6}, {1, 3}, {3, 5}, {5, 7}};
  // Four PCIe switches, two GPUs each (defaults: {0,1},{2,3},{4,5},{6,7}).
  return spec;
}

InstanceSpec fragmented_a100_server(std::string name, NetworkStack stack) {
  InstanceSpec spec = a100_server(std::move(name), stack);
  spec.nvlink_all_to_all = false;
  // Only (0,1) and (2,3) keep NVLinks; 1<->2 must fall back to PCIe, the
  // situation where NCCL cannot form an NVLink ring (Sec. II-A).
  spec.nvlink_pairs = {{0, 1}, {2, 3}};
  return spec;
}

}  // namespace adapcc::topology
