#include "topology/hardware.h"

#include <algorithm>
#include <stdexcept>

namespace adapcc::topology {

std::string to_string(GpuKind kind) {
  switch (kind) {
    case GpuKind::kV100: return "V100";
    case GpuKind::kA100: return "A100";
    case GpuKind::kH100: return "H100";
    case GpuKind::kM40: return "M40";
  }
  return "?";
}

double compute_scale(GpuKind kind) {
  // Rough mixed-precision training throughput ratios, V100 = 1.
  switch (kind) {
    case GpuKind::kV100: return 1.0;
    case GpuKind::kA100: return 2.0;
    case GpuKind::kH100: return 4.0;
    case GpuKind::kM40: return 0.3;
  }
  return 1.0;
}

BytesPerSecond nvlink_bandwidth(GpuKind kind) {
  // Effective per-direction bandwidth between one directly wired pair.
  switch (kind) {
    case GpuKind::kV100: return gBps(150);  // NVLink 2.0
    case GpuKind::kA100: return gBps(300);  // NVLink 3.0
    case GpuKind::kH100: return gBps(450);  // NVLink 4.0 (900 GB/s bi)
    case GpuKind::kM40: return gBps(40);    // NVLink 1.0 class
  }
  return gBps(150);
}

Seconds nvlink_alpha() { return microseconds(3); }

BytesPerSecond reduce_kernel_throughput(GpuKind kind) {
  // Roughly half the device memory bandwidth (read a + read b + write out).
  switch (kind) {
    case GpuKind::kV100: return gBps(400);
    case GpuKind::kA100: return gBps(800);
    case GpuKind::kH100: return gBps(1500);
    case GpuKind::kM40: return gBps(120);
  }
  return gBps(400);
}

Seconds kernel_launch_overhead() { return microseconds(6); }

BytesPerSecond pcie_bandwidth(PcieGen gen) {
  switch (gen) {
    case PcieGen::kGen3: return gBps(12);
    case PcieGen::kGen4: return gBps(24);
  }
  return gBps(12);
}

Seconds pcie_alpha() { return microseconds(5); }

std::string to_string(NetworkStack stack) {
  return stack == NetworkStack::kRdma ? "RDMA" : "TCP";
}

BytesPerSecond tcp_per_stream_cap() { return gbps(20); }

Seconds network_alpha(NetworkStack stack) {
  // One-way latency between NICs in the same data center.
  return stack == NetworkStack::kRdma ? microseconds(8) : microseconds(40);
}

int InstanceSpec::pcie_switch_count() const {
  if (pcie_switch_of.empty()) return (gpu_count + 1) / 2;
  return 1 + *std::max_element(pcie_switch_of.begin(), pcie_switch_of.end());
}

int InstanceSpec::switch_of_gpu(int local_gpu) const {
  if (local_gpu < 0 || local_gpu >= gpu_count) {
    throw std::out_of_range("switch_of_gpu: bad local gpu index");
  }
  if (pcie_switch_of.empty()) return local_gpu / 2;
  return pcie_switch_of[static_cast<std::size_t>(local_gpu)];
}

bool InstanceSpec::nvlink_connected(int a, int b) const {
  if (a == b) return false;
  if (nvlink_all_to_all && nvlink_pairs.empty()) return true;
  for (const auto& [x, y] : nvlink_pairs) {
    if ((x == a && y == b) || (x == b && y == a)) return true;
  }
  return false;
}

InstanceSpec a100_server(std::string name, NetworkStack stack) {
  InstanceSpec spec;
  spec.name = std::move(name);
  spec.gpu_kind = GpuKind::kA100;
  spec.gpu_count = 4;
  spec.pcie = PcieGen::kGen4;
  spec.nic = NicSpec{gbps(100), stack, /*numa_node=*/0};
  spec.nic_pcie_switch = 0;
  return spec;
}

InstanceSpec v100_server(std::string name, NetworkStack stack) {
  InstanceSpec spec;
  spec.name = std::move(name);
  spec.gpu_kind = GpuKind::kV100;
  spec.gpu_count = 4;
  spec.pcie = PcieGen::kGen3;
  spec.nic = NicSpec{gbps(50), stack, /*numa_node=*/1};
  spec.nic_pcie_switch = 1;
  return spec;
}

}  // namespace adapcc::topology
