#include "topology/detector.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>

#include "util/logging.h"

namespace adapcc::topology {

namespace {

constexpr Bytes kProbeBytes = 20_MiB;  // Sec. IV-A probe (2) uses 20 MB
constexpr int kParallelStreams = 8;

/// Sends `bytes` through `path` store-and-forward; `on_done` fires when the
/// last link delivers.
void send_through(std::shared_ptr<const std::vector<sim::FlowLink*>> path, std::size_t index,
                  Bytes bytes, std::function<void()> on_done) {
  if (index >= path->size()) {
    if (on_done) on_done();
    return;
  }
  sim::FlowLink* link = (*path)[index];
  link->start_transfer(bytes, [path = std::move(path), index, bytes,
                               done = std::move(on_done)]() mutable {
    send_through(std::move(path), index + 1, bytes, std::move(done));
  });
}

}  // namespace

Seconds Detector::run_probe(
    const std::vector<std::pair<std::vector<sim::FlowLink*>, Bytes>>& paths) {
  sim::Simulator& sim = cluster_.simulator();
  const Seconds start = sim.now();
  std::size_t outstanding = paths.size();
  for (const auto& [path, bytes] : paths) {
    send_through(std::make_shared<const std::vector<sim::FlowLink*>>(path), 0, bytes,
                 [&outstanding] { --outstanding; });
  }
  while (outstanding > 0 && sim.step()) {
  }
  const Seconds elapsed = sim.now() - start;
  // Each probe stage also pays host-side coordination (process barriers,
  // socket setup, CUDA context switches) that is not part of the measured
  // transfer; it dominates the ~1.2 s wall time of detection the paper
  // reports. The overhead is excluded from the returned measurement.
  constexpr Seconds kCoordinationOverhead = milliseconds(35);
  sim.run_until(sim.now() + kCoordinationOverhead);
  return elapsed;
}

InstanceDetection Detector::detect_instance(int inst) {
  const InstanceSpec& spec = cluster_.instance(inst);
  InstanceDetection result;
  result.instance = inst;
  const Seconds start = cluster_.simulator().now();
  const int gpus = spec.gpu_count;

  // --- Probe (1): NIC NUMA affinity via socket loopbacks. ---------------
  Seconds best_latency = std::numeric_limits<Seconds>::infinity();
  for (int numa = 0; numa < spec.numa_nodes; ++numa) {
    // Take several loopback samples and keep the smallest (as the paper:
    // "the smallest latency measured in each case").
    Seconds smallest = std::numeric_limits<Seconds>::infinity();
    for (int s = 0; s < 5; ++s) {
      const double noise = rng_.normal(0.0, microseconds(1.5));
      smallest = std::min(smallest, cluster_.numa_loopback_latency(inst, numa, noise));
    }
    if (smallest < best_latency) {
      best_latency = smallest;
      result.nic_numa_node = numa;
    }
  }

  // --- Solo GPU->CPU copy bandwidth, reference for probes (2)/(3). ------
  std::vector<double> solo_bw(static_cast<std::size_t>(gpus));
  for (int g = 0; g < gpus; ++g) {
    std::vector<std::pair<std::vector<sim::FlowLink*>, Bytes>> probe;
    sim::FlowLink& up = cluster_.pcie_uplink(inst, spec.switch_of_gpu(g));
    for (int s = 0; s < kParallelStreams; ++s) {
      probe.push_back({{&up}, kProbeBytes / kParallelStreams});
    }
    const Seconds t = run_probe(probe);
    solo_bw[static_cast<std::size_t>(g)] = static_cast<double>(kProbeBytes) / t;
  }

  // --- Probe (2): pairwise simultaneous copies -> switch co-location. ---
  // Union-find over local GPUs; contention joins the pair.
  std::vector<int> parent(static_cast<std::size_t>(gpus));
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&parent](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) x = parent[static_cast<std::size_t>(x)];
    return x;
  };
  for (int a = 0; a < gpus; ++a) {
    for (int b = a + 1; b < gpus; ++b) {
      std::vector<std::pair<std::vector<sim::FlowLink*>, Bytes>> probe;
      sim::FlowLink& up_a = cluster_.pcie_uplink(inst, spec.switch_of_gpu(a));
      sim::FlowLink& up_b = cluster_.pcie_uplink(inst, spec.switch_of_gpu(b));
      for (int s = 0; s < kParallelStreams; ++s) {
        probe.push_back({{&up_a}, kProbeBytes / kParallelStreams});
        probe.push_back({{&up_b}, kProbeBytes / kParallelStreams});
      }
      const Seconds t = run_probe(probe);
      // Each GPU moved kProbeBytes during the window; contention shows as a
      // clearly sub-solo effective rate.
      const double pair_bw = static_cast<double>(kProbeBytes) / t;
      const double reference =
          std::min(solo_bw[static_cast<std::size_t>(a)], solo_bw[static_cast<std::size_t>(b)]);
      if (pair_bw < 0.7 * reference) {
        parent[static_cast<std::size_t>(find(a))] = find(b);
      }
    }
  }
  result.switch_group_of.resize(static_cast<std::size_t>(gpus));
  for (int g = 0; g < gpus; ++g) result.switch_group_of[static_cast<std::size_t>(g)] = find(g);

  // --- Probe (3): NIC locality. GPU copy vs. concurrent NIC loopback. ----
  double lowest_bw = std::numeric_limits<double>::infinity();
  int nic_neighbor_gpu = 0;
  for (int g = 0; g < gpus; ++g) {
    std::vector<std::pair<std::vector<sim::FlowLink*>, Bytes>> probe;
    sim::FlowLink& up = cluster_.pcie_uplink(inst, spec.switch_of_gpu(g));
    probe.push_back({{&up}, kProbeBytes});
    // The socket loopback to the NIC crosses the NIC's switch in both
    // directions (ground-truth routing, the detector doesn't see which).
    sim::FlowLink& nic_up = cluster_.pcie_uplink(inst, spec.nic_pcie_switch);
    sim::FlowLink& nic_down = cluster_.pcie_downlink(inst, spec.nic_pcie_switch);
    probe.push_back({{&nic_down}, kProbeBytes});
    probe.push_back({{&nic_up}, kProbeBytes});
    const Seconds t = run_probe(probe);
    const double bw = static_cast<double>(kProbeBytes) / t;
    if (bw < lowest_bw) {
      lowest_bw = bw;
      nic_neighbor_gpu = g;
    }
  }
  result.nic_switch_group =
      result.switch_group_of[static_cast<std::size_t>(nic_neighbor_gpu)];

  // --- NVLink adjacency: peer-to-peer bandwidth probes. ------------------
  result.nvlink.assign(static_cast<std::size_t>(gpus),
                       std::vector<bool>(static_cast<std::size_t>(gpus), false));
  const auto ranks = cluster_.ranks_on_instance(inst);
  for (int a = 0; a < gpus; ++a) {
    for (int b = 0; b < gpus; ++b) {
      if (a == b) continue;
      auto path = cluster_.edge_path(NodeId::gpu(ranks[static_cast<std::size_t>(a)]),
                                     NodeId::gpu(ranks[static_cast<std::size_t>(b)]));
      const Seconds t = run_probe({{path, kProbeBytes}});
      const double bw = static_cast<double>(kProbeBytes) / t;
      // NVLink is well above any PCIe generation's ceiling.
      if (bw > 1.5 * pcie_bandwidth(spec.pcie)) {
        result.nvlink[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = true;
      }
    }
  }

  result.detection_time = cluster_.simulator().now() - start;
  return result;
}

DetectionResult Detector::detect() {
  DetectionResult result;
  // Instances probe concurrently in reality; we run them sequentially on the
  // shared simulator (their links are disjoint) and report the max duration
  // as the wall time, matching the concurrent execution the paper measures.
  for (int i = 0; i < cluster_.instance_count(); ++i) {
    result.instances.push_back(detect_instance(i));
    result.total_time = std::max(result.total_time, result.instances.back().detection_time);
  }
  ADAPCC_LOG(kInfo, "detector") << "detection complete, wall time " << result.total_time << "s";
  return result;
}

LogicalTopology Detector::build_logical_topology(const Cluster& cluster,
                                                 const DetectionResult& detection) {
  LogicalTopology topo;
  for (int r = 0; r < cluster.world_size(); ++r) {
    topo.set_instance_of(r, cluster.instance_of_rank(r));
  }
  for (const auto& inst : detection.instances) {
    const auto ranks = cluster.ranks_on_instance(inst.instance);
    const int gpus = static_cast<int>(ranks.size());
    // GPU<->GPU edges: NVLink where detected, PCIe fallback otherwise.
    for (int a = 0; a < gpus; ++a) {
      for (int b = 0; b < gpus; ++b) {
        if (a == b) continue;
        LogicalEdge edge;
        edge.from = NodeId::gpu(ranks[static_cast<std::size_t>(a)]);
        edge.to = NodeId::gpu(ranks[static_cast<std::size_t>(b)]);
        edge.type = inst.nvlink[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)]
                        ? EdgeType::kNvlink
                        : EdgeType::kPcie;
        topo.add_edge(edge);
      }
    }
    // GPU<->NIC edges (PCIe staging).
    for (int g = 0; g < gpus; ++g) {
      const NodeId gpu = NodeId::gpu(ranks[static_cast<std::size_t>(g)]);
      const NodeId nic = NodeId::nic(inst.instance);
      topo.add_edge(LogicalEdge{gpu, nic, EdgeType::kPcie});
      topo.add_edge(LogicalEdge{nic, gpu, EdgeType::kPcie});
    }
  }
  // NIC<->NIC: instance connectivity treated as a full mesh (Sec. IV-A).
  for (int i = 0; i < cluster.instance_count(); ++i) {
    for (int j = 0; j < cluster.instance_count(); ++j) {
      if (i != j) topo.add_edge(LogicalEdge{NodeId::nic(i), NodeId::nic(j), EdgeType::kNetwork});
    }
  }
  // Composite cross-instance GPU<->GPU network edges: a rank can receive a
  // remote rank's data directly into its aggregation kernel (GPU-direct);
  // the cost is derived from the NIC pair's profile.
  for (int a = 0; a < cluster.world_size(); ++a) {
    for (int b = 0; b < cluster.world_size(); ++b) {
      if (a == b || cluster.instance_of_rank(a) == cluster.instance_of_rank(b)) continue;
      topo.add_edge(LogicalEdge{NodeId::gpu(a), NodeId::gpu(b), EdgeType::kNetwork});
    }
  }
  return topo;
}

}  // namespace adapcc::topology
