// Node identity in the logical topology (Fig. 5a): the graph G over which
// communication strategies are synthesized has GPU nodes (one per worker
// rank) and NIC nodes (one per instance), G = G_gpu ∪ G_nic.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace adapcc::topology {

struct NodeId {
  enum class Kind { kGpu, kNic };
  Kind kind = Kind::kGpu;
  int index = 0;  ///< global rank for GPUs, instance index for NICs

  static NodeId gpu(int rank) { return NodeId{Kind::kGpu, rank}; }
  static NodeId nic(int instance) { return NodeId{Kind::kNic, instance}; }

  bool is_gpu() const noexcept { return kind == Kind::kGpu; }
  bool is_nic() const noexcept { return kind == Kind::kNic; }

  friend bool operator==(const NodeId&, const NodeId&) = default;
  friend auto operator<=>(const NodeId&, const NodeId&) = default;
};

inline std::string to_string(const NodeId& node) {
  return (node.is_gpu() ? "gpu" : "nic") + std::to_string(node.index);
}

/// Technology of a logical edge; determines default costs and how the edge
/// maps onto simulated FlowLinks.
enum class EdgeType { kNvlink, kPcie, kNetwork };

inline std::string to_string(EdgeType type) {
  switch (type) {
    case EdgeType::kNvlink: return "nvlink";
    case EdgeType::kPcie: return "pcie";
    case EdgeType::kNetwork: return "network";
  }
  return "?";
}

}  // namespace adapcc::topology

template <>
struct std::hash<adapcc::topology::NodeId> {
  std::size_t operator()(const adapcc::topology::NodeId& node) const noexcept {
    return std::hash<int>()(node.index) * 2 +
           (node.kind == adapcc::topology::NodeId::Kind::kNic ? 1 : 0);
  }
};
