#include "collective/executor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "collective/behavior.h"
#include "sim/edge_channel.h"
#include "sim/gpu_stream.h"
#include "telemetry/telemetry.h"
#include "util/audit.h"
#include "util/logging.h"

namespace adapcc::collective {

namespace {

/// Number of chunks for `bytes` under chunk size `chunk`.
int chunk_count(Bytes bytes, Bytes chunk) {
  if (bytes == 0) return 0;
  return static_cast<int>((bytes + chunk - 1) / chunk);
}

Bytes bytes_of_chunk(Bytes total, Bytes chunk, int index) {
  const Bytes offset = chunk * static_cast<Bytes>(index);
  return std::min<Bytes>(chunk, total - offset);
}

}  // namespace

// ---------------------------------------------------------------------------
// Invocation: the state of one in-flight collective.
// ---------------------------------------------------------------------------

class Executor::Invocation {
 public:
  Invocation(topology::Cluster& cluster, const Strategy& strategy, Bytes tensor_bytes,
             CollectiveOptions options, std::function<void(const CollectiveResult&)> on_complete,
             std::function<void()> on_idle)
      : cluster_(cluster),
        sim_(cluster.simulator()),
        strategy_(strategy),
        tensor_bytes_(tensor_bytes),
        options_(std::move(options)),
        on_complete_(std::move(on_complete)),
        on_idle_(std::move(on_idle)) {
    if (options_.active_ranks.empty()) {
      options_.active_ranks.insert(strategy_.participants.begin(), strategy_.participants.end());
    }
    for (const int rank : options_.active_ranks) {
      if (rank < 0 || rank >= kMaxRanks) throw std::invalid_argument("Invocation: rank out of range");
    }
  }

  void start() {
    result_.started = sim_.now();
    if (auto* t = telemetry::get()) {
      tel_span_ = t->trace().begin_span(
          t->trace().track("executor"), to_string(strategy_.primitive), sim_.now(),
          telemetry::kv("tensor_bytes", static_cast<double>(tensor_bytes_)) + "," +
              telemetry::kv("subs", static_cast<double>(strategy_.subs.size())));
    }
    for (std::size_t s = 0; s < strategy_.subs.size(); ++s) build_sub(static_cast<int>(s));
    if (outstanding_ == 0) {
      // Degenerate (e.g. zero-byte tensor): complete immediately.
      finish();
    } else {
      if (options_.watchdog_timeout > 0) {
        watchdog_event_ =
            sim_.schedule_after(options_.watchdog_timeout, [this] { on_watchdog(); });
      }
      for (auto& sub : subs_) launch_sub(*sub);
    }
  }

  ~Invocation() {
    // Normal teardown happens via on_idle_ with every event drained; on the
    // abort path (and defensive destruction) pending events capturing `this`
    // must be disarmed first.
    sim_.cancel(watchdog_event_);
    for (const sim::EventId& id : op_events_) sim_.cancel(id);
  }

  bool idle() const noexcept { return pending_ops_ == 0; }

 private:
  struct NodeState {
    NodeId id;
    BehaviorTuple behavior;
    bool accumulates = false;  ///< gathers all inputs before forwarding
    int inputs_per_chunk = 0;  ///< reduce-direction messages expected per chunk
    std::vector<int> received;
    std::vector<ChunkMessage> acc;
    sim::EdgeChannel* up = nullptr;  ///< toward parent (reduce direction)
    std::vector<std::pair<NodeId, sim::EdgeChannel*>> down;  ///< per child
    sim::GpuStream* stream = nullptr;
    telemetry::TrackId tel_stream_track = telemetry::kInvalidTrack;  ///< lazy
  };

  struct FlowState {
    const FlowRoute* route = nullptr;
    std::unique_ptr<sim::EdgeChannel> channel;
    Bytes bytes = 0;
    int chunks = 0;
  };

  struct SubRun {
    int index = 0;
    const SubCollective* spec = nullptr;
    Bytes bytes = 0;  ///< S_m
    int chunks = 0;   ///< number of pipelined chunks
    std::map<NodeId, NodeState> nodes;
    std::vector<FlowState> flows;
    bool reduce_direction = false;     ///< Reduce / AllReduce / ReduceScatter
    bool broadcast_direction = false;  ///< Broadcast / AllReduce / AllGather
    telemetry::TrackId tel_track = telemetry::kInvalidTrack;  ///< lazy
  };

  // --- telemetry ------------------------------------------------------------

  telemetry::TrackId sub_track(SubRun& run) {
    if (run.tel_track == telemetry::kInvalidTrack) {
      run.tel_track =
          telemetry::get()->trace().track("executor/sub" + std::to_string(run.index));
    }
    return run.tel_track;
  }

  telemetry::TrackId stream_track(NodeState& state) {
    if (state.tel_stream_track == telemetry::kInvalidTrack) {
      state.tel_stream_track =
          telemetry::get()->trace().track("stream/" + topology::to_string(state.id));
    }
    return state.tel_stream_track;
  }

  /// Opens a chunk-transmission span and counts the payload toward the
  /// executor's reported bytes. Returns 0 when telemetry is disabled.
  telemetry::SpanId begin_send_span(SubRun& run, NodeId from, NodeId to, int chunk, Bytes bytes) {
    auto* t = telemetry::get();
    if (t == nullptr) return 0;
    t->metrics().counter("executor.bytes_sent").add(static_cast<double>(bytes));
    t->metrics().counter("executor.chunks_sent").add(1.0);
    return t->trace().begin_span(
        sub_track(run), "send " + topology::to_string(from) + "->" + topology::to_string(to),
        sim_.now(),
        telemetry::kv("bytes", static_cast<double>(bytes)) + "," + telemetry::kv("chunk", chunk));
  }

  void end_send_span(telemetry::SpanId span) {
    if (span == 0) return;
    if (auto* t = telemetry::get()) t->trace().end_span(span, sim_.now());
  }

  // --- construction --------------------------------------------------------

  void build_sub(int index) {
    auto run = std::make_unique<SubRun>();
    run->index = index;
    run->spec = &strategy_.subs[static_cast<std::size_t>(index)];
    run->bytes = static_cast<Bytes>(std::llround(run->spec->fraction *
                                                 static_cast<double>(tensor_bytes_)));

    switch (strategy_.primitive) {
      case Primitive::kReduce:
      case Primitive::kReduceScatter:
        run->reduce_direction = true;
        break;
      case Primitive::kBroadcast:
      case Primitive::kAllGather:
        run->broadcast_direction = true;
        break;
      case Primitive::kAllReduce:
        run->reduce_direction = run->broadcast_direction = true;
        break;
      case Primitive::kAllToAll:
        build_alltoall_sub(*run);
        subs_.push_back(std::move(run));
        return;
    }

    run->chunks = chunk_count(run->bytes, run->spec->chunk_bytes);
    build_tree_sub(*run);
    subs_.push_back(std::move(run));
  }

  void build_tree_sub(SubRun& run) {
    const Tree& tree = run.spec->tree;
    if constexpr (audit::kEnabled) {
      audit_behavior_tuples(*run.spec, strategy_.primitive, options_.active_ranks);
    }
    // Node states with behavior tuples.
    for (const NodeId node : tree.nodes()) {
      NodeState state;
      state.id = node;
      state.behavior = derive_behavior(*run.spec, strategy_.primitive, node,
                                       options_.active_ranks);
      state.accumulates = state.behavior.has_kernel || node == tree.root;
      state.received.assign(static_cast<std::size_t>(run.chunks), 0);
      state.acc.assign(static_cast<std::size_t>(run.chunks), ChunkMessage{});
      if (node.is_gpu() && run.reduce_direction) {
        streams_.push_back(std::make_unique<sim::GpuStream>(sim_));
        state.stream = streams_.back().get();
      }
      run.nodes.emplace(node, std::move(state));
    }
    // inputs_per_chunk via post-order recursion.
    compute_inputs(run, tree.root);
    // Channels.
    for (const NodeId node : tree.nodes()) {
      NodeState& state = run.nodes.at(node);
      if (node != tree.root) {
        const NodeId parent = tree.parent.at(node);
        if (run.reduce_direction && state.behavior.has_send) {
          channels_.push_back(
              std::make_unique<sim::EdgeChannel>(sim_, cluster_.edge_path(node, parent)));
          state.up = channels_.back().get();
        }
      }
      if (run.broadcast_direction) {
        for (const NodeId child : tree.children_of(node)) {
          channels_.push_back(
              std::make_unique<sim::EdgeChannel>(sim_, cluster_.edge_path(node, child)));
          state.down.emplace_back(child, channels_.back().get());
        }
      }
    }
    // Deliverable accounting and result sizing.
    if (run.reduce_direction) {
      outstanding_ += run.chunks;  // root completions
    }
    if (run.broadcast_direction) {
      for (const NodeId node : tree.nodes()) {
        if (node.is_gpu() && options_.active_ranks.contains(node.index) && node != tree.root) {
          outstanding_ += run.chunks;
        }
      }
    }
    if (run.reduce_direction || run.broadcast_direction) {
      for (const NodeId node : tree.nodes()) {
        if (node.is_gpu()) ensure_delivery_slots(node.index);
      }
    }
  }

  int compute_inputs(SubRun& run, NodeId node) {
    // Returns the number of reduce-direction messages this node emits per
    // chunk (its "out" count); fills inputs_per_chunk along the way.
    NodeState& state = run.nodes.at(node);
    int inputs = state.behavior.is_active ? 1 : 0;
    for (const NodeId child : run.spec->tree.children_of(node)) {
      const int child_out = compute_inputs(run, child);
      inputs += child_out;
    }
    state.inputs_per_chunk = inputs;
    if (inputs == 0) return 0;  // nothing flows through this node
    return state.accumulates ? 1 : inputs;
  }

  void build_alltoall_sub(SubRun& run) {
    const int participants = static_cast<int>(strategy_.participants.size());
    if (participants < 2) throw std::invalid_argument("AllToAll needs >= 2 participants");
    // Each GPU's tensor is split across all participants; this sub carries
    // `fraction` of every shard.
    const Bytes shard = tensor_bytes_ / static_cast<Bytes>(participants);
    run.bytes = static_cast<Bytes>(std::llround(run.spec->fraction * static_cast<double>(shard)));
    for (const auto& route : run.spec->flows) {
      FlowState flow;
      flow.route = &route;
      flow.bytes = run.bytes;
      flow.chunks = chunk_count(flow.bytes, run.spec->chunk_bytes);
      // Concatenate the per-edge link paths into one channel path.
      std::vector<sim::FlowLink*> links;
      for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
        const auto segment = cluster_.edge_path(route.path[i], route.path[i + 1]);
        links.insert(links.end(), segment.begin(), segment.end());
      }
      flow.channel = std::make_unique<sim::EdgeChannel>(sim_, std::move(links));
      outstanding_ += flow.chunks;
      run.flows.push_back(std::move(flow));
      ensure_delivery_slots(route.src.index);
      ensure_delivery_slots(route.dst.index);
    }
  }

  void ensure_delivery_slots(int rank) {
    auto& per_sub = result_.delivered[rank];
    auto& per_sub_masks = result_.delivered_masks[rank];
    per_sub.resize(strategy_.subs.size());
    per_sub_masks.resize(strategy_.subs.size());
    for (std::size_t s = 0; s < strategy_.subs.size(); ++s) {
      const auto& sub = strategy_.subs[s];
      const Bytes sub_bytes = static_cast<Bytes>(
          std::llround(sub.fraction * static_cast<double>(tensor_bytes_)));
      const int chunks = chunk_count(sub_bytes, sub.chunk_bytes);
      per_sub[s].resize(static_cast<std::size_t>(std::max(chunks, 0)),
                        std::numeric_limits<double>::quiet_NaN());
      per_sub_masks[s].resize(static_cast<std::size_t>(std::max(chunks, 0)), 0);
    }
  }

  // --- launch ---------------------------------------------------------------

  Seconds ready_time(int rank) const {
    const auto it = options_.ready_at.find(rank);
    return it == options_.ready_at.end() ? sim_.now() : std::max(sim_.now(), it->second);
  }

  Seconds death_time(int rank) const {
    const auto it = options_.dead_at.find(rank);
    return it == options_.dead_at.end() ? std::numeric_limits<Seconds>::infinity() : it->second;
  }

  void launch_sub(SubRun& run) {
    if (strategy_.primitive == Primitive::kAllToAll) {
      launch_alltoall(run);
      return;
    }
    if (run.reduce_direction) {
      // Every active GPU contributes its local chunks at its ready time —
      // or progressively while its buffer fills (Sec. IV-C).
      for (auto& [node, state] : run.nodes) {
        if (!state.behavior.is_active) continue;
        const int rank = node.index;
        const Seconds dead = death_time(rank);
        const auto fill_it = options_.fill_start.find(rank);
        if (fill_it != options_.fill_start.end() && run.chunks > 0) {
          const Seconds end = ready_time(rank);
          const Seconds begin = std::min(std::max(sim_.now(), fill_it->second), end);
          for (int c = 0; c < run.chunks; ++c) {
            const Seconds when =
                begin + (end - begin) * static_cast<double>(c + 1) /
                            static_cast<double>(run.chunks);
            // Mid-collective crash: chunks filled after the crash never
            // appear (the rank contributed a prefix, then died).
            if (when > dead) continue;
            schedule_op(when, [this, &run, node = node, rank, c] {
              on_reduce_input(run, node, c,
                              ChunkMessage{payload_value(rank, run.index, c), rank_bit(rank)});
            });
          }
          continue;
        }
        if (ready_time(rank) > dead) continue;  // crashed before the tensor was ready
        schedule_op(ready_time(rank), [this, &run, node = node, rank] {
          for (int c = 0; c < run.chunks; ++c) {
            on_reduce_input(run, node, c,
                            ChunkMessage{payload_value(rank, run.index, c), rank_bit(rank)});
          }
        });
      }
    } else if (run.broadcast_direction) {
      // Pure broadcast: the root injects its own tensor.
      const NodeId root = run.spec->tree.root;
      const int rank = root.index;
      if (ready_time(rank) > death_time(rank)) return;  // dead root: watchdog territory
      schedule_op(ready_time(rank), [this, &run, rank] {
        for (int c = 0; c < run.chunks; ++c) {
          inject_broadcast(run, c, ChunkMessage{payload_value(rank, run.index, c), rank_bit(rank)});
        }
      });
    }
  }

  void launch_alltoall(SubRun& run) {
    // Per-source flow queues in listed order, bounded by the strategy's
    // per-source concurrency (NCCL's limited channels vs AdapCC's streams).
    std::map<int, std::vector<FlowState*>> by_source;
    for (auto& flow : run.flows) by_source[flow.route->src.index].push_back(&flow);
    for (auto& [src, flows] : by_source) {
      if (ready_time(src) > death_time(src)) continue;  // crashed source sends nothing
      auto state = std::make_shared<SourceQueue>();
      state->flows = flows;
      state->limit = run.spec->alltoall_concurrency > 0
                         ? static_cast<std::size_t>(run.spec->alltoall_concurrency)
                         : flows.size();
      schedule_op(ready_time(src), [this, &run, src = src, state] {
        while (state->active < state->limit && state->next < state->flows.size()) {
          start_flow(run, src, state);
        }
      });
    }
  }

  struct SourceQueue {
    std::vector<FlowState*> flows;
    std::size_t next = 0;
    std::size_t active = 0;
    std::size_t limit = 0;
  };

  void start_flow(SubRun& run, int src, const std::shared_ptr<SourceQueue>& state) {
    FlowState& flow = *state->flows[state->next++];
    if (flow.chunks == 0) return;  // nothing to send (degenerate tensor)
    ++state->active;
    const int dst = flow.route->dst.index;
    auto remaining = std::make_shared<int>(flow.chunks);
    for (int c = 0; c < flow.chunks; ++c) {
      const Bytes bytes = bytes_of_chunk(flow.bytes, run.spec->chunk_bytes, c);
      const double value = alltoall_value(src, dst, run.index, c);
      const telemetry::SpanId span =
          begin_send_span(run, flow.route->src, flow.route->dst, c, bytes);
      ++pending_ops_;
      flow.channel->send(bytes, [this, &run, src, dst, c, value, remaining, state, span] {
        end_send_span(span);
        result_.alltoall_received[dst][src].resize(
            std::max<std::size_t>(result_.alltoall_received[dst][src].size(),
                                  static_cast<std::size_t>(c) + 1),
            std::numeric_limits<double>::quiet_NaN());
        result_.alltoall_received[dst][src][static_cast<std::size_t>(c)] = value;
        note_rank_activity(dst);
        complete_deliverable();
        if (--*remaining == 0) {
          --state->active;
          while (state->active < state->limit && state->next < state->flows.size()) {
            start_flow(run, src, state);
          }
        }
        op_done();
      });
    }
  }

  // --- reduce direction -----------------------------------------------------

  void on_reduce_input(SubRun& run, NodeId node, int chunk, ChunkMessage message) {
    NodeState& state = run.nodes.at(node);
    if (state.accumulates) {
      auto& acc = state.acc[static_cast<std::size_t>(chunk)];
      acc.value += message.value;
      acc.mask |= message.mask;
      if (++state.received[static_cast<std::size_t>(chunk)] < state.inputs_per_chunk) return;
      const ChunkMessage combined = acc;
      // Aggregation kernel: only when the behavior tuple demands one.
      if (state.behavior.has_kernel && state.stream != nullptr) {
        const Bytes bytes = bytes_of_chunk(run.bytes, run.spec->chunk_bytes, chunk);
        const auto kind = cluster_.gpu_kind(node.index);
        const Seconds duration =
            topology::kernel_launch_overhead() +
            static_cast<double>(bytes) * std::max(1, state.inputs_per_chunk - 1) /
                topology::reduce_kernel_throughput(kind);
        ++pending_ops_;
        state.stream->enqueue(duration, [this, &run, node, chunk, combined, duration, bytes] {
          // The stream is serialized, so the kernel ran over the `duration`
          // seconds ending now — recorded post-hoc as a complete span.
          if (auto* t = telemetry::get()) {
            t->trace().complete(
                stream_track(run.nodes.at(node)), "reduce-kernel", sim_.now() - duration,
                duration,
                telemetry::kv("bytes", static_cast<double>(bytes)) + "," +
                    telemetry::kv("chunk", chunk));
            t->metrics().counter("executor.kernel_seconds").add(duration);
          }
          emit_reduce_output(run, node, chunk, combined);
          op_done();
        });
      } else {
        emit_reduce_output(run, node, chunk, combined);
      }
    } else {
      // Pass-through (relay or a_{m,g} = 0): forward immediately.
      emit_reduce_output(run, node, chunk, message);
    }
  }

  void emit_reduce_output(SubRun& run, NodeId node, int chunk, ChunkMessage message) {
    NodeState& state = run.nodes.at(node);
    if (node == run.spec->tree.root) {
      on_root_chunk(run, chunk, message);
      return;
    }
    if (state.up == nullptr) return;  // behavior says no send
    const NodeId parent = run.spec->tree.parent.at(node);
    const Bytes bytes = bytes_of_chunk(run.bytes, run.spec->chunk_bytes, chunk);
    const telemetry::SpanId span = begin_send_span(run, node, parent, chunk, bytes);
    ++pending_ops_;
    state.up->send(bytes, [this, &run, parent, chunk, message, span] {
      end_send_span(span);
      on_reduce_input(run, parent, chunk, message);
      op_done();
    });
  }

  void on_root_chunk(SubRun& run, int chunk, ChunkMessage message) {
    result_.subs.resize(strategy_.subs.size());
    auto& sub_result = result_.subs[static_cast<std::size_t>(run.index)];
    sub_result.root_values.resize(static_cast<std::size_t>(run.chunks), 0.0);
    sub_result.root_masks.resize(static_cast<std::size_t>(run.chunks), 0);
    sub_result.root_values[static_cast<std::size_t>(chunk)] = message.value;
    sub_result.root_masks[static_cast<std::size_t>(chunk)] = message.mask;

    const NodeId root = run.spec->tree.root;
    if (root.is_gpu()) {
      record_delivery(run, root.index, chunk, message);
      note_rank_activity(root.index);
    }
    complete_deliverable();
    // Multi-stage parallelism: AllReduce broadcasts the chunk right away.
    if (run.broadcast_direction) inject_broadcast(run, chunk, message);
  }

  // --- broadcast direction ----------------------------------------------------

  void inject_broadcast(SubRun& run, int chunk, ChunkMessage message) {
    forward_broadcast(run, run.spec->tree.root, chunk, message);
    if (strategy_.primitive == Primitive::kBroadcast ||
        strategy_.primitive == Primitive::kAllGather) {
      const NodeId root = run.spec->tree.root;
      record_delivery(run, root.index, chunk, message);
    }
  }

  void forward_broadcast(SubRun& run, NodeId node, int chunk, ChunkMessage message) {
    NodeState& state = run.nodes.at(node);
    const Bytes bytes = bytes_of_chunk(run.bytes, run.spec->chunk_bytes, chunk);
    for (auto& [child, channel] : state.down) {
      const telemetry::SpanId span = begin_send_span(run, node, child, chunk, bytes);
      ++pending_ops_;
      channel->send(bytes, [this, &run, child = child, chunk, message, span] {
        end_send_span(span);
        on_broadcast_arrival(run, child, chunk, message);
        op_done();
      });
    }
  }

  void on_broadcast_arrival(SubRun& run, NodeId node, int chunk, ChunkMessage message) {
    if (node.is_gpu()) {
      record_delivery(run, node.index, chunk, message);
      if (options_.active_ranks.contains(node.index)) {
        note_rank_activity(node.index);
        complete_deliverable();
      }
    }
    forward_broadcast(run, node, chunk, message);
  }

  // --- bookkeeping -----------------------------------------------------------

  void record_delivery(SubRun& run, int rank, int chunk, ChunkMessage message) {
    auto& per_sub = result_.delivered[rank];
    if (per_sub.empty()) ensure_delivery_slots(rank);
    per_sub[static_cast<std::size_t>(run.index)][static_cast<std::size_t>(chunk)] = message.value;
    result_.delivered_masks[rank][static_cast<std::size_t>(run.index)]
                           [static_cast<std::size_t>(chunk)] = message.mask;
  }

  void note_rank_activity(int rank) { result_.rank_finish_time[rank] = sim_.now(); }

  void complete_deliverable() {
    if (--outstanding_ == 0) finish();
  }

  void schedule_op(Seconds when, std::function<void()> body) {
    ++pending_ops_;
    // Ids are kept so an abort can cancel everything still pending; fired
    // ids go stale harmlessly (generation tags).
    op_events_.push_back(
        sim_.schedule_at(std::max(when, sim_.now()), [this, body = std::move(body)] {
          body();
          op_done();
        }));
  }

  void op_done() {
    if (--pending_ops_ == 0 && finished_ && completion_delivered_) {
      // All traffic (including relay-bound tail traffic) has drained.
      if (on_idle_) sim_.schedule_after(0, on_idle_);
    }
  }

  /// Active ranks that have not finished contributing: crashed before their
  /// tensor was fully ready, or still not ready now. These are the abort's
  /// suspects — the set the recovery orchestrator excludes.
  std::set<int> unfinished_ranks() const {
    std::set<int> out;
    for (const int rank : options_.active_ranks) {
      const auto it = options_.ready_at.find(rank);
      const Seconds ready =
          it == options_.ready_at.end() ? result_.started : std::max(result_.started, it->second);
      // Suspect anyone already dead (mid-collective crash: its undelivered
      // chunks are what stalled the aggregation) or still not ready.
      if (death_time(rank) <= sim_.now() || ready > sim_.now()) out.insert(rank);
    }
    return out;
  }

  void on_watchdog() {
    watchdog_event_ = sim::EventId{};
    if (finished_) return;
    CollectiveError error;
    error.code = CollectiveErrorCode::kWatchdogTimeout;
    error.at = sim_.now();
    error.suspects = unfinished_ranks();
    error.detail = "watchdog expired after " + std::to_string(options_.watchdog_timeout) +
                   "s with " + std::to_string(outstanding_) + " deliverables outstanding";
    if (auto* t = telemetry::get()) {
      t->metrics().counter("executor.watchdog_fired").add(1.0);
      t->trace().instant(t->trace().track("executor"), "watchdog-abort", sim_.now(),
                         telemetry::kv("suspects", static_cast<double>(error.suspects.size())));
    }
    ADAPCC_LOG(kWarn, "executor") << error.detail;
    abort_invocation(std::move(error));
  }

  /// Cancels every outstanding simulator event of this invocation (ops,
  /// channel transfers, kernel retirements), releases the channels' queued
  /// chunks, and completes with the error. After this the only events left
  /// are the completion/idle deliveries scheduled by finish() — the drain
  /// loop in Executor::run terminates immediately instead of chasing a
  /// stalled link forever.
  void abort_invocation(CollectiveError error) {
    if (aborted_ || finished_) return;
    aborted_ = true;
    for (const sim::EventId& id : op_events_) sim_.cancel(id);
    op_events_.clear();
    for (auto& channel : channels_) channel->abort();
    for (auto& sub : subs_) {
      for (auto& flow : sub->flows) {
        if (flow.channel) flow.channel->abort();
      }
    }
    for (auto& stream : streams_) stream->cancel_pending();
    pending_ops_ = 0;
    result_.error = std::move(error);
    finish();
  }

  void finish() {
    finished_ = true;
    sim_.cancel(watchdog_event_);
    watchdog_event_ = sim::EventId{};
    result_.finished = sim_.now();
    result_.subs.resize(strategy_.subs.size());
    if (auto* t = telemetry::get()) {
      t->trace().end_span(tel_span_, sim_.now());
      t->metrics().counter("executor.collectives").add(1.0);
      t->metrics().histogram("executor.collective_seconds").observe(result_.elapsed());
    }
    if (on_complete_) {
      // Deliver via a fresh event so the callback never runs inside a
      // channel/stream callback of this invocation. on_idle_ (which may
      // destroy this Invocation) must not be scheduled until this event has
      // delivered: both land at the same timestamp, and event order among
      // ties is not part of any component's contract — under the
      // tie-shuffle harness the idle event could otherwise run first and
      // leave this event's `this` dangling.
      sim_.schedule_after(0, [this] {
        on_complete_(result_);
        completion_delivered_ = true;
        if (pending_ops_ == 0 && on_idle_) sim_.schedule_after(0, on_idle_);
      });
    } else {
      completion_delivered_ = true;
      if (pending_ops_ == 0 && on_idle_) sim_.schedule_after(0, on_idle_);
    }
  }

  topology::Cluster& cluster_;
  sim::Simulator& sim_;
  const Strategy& strategy_;
  Bytes tensor_bytes_;
  CollectiveOptions options_;
  std::function<void(const CollectiveResult&)> on_complete_;
  std::function<void()> on_idle_;

  std::vector<std::unique_ptr<SubRun>> subs_;
  std::vector<std::unique_ptr<sim::EdgeChannel>> channels_;
  std::vector<std::unique_ptr<sim::GpuStream>> streams_;

  CollectiveResult result_;
  long outstanding_ = 0;
  long pending_ops_ = 0;
  bool finished_ = false;
  bool aborted_ = false;
  sim::EventId watchdog_event_{};
  /// Every schedule_op event issued, for cancellation on abort (bounded by
  /// ranks x chunks per invocation).
  std::vector<sim::EventId> op_events_;
  /// The on_complete_ delivery event has run; only then may on_idle_ (which
  /// destroys the invocation) be scheduled — see finish().
  bool completion_delivered_ = false;
  telemetry::SpanId tel_span_ = 0;  ///< whole-collective span
};

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

Executor::Executor(topology::Cluster& cluster, Strategy strategy)
    : cluster_(cluster), strategy_(std::move(strategy)) {}

Executor::~Executor() { *alive_ = false; }

void Executor::start(Bytes tensor_bytes, CollectiveOptions options,
                     std::function<void(const CollectiveResult&)> on_complete) {
  if (invocation_ != nullptr) throw std::logic_error("Executor: invocation already in flight");
  invocation_ = std::make_unique<Invocation>(
      cluster_, strategy_, tensor_bytes, std::move(options), std::move(on_complete),
      /*on_idle=*/[this, alive = alive_] {
        if (*alive) invocation_.reset();
      });
  invocation_->start();
}

CollectiveResult Executor::run(Bytes tensor_bytes, CollectiveOptions options) {
  CollectiveResult result;
  bool done = false;
  start(tensor_bytes, std::move(options), [&result, &done](const CollectiveResult& r) {
    result = r;
    done = true;
  });
  sim::Simulator& sim = cluster_.simulator();
  while (!done && sim.step()) {
  }
  if (!done) throw std::logic_error("Executor::run: simulation drained before completion");
  // Drain relay tail traffic so the executor is reusable immediately.
  while (invocation_ != nullptr && sim.step()) {
  }
  return result;
}

}  // namespace adapcc::collective
