// Communication-graph strategy representation (Sec. IV-D output).
//
// A Strategy is what the Synthesizer (or a baseline backend) hands to the
// Communicator: M parallel sub-collectives, each with its own communication
// graph, tensor-partition fraction S_m/S, chunk size C_m and per-node
// aggregation control a_{m,g}. Reduce/Broadcast sub-collectives carry a
// tree; AllToAll sub-collectives carry per-(src,dst) flow routes.
//
// Strategies serialize to/from XML, the exchange format the paper uses
// between Controller and Communicator.
#pragma once

#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "collective/primitive.h"
#include "topology/logical_topology.h"
#include "topology/node.h"
#include "util/units.h"

namespace adapcc::collective {

using topology::LogicalTopology;
using topology::NodeId;

/// A rooted in-tree: every non-root node has exactly one parent; data flows
/// child -> parent for Reduce and parent -> child for Broadcast (the same
/// structure is executed in the reverse direction, Sec. IV-D).
struct Tree {
  NodeId root;
  std::unordered_map<NodeId, NodeId> parent;  ///< absent for the root

  std::vector<NodeId> nodes() const;
  std::vector<NodeId> children_of(NodeId node) const;
  bool contains(NodeId node) const noexcept;
  int depth_of(NodeId node) const;

  /// Validates shape: exactly one root, no cycles, all parent edges exist in
  /// `topo`. Throws std::invalid_argument with a description on failure.
  void validate(const LogicalTopology& topo) const;
};

/// One routed point-to-point flow (AllToAll): path[0] == src, back == dst.
struct FlowRoute {
  NodeId src;
  NodeId dst;
  std::vector<NodeId> path;

  void validate(const LogicalTopology& topo) const;
};

struct SubCollective {
  int id = 0;
  /// Fraction of the tensor this sub-collective carries (S_m / S).
  double fraction = 1.0;
  /// Pipelined chunk size C_m.
  Bytes chunk_bytes = 4_MiB;
  /// Tree for Reduce/Broadcast/AllReduce-style primitives.
  Tree tree;
  /// Routes for AllToAll-style primitives.
  std::vector<FlowRoute> flows;
  /// Aggregation control a_{m,g}. Nodes not present use the default: GPUs
  /// aggregate for reducing primitives, NICs never aggregate.
  std::unordered_map<NodeId, bool> aggregate_at;
  /// AllToAll only: how many of a source's flows may be in flight at once
  /// (0 = unbounded). NCCL's send/recv implementation has a small fixed
  /// channel count; AdapCC's per-context streams lift the limit (Sec. V-A).
  /// Flows start in the order they are listed for each source, so a
  /// rank-ordered list models NCCL's synchronized sends (incast on
  /// low-ranked receivers) while a rotated list balances receivers.
  int alltoall_concurrency = 0;

  bool aggregates_at(NodeId node, Primitive primitive) const;
};

struct Strategy {
  Primitive primitive = Primitive::kAllReduce;
  /// GPU ranks participating (contributing data).
  std::vector<int> participants;
  std::vector<SubCollective> subs;
  /// Which backend produced it ("adapcc", "nccl", "msccl", "blink").
  std::string origin = "adapcc";

  void validate(const LogicalTopology& topo) const;

  std::string to_xml() const;
  static Strategy from_xml(const std::string& document);

  /// Structural fingerprint: two strategies with equal fingerprints build
  /// identical graphs (used to decide whether reconstruction is needed,
  /// Sec. IV-B "if the resulting communication graph is unchanged").
  std::string fingerprint() const;
};

}  // namespace adapcc::collective
