#include "collective/behavior.h"

namespace adapcc::collective {

std::string to_string(const BehaviorTuple& tuple) {
  const auto flag = [](bool b) { return b ? "1" : "0"; };
  return std::string("<") + flag(tuple.is_active) + "," + flag(tuple.has_recv) + "," +
         flag(tuple.has_kernel) + "," + flag(tuple.has_send) + ">";
}

int active_in_subtree(const Tree& tree, NodeId node, const std::set<int>& active_ranks) {
  int count = node.is_gpu() && active_ranks.contains(node.index) ? 1 : 0;
  for (const NodeId child : tree.children_of(node)) {
    count += active_in_subtree(tree, child, active_ranks);
  }
  return count;
}

BehaviorTuple derive_behavior(const SubCollective& sub, Primitive primitive, NodeId node,
                              const std::set<int>& active_ranks) {
  const Tree& tree = sub.tree;
  BehaviorTuple tuple;
  tuple.is_active = node.is_gpu() && active_ranks.contains(node.index);

  // hasRecv: recursively check whether any predecessor has data to send.
  int active_precedents = 0;  // direct children whose subtree carries data
  for (const NodeId child : tree.children_of(node)) {
    if (active_in_subtree(tree, child, active_ranks) > 0) ++active_precedents;
  }
  tuple.has_recv = active_precedents > 0;

  // hasKernel.
  if (!requires_aggregation(primitive)) {
    tuple.has_kernel = false;  // AllToAll / Broadcast never aggregate
  } else if (!tuple.has_recv) {
    tuple.has_kernel = false;  // (1) nothing received, only local data out
  } else if (!tuple.is_active && active_precedents == 1) {
    tuple.has_kernel = false;  // (2) pure relay of a single upstream flow
  } else if (!sub.aggregates_at(node, primitive)) {
    tuple.has_kernel = false;  // (3) synthesizer disabled aggregation here
  } else {
    tuple.has_kernel = true;
  }

  // hasSend.
  if (node == tree.root) {
    tuple.has_send = false;
  } else if (!tuple.is_active && !tuple.has_recv) {
    tuple.has_send = false;
  } else {
    tuple.has_send = true;
  }
  return tuple;
}

}  // namespace adapcc::collective
