#include "collective/behavior.h"

#include "util/audit.h"

namespace adapcc::collective {

std::string to_string(const BehaviorTuple& tuple) {
  const auto flag = [](bool b) { return b ? "1" : "0"; };
  return std::string("<") + flag(tuple.is_active) + "," + flag(tuple.has_recv) + "," +
         flag(tuple.has_kernel) + "," + flag(tuple.has_send) + ">";
}

int active_in_subtree(const Tree& tree, NodeId node, const std::set<int>& active_ranks) {
  int count = node.is_gpu() && active_ranks.contains(node.index) ? 1 : 0;
  for (const NodeId child : tree.children_of(node)) {
    count += active_in_subtree(tree, child, active_ranks);
  }
  return count;
}

BehaviorTuple derive_behavior(const SubCollective& sub, Primitive primitive, NodeId node,
                              const std::set<int>& active_ranks) {
  const Tree& tree = sub.tree;
  BehaviorTuple tuple;
  tuple.is_active = node.is_gpu() && active_ranks.contains(node.index);

  // hasRecv: recursively check whether any predecessor has data to send.
  int active_precedents = 0;  // direct children whose subtree carries data
  for (const NodeId child : tree.children_of(node)) {
    if (active_in_subtree(tree, child, active_ranks) > 0) ++active_precedents;
  }
  tuple.has_recv = active_precedents > 0;

  // hasKernel.
  if (!requires_aggregation(primitive)) {
    tuple.has_kernel = false;  // AllToAll / Broadcast never aggregate
  } else if (!tuple.has_recv) {
    tuple.has_kernel = false;  // (1) nothing received, only local data out
  } else if (!tuple.is_active && active_precedents == 1) {
    tuple.has_kernel = false;  // (2) pure relay of a single upstream flow
  } else if (!sub.aggregates_at(node, primitive)) {
    tuple.has_kernel = false;  // (3) synthesizer disabled aggregation here
  } else {
    tuple.has_kernel = true;
  }

  // hasSend.
  if (node == tree.root) {
    tuple.has_send = false;
  } else if (!tuple.is_active && !tuple.has_recv) {
    tuple.has_send = false;
  } else {
    tuple.has_send = true;
  }
  return tuple;
}

void audit_behavior_tuples(const SubCollective& sub, Primitive primitive,
                           const std::set<int>& active_ranks) {
  const Tree& tree = sub.tree;
  ADAPCC_AUDIT_CHECK("comm_graph", !tree.parent.contains(tree.root),
                     "root " << topology::to_string(tree.root) << " has a parent edge");
  const std::vector<NodeId> nodes = tree.nodes();
  const std::size_t hop_bound = nodes.size();
  for (const NodeId node : nodes) {
    // Acyclicity: the parent chain from every node reaches the root within
    // |nodes| hops. (validate() checks this at strategy load; the audit
    // re-checks at graph-construction time, after any strategy rewriting.)
    std::size_t hops = 0;
    NodeId cursor = node;
    while (cursor != tree.root) {
      const auto it = tree.parent.find(cursor);
      ADAPCC_AUDIT_CHECK("comm_graph", it != tree.parent.end(),
                         "node " << topology::to_string(cursor) << " has no path to the root");
      ADAPCC_AUDIT_CHECK("comm_graph", ++hops <= hop_bound,
                         "parent-chain cycle through " << topology::to_string(node));
      cursor = it->second;
    }

    const BehaviorTuple t = derive_behavior(sub, primitive, node, active_ranks);
    int active_precedents = 0;
    for (const NodeId child : tree.children_of(node)) {
      if (active_in_subtree(tree, child, active_ranks) > 0) ++active_precedents;
    }
    const char* where = node.is_gpu() ? "gpu" : "nic";
    // isActive is a pure function of the active set — relays and NICs never
    // claim activity.
    ADAPCC_AUDIT_CHECK("comm_graph",
                       t.is_active == (node.is_gpu() && active_ranks.contains(node.index)),
                       where << " " << node.index << " tuple " << to_string(t)
                             << " disagrees with active set");
    // hasRecv iff some predecessor subtree carries active data.
    ADAPCC_AUDIT_CHECK("comm_graph", t.has_recv == (active_precedents > 0),
                       where << " " << node.index << " hasRecv=" << t.has_recv << " but "
                             << active_precedents << " active precedents");
    // hasKernel implies there is something to aggregate: a reducing
    // primitive, data received, aggregation enabled here, and more than one
    // input stream unless the node contributes its own data.
    if (t.has_kernel) {
      ADAPCC_AUDIT_CHECK("comm_graph", requires_aggregation(primitive),
                         where << " " << node.index << " launches a kernel for a "
                               << "non-aggregating primitive");
      ADAPCC_AUDIT_CHECK("comm_graph", t.has_recv,
                         where << " " << node.index << " launches a kernel with nothing "
                               << "received");
      ADAPCC_AUDIT_CHECK("comm_graph", sub.aggregates_at(node, primitive),
                         where << " " << node.index << " launches a kernel with a_{m,g}=0");
      ADAPCC_AUDIT_CHECK("comm_graph", t.is_active || active_precedents > 1,
                         where << " " << node.index << " is a single-input relay yet "
                               << "launches a kernel");
    }
    // hasSend: the root never sends; everyone else sends iff it has data
    // (its own or received) to forward.
    if (node == tree.root) {
      ADAPCC_AUDIT_CHECK("comm_graph", !t.has_send, "root sends upward");
    } else {
      ADAPCC_AUDIT_CHECK("comm_graph", t.has_send == (t.is_active || t.has_recv),
                         where << " " << node.index << " tuple " << to_string(t)
                               << " sends without data (or withholds with data)");
    }
  }
}

}  // namespace adapcc::collective
