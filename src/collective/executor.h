// Collective executor (Communicator, Sec. V).
//
// Executes a Strategy on the simulated cluster: one transmission context per
// sub-collective, each with its own EdgeChannels (streams) and per-GPU
// kernel stream, pipelined chunk transmission, and — for AllReduce — the
// reduce and broadcast stages pipelined so chunks aggregated at the root are
// broadcast immediately (multi-stage parallelism).
//
// Behavior at every node follows the derived <isActive, hasRecv, hasKernel,
// hasSend> tuple: aggregating nodes wait for the same chunk from all
// carrying predecessors plus local data, launch an aggregation kernel on
// their stream, and forward one combined message; non-aggregating nodes
// (relays, NICs, a_{m,g} = 0) forward every message as it arrives.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "collective/behavior.h"
#include "collective/comm_graph.h"
#include "collective/payload.h"
#include "topology/cluster.h"
#include "util/units.h"

namespace adapcc::collective {

struct CollectiveOptions {
  /// Ranks contributing tensors. Empty means all strategy participants.
  std::set<int> active_ranks;
  /// Absolute simulated times at which each rank's tensor is ready; ranks
  /// not listed are ready immediately. Non-ready relay ranks simply never
  /// contribute (they are not in active_ranks).
  std::map<int, Seconds> ready_at;
  /// Optional incremental buffer fill (Sec. IV-C): gradients are produced
  /// progressively during the backward pass, so chunk c of a rank listed
  /// here becomes available at
  ///   fill_start[r] + (c+1)/K * (ready_at[r] - fill_start[r])
  /// instead of all chunks appearing at ready_at[r]. This is what lets late
  /// workers' chunks "join the ongoing aggregation" of phase 1.
  std::map<int, Seconds> fill_start;
  /// Crash model (chaos harness): a rank listed here stops contributing at
  /// the given absolute time. Chunks whose availability falls at or before
  /// the crash are still contributed (mid-collective partial contribution);
  /// everything later never appears, so aggregators waiting on the dead
  /// rank's remaining chunks stall until the watchdog fires.
  std::map<int, Seconds> dead_at;
  /// Per-collective watchdog: when > 0, the invocation aborts this many
  /// simulated seconds after start if it has not completed — outstanding
  /// events are cancelled, channels and streams drained, and the result
  /// carries a structured CollectiveError instead of the executor hanging
  /// (or throwing) on a drained simulator. 0 disables the watchdog.
  Seconds watchdog_timeout = 0.0;
};

enum class CollectiveErrorCode {
  kNone = 0,
  /// The watchdog expired before every deliverable landed.
  kWatchdogTimeout,
};

/// Structured failure report of an aborted collective (Sec. IV-C-2 fault
/// recovery: the caller excludes the suspects, resynthesizes, re-executes).
struct CollectiveError {
  CollectiveErrorCode code = CollectiveErrorCode::kNone;
  /// Simulated time of the abort.
  Seconds at = 0.0;
  /// Active ranks that had not finished contributing when the abort fired:
  /// crashed ranks and ranks whose tensor never became ready. Empty when the
  /// stall has no rank-level culprit (e.g. a pure link blackout) — such a
  /// failure is retryable without excluding anyone.
  std::set<int> suspects;
  std::string detail;
  explicit operator bool() const noexcept { return code != CollectiveErrorCode::kNone; }
};

struct SubResult {
  /// Aggregated value / contributor mask per chunk at the reduce root.
  std::vector<double> root_values;
  std::vector<ContributorMask> root_masks;
};

struct CollectiveResult {
  Seconds started = 0.0;
  Seconds finished = 0.0;
  Seconds elapsed() const noexcept { return finished - started; }

  /// Reduce-side outcome per sub-collective (Reduce/AllReduce/ReduceScatter).
  std::vector<SubResult> subs;
  /// delivered[rank][sub][chunk]: value received by `rank` via broadcast
  /// stages (Broadcast/AllReduce/AllGather).
  std::map<int, std::vector<std::vector<double>>> delivered;
  std::map<int, std::vector<std::vector<ContributorMask>>> delivered_masks;
  /// alltoall_received[dst][src][chunk] for AllToAll.
  std::map<int, std::map<int, std::vector<double>>> alltoall_received;
  /// When each rank observed its last delivery (completion per worker).
  std::map<int, Seconds> rank_finish_time;
  /// Set when the collective was aborted (watchdog); partial results above
  /// reflect whatever had been delivered by then.
  CollectiveError error;
  bool ok() const noexcept { return error.code == CollectiveErrorCode::kNone; }
};

/// Executes collectives for one Strategy. The executor owns the simulated
/// streams and channels of its transmission contexts; it can be invoked
/// repeatedly (contexts are reused, as the set-up phase registers buffers
/// once, Sec. V-A). One invocation may be in flight at a time.
class Executor {
 public:
  Executor(topology::Cluster& cluster, Strategy strategy);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  const Strategy& strategy() const noexcept { return strategy_; }

  /// Starts the collective asynchronously; `on_complete` fires (in simulated
  /// time) when every deliverable of the primitive has landed.
  void start(Bytes tensor_bytes, CollectiveOptions options,
             std::function<void(const CollectiveResult&)> on_complete);

  /// Convenience wrapper: starts and runs the simulator until completion.
  CollectiveResult run(Bytes tensor_bytes, CollectiveOptions options = {});

  bool busy() const noexcept { return invocation_ != nullptr; }

 private:
  class Invocation;

  topology::Cluster& cluster_;
  Strategy strategy_;
  std::unique_ptr<Invocation> invocation_;
  /// Guards the idle-cleanup event scheduled on the simulator: if the
  /// executor is destroyed first, the pending event must become a no-op.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace adapcc::collective
