#include "collective/codegen.h"

#include <algorithm>
#include <sstream>

#include "collective/behavior.h"

namespace adapcc::collective {

namespace {

void emit_tree_context(std::ostringstream& out, const Strategy& strategy,
                       const SubCollective& sub, NodeId node,
                       const std::set<int>& active_ranks) {
  const BehaviorTuple tuple = derive_behavior(sub, strategy.primitive, node, active_ranks);
  const bool reduce_like = requires_aggregation(strategy.primitive);
  const bool broadcast_side = strategy.primitive == Primitive::kBroadcast ||
                              strategy.primitive == Primitive::kAllGather ||
                              strategy.primitive == Primitive::kAllReduce;

  out << "  context " << sub.id << ": behavior " << to_string(tuple) << ", chunk "
      << sub.chunk_bytes / 1024 << " KiB\n";
  if (reduce_like) {
    out << "    // reduce stage (stream r" << sub.id << ")\n";
    const auto children = sub.tree.children_of(node);
    std::vector<NodeId> carrying;
    for (const NodeId child : children) {
      if (active_in_subtree(sub.tree, child, active_ranks) > 0) carrying.push_back(child);
    }
    out << "    for chunk c in partition:\n";
    if (tuple.has_recv) {
      for (const NodeId child : carrying) {
        out << "      cudaStreamWaitEvent(recv_buffer[" << to_string(child) << "][c])\n";
      }
    }
    if (tuple.has_kernel) {
      out << "      launch reduce_kernel(local[c]";
      for (const NodeId child : carrying) out << ", recv[" << to_string(child) << "][c]";
      out << ")\n";
    } else if (tuple.has_recv && !tuple.is_active) {
      out << "      // relay: forward received chunks unmodified\n";
    }
    if (tuple.has_send) {
      const NodeId parent = sub.tree.parent.at(node);
      out << "      cudaMemcpyPeerAsync(-> " << to_string(parent) << ", c); record event\n";
    } else if (node == sub.tree.root) {
      out << "      // root: chunk complete; push to result queue\n";
    }
  }
  if (broadcast_side) {
    out << "    // broadcast stage (stream b" << sub.id << ")\n";
    const auto children = sub.tree.children_of(node);
    out << "    for chunk c in partition:\n";
    if (node != sub.tree.root) {
      out << "      cudaStreamWaitEvent(result_buffer[parent][c])\n";
    }
    for (const NodeId child : children) {
      out << "      cudaMemcpyPeerAsync(-> " << to_string(child) << ", c); record event\n";
    }
    if (node.is_gpu()) out << "      // deliver chunk to result queue\n";
  }
}

void emit_flow_context(std::ostringstream& out, const SubCollective& sub, int rank) {
  out << "  context " << sub.id << ": alltoall, chunk " << sub.chunk_bytes / 1024
      << " KiB, concurrency "
      << (sub.alltoall_concurrency > 0 ? std::to_string(sub.alltoall_concurrency)
                                       : std::string("unbounded"))
      << "\n";
  int listed = 0;
  for (const auto& flow : sub.flows) {
    if (flow.src.index != rank) continue;
    out << "    send shard -> " << to_string(flow.dst);
    if (flow.path.size() > 2) {
      out << " via";
      for (std::size_t i = 1; i + 1 < flow.path.size(); ++i) out << " " << to_string(flow.path[i]);
    }
    out << " (slot " << listed << ")\n";
    ++listed;
  }
  out << "    recv shards from all peers into expert inbox\n";
}

}  // namespace

std::string generate_rank_program(const Strategy& strategy, int rank,
                                  const std::set<int>& active_ranks) {
  std::ostringstream out;
  const NodeId node = NodeId::gpu(rank);
  bool participates = false;
  for (const auto& sub : strategy.subs) {
    if (strategy.primitive == Primitive::kAllToAll) {
      bool has_flow = false;
      for (const auto& flow : sub.flows) {
        if (flow.src.index == rank || flow.dst.index == rank) has_flow = true;
      }
      if (!has_flow) continue;
      participates = true;
      emit_flow_context(out, sub, rank);
    } else {
      if (!sub.tree.contains(node)) continue;
      participates = true;
      emit_tree_context(out, strategy, sub, node, active_ranks);
    }
  }
  if (!participates) return {};
  return "rank " + std::to_string(rank) + " program (" + to_string(strategy.primitive) + "):\n" +
         out.str();
}

std::string generate_all_programs(const Strategy& strategy,
                                  const std::set<int>& active_ranks) {
  std::string out;
  std::vector<int> ranks = strategy.participants;
  std::sort(ranks.begin(), ranks.end());
  for (const int rank : ranks) {
    const std::string program = generate_rank_program(strategy, rank, active_ranks);
    if (!program.empty()) {
      out += program;
      out += "\n";
    }
  }
  return out;
}

}  // namespace adapcc::collective
