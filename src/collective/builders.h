// Elementary communication-graph shapes shared by tests, the baseline
// backends and the synthesizer's candidate generation: chains, stars and
// balanced k-ary trees over arbitrary node sequences.
#pragma once

#include <vector>

#include "collective/comm_graph.h"

namespace adapcc::collective {

/// Chain a -> b -> ... -> root (the last element is the root). A chain is
/// NCCL's ring in tree form: reducing along it pipelined gives ring-like
/// bandwidth (Sec. VI-B baseline).
Tree chain_tree(const std::vector<NodeId>& order);

/// All leaves point directly at the root.
Tree star_tree(NodeId root, const std::vector<NodeId>& leaves);

/// Balanced k-ary tree; nodes[0] is the root, children filled level order.
Tree kary_tree(const std::vector<NodeId>& nodes, int arity);

/// Strategy with one sub-collective carrying the full tensor over `tree`.
Strategy single_tree_strategy(Primitive primitive, std::vector<int> participants, Tree tree,
                              Bytes chunk_bytes);

/// Strategy with M sub-collectives of equal fraction, one tree each.
Strategy multi_tree_strategy(Primitive primitive, std::vector<int> participants,
                             std::vector<Tree> trees, Bytes chunk_bytes);

/// Direct AllToAll routes between every ordered pair of participants, with
/// each source's destinations listed in plain rank order — the send order
/// of a naive ncclSend/ncclRecv loop, where every source hits receiver 0
/// first (incast). Remote pairs use the composite cross-instance GPU->GPU
/// network edge. `instance_of` maps a rank to its instance index.
std::vector<FlowRoute> direct_alltoall_routes(const std::vector<int>& participants,
                                              const std::vector<int>& instance_of);

/// Like direct_alltoall_routes but each source's destinations are rotated
/// (source i sends to i+1, i+2, ... first), the classic balanced-exchange
/// schedule: at any moment every receiver has roughly one incoming flow.
std::vector<FlowRoute> rotated_alltoall_routes(const std::vector<int>& participants,
                                               const std::vector<int>& instance_of);

}  // namespace adapcc::collective
