// Per-rank schedule generation (Sec. IV-C-3 / V: "the communicator then
// generates CUDA code, which determines actions such as waiting for data
// from predecessors, launching the aggregation kernel, and sending data to
// successors").
//
// The simulator executes schedules directly, so "code" here is the faithful
// analog: a deterministic, human-readable program per rank derived from the
// strategy and the behavior tuples — the exact action sequence a CUDA
// backend would emit (stream setup, per-chunk waits/kernels/copies). It
// doubles as a debugging artifact: dump it to see precisely what a rank
// will do for a given active set.
#pragma once

#include <set>
#include <string>

#include "collective/comm_graph.h"

namespace adapcc::collective {

/// Renders the program rank `rank` executes for `strategy` with the given
/// active set. Covers every sub-collective (transmission context) the rank
/// participates in; returns an empty program when the rank is idle.
std::string generate_rank_program(const Strategy& strategy, int rank,
                                  const std::set<int>& active_ranks);

/// Renders all ranks' programs, separated by headers (debug dump).
std::string generate_all_programs(const Strategy& strategy,
                                  const std::set<int>& active_ranks);

}  // namespace adapcc::collective
