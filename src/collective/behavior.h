// GPU behavior abstraction (Sec. IV-C-3).
//
// Each rank's conduct on a communication graph with an arbitrary set of
// ready (active) workers is captured by the four-boolean tuple
// <isActive, hasRecv, hasKernel, hasSend>. The tuple is derived purely from
// the shared graph structure plus the active set — no graph reconstruction
// is needed when the active set changes, which is what lets AdapCC use
// non-ready workers as relays.
#pragma once

#include <set>
#include <string>

#include "collective/comm_graph.h"

namespace adapcc::collective {

struct BehaviorTuple {
  bool is_active = false;
  bool has_recv = false;
  bool has_kernel = false;
  bool has_send = false;

  friend bool operator==(const BehaviorTuple&, const BehaviorTuple&) = default;
};

std::string to_string(const BehaviorTuple& tuple);

/// Number of active GPUs in the subtree rooted at `node` (including `node`
/// itself), i.e. how much data flows toward the root through this node.
int active_in_subtree(const Tree& tree, NodeId node, const std::set<int>& active_ranks);

/// Derives the behavior tuple of `node` for a reduce-direction execution of
/// `sub` with the given active set, applying the paper's rules:
///   isActive  — node is a GPU whose worker is ready (not a relay / NIC);
///   hasRecv   — some active rank exists among the node's (recursive)
///               predecessors, so there is data to wait for;
///   hasKernel — an aggregation kernel is launched; cleared when (1) there
///               is nothing to receive, (2) the node is an inactive relay
///               with exactly one active precedent, or (3) the synthesizer
///               disabled aggregation at the node (a_{m,g} = 0);
///   hasSend   — cleared for the root and for nodes with neither local data
///               nor anything received.
BehaviorTuple derive_behavior(const SubCollective& sub, Primitive primitive, NodeId node,
                              const std::set<int>& active_ranks);

/// ADAPCC_AUDIT hook (no-op in regular builds): re-checks the structural
/// invariants of `sub`'s tree (single root, acyclic parent chains) and holds
/// every node's behavior tuple to the Sec. IV-C-3 consistency rules stated
/// as implications — hasKernel requires something to aggregate, inactive
/// leaves stay silent, only the root withholds its send — rather than by
/// re-running the derivation, so a future edit to derive_behavior that
/// violates the paper's rules trips the audit instead of agreeing with
/// itself.
void audit_behavior_tuples(const SubCollective& sub, Primitive primitive,
                           const std::set<int>& active_ranks);

}  // namespace adapcc::collective
