// Collective primitives supported by the library (Sec. IV-D): Reduce,
// Broadcast and AllToAll are synthesized natively as many-to-one,
// one-to-many and many-to-many patterns; the others are compositions —
// AllReduce is a Reduce followed by the Broadcast executed in reverse
// (pipelined), AllGather is one Broadcast per GPU, ReduceScatter is one
// Reduce per GPU.
#pragma once

#include <string>

#include "util/units.h"

namespace adapcc::collective {

enum class Primitive {
  kReduce,
  kBroadcast,
  kAllReduce,
  kAllGather,
  kReduceScatter,
  kAllToAll,
};

std::string to_string(Primitive primitive);

/// Total data volume a collective moves, used by the ski-rental cost
/// estimate (Sec. IV-C-1): AllReduce moves 2(N-1) tensor sizes, AllToAll
/// moves N, Broadcast/Reduce move 1 (per the paper's accounting).
double data_volume_factor(Primitive primitive, int participants);

/// True for primitives whose flows are aggregated along the way.
bool requires_aggregation(Primitive primitive);

}  // namespace adapcc::collective
