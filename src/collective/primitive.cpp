#include "collective/primitive.h"

namespace adapcc::collective {

std::string to_string(Primitive primitive) {
  switch (primitive) {
    case Primitive::kReduce: return "reduce";
    case Primitive::kBroadcast: return "broadcast";
    case Primitive::kAllReduce: return "allreduce";
    case Primitive::kAllGather: return "allgather";
    case Primitive::kReduceScatter: return "reducescatter";
    case Primitive::kAllToAll: return "alltoall";
  }
  return "?";
}

double data_volume_factor(Primitive primitive, int participants) {
  const double n = participants;
  switch (primitive) {
    case Primitive::kAllReduce: return 2.0 * (n - 1.0);
    case Primitive::kAllToAll: return n;
    case Primitive::kAllGather: return n - 1.0;
    case Primitive::kReduceScatter: return n - 1.0;
    case Primitive::kReduce:
    case Primitive::kBroadcast: return 1.0;
  }
  return 1.0;
}

bool requires_aggregation(Primitive primitive) {
  switch (primitive) {
    case Primitive::kReduce:
    case Primitive::kAllReduce:
    case Primitive::kReduceScatter: return true;
    case Primitive::kBroadcast:
    case Primitive::kAllGather:
    case Primitive::kAllToAll: return false;
  }
  return false;
}

}  // namespace adapcc::collective
