#include "collective/comm_graph.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/xml.h"

namespace adapcc::collective {

std::vector<NodeId> Tree::nodes() const {
  std::vector<NodeId> result{root};
  for (const auto& [child, _] : parent) {  // lint:ordered — sorted below
    if (child != root) result.push_back(child);
  }
  // Root first, then ascending NodeId: callers iterate this to build
  // channels and to order the aggregation local search, so hash-map order
  // would leak into simulation-visible results (tie-broken toggle choices).
  std::sort(result.begin() + 1, result.end());
  return result;
}

std::vector<NodeId> Tree::children_of(NodeId node) const {
  std::vector<NodeId> result;
  for (const auto& [child, p] : parent) {  // lint:ordered — sorted below
    if (p == node) result.push_back(child);
  }
  // Deterministic order regardless of hash-map iteration.
  std::sort(result.begin(), result.end());
  return result;
}

bool Tree::contains(NodeId node) const noexcept {
  return node == root || parent.contains(node);
}

int Tree::depth_of(NodeId node) const {
  int depth = 0;
  NodeId current = node;
  while (current != root) {
    const auto it = parent.find(current);
    if (it == parent.end()) throw std::invalid_argument("depth_of: node not in tree");
    current = it->second;
    if (++depth > static_cast<int>(parent.size()) + 1) {
      throw std::invalid_argument("depth_of: cycle in tree");
    }
  }
  return depth;
}

void Tree::validate(const LogicalTopology& topo) const {
  if (parent.contains(root)) throw std::invalid_argument("Tree: root has a parent");
  // lint:ordered — pure validation: every edge is checked, order-insensitive.
  for (const auto& [child, p] : parent) {
    if (!topo.has_edge(child, p)) {
      throw std::invalid_argument("Tree: edge " + to_string(child) + "->" + to_string(p) +
                                  " not in topology");
    }
    depth_of(child);  // throws on cycles / disconnection
  }
}

void FlowRoute::validate(const LogicalTopology& topo) const {
  if (path.size() < 2) throw std::invalid_argument("FlowRoute: path too short");
  if (path.front() != src || path.back() != dst) {
    throw std::invalid_argument("FlowRoute: path endpoints mismatch");
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!topo.has_edge(path[i], path[i + 1])) {
      throw std::invalid_argument("FlowRoute: edge " + to_string(path[i]) + "->" +
                                  to_string(path[i + 1]) + " not in topology");
    }
  }
}

bool SubCollective::aggregates_at(NodeId node, Primitive primitive) const {
  if (!requires_aggregation(primitive)) return false;
  if (node.is_nic()) return false;  // a_{m,g} = 0 for g in G_nic
  const auto it = aggregate_at.find(node);
  return it == aggregate_at.end() ? true : it->second;
}

void Strategy::validate(const LogicalTopology& topo) const {
  if (subs.empty()) throw std::invalid_argument("Strategy: no sub-collectives");
  double total_fraction = 0;
  for (const auto& sub : subs) {
    if (sub.fraction <= 0) throw std::invalid_argument("Strategy: non-positive fraction");
    if (sub.chunk_bytes == 0) throw std::invalid_argument("Strategy: zero chunk size");
    total_fraction += sub.fraction;
    if (primitive == Primitive::kAllToAll) {
      for (const auto& flow : sub.flows) flow.validate(topo);
    } else {
      sub.tree.validate(topo);
      // Every participant must appear in the tree.
      for (const int rank : participants) {
        if (!sub.tree.contains(NodeId::gpu(rank))) {
          throw std::invalid_argument("Strategy: participant gpu" + std::to_string(rank) +
                                      " missing from sub-collective tree");
        }
      }
    }
  }
  if (std::abs(total_fraction - 1.0) > 1e-6) {
    throw std::invalid_argument("Strategy: fractions must sum to 1");
  }
}

namespace {

std::string node_to_token(NodeId node) { return topology::to_string(node); }

NodeId token_to_node(const std::string& token) {
  if (token.starts_with("gpu")) return NodeId::gpu(std::stoi(token.substr(3)));
  if (token.starts_with("nic")) return NodeId::nic(std::stoi(token.substr(3)));
  throw std::runtime_error("Strategy XML: bad node token '" + token + "'");
}

std::vector<std::string> split_tokens(const std::string& text) {
  std::vector<std::string> tokens;
  std::istringstream stream(text);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

}  // namespace

std::string Strategy::to_xml() const {
  util::XmlElement root("strategy");
  root.set_attribute("primitive", to_string(primitive));
  root.set_attribute("origin", origin);
  std::string ranks;
  for (const int r : participants) {
    if (!ranks.empty()) ranks += ' ';
    ranks += std::to_string(r);
  }
  root.set_attribute("participants", ranks);
  for (const auto& sub : subs) {
    auto& sub_el = root.add_child("subcollective");
    sub_el.set_attribute("id", static_cast<long long>(sub.id));
    sub_el.set_attribute("fraction", sub.fraction);
    sub_el.set_attribute("chunk_bytes", static_cast<long long>(sub.chunk_bytes));
    if (sub.alltoall_concurrency != 0) {
      sub_el.set_attribute("concurrency", static_cast<long long>(sub.alltoall_concurrency));
    }
    if (primitive == Primitive::kAllToAll) {
      for (const auto& flow : sub.flows) {
        auto& flow_el = sub_el.add_child("flow");
        flow_el.set_attribute("src", node_to_token(flow.src));
        flow_el.set_attribute("dst", node_to_token(flow.dst));
        std::string path;
        for (const auto& node : flow.path) {
          if (!path.empty()) path += ' ';
          path += node_to_token(node);
        }
        flow_el.set_text(path);
      }
    } else {
      auto& tree_el = sub_el.add_child("tree");
      tree_el.set_attribute("root", node_to_token(sub.tree.root));
      // Deterministic edge order for stable fingerprints.
      std::vector<std::pair<NodeId, NodeId>> edges(sub.tree.parent.begin(),
                                                   sub.tree.parent.end());
      std::sort(edges.begin(), edges.end());
      for (const auto& [child, parent] : edges) {
        auto& edge_el = tree_el.add_child("edge");
        edge_el.set_attribute("child", node_to_token(child));
        edge_el.set_attribute("parent", node_to_token(parent));
      }
    }
    std::vector<std::pair<NodeId, bool>> aggs(sub.aggregate_at.begin(), sub.aggregate_at.end());
    std::sort(aggs.begin(), aggs.end());
    for (const auto& [node, flag] : aggs) {
      auto& agg_el = sub_el.add_child("aggregate");
      agg_el.set_attribute("node", node_to_token(node));
      agg_el.set_attribute("enabled", static_cast<long long>(flag ? 1 : 0));
    }
  }
  return root.to_string();
}

Strategy Strategy::from_xml(const std::string& document) {
  const auto root = util::parse_xml(document);
  if (root->name() != "strategy") throw std::runtime_error("Strategy XML: bad root element");
  Strategy strategy;
  const std::string prim = root->attribute("primitive");
  bool found = false;
  for (const Primitive p : {Primitive::kReduce, Primitive::kBroadcast, Primitive::kAllReduce,
                            Primitive::kAllGather, Primitive::kReduceScatter,
                            Primitive::kAllToAll}) {
    if (to_string(p) == prim) {
      strategy.primitive = p;
      found = true;
    }
  }
  if (!found) throw std::runtime_error("Strategy XML: unknown primitive " + prim);
  strategy.origin = root->attribute("origin");
  for (const auto& token : split_tokens(root->attribute("participants"))) {
    strategy.participants.push_back(std::stoi(token));
  }
  for (const auto* sub_el : root->children_named("subcollective")) {
    SubCollective sub;
    sub.id = static_cast<int>(sub_el->attribute_as_int("id"));
    sub.fraction = sub_el->attribute_as_double("fraction");
    sub.chunk_bytes = static_cast<Bytes>(sub_el->attribute_as_int("chunk_bytes"));
    if (sub_el->has_attribute("concurrency")) {
      sub.alltoall_concurrency = static_cast<int>(sub_el->attribute_as_int("concurrency"));
    }
    if (const auto* tree_el = sub_el->first_child("tree")) {
      sub.tree.root = token_to_node(tree_el->attribute("root"));
      for (const auto* edge_el : tree_el->children_named("edge")) {
        sub.tree.parent[token_to_node(edge_el->attribute("child"))] =
            token_to_node(edge_el->attribute("parent"));
      }
    }
    for (const auto* flow_el : sub_el->children_named("flow")) {
      FlowRoute flow;
      flow.src = token_to_node(flow_el->attribute("src"));
      flow.dst = token_to_node(flow_el->attribute("dst"));
      for (const auto& token : split_tokens(flow_el->text())) {
        flow.path.push_back(token_to_node(token));
      }
      sub.flows.push_back(std::move(flow));
    }
    for (const auto* agg_el : sub_el->children_named("aggregate")) {
      sub.aggregate_at[token_to_node(agg_el->attribute("node"))] =
          agg_el->attribute_as_int("enabled") != 0;
    }
    strategy.subs.push_back(std::move(sub));
  }
  return strategy;
}

std::string Strategy::fingerprint() const {
  // The XML rendering is deterministic (sorted edges/aggregation entries),
  // so it doubles as a structural fingerprint.
  return to_xml();
}

}  // namespace adapcc::collective
