#include "collective/builders.h"

#include <stdexcept>

namespace adapcc::collective {

Tree chain_tree(const std::vector<NodeId>& order) {
  if (order.empty()) throw std::invalid_argument("chain_tree: empty order");
  Tree tree;
  tree.root = order.back();
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    tree.parent[order[i]] = order[i + 1];
  }
  return tree;
}

Tree star_tree(NodeId root, const std::vector<NodeId>& leaves) {
  Tree tree;
  tree.root = root;
  for (const NodeId leaf : leaves) {
    if (leaf != root) tree.parent[leaf] = root;
  }
  return tree;
}

Tree kary_tree(const std::vector<NodeId>& nodes, int arity) {
  if (nodes.empty()) throw std::invalid_argument("kary_tree: empty nodes");
  if (arity < 1) throw std::invalid_argument("kary_tree: arity < 1");
  Tree tree;
  tree.root = nodes.front();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    tree.parent[nodes[i]] = nodes[(i - 1) / static_cast<std::size_t>(arity)];
  }
  return tree;
}

Strategy single_tree_strategy(Primitive primitive, std::vector<int> participants, Tree tree,
                              Bytes chunk_bytes) {
  Strategy strategy;
  strategy.primitive = primitive;
  strategy.participants = std::move(participants);
  SubCollective sub;
  sub.id = 0;
  sub.fraction = 1.0;
  sub.chunk_bytes = chunk_bytes;
  sub.tree = std::move(tree);
  strategy.subs.push_back(std::move(sub));
  return strategy;
}

Strategy multi_tree_strategy(Primitive primitive, std::vector<int> participants,
                             std::vector<Tree> trees, Bytes chunk_bytes) {
  if (trees.empty()) throw std::invalid_argument("multi_tree_strategy: no trees");
  Strategy strategy;
  strategy.primitive = primitive;
  strategy.participants = std::move(participants);
  const double fraction = 1.0 / static_cast<double>(trees.size());
  for (std::size_t i = 0; i < trees.size(); ++i) {
    SubCollective sub;
    sub.id = static_cast<int>(i);
    sub.fraction = fraction;
    sub.chunk_bytes = chunk_bytes;
    sub.tree = std::move(trees[i]);
    strategy.subs.push_back(std::move(sub));
  }
  return strategy;
}

namespace {

FlowRoute make_route(int src, int dst, const std::vector<int>& instance_of) {
  (void)instance_of;  // cross-instance pairs use the composite network edge
  FlowRoute route;
  route.src = NodeId::gpu(src);
  route.dst = NodeId::gpu(dst);
  route.path = {route.src, route.dst};
  return route;
}

}  // namespace

std::vector<FlowRoute> direct_alltoall_routes(const std::vector<int>& participants,
                                              const std::vector<int>& instance_of) {
  std::vector<FlowRoute> routes;
  for (const int src : participants) {
    for (const int dst : participants) {
      if (src != dst) routes.push_back(make_route(src, dst, instance_of));
    }
  }
  return routes;
}

std::vector<FlowRoute> rotated_alltoall_routes(const std::vector<int>& participants,
                                               const std::vector<int>& instance_of) {
  std::vector<FlowRoute> routes;
  const std::size_t n = participants.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t step = 1; step < n; ++step) {
      routes.push_back(
          make_route(participants[i], participants[(i + step) % n], instance_of));
    }
  }
  return routes;
}

}  // namespace adapcc::collective
