// Payload bookkeeping for correctness checking.
//
// The simulator separates *timing* (driven by byte counts on FlowLinks) from
// *semantics*: every chunk message carries a double value plus a bitmask of
// the ranks whose tensors have been aggregated into it. Tests assert that a
// Reduce delivers, for every chunk, the exact sum of the active ranks'
// payloads with a full contributor mask — the invariant that phase-1/phase-2
// relay communication must preserve for model-accuracy parity (Fig. 19b).
#pragma once

#include <cstdint>

namespace adapcc::collective {

/// Bitmask of contributing ranks; the library supports up to 64 workers,
/// comfortably above the paper's 24-GPU testbed.
using ContributorMask = std::uint64_t;

inline constexpr int kMaxRanks = 64;

inline constexpr ContributorMask rank_bit(int rank) {
  return ContributorMask{1} << rank;
}

/// Deterministic per-(rank, sub, chunk) tensor value.
inline constexpr double payload_value(int rank, int sub, int chunk) {
  return 1.0 + rank + 1e3 * chunk + 1e6 * sub;
}

/// Value of the chunk sent from `src` to `dst` in an AllToAll.
inline constexpr double alltoall_value(int src, int dst, int sub, int chunk) {
  return 1.0 + src + 100.0 * dst + 1e4 * chunk + 1e7 * sub;
}

struct ChunkMessage {
  double value = 0.0;
  ContributorMask mask = 0;
};

}  // namespace adapcc::collective
