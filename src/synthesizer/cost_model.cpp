#include "synthesizer/cost_model.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "collective/behavior.h"
#include "collective/primitive.h"
#include "topology/hardware.h"

namespace adapcc::synthesizer {

namespace {

using collective::Primitive;
using collective::SubCollective;
using collective::Tree;

/// Messages emitted per chunk by `node` toward its parent (the N_ij^m rule
/// for Reduce, Sec. IV-D): an aggregating node forwards one combined
/// message; a non-aggregating node forwards everything it received plus its
/// own contribution.
int reduce_out_messages(const SubCollective& sub, Primitive primitive, NodeId node,
                        const std::set<int>& active_ranks,
                        std::unordered_map<NodeId, int>* inputs_out) {
  int inputs = node.is_gpu() && active_ranks.contains(node.index) ? 1 : 0;
  for (const NodeId child : sub.tree.children_of(node)) {
    inputs += reduce_out_messages(sub, primitive, child, active_ranks, inputs_out);
  }
  if (inputs_out != nullptr) (*inputs_out)[node] = inputs;
  if (inputs == 0) return 0;
  return sub.aggregates_at(node, primitive) ? 1 : inputs;
}

void add_tree_loads(const SubCollective& sub, Primitive primitive,
                    const std::set<int>& active_ranks, bool reduce_direction, LinkLoads& loads) {
  if (reduce_direction) {
    // Walk the tree once; edge (node -> parent) carries out(node) messages.
    std::unordered_map<NodeId, int> inputs;
    reduce_out_messages(sub, primitive, sub.tree.root, active_ranks, &inputs);
    for (const auto& [child, parent] : sub.tree.parent) {
      const int in = inputs.contains(child) ? inputs.at(child) : 0;
      if (in == 0) continue;
      const double out = sub.aggregates_at(child, primitive) ? 1.0 : static_cast<double>(in);
      loads[EdgeKey{child, parent}] += out;
    }
  } else {
    // Broadcast: replicas of the same data are grouped as one flow per edge.
    for (const auto& [child, parent] : sub.tree.parent) {
      loads[EdgeKey{parent, child}] += 1.0;
    }
  }
}

void add_flow_loads(const SubCollective& sub, LinkLoads& loads) {
  for (const auto& flow : sub.flows) {
    for (std::size_t i = 0; i + 1 < flow.path.size(); ++i) {
      loads[EdgeKey{flow.path[i], flow.path[i + 1]}] += 1.0;  // AllToAll sums flows
    }
  }
}

const topology::LogicalEdge& profiled_edge(const LogicalTopology& topo, NodeId from, NodeId to) {
  if (!topo.has_edge(from, to)) {
    throw std::invalid_argument("cost model: strategy uses edge " + to_string(from) + "->" +
                                to_string(to) + " absent from topology");
  }
  const auto& edge = topo.edge(from, to);
  if (!edge.profiled || edge.beta <= 0) {
    throw std::invalid_argument("cost model: edge " + to_string(from) + "->" + to_string(to) +
                                " not profiled");
  }
  return edge;
}

/// Aggregate traffic loads per NIC port: network-edge bandwidth is shared
/// at the instance's egress and ingress, not per logical edge, so three
/// composite GPU-GPU edges into one server contend for one ingress port.
/// The port's own capacity matters too: a flow's rate is the bottleneck of
/// (egress capacity / egress load, ingress capacity / ingress load).
struct PortState {
  std::unordered_map<int, double> egress_load;
  std::unordered_map<int, double> ingress_load;
  std::unordered_map<int, double> egress_beta;   // 1 / port capacity
  std::unordered_map<int, double> ingress_beta;
};

PortState compute_port_state(const LogicalTopology& topo, const LinkLoads& loads) {
  PortState ports;
  for (const auto& [key, load] : loads) {
    if (!topo.has_edge(key.from, key.to)) continue;
    if (topo.edge(key.from, key.to).type != topology::EdgeType::kNetwork) continue;
    if (!topo.has_placement(key.from) || !topo.has_placement(key.to)) continue;
    ports.egress_load[topo.instance_of(key.from)] += load;
    ports.ingress_load[topo.instance_of(key.to)] += load;
  }
  // Port capacities from the profiled NIC mesh: a NIC's own speed is its
  // best measured pairing (slower pairings are limited by the peer).
  for (const auto& nic_from : topo.nic_nodes()) {
    for (const auto& nic_to : topo.nic_nodes()) {
      if (nic_from == nic_to || !topo.has_edge(nic_from, nic_to)) continue;
      const auto& edge = topo.edge(nic_from, nic_to);
      if (!edge.profiled || edge.beta <= 0) continue;
      const double port = edge.effective_port_beta();
      auto& eg = ports.egress_beta[nic_from.index];
      eg = eg == 0.0 ? port : std::min(eg, port);
      auto& in = ports.ingress_beta[nic_to.index];
      in = in == 0.0 ? port : std::min(in, port);
    }
  }
  return ports;
}

struct CostContext {
  const LogicalTopology& topo;
  const LinkLoads& loads;
  PortState ports;
};

/// Effective beta of an edge under shared bandwidth (Eq. 3): the worst of
/// the single-stream rate, the loaded edge rate, the shared egress port and
/// the shared ingress port.
double effective_beta(const CostContext& ctx, NodeId from, NodeId to) {
  const auto& edge = profiled_edge(ctx.topo, from, to);
  const auto it = ctx.loads.find(EdgeKey{from, to});
  const double edge_load = it == ctx.loads.end() ? 1.0 : std::max(1.0, it->second);
  // One flow can never exceed a single stream's rate (edge.beta); several
  // flows share the port capacity (effective_port_beta). On RDMA the two
  // coincide; on TCP parallel streams beat one capped stream (Sec. VI-D).
  double beta_eff = std::max(edge.beta, edge.effective_port_beta() * edge_load);
  if (edge.type == topology::EdgeType::kNetwork && ctx.topo.has_placement(from) &&
      ctx.topo.has_placement(to)) {
    const int src = ctx.topo.instance_of(from);
    const int dst = ctx.topo.instance_of(to);
    const auto eg_load = ctx.ports.egress_load.find(src);
    const auto eg_beta = ctx.ports.egress_beta.find(src);
    if (eg_load != ctx.ports.egress_load.end() && eg_beta != ctx.ports.egress_beta.end()) {
      beta_eff = std::max(beta_eff, eg_beta->second * eg_load->second);
    }
    const auto in_load = ctx.ports.ingress_load.find(dst);
    const auto in_beta = ctx.ports.ingress_beta.find(dst);
    if (in_load != ctx.ports.ingress_load.end() && in_beta != ctx.ports.ingress_beta.end()) {
      beta_eff = std::max(beta_eff, in_beta->second * in_load->second);
    }
  }
  return beta_eff;
}

/// First-chunk time across an edge (fills the pipeline): latency plus the
/// serialized transfer.
Seconds edge_chunk_time(const CostContext& ctx, NodeId from, NodeId to, Bytes chunk) {
  const auto& edge = profiled_edge(ctx.topo, from, to);
  return edge.alpha + effective_beta(ctx, from, to) * static_cast<double>(chunk);
}

/// Steady-state pipeline period of an edge: latency is hidden by the
/// chunked pipeline (the Communicator overlaps copies, events and network
/// propagation, Sec. V-B), so only serialization bounds the period — with a
/// floor of one kernel-launch/event overhead per chunk.
Seconds edge_period(const CostContext& ctx, NodeId from, NodeId to, Bytes chunk) {
  return std::max(effective_beta(ctx, from, to) * static_cast<double>(chunk),
                  topology::kernel_launch_overhead());
}

struct TreeTiming {
  Seconds h_root = 0.0;        ///< ready time of the first chunk at the root
  Seconds max_bottleneck = 0;  ///< worst per-chunk step across flows
};

/// Eq. 2 evaluated bottom-up for a reduce-direction tree; returns the root
/// chunk-ready time and the bottleneck step.
TreeTiming reduce_timing(const SubCollective& sub, Primitive primitive, const CostContext& ctx,
                         Bytes chunk, const std::set<int>& active_ranks) {
  TreeTiming timing;
  // Recursive lambda over the tree.
  const std::function<Seconds(NodeId)> visit = [&](NodeId node) -> Seconds {
    Seconds h = 0.0;  // local data ready at time zero
    for (const NodeId child : sub.tree.children_of(node)) {
      if (collective::active_in_subtree(sub.tree, child, active_ranks) == 0) continue;
      const Seconds t = edge_chunk_time(ctx, child, node, chunk);
      timing.max_bottleneck = std::max(timing.max_bottleneck, edge_period(ctx, child, node, chunk));
      h = std::max(h, visit(child) + t);
    }
    return h;
  };
  timing.h_root = visit(sub.tree.root);
  return timing;
}

/// Broadcast: per-flow path times from root to each leaf (no waiting).
TreeTiming broadcast_timing(const SubCollective& sub, const CostContext& ctx, Bytes chunk) {
  TreeTiming timing;
  const std::function<void(NodeId, Seconds)> visit = [&](NodeId node, Seconds h) {
    timing.h_root = std::max(timing.h_root, h);  // re-used as max leaf arrival
    for (const NodeId child : sub.tree.children_of(node)) {
      const Seconds t = edge_chunk_time(ctx, node, child, chunk);
      timing.max_bottleneck = std::max(timing.max_bottleneck, edge_period(ctx, node, child, chunk));
      visit(child, h + t);
    }
  };
  visit(sub.tree.root, 0.0);
  return timing;
}

}  // namespace

LinkLoads compute_link_loads(const Strategy& strategy, const std::set<int>& active_ranks) {
  LinkLoads loads;
  for (const auto& sub : strategy.subs) {
    switch (strategy.primitive) {
      case Primitive::kReduce:
      case Primitive::kReduceScatter:
        add_tree_loads(sub, strategy.primitive, active_ranks, /*reduce=*/true, loads);
        break;
      case Primitive::kBroadcast:
      case Primitive::kAllGather:
        add_tree_loads(sub, strategy.primitive, active_ranks, /*reduce=*/false, loads);
        break;
      case Primitive::kAllReduce:
        add_tree_loads(sub, strategy.primitive, active_ranks, /*reduce=*/true, loads);
        add_tree_loads(sub, strategy.primitive, active_ranks, /*reduce=*/false, loads);
        break;
      case Primitive::kAllToAll:
        add_flow_loads(sub, loads);
        break;
    }
  }
  return loads;
}

Seconds estimate_completion_time(const Strategy& strategy, const LogicalTopology& topo,
                                 Bytes tensor_bytes, const std::set<int>& active_ranks) {
  std::set<int> active = active_ranks;
  if (active.empty()) active.insert(strategy.participants.begin(), strategy.participants.end());
  const LinkLoads loads = compute_link_loads(strategy, active);
  const CostContext ctx{topo, loads, compute_port_state(topo, loads)};

  Seconds worst = 0.0;
  for (const auto& sub : strategy.subs) {
    const Bytes sub_bytes =
        static_cast<Bytes>(std::llround(sub.fraction * static_cast<double>(tensor_bytes)));
    if (sub_bytes == 0) continue;
    const Bytes chunk = std::min<Bytes>(sub.chunk_bytes, sub_bytes);
    const double chunks = std::ceil(static_cast<double>(sub_bytes) / static_cast<double>(chunk));

    Seconds total = 0.0;
    switch (strategy.primitive) {
      case Primitive::kReduce:
      case Primitive::kReduceScatter: {
        const auto timing = reduce_timing(sub, strategy.primitive, ctx, chunk, active);
        total = timing.h_root + chunks * timing.max_bottleneck;  // Eq. 5
        break;
      }
      case Primitive::kBroadcast:
      case Primitive::kAllGather: {
        const auto timing = broadcast_timing(sub, ctx, chunk);
        total = timing.h_root + chunks * timing.max_bottleneck;
        break;
      }
      case Primitive::kAllReduce: {
        // Reduce drives the pipeline; the last reduced chunk then rides the
        // broadcast path once (stages are pipelined, Sec. V-B).
        const auto reduce = reduce_timing(sub, strategy.primitive, ctx, chunk, active);
        const auto bcast = broadcast_timing(sub, ctx, chunk);
        const Seconds reduce_total = reduce.h_root + chunks * reduce.max_bottleneck;
        total = reduce_total + bcast.h_root;
        break;
      }
      case Primitive::kAllToAll: {
        const int participants = static_cast<int>(strategy.participants.size());
        const Bytes flow_bytes =
            participants > 0
                ? static_cast<Bytes>(std::llround(sub.fraction * static_cast<double>(tensor_bytes) /
                                                  participants))
                : 0;
        const Bytes flow_chunk = std::min<Bytes>(sub.chunk_bytes, std::max<Bytes>(flow_bytes, 1));
        const double flow_chunks =
            std::ceil(static_cast<double>(flow_bytes) / static_cast<double>(flow_chunk));
        for (const auto& flow : sub.flows) {
          Seconds h = 0.0;
          Seconds bottleneck = 0.0;
          for (std::size_t i = 0; i + 1 < flow.path.size(); ++i) {
            h += edge_chunk_time(ctx, flow.path[i], flow.path[i + 1], flow_chunk);
            bottleneck = std::max(bottleneck,
                                  edge_period(ctx, flow.path[i], flow.path[i + 1], flow_chunk));
          }
          total = std::max(total, h + flow_chunks * bottleneck);
        }
        break;
      }
    }
    worst = std::max(worst, total);  // Eq. 4
  }
  return worst;
}

BytesPerSecond aggregate_bandwidth(const Strategy& strategy, const LogicalTopology& topo) {
  std::set<std::pair<NodeId, NodeId>> used;
  for (const auto& sub : strategy.subs) {
    for (const auto& [child, parent] : sub.tree.parent) {
      used.emplace(child, parent);
    }
    for (const auto& flow : sub.flows) {
      for (std::size_t i = 0; i + 1 < flow.path.size(); ++i) {
        used.emplace(flow.path[i], flow.path[i + 1]);
      }
    }
  }
  BytesPerSecond total = 0.0;
  for (const auto& [from, to] : used) {
    if (topo.has_edge(from, to)) {
      const auto& edge = topo.edge(from, to);
      if (edge.beta > 0) total += 1.0 / edge.beta;
    }
  }
  return total;
}

double max_network_beta(const Strategy& strategy, const LogicalTopology& topo) {
  double beta = 0.0;
  const auto consider = [&](NodeId from, NodeId to) {
    if (!topo.has_edge(from, to)) return;
    const auto& edge = topo.edge(from, to);
    // Any network-type hop counts, including the composite cross-instance
    // GPU-GPU edges modern strategies use instead of explicit NIC nodes.
    if (edge.type == topology::EdgeType::kNetwork) beta = std::max(beta, edge.beta);
  };
  for (const auto& sub : strategy.subs) {
    for (const auto& [child, parent] : sub.tree.parent) consider(child, parent);
    for (const auto& flow : sub.flows) {
      for (std::size_t i = 0; i + 1 < flow.path.size(); ++i) {
        consider(flow.path[i], flow.path[i + 1]);
      }
    }
  }
  return beta;
}

}  // namespace adapcc::synthesizer
