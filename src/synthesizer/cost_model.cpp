#include "synthesizer/cost_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "collective/primitive.h"
#include "topology/hardware.h"

namespace adapcc::synthesizer {

namespace {

using collective::Primitive;
using collective::SubCollective;
using collective::Tree;

/// Messages emitted per chunk by `node` toward its parent (the N_ij^m rule
/// for Reduce, Sec. IV-D): an aggregating node forwards one combined
/// message; a non-aggregating node forwards everything it received plus its
/// own contribution.
int reduce_out_messages(const SubCollective& sub, Primitive primitive, NodeId node,
                        const std::set<int>& active_ranks,
                        std::unordered_map<NodeId, int>* inputs_out) {
  int inputs = node.is_gpu() && active_ranks.contains(node.index) ? 1 : 0;
  for (const NodeId child : sub.tree.children_of(node)) {
    inputs += reduce_out_messages(sub, primitive, child, active_ranks, inputs_out);
  }
  if (inputs_out != nullptr) (*inputs_out)[node] = inputs;
  if (inputs == 0) return 0;
  return sub.aggregates_at(node, primitive) ? 1 : inputs;
}

void add_tree_loads(const SubCollective& sub, Primitive primitive,
                    const std::set<int>& active_ranks, bool reduce_direction, LinkLoads& loads) {
  if (reduce_direction) {
    // Walk the tree once; edge (node -> parent) carries out(node) messages.
    std::unordered_map<NodeId, int> inputs;
    reduce_out_messages(sub, primitive, sub.tree.root, active_ranks, &inputs);
    // lint:ordered — integer-valued += per distinct edge key: exact and commutative.
    for (const auto& [child, parent] : sub.tree.parent) {
      const int in = inputs.contains(child) ? inputs.at(child) : 0;
      if (in == 0) continue;
      const double out = sub.aggregates_at(child, primitive) ? 1.0 : static_cast<double>(in);
      loads[EdgeKey{child, parent}] += out;
    }
  } else {
    // Broadcast: replicas of the same data are grouped as one flow per edge.
    // lint:ordered — integer-valued += per distinct edge key: exact and commutative.
    for (const auto& [child, parent] : sub.tree.parent) {
      loads[EdgeKey{parent, child}] += 1.0;
    }
  }
}

void add_flow_loads(const SubCollective& sub, LinkLoads& loads) {
  for (const auto& flow : sub.flows) {
    for (std::size_t i = 0; i + 1 < flow.path.size(); ++i) {
      loads[EdgeKey{flow.path[i], flow.path[i + 1]}] += 1.0;  // AllToAll sums flows
    }
  }
}

const topology::LogicalEdge& profiled_edge(const LogicalTopology& topo, NodeId from, NodeId to) {
  if (!topo.has_edge(from, to)) {
    throw std::invalid_argument("cost model: strategy uses edge " + to_string(from) + "->" +
                                to_string(to) + " absent from topology");
  }
  const auto& edge = topo.edge(from, to);
  if (!edge.profiled || edge.beta <= 0) {
    throw std::invalid_argument("cost model: edge " + to_string(from) + "->" + to_string(to) +
                                " not profiled");
  }
  return edge;
}

}  // namespace

PortState compute_port_state(const LogicalTopology& topo, const LinkLoads& loads) {
  PortState ports;
  for (const auto& [key, load] : loads) {
    if (!topo.has_edge(key.from, key.to)) continue;
    if (topo.edge(key.from, key.to).type != topology::EdgeType::kNetwork) continue;
    if (!topo.has_placement(key.from) || !topo.has_placement(key.to)) continue;
    ports.egress_load[topo.instance_of(key.from)] += load;
    ports.ingress_load[topo.instance_of(key.to)] += load;
  }
  // Port capacities from the profiled NIC mesh: a NIC's own speed is its
  // best measured pairing (slower pairings are limited by the peer).
  for (const auto& nic_from : topo.nic_nodes()) {
    for (const auto& nic_to : topo.nic_nodes()) {
      if (nic_from == nic_to || !topo.has_edge(nic_from, nic_to)) continue;
      const auto& edge = topo.edge(nic_from, nic_to);
      if (!edge.profiled || edge.beta <= 0) continue;
      const double port = edge.effective_port_beta();
      auto& eg = ports.egress_beta[nic_from.index];
      eg = eg == 0.0 ? port : std::min(eg, port);
      auto& in = ports.ingress_beta[nic_to.index];
      in = in == 0.0 ? port : std::min(in, port);
    }
  }
  return ports;
}

LinkLoads compute_link_loads(const Strategy& strategy, const std::set<int>& active_ranks) {
  LinkLoads loads;
  for (const auto& sub : strategy.subs) {
    switch (strategy.primitive) {
      case Primitive::kReduce:
      case Primitive::kReduceScatter:
        add_tree_loads(sub, strategy.primitive, active_ranks, /*reduce=*/true, loads);
        break;
      case Primitive::kBroadcast:
      case Primitive::kAllGather:
        add_tree_loads(sub, strategy.primitive, active_ranks, /*reduce=*/false, loads);
        break;
      case Primitive::kAllReduce:
        add_tree_loads(sub, strategy.primitive, active_ranks, /*reduce=*/true, loads);
        add_tree_loads(sub, strategy.primitive, active_ranks, /*reduce=*/false, loads);
        break;
      case Primitive::kAllToAll:
        add_flow_loads(sub, loads);
        break;
    }
  }
  return loads;
}

Seconds estimate_completion_time(const Strategy& strategy, const LogicalTopology& topo,
                                 Bytes tensor_bytes, const std::set<int>& active_ranks) {
  return CostEvaluator(strategy, topo, tensor_bytes, active_ranks).completion_time();
}

CostEvaluator::CostEvaluator(const Strategy& strategy, const LogicalTopology& topo,
                             Bytes tensor_bytes, const std::set<int>& active_ranks)
    : strategy_(strategy),
      topo_(topo),
      tensor_bytes_(tensor_bytes),
      active_(active_ranks),
      kernel_overhead_(topology::kernel_launch_overhead()) {
  if (active_.empty()) active_.insert(strategy.participants.begin(), strategy.participants.end());
  subs_.resize(strategy_.subs.size());
  for (std::size_t s = 0; s < strategy_.subs.size(); ++s) {
    build_sub_state(strategy_.subs[s], subs_[s]);
  }
  build_loads();
  ports_ = compute_port_state(topo_, loads_);
  // Only now are loads_ and ports_ final; unordered_map values are never
  // inserted or erased after this point, so EdgeInfo may hold raw pointers.
  resolve_edges();
}

void CostEvaluator::build_sub_state(const SubCollective& sub, SubState& st) const {
  if (strategy_.primitive == Primitive::kAllToAll) return;  // flow-based, no tree
  const Tree& tree = sub.tree;
  // Children adjacency sorted per parent — the same order (and therefore the
  // same arithmetic) Tree::children_of produces for the recursive walks.
  std::unordered_map<NodeId, std::vector<NodeId>> children;
  for (const auto& [child, parent] : tree.parent) children[parent].push_back(child);
  // lint:ordered — each per-parent list is sorted; visit order is irrelevant.
  for (auto& [node, kids] : children) std::sort(kids.begin(), kids.end());

  st.order.push_back(tree.root);
  st.index.emplace(tree.root, 0);
  st.parent.push_back(-1);
  for (std::size_t i = 0; i < st.order.size(); ++i) {
    const auto it = children.find(st.order[i]);
    if (it == children.end()) continue;
    for (const NodeId child : it->second) {
      if (st.index.contains(child)) continue;  // malformed cycle: visit once
      st.index.emplace(child, static_cast<int>(st.order.size()));
      st.parent.push_back(static_cast<int>(i));
      st.order.push_back(child);
    }
  }

  const int n = static_cast<int>(st.order.size());
  st.active_below.assign(n, 0);
  st.inputs.assign(n, 0);
  st.out.assign(n, 0);
  st.visited.assign(n, 0);
  st.h.assign(n, 0.0);
  for (int i = 0; i < n; ++i) {
    const NodeId node = st.order[i];
    const int own = node.is_gpu() && active_.contains(node.index) ? 1 : 0;
    st.active_below[i] = own;
    st.inputs[i] = own;
  }
  // Breadth-first order puts every parent before its children, so one
  // reverse sweep evaluates the reduce_out_messages recurrence bottom-up.
  for (int i = n - 1; i >= 0; --i) {
    st.out[i] = st.inputs[i] == 0
                    ? 0
                    : (sub.aggregates_at(st.order[i], strategy_.primitive) ? 1 : st.inputs[i]);
    if (st.parent[i] >= 0) {
      st.active_below[st.parent[i]] += st.active_below[i];
      st.inputs[st.parent[i]] += st.out[i];
    }
  }
  // Reduce timing prunes subtrees with no active GPU; precompute which nodes
  // it reaches (the toggle search cannot change this — it only flips
  // aggregation, never membership).
  st.visited[0] = 1;
  for (int i = 1; i < n; ++i) {
    st.visited[i] = static_cast<char>(st.visited[st.parent[i]] != 0 && st.active_below[i] > 0);
  }
}

void CostEvaluator::build_loads() {
  const auto add_reduce = [&](const SubCollective& sub, const SubState& st) {
    // lint:ordered — integer-valued += per distinct edge key: exact and commutative.
    for (const auto& [child, parent] : sub.tree.parent) {
      const auto it = st.index.find(child);
      const int out = it == st.index.end() ? 0 : st.out[it->second];
      if (out == 0) continue;
      loads_[EdgeKey{child, parent}] += static_cast<double>(out);
    }
  };
  const auto add_broadcast = [&](const SubCollective& sub) {
    // lint:ordered — integer-valued += per distinct edge key: exact and commutative.
    for (const auto& [child, parent] : sub.tree.parent) loads_[EdgeKey{parent, child}] += 1.0;
  };
  for (std::size_t s = 0; s < strategy_.subs.size(); ++s) {
    const auto& sub = strategy_.subs[s];
    switch (strategy_.primitive) {
      case Primitive::kReduce:
      case Primitive::kReduceScatter:
        add_reduce(sub, subs_[s]);
        break;
      case Primitive::kBroadcast:
      case Primitive::kAllGather:
        add_broadcast(sub);
        break;
      case Primitive::kAllReduce:
        add_reduce(sub, subs_[s]);
        add_broadcast(sub);
        break;
      case Primitive::kAllToAll:
        add_flow_loads(sub, loads_);
        break;
    }
  }
}

void CostEvaluator::resolve_edges() {
  for (std::size_t s = 0; s < strategy_.subs.size(); ++s) {
    const auto& sub = strategy_.subs[s];
    SubState& st = subs_[s];
    if (strategy_.primitive == Primitive::kAllToAll) {
      st.flow_edges.reserve(sub.flows.size());
      for (const auto& flow : sub.flows) {
        std::vector<EdgeInfo> path;
        for (std::size_t i = 0; i + 1 < flow.path.size(); ++i) {
          path.push_back(make_edge(flow.path[i], flow.path[i + 1]));
        }
        st.flow_edges.push_back(std::move(path));
      }
      continue;
    }
    const bool wants_up = strategy_.primitive != Primitive::kBroadcast &&
                          strategy_.primitive != Primitive::kAllGather;
    const bool wants_down = strategy_.primitive != Primitive::kReduce &&
                            strategy_.primitive != Primitive::kReduceScatter;
    const int n = static_cast<int>(st.order.size());
    if (wants_up) st.up.resize(n);
    if (wants_down) st.down.resize(n);
    for (int i = 1; i < n; ++i) {
      const NodeId node = st.order[i];
      const NodeId parent = st.order[st.parent[i]];
      if (wants_up) st.up[i] = make_edge(node, parent);
      if (wants_down) st.down[i] = make_edge(parent, node);
    }
  }
}

CostEvaluator::EdgeInfo CostEvaluator::make_edge(NodeId from, NodeId to) {
  EdgeInfo e;
  e.from = from;
  e.to = to;
  const auto load_it = loads_.find(EdgeKey{from, to});
  if (load_it != loads_.end()) e.load = &load_it->second;
  if (!topo_.has_edge(from, to)) return e;  // throws at first use, not here
  const auto& edge = topo_.edge(from, to);
  if (edge.profiled && edge.beta > 0) {
    e.valid = true;
    e.alpha = edge.alpha;
    e.beta = edge.beta;
    e.port_beta = edge.effective_port_beta();
  }
  if (edge.type == topology::EdgeType::kNetwork && topo_.has_placement(from) &&
      topo_.has_placement(to)) {
    e.network_port = true;
    const int src = topo_.instance_of(from);
    const int dst = topo_.instance_of(to);
    const auto eg_load = ports_.egress_load.find(src);
    if (eg_load != ports_.egress_load.end()) e.eg_load = &eg_load->second;
    const auto in_load = ports_.ingress_load.find(dst);
    if (in_load != ports_.ingress_load.end()) e.in_load = &in_load->second;
    const auto eg_beta = ports_.egress_beta.find(src);
    if (eg_beta != ports_.egress_beta.end()) {
      e.eg_beta = eg_beta->second;
      e.has_eg = e.eg_load != nullptr;
    }
    const auto in_beta = ports_.ingress_beta.find(dst);
    if (in_beta != ports_.ingress_beta.end()) {
      e.in_beta = in_beta->second;
      e.has_in = e.in_load != nullptr;
    }
  }
  return e;
}

/// Effective beta of an edge under shared bandwidth (Eq. 3): the worst of
/// the single-stream rate, the loaded edge rate, the shared egress port and
/// the shared ingress port. One flow can never exceed a single stream's rate
/// (edge.beta); several flows share the port capacity (effective_port_beta).
/// On RDMA the two coincide; on TCP parallel streams beat one capped stream
/// (Sec. VI-D).
double CostEvaluator::beta_eff(const EdgeInfo& edge) const {
  if (!edge.valid) profiled_edge(topo_, edge.from, edge.to);  // throws
  const double edge_load = edge.load != nullptr ? std::max(1.0, *edge.load) : 1.0;
  double beta = std::max(edge.beta, edge.port_beta * edge_load);
  if (edge.network_port) {
    if (edge.has_eg) beta = std::max(beta, edge.eg_beta * *edge.eg_load);
    if (edge.has_in) beta = std::max(beta, edge.in_beta * *edge.in_load);
  }
  return beta;
}

/// Eq. 2 bottom-up over the flattened tree: one reverse sweep computes the
/// root chunk-ready time (first-chunk times alpha + beta~ C fill the
/// pipeline) and the bottleneck period (beta~ C serialization with a floor
/// of one kernel-launch overhead per chunk, latency hidden by pipelining).
CostEvaluator::PassResult CostEvaluator::reduce_pass(SubState& st, Bytes chunk) const {
  std::fill(st.h.begin(), st.h.end(), 0.0);
  PassResult result;
  const double chunk_d = static_cast<double>(chunk);
  for (int i = static_cast<int>(st.order.size()) - 1; i >= 1; --i) {
    if (!st.visited[i]) continue;
    const EdgeInfo& e = st.up[i];
    const double serialized = beta_eff(e) * chunk_d;
    result.bottleneck = std::max(result.bottleneck, std::max(serialized, kernel_overhead_));
    st.h[st.parent[i]] = std::max(st.h[st.parent[i]], st.h[i] + (e.alpha + serialized));
  }
  result.h = st.h[0];
  return result;
}

/// Broadcast: per-flow path times from root toward each leaf (no waiting),
/// accumulated top-down in one forward sweep; `h` is the worst arrival.
CostEvaluator::PassResult CostEvaluator::broadcast_pass(SubState& st, Bytes chunk) const {
  std::fill(st.h.begin(), st.h.end(), 0.0);
  PassResult result;
  const double chunk_d = static_cast<double>(chunk);
  const int n = static_cast<int>(st.order.size());
  for (int i = 1; i < n; ++i) {
    const EdgeInfo& e = st.down[i];
    const double serialized = beta_eff(e) * chunk_d;
    result.bottleneck = std::max(result.bottleneck, std::max(serialized, kernel_overhead_));
    st.h[i] = st.h[st.parent[i]] + (e.alpha + serialized);
    result.h = std::max(result.h, st.h[i]);
  }
  return result;
}

Seconds CostEvaluator::completion_time() {
  Seconds worst = 0.0;
  for (std::size_t s = 0; s < strategy_.subs.size(); ++s) {
    const auto& sub = strategy_.subs[s];
    SubState& st = subs_[s];
    const Bytes sub_bytes =
        static_cast<Bytes>(std::llround(sub.fraction * static_cast<double>(tensor_bytes_)));
    if (sub_bytes == 0) continue;
    const Bytes chunk = std::min<Bytes>(sub.chunk_bytes, sub_bytes);
    const double chunks = std::ceil(static_cast<double>(sub_bytes) / static_cast<double>(chunk));

    Seconds total = 0.0;
    switch (strategy_.primitive) {
      case Primitive::kReduce:
      case Primitive::kReduceScatter: {
        const PassResult timing = reduce_pass(st, chunk);
        total = timing.h + chunks * timing.bottleneck;  // Eq. 5
        break;
      }
      case Primitive::kBroadcast:
      case Primitive::kAllGather: {
        const PassResult timing = broadcast_pass(st, chunk);
        total = timing.h + chunks * timing.bottleneck;
        break;
      }
      case Primitive::kAllReduce: {
        // Reduce drives the pipeline; the last reduced chunk then rides the
        // broadcast path once (stages are pipelined, Sec. V-B).
        const PassResult reduce = reduce_pass(st, chunk);
        const PassResult bcast = broadcast_pass(st, chunk);
        const Seconds reduce_total = reduce.h + chunks * reduce.bottleneck;
        total = reduce_total + bcast.h;
        break;
      }
      case Primitive::kAllToAll: {
        const int participants = static_cast<int>(strategy_.participants.size());
        const Bytes flow_bytes =
            participants > 0
                ? static_cast<Bytes>(std::llround(
                      sub.fraction * static_cast<double>(tensor_bytes_) / participants))
                : 0;
        const Bytes flow_chunk = std::min<Bytes>(sub.chunk_bytes, std::max<Bytes>(flow_bytes, 1));
        const double flow_chunks =
            std::ceil(static_cast<double>(flow_bytes) / static_cast<double>(flow_chunk));
        const double chunk_d = static_cast<double>(flow_chunk);
        for (const auto& path : st.flow_edges) {
          Seconds h = 0.0;
          Seconds bottleneck = 0.0;
          for (const EdgeInfo& e : path) {
            const double serialized = beta_eff(e) * chunk_d;
            h += e.alpha + serialized;
            bottleneck = std::max(bottleneck, std::max(serialized, kernel_overhead_));
          }
          total = std::max(total, h + flow_chunks * bottleneck);
        }
        break;
      }
    }
    worst = std::max(worst, total);  // Eq. 4
  }
  return worst;
}

void CostEvaluator::on_aggregation_toggled(std::size_t sub_index, NodeId node) {
  switch (strategy_.primitive) {
    case Primitive::kReduce:
    case Primitive::kReduceScatter:
    case Primitive::kAllReduce:
      break;
    default:
      return;  // broadcast edges carry one replica regardless of aggregation
  }
  SubState& st = subs_[sub_index];
  const auto it = st.index.find(node);
  if (it == st.index.end()) return;  // unreachable from the root: carries no load
  const auto& sub = strategy_.subs[sub_index];
  int i = it->second;
  for (;;) {
    const int in = st.inputs[i];
    const int fresh =
        in == 0 ? 0 : (sub.aggregates_at(st.order[i], strategy_.primitive) ? 1 : in);
    const int delta = fresh - st.out[i];
    if (delta == 0) return;  // absorbed (e.g. by an aggregating ancestor)
    st.out[i] = fresh;
    const int parent = st.parent[i];
    if (parent < 0) return;  // the root's out feeds no edge
    EdgeInfo& e = st.up[i];
    if (e.load != nullptr) {
      const double d = static_cast<double>(delta);
      *e.load += d;
      if (e.network_port) {
        // Keep the shared-port sums consistent with the edge loads they
        // aggregate (compute_port_state counts exactly these edges).
        if (e.eg_load != nullptr) *e.eg_load += d;
        if (e.in_load != nullptr) *e.in_load += d;
      }
    }
    st.inputs[parent] += delta;
    i = parent;
  }
}

BytesPerSecond aggregate_bandwidth(const Strategy& strategy, const LogicalTopology& topo) {
  std::set<std::pair<NodeId, NodeId>> used;
  for (const auto& sub : strategy.subs) {
    // lint:ordered — inserts into an ordered std::set; iteration order irrelevant.
    for (const auto& [child, parent] : sub.tree.parent) {
      used.emplace(child, parent);
    }
    for (const auto& flow : sub.flows) {
      for (std::size_t i = 0; i + 1 < flow.path.size(); ++i) {
        used.emplace(flow.path[i], flow.path[i + 1]);
      }
    }
  }
  BytesPerSecond total = 0.0;
  for (const auto& [from, to] : used) {
    if (topo.has_edge(from, to)) {
      const auto& edge = topo.edge(from, to);
      if (edge.beta > 0) total += 1.0 / edge.beta;
    }
  }
  return total;
}

double max_network_beta(const Strategy& strategy, const LogicalTopology& topo) {
  double beta = 0.0;
  const auto consider = [&](NodeId from, NodeId to) {
    if (!topo.has_edge(from, to)) return;
    const auto& edge = topo.edge(from, to);
    // Any network-type hop counts, including the composite cross-instance
    // GPU-GPU edges modern strategies use instead of explicit NIC nodes.
    if (edge.type == topology::EdgeType::kNetwork) beta = std::max(beta, edge.beta);
  };
  for (const auto& sub : strategy.subs) {
    // lint:ordered — max() accumulation is commutative.
    for (const auto& [child, parent] : sub.tree.parent) consider(child, parent);
    for (const auto& flow : sub.flows) {
      for (std::size_t i = 0; i + 1 < flow.path.size(); ++i) {
        consider(flow.path[i], flow.path[i + 1]);
      }
    }
  }
  return beta;
}

}  // namespace adapcc::synthesizer
