// Analytic cost model of a Strategy — the objective of the synthesizer's
// optimization problem (Sec. IV-D, Eq. 1-6).
//
// Flows are derived from the strategy (one flow per contributing GPU toward
// the root for Reduce; root-to-GPU flows for Broadcast; per-pair flows for
// AllToAll). Per-chunk edge cost is t = alpha + beta~ * C_m where the
// effective beta~ shares each link's profiled bandwidth among the traffic
// loads N_ij^m of all sub-collectives (Eq. 3). Chunk ready times h_j follow
// Eq. 2 (aggregating nodes wait for the slowest same-chunk arrival), and the
// completion of a flow is h_dst + ceil(S_m/C_m) * T_bottle (Eq. 5-6). The
// strategy's cost is the max flow completion time (Eq. 4).
//
// The model is deliberately the paper's, not the simulator's: the solver
// optimizes against Eq. 1-6 and the benches then *measure* the result on the
// simulator, mirroring how the real system optimizes a model and runs on
// hardware.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "collective/comm_graph.h"
#include "topology/logical_topology.h"
#include "util/units.h"

namespace adapcc::synthesizer {

using collective::Strategy;
using topology::LogicalTopology;
using topology::NodeId;

struct EdgeKey {
  NodeId from;
  NodeId to;
  friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
};

struct EdgeKeyHash {
  std::size_t operator()(const EdgeKey& k) const noexcept {
    return std::hash<NodeId>()(k.from) * 1315423911u ^ std::hash<NodeId>()(k.to);
  }
};

/// Per-link traffic loads N_ij = sum over sub-collectives of N_ij^m (Eq. 3).
using LinkLoads = std::unordered_map<EdgeKey, double, EdgeKeyHash>;

/// Computes the link loads of the whole strategy for `tensor_bytes` total.
LinkLoads compute_link_loads(const Strategy& strategy, const std::set<int>& active_ranks);

/// Aggregate traffic loads and capacities per NIC port: network-edge
/// bandwidth is shared at the instance's egress and ingress, not per logical
/// edge, so three composite GPU-GPU edges into one server contend for one
/// ingress port. The port's own capacity matters too: a flow's rate is the
/// bottleneck of (egress capacity / egress load, ingress capacity / ingress
/// load).
struct PortState {
  std::unordered_map<int, double> egress_load;
  std::unordered_map<int, double> ingress_load;
  std::unordered_map<int, double> egress_beta;   // 1 / port capacity
  std::unordered_map<int, double> ingress_beta;
};

/// Port loads and capacities derived from `loads` and the profiled NIC mesh.
PortState compute_port_state(const LogicalTopology& topo, const LinkLoads& loads);

/// Estimated completion time of the collective (Eq. 4). Throws
/// std::invalid_argument if the strategy references unprofiled edges.
Seconds estimate_completion_time(const Strategy& strategy, const LogicalTopology& topo,
                                 Bytes tensor_bytes, const std::set<int>& active_ranks);

/// Memoized, incremental evaluator of the Eq. 4 objective for one strategy.
///
/// The synthesizer scores the same strategy object many times per solve —
/// across the chunk-size sweep (loads are chunk-independent) and the
/// aggregation local search (a toggle changes the loads of only the toggled
/// node's ancestor chain). This class binds to a Strategy and caches
/// everything reusable between evaluations: per-sub breadth-first tree
/// indexes, active-subtree counts, reduce message counts (computed
/// iteratively over the index, not by recursion), the link-load map, the
/// shared-port state, and per-edge profiled constants with direct pointers
/// into the load map. completion_time() is then a flat array sweep over each
/// tree. All arithmetic replicates estimate_completion_time() operation for
/// operation, so the two produce bit-identical costs.
class CostEvaluator {
 public:
  /// Binds to `strategy`, which must outlive the evaluator. Callers may
  /// mutate sub.chunk_bytes freely between evaluations; every aggregate_at
  /// flip must be reported through on_aggregation_toggled (including
  /// reverts). `active_ranks` empty means all participants.
  CostEvaluator(const Strategy& strategy, const LogicalTopology& topo, Bytes tensor_bytes,
                const std::set<int>& active_ranks);

  /// Eq. 4 objective at the strategy's current chunk sizes. Throws
  /// std::invalid_argument when a visited edge is missing or unprofiled,
  /// exactly like estimate_completion_time.
  Seconds completion_time();

  /// Folds one aggregation flip (sub `sub_index` at `node`) into the cached
  /// loads: walks the ancestor chain, updating message counts and the edge
  /// and port loads they feed, stopping as soon as the delta is absorbed
  /// (at an aggregating ancestor) — O(depth) instead of a full recompute.
  /// Loads are integer-valued doubles, so the incremental +/- is exact.
  void on_aggregation_toggled(std::size_t sub_index, NodeId node);

  const LinkLoads& link_loads() const noexcept { return loads_; }

 private:
  /// Profiled constants of one directed edge plus direct pointers into the
  /// mutable load state. `valid` is false for missing/unprofiled edges; the
  /// throw is deferred to first use so edges in inactive subtrees (which
  /// timing never visits) do not fail eagerly.
  struct EdgeInfo {
    NodeId from{};
    NodeId to{};
    bool valid = false;
    bool network_port = false;  ///< network edge with both ends placed
    Seconds alpha = 0.0;
    double beta = 0.0;
    double port_beta = 0.0;  ///< edge.effective_port_beta()
    double* load = nullptr;  ///< loads_ slot; null = unloaded (treated as 1)
    double* eg_load = nullptr;  ///< shared egress-port load of from's instance
    double* in_load = nullptr;  ///< shared ingress-port load of to's instance
    double eg_beta = 0.0;
    double in_beta = 0.0;
    bool has_eg = false;
    bool has_in = false;
  };

  /// Flattened tree of one sub-collective: breadth-first order (root at 0,
  /// so a reverse sweep visits children before parents), with memoized
  /// per-node state.
  struct SubState {
    std::vector<NodeId> order;
    std::unordered_map<NodeId, int> index;
    std::vector<int> parent;        ///< index into order, -1 for the root
    std::vector<int> active_below;  ///< active GPUs in the subtree
    std::vector<char> visited;      ///< reachable through active subtrees
    std::vector<int> inputs;        ///< reduce messages arriving per chunk
    std::vector<int> out;           ///< reduce messages sent to the parent
    std::vector<EdgeInfo> up;       ///< node -> parent edge (reduce)
    std::vector<EdgeInfo> down;     ///< parent -> node edge (broadcast)
    std::vector<std::vector<EdgeInfo>> flow_edges;  ///< AllToAll paths
    std::vector<double> h;          ///< per-eval chunk-ready-time scratch
  };

  struct PassResult {
    Seconds h = 0.0;
    Seconds bottleneck = 0.0;
  };

  void build_sub_state(const collective::SubCollective& sub, SubState& st) const;
  void build_loads();
  void resolve_edges();
  EdgeInfo make_edge(NodeId from, NodeId to);
  double beta_eff(const EdgeInfo& edge) const;
  PassResult reduce_pass(SubState& st, Bytes chunk) const;
  PassResult broadcast_pass(SubState& st, Bytes chunk) const;

  const Strategy& strategy_;
  const LogicalTopology& topo_;
  Bytes tensor_bytes_;
  std::set<int> active_;
  LinkLoads loads_;
  PortState ports_;
  std::vector<SubState> subs_;
  Seconds kernel_overhead_;
};

/// Aggregate bandwidth B of the communication graph (sum of profiled
/// bottleneck bandwidths of the edges used), the quantity the ski-rental
/// coordinator divides data volume by (Sec. IV-C-1).
BytesPerSecond aggregate_bandwidth(const Strategy& strategy, const LogicalTopology& topo);

/// Slowest (highest-beta) network edge used by the strategy; zero when the
/// strategy stays inside one instance. Bounds the per-tensor cost of
/// phase-2 late-tensor dissemination.
double max_network_beta(const Strategy& strategy, const LogicalTopology& topo);

}  // namespace adapcc::synthesizer
