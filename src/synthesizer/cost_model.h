// Analytic cost model of a Strategy — the objective of the synthesizer's
// optimization problem (Sec. IV-D, Eq. 1-6).
//
// Flows are derived from the strategy (one flow per contributing GPU toward
// the root for Reduce; root-to-GPU flows for Broadcast; per-pair flows for
// AllToAll). Per-chunk edge cost is t = alpha + beta~ * C_m where the
// effective beta~ shares each link's profiled bandwidth among the traffic
// loads N_ij^m of all sub-collectives (Eq. 3). Chunk ready times h_j follow
// Eq. 2 (aggregating nodes wait for the slowest same-chunk arrival), and the
// completion of a flow is h_dst + ceil(S_m/C_m) * T_bottle (Eq. 5-6). The
// strategy's cost is the max flow completion time (Eq. 4).
//
// The model is deliberately the paper's, not the simulator's: the solver
// optimizes against Eq. 1-6 and the benches then *measure* the result on the
// simulator, mirroring how the real system optimizes a model and runs on
// hardware.
#pragma once

#include <set>
#include <unordered_map>

#include "collective/comm_graph.h"
#include "topology/logical_topology.h"
#include "util/units.h"

namespace adapcc::synthesizer {

using collective::Strategy;
using topology::LogicalTopology;
using topology::NodeId;

struct EdgeKey {
  NodeId from;
  NodeId to;
  friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
};

struct EdgeKeyHash {
  std::size_t operator()(const EdgeKey& k) const noexcept {
    return std::hash<NodeId>()(k.from) * 1315423911u ^ std::hash<NodeId>()(k.to);
  }
};

/// Per-link traffic loads N_ij = sum over sub-collectives of N_ij^m (Eq. 3).
using LinkLoads = std::unordered_map<EdgeKey, double, EdgeKeyHash>;

/// Computes the link loads of the whole strategy for `tensor_bytes` total.
LinkLoads compute_link_loads(const Strategy& strategy, const std::set<int>& active_ranks);

/// Estimated completion time of the collective (Eq. 4). Throws
/// std::invalid_argument if the strategy references unprofiled edges.
Seconds estimate_completion_time(const Strategy& strategy, const LogicalTopology& topo,
                                 Bytes tensor_bytes, const std::set<int>& active_ranks);

/// Aggregate bandwidth B of the communication graph (sum of profiled
/// bottleneck bandwidths of the edges used), the quantity the ski-rental
/// coordinator divides data volume by (Sec. IV-C-1).
BytesPerSecond aggregate_bandwidth(const Strategy& strategy, const LogicalTopology& topo);

/// Slowest (highest-beta) network edge used by the strategy; zero when the
/// strategy stays inside one instance. Bounds the per-tensor cost of
/// phase-2 late-tensor dissemination.
double max_network_beta(const Strategy& strategy, const LogicalTopology& topo);

}  // namespace adapcc::synthesizer
