// Synthesizer (Sec. IV-D): produces communication strategies — routing
// graphs for M parallel sub-collectives, chunk size, and per-node
// aggregation control — minimizing the Eq. 4 objective over the profiled
// logical topology.
//
// The optimization problem is a mixed-integer program the paper hands to
// Gurobi. No solver is available here, so (per the substitution rules in
// DESIGN.md) we search the same objective with a structured heuristic:
//   1. candidate generation — hierarchical trees (intra-instance NVLink
//      chains feeding the NIC, inter-instance stars/chains/binary trees over
//      NICs ordered by profiled bandwidth), with rotated root instances so
//      the M sub-collectives spread load across NICs;
//   2. chunk-size sweep over a geometric grid, scored with the cost model;
//   3. aggregation local search — toggling a_{m,g} at intermediate nodes and
//      keeping improvements (the paper's "partial aggregation" control).
// Solve time is reported for Fig. 19(c).
//
// The search runs on a util::TaskPool: candidate evaluation is pure
// host-side work (the simulated clock never advances during a solve), so
// trees, assignment x chunk combinations, and aggregation toggles fan out
// across solver threads while every reduction follows submission order with
// the serial loop's first-index tie-break. The chosen Strategy and its model
// cost are bit-identical at any thread count (DESIGN.md §10).
#pragma once

#include <set>
#include <vector>

#include "collective/comm_graph.h"
#include "synthesizer/cost_model.h"
#include "topology/cluster.h"
#include "topology/logical_topology.h"
#include "util/task_pool.h"

namespace adapcc::synthesizer {

struct SynthesizerConfig {
  /// Number of parallel sub-collectives M (Sec. VI-C uses M = 4).
  int parallel_subs = 4;
  /// Chunk sizes considered by the sweep.
  std::vector<Bytes> chunk_candidates = {512_KiB, 1_MiB, 2_MiB, 4_MiB, 8_MiB, 16_MiB};
  /// Run the aggregation-control local search.
  bool optimize_aggregation = true;
  /// Host threads for the candidate search; 0 = the ADAPCC_SOLVER_THREADS
  /// environment variable (default 1 = serial). Results are identical at
  /// every value — this is a wall-clock knob only.
  int solver_threads = 0;
};

struct SynthesisReport {
  Seconds model_cost = 0.0;        ///< Eq. 4 objective of the chosen strategy
  double solve_time_seconds = 0.0; ///< host wall-clock spent solving (Fig. 19c)
  int candidates_evaluated = 0;
  /// Cumulative counters of the runtime's strategy cache (Adapcc): lookups
  /// of the (primitive, participants, size-bucket, epoch) key that were
  /// served without solving vs. that ran the synthesizer. The synthesizer
  /// itself always reports zero for both.
  int cache_hits = 0;
  int cache_misses = 0;
};

class Synthesizer {
 public:
  /// `cluster` provides rank->instance placement; `topo` the profiled costs.
  Synthesizer(const topology::Cluster& cluster, const topology::LogicalTopology& topo,
              SynthesizerConfig config = {});

  /// Synthesizes a strategy for `primitive` among `participants` moving
  /// `tensor_bytes` per GPU. `active_ranks` defaults to all participants.
  collective::Strategy synthesize(collective::Primitive primitive,
                                  const std::vector<int>& participants, Bytes tensor_bytes,
                                  const std::set<int>& active_ranks = {});

  const SynthesisReport& last_report() const noexcept { return report_; }

  /// Resolved solver lanes (config / env / 1); the pool lives for the
  /// synthesizer's lifetime, so repeated solves reuse the same workers.
  int solver_thread_count() const noexcept { return pool_.thread_count(); }

 private:
  /// Candidate trees. For rooted primitives (Reduce/Broadcast) every
  /// candidate is rooted at `forced_root_rank`; otherwise roots rotate over
  /// instances so parallel sub-collectives can spread NIC load.
  std::vector<collective::Tree> candidate_trees(const std::vector<int>& participants,
                                                int forced_root_rank) const;
  collective::Tree hierarchical_tree(const std::vector<int>& participants, int root_instance,
                                     int inter_mode, int forced_root_rank = -1) const;

  const topology::Cluster& cluster_;
  const topology::LogicalTopology& topo_;
  SynthesizerConfig config_;
  SynthesisReport report_;
  util::TaskPool pool_;
};

}  // namespace adapcc::synthesizer
