#include "synthesizer/synthesizer.h"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "collective/builders.h"
#include "util/audit.h"
#include "util/logging.h"
#include "util/wallclock.h"

namespace adapcc::synthesizer {

namespace {

using collective::FlowRoute;
using collective::Primitive;
using collective::Strategy;
using collective::SubCollective;
using collective::Tree;

/// Profiled bandwidth of an edge, 0 when missing.
BytesPerSecond edge_bw(const topology::LogicalTopology& topo, NodeId from, NodeId to) {
  if (!topo.has_edge(from, to)) return 0.0;
  const auto& edge = topo.edge(from, to);
  return edge.beta > 0 ? 1.0 / edge.beta : 0.0;
}

}  // namespace

Synthesizer::Synthesizer(const topology::Cluster& cluster, const topology::LogicalTopology& topo,
                         SynthesizerConfig config)
    : cluster_(cluster), topo_(topo), config_(std::move(config)) {
  if (config_.parallel_subs < 1) throw std::invalid_argument("Synthesizer: M < 1");
  if (config_.chunk_candidates.empty()) {
    throw std::invalid_argument("Synthesizer: no chunk candidates");
  }
}

collective::Tree Synthesizer::hierarchical_tree(const std::vector<int>& participants,
                                                int root_instance, int inter_mode,
                                                int forced_root_rank) const {
  // Group participant ranks per instance.
  std::map<int, std::vector<int>> by_instance;
  for (const int rank : participants) by_instance[cluster_.instance_of_rank(rank)].push_back(rank);
  if (!by_instance.contains(root_instance)) {
    throw std::invalid_argument("hierarchical_tree: root instance has no participants");
  }

  // Local chain per instance: greedy path preferring the fastest profiled
  // GPU-GPU edges (keeps NVLink chains intact on fragmented topologies).
  const auto order_chain = [this](std::vector<int> ranks, int head) {
    std::sort(ranks.begin(), ranks.end());
    std::vector<int> chain{head};
    std::vector<int> remaining;
    for (const int r : ranks) {
      if (r != head) remaining.push_back(r);
    }
    while (!remaining.empty()) {
      const NodeId tail = NodeId::gpu(chain.back());
      auto best = remaining.begin();
      BytesPerSecond best_bw = -1.0;
      for (auto it = remaining.begin(); it != remaining.end(); ++it) {
        const BytesPerSecond bw = edge_bw(topo_, NodeId::gpu(*it), tail);
        if (bw > best_bw) {
          best_bw = bw;
          best = it;
        }
      }
      chain.push_back(*best);
      remaining.erase(best);
    }
    return chain;  // chain.front() is the head (closest to the root side)
  };

  Tree tree;
  std::map<int, NodeId> head_of;  // instance -> head GPU node
  for (auto& [inst, ranks] : by_instance) {
    const int head = inst == root_instance && forced_root_rank >= 0
                         ? forced_root_rank
                         : *std::min_element(ranks.begin(), ranks.end());
    const auto chain = order_chain(ranks, head);
    head_of[inst] = NodeId::gpu(chain.front());
    // Reduce direction: deeper chain members feed toward the head.
    for (std::size_t i = chain.size(); i-- > 1;) {
      tree.parent[NodeId::gpu(chain[i])] = NodeId::gpu(chain[i - 1]);
    }
  }

  const NodeId root_gpu = head_of.at(root_instance);
  tree.root = root_gpu;
  if (by_instance.size() == 1) return tree;  // single-instance collective

  // Inter-instance structure over the head GPUs. Heads aggregate their
  // instance's data (and, for interior tree positions, their children's),
  // so each cross-server hop carries one combined tensor.
  std::vector<int> other_instances;
  for (const auto& [inst, _] : by_instance) {
    if (inst != root_instance) other_instances.push_back(inst);
  }

  // Order the remote heads by descending profiled bandwidth toward the
  // root, so slower NICs sit deeper (they bottleneck only their own
  // subtree). Bandwidth ties break by ring order relative to the root
  // instance, so the M rotated sub-collectives place every instance at a
  // different chain depth and port load spreads evenly (ring-style).
  const int total_instances = cluster_.instance_count();
  std::sort(other_instances.begin(), other_instances.end(), [&](int a, int b) {
    const auto bw_a = edge_bw(topo_, head_of.at(a), root_gpu);
    const auto bw_b = edge_bw(topo_, head_of.at(b), root_gpu);
    if (bw_a != bw_b) return bw_a > bw_b;
    return (a - root_instance + total_instances) % total_instances <
           (b - root_instance + total_instances) % total_instances;
  });

  switch (inter_mode) {
    case 0:  // star: every head straight to the root
      for (const int inst : other_instances) {
        tree.parent[head_of.at(inst)] = root_gpu;
      }
      break;
    case 1: {  // chain: fastest head nearest the root
      NodeId up = root_gpu;
      for (const int inst : other_instances) {
        tree.parent[head_of.at(inst)] = up;
        up = head_of.at(inst);
      }
      break;
    }
    case 2: {  // binary tree over heads
      std::vector<NodeId> heads{root_gpu};
      for (const int inst : other_instances) heads.push_back(head_of.at(inst));
      for (std::size_t i = 1; i < heads.size(); ++i) {
        tree.parent[heads[i]] = heads[(i - 1) / 2];
      }
      break;
    }
    default:
      throw std::invalid_argument("hierarchical_tree: unknown inter mode");
  }
  return tree;
}

std::vector<Tree> Synthesizer::candidate_trees(const std::vector<int>& participants,
                                               int forced_root_rank) const {
  std::set<int> instances;
  for (const int rank : participants) instances.insert(cluster_.instance_of_rank(rank));
  std::vector<Tree> candidates;
  const int modes = instances.size() > 2 ? 3 : 1;  // star==chain==tree for <=2 servers
  if (forced_root_rank >= 0) {
    // Rooted primitives: every candidate must land the result on the root.
    const int root_inst = cluster_.instance_of_rank(forced_root_rank);
    for (int mode = 0; mode < modes; ++mode) {
      candidates.push_back(hierarchical_tree(participants, root_inst, mode, forced_root_rank));
    }
    return candidates;
  }
  if (instances.size() == 1) {
    // Single-instance job: rotate the chain head so parallel sub-collectives
    // can use different inter-island crossings on irregular NVLink wirings
    // (Sec. II-A); on fully wired boxes the rotated chains are symmetric.
    const int inst = *instances.begin();
    const int heads = std::min<int>(4, static_cast<int>(participants.size()));
    std::vector<int> sorted = participants;
    std::sort(sorted.begin(), sorted.end());
    for (int h = 0; h < heads; ++h) {
      candidates.push_back(hierarchical_tree(participants, inst, 0,
                                             sorted[static_cast<std::size_t>(h)]));
    }
    return candidates;
  }
  for (const int root_inst : instances) {
    for (int mode = 0; mode < modes; ++mode) {
      candidates.push_back(hierarchical_tree(participants, root_inst, mode));
    }
  }
  return candidates;
}

collective::Strategy Synthesizer::synthesize(Primitive primitive,
                                             const std::vector<int>& participants,
                                             Bytes tensor_bytes,
                                             const std::set<int>& active_ranks) {
  // Host-side solve timing (Fig. 19c) — reporting only, never fed back into
  // the search; direct clock reads are banned here (lint rule wall-clock).
  const util::WallTimer solve_timer;
  report_ = SynthesisReport{};
  std::set<int> active = active_ranks;
  if (active.empty()) active.insert(participants.begin(), participants.end());

  // ADAPCC_AUDIT: the memoized CostEvaluator claims bit-identical parity
  // with the one-shot estimate_completion_time. Re-derive every 5th
  // evaluation from scratch during real solves and require exact equality —
  // loads are integer-valued doubles, so any drift is a bug, not rounding.
  std::uint64_t audit_evals = 0;
  const auto audit_parity = [&](const Strategy& strategy, Seconds memoized) {
    if constexpr (audit::kEnabled) {
      if (++audit_evals % 5 != 0) return;
      const Seconds one_shot = estimate_completion_time(strategy, topo_, tensor_bytes, active);
      ADAPCC_AUDIT_CHECK("synthesizer", memoized == one_shot,
                         "memoized " << memoized << "s != one-shot " << one_shot
                                     << "s after " << audit_evals << " evaluations");
    } else {
      static_cast<void>(strategy);
      static_cast<void>(memoized);
    }
  };

  Strategy best;
  best.primitive = primitive;
  best.participants = participants;
  best.origin = "adapcc";

  if (primitive == Primitive::kAllToAll) {
    std::vector<int> instance_of(static_cast<std::size_t>(cluster_.world_size()));
    for (int r = 0; r < cluster_.world_size(); ++r) {
      instance_of[static_cast<std::size_t>(r)] = cluster_.instance_of_rank(r);
    }
    // Balanced exchange order; per-context streams allow deep per-source
    // concurrency (Sec. V-A).
    const auto routes = collective::rotated_alltoall_routes(participants, instance_of);
    Seconds best_cost = std::numeric_limits<double>::infinity();
    for (const Bytes chunk : config_.chunk_candidates) {
      Strategy candidate = best;
      for (int m = 0; m < config_.parallel_subs; ++m) {
        SubCollective sub;
        sub.id = m;
        sub.fraction = 1.0 / config_.parallel_subs;
        sub.chunk_bytes = chunk;
        sub.flows = routes;
        sub.alltoall_concurrency = 4;  // one per concurrent GPU stream
        candidate.subs.push_back(std::move(sub));
      }
      const Seconds cost = estimate_completion_time(candidate, topo_, tensor_bytes, active);
      ++report_.candidates_evaluated;
      if (cost < best_cost) {
        best_cost = cost;
        best = std::move(candidate);
      }
    }
    report_.model_cost = best_cost;
    report_.solve_time_seconds = solve_timer.elapsed_seconds();
    return best;
  }

  // --- Tree primitives -----------------------------------------------------
  // Reduce and Broadcast have a designated root (the lowest participant,
  // matching the baselines); AllReduce-family roots may rotate since every
  // sub-collective broadcasts its partition back to all ranks anyway.
  const bool rooted =
      primitive == Primitive::kReduce || primitive == Primitive::kBroadcast;
  const int forced_root = rooted ? *std::min_element(participants.begin(), participants.end())
                                 : -1;
  const auto trees = candidate_trees(participants, forced_root);
  if (trees.empty()) throw std::invalid_argument("synthesize: no candidate trees");

  // Rank single trees by model cost to pick rotation orders.
  std::vector<std::pair<Seconds, std::size_t>> ranked;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    Strategy probe;
    probe.primitive = primitive;
    probe.participants = participants;
    SubCollective sub;
    sub.fraction = 1.0;
    sub.chunk_bytes = config_.chunk_candidates.front();
    sub.tree = trees[i];
    probe.subs.push_back(std::move(sub));
    ranked.emplace_back(estimate_completion_time(probe, topo_, tensor_bytes, active), i);
    ++report_.candidates_evaluated;
  }
  std::sort(ranked.begin(), ranked.end());

  // The best candidate per root instance, in ascending model cost; rotating
  // the M sub-collectives over the top-k of these spreads NIC load, and the
  // joint evaluation below picks how many roots are worth using — a root on
  // a degraded NIC simply stops being included.
  std::vector<std::size_t> best_per_root;
  {
    std::set<int> seen_roots;
    for (const auto& [cost, index] : ranked) {
      const int inst = cluster_.instance_of_rank(trees[index].root.index);
      if (seen_roots.insert(inst).second) best_per_root.push_back(index);
    }
  }
  // Widest rotation first: on cost ties (common for ring-equivalent
  // AllReduce chains) prefer spreading roots across instances.
  std::vector<std::vector<std::size_t>> assignments;
  for (std::size_t k = best_per_root.size(); k >= 2; --k) {
    std::vector<std::size_t> rotated;
    for (int m = 0; m < config_.parallel_subs; ++m) {
      rotated.push_back(best_per_root[static_cast<std::size_t>(m) % k]);
    }
    assignments.push_back(std::move(rotated));
  }
  // A single-sub (M' = 1) variant: the S_m are decision variables, so
  // collapsing to one sub-collective is within the formulation; it avoids
  // per-sub pipeline-fill overhead when parallelism cannot spread load
  // (single-rooted Reduce on RDMA), while TCP's per-stream cap makes the
  // model strictly prefer the parallel variants there.
  assignments.push_back({ranked.front().second});
  assignments.push_back(std::vector<std::size_t>(
      static_cast<std::size_t>(config_.parallel_subs), ranked.front().second));

  Seconds best_cost = std::numeric_limits<double>::infinity();
  for (const auto& assignment : assignments) {
    // Trees and loads are fixed for the whole assignment and chunk size does
    // not enter the link loads, so build the candidate and its CostEvaluator
    // once and re-score the chunk sweep against the memoized state.
    Strategy candidate;
    candidate.primitive = primitive;
    candidate.participants = participants;
    candidate.origin = "adapcc";
    const int subs = static_cast<int>(assignment.size()) == 1 ? 1 : config_.parallel_subs;
    for (int m = 0; m < subs; ++m) {
      SubCollective sub;
      sub.id = m;
      sub.fraction = 1.0 / subs;
      sub.chunk_bytes = config_.chunk_candidates.front();
      sub.tree = trees[assignment[static_cast<std::size_t>(m) % assignment.size()]];
      candidate.subs.push_back(std::move(sub));
    }
    CostEvaluator evaluator(candidate, topo_, tensor_bytes, active);
    for (const Bytes chunk : config_.chunk_candidates) {
      for (auto& sub : candidate.subs) sub.chunk_bytes = chunk;
      const Seconds cost = evaluator.completion_time();
      audit_parity(candidate, cost);
      ++report_.candidates_evaluated;
      ADAPCC_LOG(kDebug, "synth") << "assignment size=" << assignment.size() << " first-root="
                                  << to_string(candidate.subs[0].tree.root) << " last-root="
                                  << to_string(candidate.subs.back().tree.root) << " chunk="
                                  << chunk << " cost=" << cost;
      if (cost < best_cost) {
        best_cost = cost;
        best = candidate;  // copy: the evaluator stays bound to `candidate`
      }
    }
  }

  // --- Aggregation-control local search (a_{m,g} toggles). ------------------
  if (config_.optimize_aggregation && collective::requires_aggregation(primitive)) {
    // One evaluator survives the whole search: each toggle patches only the
    // toggled node's ancestor-chain loads instead of recomputing every
    // sub-collective's message counts from scratch.
    CostEvaluator evaluator(best, topo_, tensor_bytes, active);
    bool improved = true;
    while (improved) {
      improved = false;
      for (std::size_t si = 0; si < best.subs.size(); ++si) {
        auto& sub = best.subs[si];
        for (const NodeId node : sub.tree.nodes()) {
          if (!node.is_gpu() || node == sub.tree.root) continue;
          if (sub.tree.children_of(node).empty()) continue;  // leaves don't aggregate anyway
          const bool current = sub.aggregates_at(node, primitive);
          sub.aggregate_at[node] = !current;
          evaluator.on_aggregation_toggled(si, node);
          const Seconds cost = evaluator.completion_time();
          audit_parity(best, cost);
          ++report_.candidates_evaluated;
          if (cost + 1e-12 < best_cost) {
            best_cost = cost;
            improved = true;
          } else {
            sub.aggregate_at[node] = current;
            evaluator.on_aggregation_toggled(si, node);
          }
        }
      }
    }
  }

  report_.model_cost = best_cost;
  report_.solve_time_seconds = solve_timer.elapsed_seconds();
  ADAPCC_LOG(kInfo, "synthesizer") << "synthesized " << to_string(primitive) << " cost="
                                   << best_cost << "s candidates=" << report_.candidates_evaluated
                                   << " solve=" << report_.solve_time_seconds << "s";
  return best;
}

}  // namespace adapcc::synthesizer
