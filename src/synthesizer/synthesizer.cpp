#include "synthesizer/synthesizer.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>

#include "collective/builders.h"
#include "telemetry/telemetry.h"
#include "util/audit.h"
#include "util/logging.h"
#include "util/wallclock.h"

namespace adapcc::synthesizer {

namespace {

using collective::FlowRoute;
using collective::Primitive;
using collective::Strategy;
using collective::SubCollective;
using collective::Tree;

/// Profiled bandwidth of an edge, 0 when missing.
BytesPerSecond edge_bw(const topology::LogicalTopology& topo, NodeId from, NodeId to) {
  if (!topo.has_edge(from, to)) return 0.0;
  const auto& edge = topo.edge(from, to);
  return edge.beta > 0 ? 1.0 / edge.beta : 0.0;
}

}  // namespace

Synthesizer::Synthesizer(const topology::Cluster& cluster, const topology::LogicalTopology& topo,
                         SynthesizerConfig config)
    : cluster_(cluster),
      topo_(topo),
      config_(std::move(config)),
      pool_(util::solver_threads(config_.solver_threads)) {
  if (config_.parallel_subs < 1) throw std::invalid_argument("Synthesizer: M < 1");
  if (config_.chunk_candidates.empty()) {
    throw std::invalid_argument("Synthesizer: no chunk candidates");
  }
}

collective::Tree Synthesizer::hierarchical_tree(const std::vector<int>& participants,
                                                int root_instance, int inter_mode,
                                                int forced_root_rank) const {
  // Group participant ranks per instance.
  std::map<int, std::vector<int>> by_instance;
  for (const int rank : participants) by_instance[cluster_.instance_of_rank(rank)].push_back(rank);
  if (!by_instance.contains(root_instance)) {
    throw std::invalid_argument("hierarchical_tree: root instance has no participants");
  }

  // Local chain per instance: greedy path preferring the fastest profiled
  // GPU-GPU edges (keeps NVLink chains intact on fragmented topologies).
  const auto order_chain = [this](std::vector<int> ranks, int head) {
    std::sort(ranks.begin(), ranks.end());
    std::vector<int> chain{head};
    std::vector<int> remaining;
    for (const int r : ranks) {
      if (r != head) remaining.push_back(r);
    }
    while (!remaining.empty()) {
      const NodeId tail = NodeId::gpu(chain.back());
      auto best = remaining.begin();
      BytesPerSecond best_bw = -1.0;
      for (auto it = remaining.begin(); it != remaining.end(); ++it) {
        const BytesPerSecond bw = edge_bw(topo_, NodeId::gpu(*it), tail);
        if (bw > best_bw) {
          best_bw = bw;
          best = it;
        }
      }
      chain.push_back(*best);
      remaining.erase(best);
    }
    return chain;  // chain.front() is the head (closest to the root side)
  };

  Tree tree;
  std::map<int, NodeId> head_of;  // instance -> head GPU node
  for (auto& [inst, ranks] : by_instance) {
    const int head = inst == root_instance && forced_root_rank >= 0
                         ? forced_root_rank
                         : *std::min_element(ranks.begin(), ranks.end());
    const auto chain = order_chain(ranks, head);
    head_of[inst] = NodeId::gpu(chain.front());
    // Reduce direction: deeper chain members feed toward the head.
    for (std::size_t i = chain.size(); i-- > 1;) {
      tree.parent[NodeId::gpu(chain[i])] = NodeId::gpu(chain[i - 1]);
    }
  }

  const NodeId root_gpu = head_of.at(root_instance);
  tree.root = root_gpu;
  if (by_instance.size() == 1) return tree;  // single-instance collective

  // Inter-instance structure over the head GPUs. Heads aggregate their
  // instance's data (and, for interior tree positions, their children's),
  // so each cross-server hop carries one combined tensor.
  std::vector<int> other_instances;
  for (const auto& [inst, _] : by_instance) {
    if (inst != root_instance) other_instances.push_back(inst);
  }

  // Order the remote heads by descending profiled bandwidth toward the
  // root, so slower NICs sit deeper (they bottleneck only their own
  // subtree). Bandwidth ties break by ring order relative to the root
  // instance, so the M rotated sub-collectives place every instance at a
  // different chain depth and port load spreads evenly (ring-style).
  const int total_instances = cluster_.instance_count();
  std::sort(other_instances.begin(), other_instances.end(), [&](int a, int b) {
    const auto bw_a = edge_bw(topo_, head_of.at(a), root_gpu);
    const auto bw_b = edge_bw(topo_, head_of.at(b), root_gpu);
    if (bw_a != bw_b) return bw_a > bw_b;
    return (a - root_instance + total_instances) % total_instances <
           (b - root_instance + total_instances) % total_instances;
  });

  switch (inter_mode) {
    case 0:  // star: every head straight to the root
      for (const int inst : other_instances) {
        tree.parent[head_of.at(inst)] = root_gpu;
      }
      break;
    case 1: {  // chain: fastest head nearest the root
      NodeId up = root_gpu;
      for (const int inst : other_instances) {
        tree.parent[head_of.at(inst)] = up;
        up = head_of.at(inst);
      }
      break;
    }
    case 2: {  // binary tree over heads
      std::vector<NodeId> heads{root_gpu};
      for (const int inst : other_instances) heads.push_back(head_of.at(inst));
      for (std::size_t i = 1; i < heads.size(); ++i) {
        tree.parent[heads[i]] = heads[(i - 1) / 2];
      }
      break;
    }
    default:
      throw std::invalid_argument("hierarchical_tree: unknown inter mode");
  }
  return tree;
}

std::vector<Tree> Synthesizer::candidate_trees(const std::vector<int>& participants,
                                               int forced_root_rank) const {
  std::set<int> instances;
  for (const int rank : participants) instances.insert(cluster_.instance_of_rank(rank));
  std::vector<Tree> candidates;
  const int modes = instances.size() > 2 ? 3 : 1;  // star==chain==tree for <=2 servers
  if (forced_root_rank >= 0) {
    // Rooted primitives: every candidate must land the result on the root.
    const int root_inst = cluster_.instance_of_rank(forced_root_rank);
    for (int mode = 0; mode < modes; ++mode) {
      candidates.push_back(hierarchical_tree(participants, root_inst, mode, forced_root_rank));
    }
    return candidates;
  }
  if (instances.size() == 1) {
    // Single-instance job: rotate the chain head so parallel sub-collectives
    // can use different inter-island crossings on irregular NVLink wirings
    // (Sec. II-A); on fully wired boxes the rotated chains are symmetric.
    const int inst = *instances.begin();
    const int heads = std::min<int>(4, static_cast<int>(participants.size()));
    std::vector<int> sorted = participants;
    std::sort(sorted.begin(), sorted.end());
    for (int h = 0; h < heads; ++h) {
      candidates.push_back(hierarchical_tree(participants, inst, 0,
                                             sorted[static_cast<std::size_t>(h)]));
    }
    return candidates;
  }
  for (const int root_inst : instances) {
    for (int mode = 0; mode < modes; ++mode) {
      candidates.push_back(hierarchical_tree(participants, root_inst, mode));
    }
  }
  return candidates;
}

collective::Strategy Synthesizer::synthesize(Primitive primitive,
                                             const std::vector<int>& participants,
                                             Bytes tensor_bytes,
                                             const std::set<int>& active_ranks) {
  // Host-side solve timing (Fig. 19c) — reporting only, never fed back into
  // the search; direct clock reads are banned here (lint rule wall-clock).
  const util::WallTimer solve_timer;
  report_ = SynthesisReport{};
  std::set<int> active = active_ranks;
  if (active.empty()) active.insert(participants.begin(), participants.end());

  // Host-span recording is gated per solve: when telemetry runs with
  // host_spans, each pool batch stamps wall-clock TaskSpans that are flushed
  // onto per-worker tracks after the batch joins (the recorder itself is
  // unsynchronized, so flushing happens on this thread only).
  const bool record_spans = telemetry::host_spans_enabled();
  pool_.set_record_spans(record_spans);
  const auto flush_spans = [&](const char* label) {
    if (record_spans) telemetry::flush_solver_spans(pool_.take_spans(), label);
  };

  // ADAPCC_AUDIT: the memoized CostEvaluator claims bit-identical parity
  // with the one-shot estimate_completion_time. Re-derive every 5th
  // evaluation from scratch during real solves and require exact equality —
  // loads are integer-valued doubles, so any drift is a bug, not rounding.
  // The counter is atomic because evaluations run on pool lanes; which
  // samples get audited varies with scheduling, but audits only verify.
  std::atomic<std::uint64_t> audit_evals{0};
  const auto audit_parity = [&](const Strategy& strategy, Seconds memoized) {
    if constexpr (audit::kEnabled) {
      const std::uint64_t count = audit_evals.fetch_add(1, std::memory_order_relaxed) + 1;
      if (count % 5 != 0) return;
      const Seconds one_shot = estimate_completion_time(strategy, topo_, tensor_bytes, active);
      ADAPCC_AUDIT_CHECK("synthesizer", memoized == one_shot,
                         "memoized " << memoized << "s != one-shot " << one_shot
                                     << "s after " << count << " evaluations");
    } else {
      static_cast<void>(strategy);
      static_cast<void>(memoized);
    }
  };

  Strategy best;
  best.primitive = primitive;
  best.participants = participants;
  best.origin = "adapcc";

  if (primitive == Primitive::kAllToAll) {
    std::vector<int> instance_of(static_cast<std::size_t>(cluster_.world_size()));
    for (int r = 0; r < cluster_.world_size(); ++r) {
      instance_of[static_cast<std::size_t>(r)] = cluster_.instance_of_rank(r);
    }
    // Balanced exchange order; per-context streams allow deep per-source
    // concurrency (Sec. V-A).
    const auto routes = collective::rotated_alltoall_routes(participants, instance_of);
    const auto build_alltoall = [&](Bytes chunk) {
      Strategy candidate;
      candidate.primitive = primitive;
      candidate.participants = participants;
      candidate.origin = "adapcc";
      for (int m = 0; m < config_.parallel_subs; ++m) {
        SubCollective sub;
        sub.id = m;
        sub.fraction = 1.0 / config_.parallel_subs;
        sub.chunk_bytes = chunk;
        sub.flows = routes;
        sub.alltoall_concurrency = 4;  // one per concurrent GPU stream
        candidate.subs.push_back(std::move(sub));
      }
      return candidate;
    };
    // Every chunk candidate scores an independently built strategy (fanned
    // out over the pool); the winner is the first index with the strictly
    // smallest cost, i.e. the serial sweep's tie-break.
    const std::vector<Seconds> costs = pool_.map_indexed<Seconds>(
        config_.chunk_candidates.size(), [&](std::size_t index, int) {
          return estimate_completion_time(build_alltoall(config_.chunk_candidates[index]), topo_,
                                          tensor_bytes, active);
        });
    flush_spans("synth/alltoall-chunk");
    report_.candidates_evaluated += static_cast<int>(costs.size());
    std::size_t winner = 0;
    for (std::size_t i = 1; i < costs.size(); ++i) {
      if (costs[i] < costs[winner]) winner = i;
    }
    best = build_alltoall(config_.chunk_candidates[winner]);
    report_.model_cost = costs[winner];
    report_.solve_time_seconds = solve_timer.elapsed_seconds();
    return best;
  }

  // --- Tree primitives -----------------------------------------------------
  // Reduce and Broadcast have a designated root (the lowest participant,
  // matching the baselines); AllReduce-family roots may rotate since every
  // sub-collective broadcasts its partition back to all ranks anyway.
  const bool rooted =
      primitive == Primitive::kReduce || primitive == Primitive::kBroadcast;
  const int forced_root = rooted ? *std::min_element(participants.begin(), participants.end())
                                 : -1;
  const auto trees = candidate_trees(participants, forced_root);
  if (trees.empty()) throw std::invalid_argument("synthesize: no candidate trees");

  // Rank single trees by model cost to pick rotation orders. Each tree's
  // probe is independent, so the evaluations fan out over the pool; costs
  // land in tree order and the (cost, index) sort is unambiguous.
  const std::vector<Seconds> tree_costs =
      pool_.map_indexed<Seconds>(trees.size(), [&](std::size_t i, int) {
        Strategy probe;
        probe.primitive = primitive;
        probe.participants = participants;
        SubCollective sub;
        sub.fraction = 1.0;
        sub.chunk_bytes = config_.chunk_candidates.front();
        sub.tree = trees[i];
        probe.subs.push_back(std::move(sub));
        return estimate_completion_time(probe, topo_, tensor_bytes, active);
      });
  flush_spans("synth/tree-probe");
  report_.candidates_evaluated += static_cast<int>(trees.size());
  std::vector<std::pair<Seconds, std::size_t>> ranked;
  for (std::size_t i = 0; i < trees.size(); ++i) ranked.emplace_back(tree_costs[i], i);
  std::sort(ranked.begin(), ranked.end());

  // The best candidate per root instance, in ascending model cost; rotating
  // the M sub-collectives over the top-k of these spreads NIC load, and the
  // joint evaluation below picks how many roots are worth using — a root on
  // a degraded NIC simply stops being included.
  std::vector<std::size_t> best_per_root;
  {
    std::set<int> seen_roots;
    for (const auto& [cost, index] : ranked) {
      const int inst = cluster_.instance_of_rank(trees[index].root.index);
      if (seen_roots.insert(inst).second) best_per_root.push_back(index);
    }
  }
  // Widest rotation first: on cost ties (common for ring-equivalent
  // AllReduce chains) prefer spreading roots across instances.
  std::vector<std::vector<std::size_t>> assignments;
  for (std::size_t k = best_per_root.size(); k >= 2; --k) {
    std::vector<std::size_t> rotated;
    for (int m = 0; m < config_.parallel_subs; ++m) {
      rotated.push_back(best_per_root[static_cast<std::size_t>(m) % k]);
    }
    assignments.push_back(std::move(rotated));
  }
  // A single-sub (M' = 1) variant: the S_m are decision variables, so
  // collapsing to one sub-collective is within the formulation; it avoids
  // per-sub pipeline-fill overhead when parallelism cannot spread load
  // (single-rooted Reduce on RDMA), while TCP's per-stream cap makes the
  // model strictly prefer the parallel variants there.
  assignments.push_back({ranked.front().second});
  assignments.push_back(std::vector<std::size_t>(
      static_cast<std::size_t>(config_.parallel_subs), ranked.front().second));

  // Trees and loads are fixed for the whole assignment and chunk size does
  // not enter the link loads, so each assignment builds its candidate and
  // CostEvaluator once and re-scores the chunk sweep against the memoized
  // state. Assignments are independent: one pool task per assignment, each
  // recording its local first-minimum (cost, chunk); the in-order global
  // reduce below is then the serial double loop's exact lexicographic
  // first-minimum over (assignment, chunk).
  const auto build_assignment = [&](const std::vector<std::size_t>& assignment) {
    Strategy candidate;
    candidate.primitive = primitive;
    candidate.participants = participants;
    candidate.origin = "adapcc";
    const int subs = static_cast<int>(assignment.size()) == 1 ? 1 : config_.parallel_subs;
    for (int m = 0; m < subs; ++m) {
      SubCollective sub;
      sub.id = m;
      sub.fraction = 1.0 / subs;
      sub.chunk_bytes = config_.chunk_candidates.front();
      sub.tree = trees[assignment[static_cast<std::size_t>(m) % assignment.size()]];
      candidate.subs.push_back(std::move(sub));
    }
    return candidate;
  };
  struct SweepResult {
    Seconds cost = std::numeric_limits<double>::infinity();
    std::size_t chunk = 0;
  };
  const std::vector<SweepResult> sweeps = pool_.map_indexed<SweepResult>(
      assignments.size(), [&](std::size_t ai, int) {
        Strategy candidate = build_assignment(assignments[ai]);
        CostEvaluator evaluator(candidate, topo_, tensor_bytes, active);
        SweepResult local;
        for (std::size_t ci = 0; ci < config_.chunk_candidates.size(); ++ci) {
          const Bytes chunk = config_.chunk_candidates[ci];
          for (auto& sub : candidate.subs) sub.chunk_bytes = chunk;
          const Seconds cost = evaluator.completion_time();
          audit_parity(candidate, cost);
          ADAPCC_LOG(kDebug, "synth")
              << "assignment size=" << assignments[ai].size() << " first-root="
              << to_string(candidate.subs[0].tree.root) << " last-root="
              << to_string(candidate.subs.back().tree.root) << " chunk=" << chunk
              << " cost=" << cost;
          if (cost < local.cost) {
            local.cost = cost;
            local.chunk = ci;
          }
        }
        return local;
      });
  flush_spans("synth/assignment-sweep");
  report_.candidates_evaluated +=
      static_cast<int>(assignments.size() * config_.chunk_candidates.size());
  Seconds best_cost = std::numeric_limits<double>::infinity();
  std::size_t best_assignment = 0;
  for (std::size_t ai = 0; ai < sweeps.size(); ++ai) {
    if (sweeps[ai].cost < best_cost) {
      best_cost = sweeps[ai].cost;
      best_assignment = ai;
    }
  }
  best = build_assignment(assignments[best_assignment]);
  for (auto& sub : best.subs) {
    sub.chunk_bytes = config_.chunk_candidates[sweeps[best_assignment].chunk];
  }

  // --- Aggregation-control local search (a_{m,g} toggles). ------------------
  if (config_.optimize_aggregation && collective::requires_aggregation(primitive)) {
    if (pool_.serial()) {
      // One evaluator survives the whole search: each toggle patches only the
      // toggled node's ancestor-chain loads instead of recomputing every
      // sub-collective's message counts from scratch.
      CostEvaluator evaluator(best, topo_, tensor_bytes, active);
      bool improved = true;
      while (improved) {
        improved = false;
        for (std::size_t si = 0; si < best.subs.size(); ++si) {
          auto& sub = best.subs[si];
          for (const NodeId node : sub.tree.nodes()) {
            if (!node.is_gpu() || node == sub.tree.root) continue;
            if (sub.tree.children_of(node).empty()) continue;  // leaves don't aggregate anyway
            const bool current = sub.aggregates_at(node, primitive);
            sub.aggregate_at[node] = !current;
            evaluator.on_aggregation_toggled(si, node);
            const Seconds cost = evaluator.completion_time();
            audit_parity(best, cost);
            ++report_.candidates_evaluated;
            if (cost + 1e-12 < best_cost) {
              best_cost = cost;
              improved = true;
            } else {
              sub.aggregate_at[node] = current;
              evaluator.on_aggregation_toggled(si, node);
            }
          }
        }
      }
    } else {
      // Batched first-improvement: the serial greedy's accepted-toggle
      // trajectory, reproduced with parallel evaluation. Toggle sites are
      // enumerated in the serial visiting order; a window of upcoming sites
      // is scored concurrently against the current base (every lane owns an
      // arena — a Strategy replica plus its incremental CostEvaluator, kept
      // in lock-step with the base), and the FIRST improving site in the
      // window is accepted. Sites past an acceptance were scored against a
      // stale base, so they are discarded and re-scored from the new base —
      // exactly what the serial loop would have evaluated. The accepted
      // trajectory, the final strategy, and candidates_evaluated are
      // therefore invariant to thread count and window size.
      struct ToggleSite {
        std::size_t sub;
        NodeId node;
      };
      std::vector<ToggleSite> sites;
      for (std::size_t si = 0; si < best.subs.size(); ++si) {
        const auto& sub = best.subs[si];
        for (const NodeId node : sub.tree.nodes()) {
          if (!node.is_gpu() || node == sub.tree.root) continue;
          if (sub.tree.children_of(node).empty()) continue;
          sites.push_back({si, node});
        }
      }
      struct AggArena {
        Strategy strategy;
        CostEvaluator evaluator;
        AggArena(const Strategy& base, const topology::LogicalTopology& topo, Bytes bytes,
                 const std::set<int>& active_ranks)
            : strategy(base), evaluator(strategy, topo, bytes, active_ranks) {}
      };
      std::vector<std::unique_ptr<AggArena>> arenas;
      for (int lane = 0; lane < pool_.thread_count(); ++lane) {
        arenas.push_back(std::make_unique<AggArena>(best, topo_, tensor_bytes, active));
      }
      const std::size_t window = static_cast<std::size_t>(pool_.thread_count()) * 4;
      bool improved = true;
      while (improved && !sites.empty()) {
        improved = false;
        std::size_t next = 0;
        while (next < sites.size()) {
          const std::size_t batch_n = std::min(window, sites.size() - next);
          const std::vector<Seconds> costs =
              pool_.map_indexed<Seconds>(batch_n, [&](std::size_t k, int lane) {
                AggArena& arena = *arenas[static_cast<std::size_t>(lane)];
                const ToggleSite& site = sites[next + k];
                auto& sub = arena.strategy.subs[site.sub];
                const bool current = sub.aggregates_at(site.node, primitive);
                sub.aggregate_at[site.node] = !current;
                arena.evaluator.on_aggregation_toggled(site.sub, site.node);
                const Seconds cost = arena.evaluator.completion_time();
                audit_parity(arena.strategy, cost);
                sub.aggregate_at[site.node] = current;
                arena.evaluator.on_aggregation_toggled(site.sub, site.node);
                return cost;
              });
          flush_spans("synth/aggregation");
          std::size_t accepted = batch_n;
          for (std::size_t k = 0; k < batch_n; ++k) {
            if (costs[k] + 1e-12 < best_cost) {
              accepted = k;
              break;
            }
          }
          // The serial loop leaves an explicit aggregate_at entry at every
          // site it visits (toggle + revert assigns through the map), so the
          // base replays those writes for the serially-visited prefix.
          const std::size_t visited = accepted == batch_n ? batch_n : accepted + 1;
          for (std::size_t k = 0; k < visited; ++k) {
            const ToggleSite& site = sites[next + k];
            auto& sub = best.subs[site.sub];
            const bool current = sub.aggregates_at(site.node, primitive);
            sub.aggregate_at[site.node] = k == accepted ? !current : current;
          }
          report_.candidates_evaluated += static_cast<int>(visited);
          if (accepted == batch_n) {
            next += batch_n;
            continue;
          }
          const ToggleSite& site = sites[next + accepted];
          const bool flipped = best.subs[site.sub].aggregate_at.at(site.node);
          best_cost = costs[accepted];
          improved = true;
          for (auto& arena : arenas) {
            arena->strategy.subs[site.sub].aggregate_at[site.node] = flipped;
            arena->evaluator.on_aggregation_toggled(site.sub, site.node);
          }
          next += accepted + 1;
        }
      }
    }
  }

  report_.model_cost = best_cost;
  report_.solve_time_seconds = solve_timer.elapsed_seconds();
  ADAPCC_LOG(kInfo, "synthesizer") << "synthesized " << to_string(primitive) << " cost="
                                   << best_cost << "s candidates=" << report_.candidates_evaluated
                                   << " solve=" << report_.solve_time_seconds << "s";
  return best;
}

}  // namespace adapcc::synthesizer
