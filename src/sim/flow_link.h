// Fluid-flow (processor-sharing) model of a single directed link.
//
// This implements the dynamic counterpart of the paper's bandwidth-sharing
// assumption (Sec. IV-D, Eq. 3): the link's instantaneous capacity is shared
// equally by all in-flight transfers. Each transfer additionally pays the
// link latency alpha up front, giving the alpha + beta~ * size per-chunk cost
// used throughout the paper. Rates are recomputed only when a transfer
// starts or finishes or the capacity changes (event-driven, not time-stepped)
// so long training simulations stay tractable.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <string>

#include "sim/simulator.h"
#include "telemetry/fwd.h"
#include "util/units.h"

namespace adapcc::sim {

class FlowLink {
 public:
  using CompletionCallback = std::function<void()>;

  /// `alpha` is the per-transfer latency; `capacity` the full-link bandwidth.
  /// `per_transfer_cap` bounds the rate any single transfer can reach even
  /// when the link is otherwise idle — this models the ~20 Gbps ceiling of a
  /// single TCP stream that Sec. VI-D reports (kernel-space overhead), which
  /// is what makes NCCL's single inter-server channel unable to saturate a
  /// 100 Gbps NIC while AdapCC's M parallel sub-collectives can.
  FlowLink(Simulator& sim, std::string name, Seconds alpha, BytesPerSecond capacity,
           BytesPerSecond per_transfer_cap = 0.0 /* 0 = uncapped */);
  FlowLink(const FlowLink&) = delete;
  FlowLink& operator=(const FlowLink&) = delete;

  /// Begins a transfer of `bytes`. The transfer immediately competes for
  /// capacity (service phase); when the last byte has been *serviced*,
  /// `on_served` fires and the capacity is released — a sender can push the
  /// next chunk. The bytes then propagate for `alpha` seconds, after which
  /// `on_delivered` fires at the receiver. Splitting service from
  /// propagation is what lets chunk pipelines hide the latency, as the real
  /// Communicator hides kernel-launch and staging latency (Sec. V-B).
  /// Zero-byte transfers deliver after just the latency.
  void start_transfer(Bytes bytes, CompletionCallback on_delivered,
                      CompletionCallback on_served = nullptr);

  /// Changes the link capacity immediately (volatile-network experiments).
  /// In-flight transfers keep their progress and continue at the new rate.
  void set_capacity(BytesPerSecond capacity);

  BytesPerSecond capacity() const noexcept { return capacity_; }
  BytesPerSecond per_transfer_cap() const noexcept { return per_transfer_cap_; }
  Seconds alpha() const noexcept { return alpha_; }
  const std::string& name() const noexcept { return name_; }

  std::size_t active_transfers() const noexcept { return transfers_.size(); }
  Bytes bytes_delivered() const noexcept { return bytes_delivered_; }
  /// Integral of (active ? 1 : 0) dt — total time the link was busy.
  Seconds busy_time() const noexcept;

 private:
  struct Transfer {
    double remaining_bytes;
    Bytes total_bytes;
    CompletionCallback on_delivered;
    CompletionCallback on_served;
    telemetry::SpanId span = 0;  ///< open "xfer" trace span, 0 when disabled
  };

  /// Re-resolves cached telemetry handles when the telemetry epoch changed;
  /// returns false when telemetry is disabled. Keeps the per-event cost at
  /// one pointer load + one integer compare once resolved.
  bool telemetry_ready();

  /// Instantaneous per-transfer rate under equal sharing and the cap.
  double current_rate() const noexcept;
  /// Applies progress accrued since `last_update_` to all transfers.
  void advance_progress();
  /// (Re)schedules the completion event for the earliest-finishing transfer.
  void reschedule_completion();
  void on_completion_event();

  Simulator& sim_;
  std::string name_;
  Seconds alpha_;
  BytesPerSecond capacity_;
  BytesPerSecond per_transfer_cap_;
  std::list<Transfer> transfers_;
  Seconds last_update_ = 0.0;
  EventId completion_event_{};
  Bytes bytes_delivered_ = 0;
  Seconds busy_accum_ = 0.0;

  // Telemetry handles, resolved lazily per telemetry epoch (see
  // telemetry::epoch()); raw pointers stay valid for the epoch's lifetime.
  std::uint64_t tel_epoch_ = 0;
  telemetry::TrackId tel_track_ = telemetry::kInvalidTrack;
  telemetry::Counter* tel_bytes_ = nullptr;
  telemetry::Gauge* tel_busy_ = nullptr;
};

}  // namespace adapcc::sim
