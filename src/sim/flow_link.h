// Fluid-flow (processor-sharing) model of a single directed link.
//
// This implements the dynamic counterpart of the paper's bandwidth-sharing
// assumption (Sec. IV-D, Eq. 3): the link's instantaneous capacity is shared
// equally by all in-flight transfers. Each transfer additionally pays the
// link latency alpha up front, giving the alpha + beta~ * size per-chunk cost
// used throughout the paper. Rates are recomputed only when a transfer
// starts or finishes or the capacity changes (event-driven, not time-stepped)
// so long training simulations stay tractable.
//
// Progress is tracked with cumulative-service ("virtual work") accounting:
// because equal sharing gives every in-flight transfer the same
// instantaneous rate, one monotone per-link service counter (bytes served to
// each transfer so far) describes all of them. A transfer entering when the
// counter reads S with B bytes finishes when the counter reaches S + B — a
// fixed target computed once. Targets live in a min-heap, so an event
// advances the link in O(1) (bump the counter) and a completion costs
// O(log n), instead of the O(n) per-transfer countdown + O(n) rescan that
// made draining n shared transfers O(n^2).
//
// adapcc-lint: hot-path — std::function is banned in this file (DESIGN.md §7).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "telemetry/fwd.h"
#include "util/units.h"

namespace adapcc::sim {

class FlowLink {
 public:
  /// Move-only small-buffer callable (see inline_callback.h): transfer
  /// callbacks flow straight into simulator event slots without the
  /// double indirection and allocation of a std::function wrapper.
  using CompletionCallback = InlineCallback;

  /// `alpha` is the per-transfer latency; `capacity` the full-link bandwidth.
  /// `per_transfer_cap` bounds the rate any single transfer can reach even
  /// when the link is otherwise idle — this models the ~20 Gbps ceiling of a
  /// single TCP stream that Sec. VI-D reports (kernel-space overhead), which
  /// is what makes NCCL's single inter-server channel unable to saturate a
  /// 100 Gbps NIC while AdapCC's M parallel sub-collectives can.
  FlowLink(Simulator& sim, std::string name, Seconds alpha, BytesPerSecond capacity,
           BytesPerSecond per_transfer_cap = 0.0 /* 0 = uncapped */);
  FlowLink(const FlowLink&) = delete;
  FlowLink& operator=(const FlowLink&) = delete;

  /// Begins a transfer of `bytes`. The transfer immediately competes for
  /// capacity (service phase); when the last byte has been *serviced*,
  /// `on_served` fires and the capacity is released — a sender can push the
  /// next chunk. The bytes then propagate for `alpha` seconds, after which
  /// `on_delivered` fires at the receiver. Splitting service from
  /// propagation is what lets chunk pipelines hide the latency, as the real
  /// Communicator hides kernel-launch and staging latency (Sec. V-B).
  /// Zero-byte transfers deliver after just the latency.
  /// Returns a transfer id usable with cancel_transfer(), or 0 for zero-byte
  /// transfers (which never enter the in-flight set and cannot be cancelled).
  std::uint64_t start_transfer(Bytes bytes, CompletionCallback on_delivered,
                               CompletionCallback on_served = nullptr);

  /// Abort path (chaos/watchdog recovery): removes an in-flight transfer.
  /// Neither callback fires; the capacity share is released immediately.
  /// Returns false when the id is unknown or the transfer already left the
  /// service phase (a served transfer is past the point of cancellation —
  /// its delivery event belongs to the receiver). Removing one transfer
  /// never changes the others' fixed finish targets, only the rate at which
  /// the service counter advances toward them.
  bool cancel_transfer(std::uint64_t transfer_id);

  /// Changes the link capacity immediately (volatile-network experiments).
  /// In-flight transfers keep their progress and continue at the new rate.
  void set_capacity(BytesPerSecond capacity);

  BytesPerSecond capacity() const noexcept { return capacity_; }
  BytesPerSecond per_transfer_cap() const noexcept { return per_transfer_cap_; }
  Seconds alpha() const noexcept { return alpha_; }
  const std::string& name() const noexcept { return name_; }

  std::size_t active_transfers() const noexcept { return transfers_.size(); }
  Bytes bytes_delivered() const noexcept { return bytes_delivered_; }
  /// Integral of (active ? 1 : 0) dt — total time the link was busy.
  Seconds busy_time() const noexcept;

 private:
  /// Heap key of one in-flight transfer. `finish_target` is the
  /// cumulative-service reading at which the transfer is fully serviced
  /// (service counter at enqueue + total bytes), fixed at start_transfer.
  /// Kept small and separate from the callbacks so heap maintenance moves
  /// 24-byte keys, not std::function pairs.
  struct TransferKey {
    double finish_target;
    std::uint64_t sequence;  ///< insertion order; callbacks fire FIFO
    std::uint32_t slot;      ///< index into slab_
  };
  struct TransferData {
    Bytes total_bytes = 0;
    CompletionCallback on_delivered;
    CompletionCallback on_served;
    telemetry::SpanId span = 0;  ///< open "xfer" trace span, 0 when disabled
    std::uint32_t next_free = 0xffffffffu;
    /// Service counter reading at enqueue; written only under ADAPCC_AUDIT so
    /// the byte-conservation check can re-derive finish_target independently.
    double audit_enqueue_service = 0.0;
  };
  struct TargetLater {  // min-heap on (finish_target, sequence)
    bool operator()(const TransferKey& a, const TransferKey& b) const noexcept {
      if (a.finish_target != b.finish_target) return a.finish_target > b.finish_target;
      return a.sequence > b.sequence;
    }
  };
  /// TransferData lives in stable fixed-size blocks (16 entries each) so
  /// slab growth never move-constructs existing entries (each holds two
  /// callbacks) and a link carrying a handful of concurrent transfers
  /// allocates one small block, not a page.
  static constexpr std::uint32_t kSlabBlockShift = 4;
  static constexpr std::uint32_t kSlabBlockSize = 1u << kSlabBlockShift;

  TransferData& slab(std::uint32_t index) noexcept {
    return slab_blocks_[index >> kSlabBlockShift][index & (kSlabBlockSize - 1)];
  }

  /// Re-resolves cached telemetry handles when the telemetry epoch changed;
  /// returns false when telemetry is disabled. Keeps the per-event cost at
  /// one pointer load + one integer compare once resolved.
  bool telemetry_ready();

  /// Instantaneous per-transfer rate under equal sharing and the cap.
  double current_rate() const noexcept;
  /// Accrues service since `last_update_` onto the per-link counter — O(1)
  /// regardless of how many transfers share the link.
  void advance_progress();
  /// (Re)schedules the completion event for the earliest-finishing transfer
  /// (the heap root).
  void reschedule_completion();
  void on_completion_event();

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;

  /// ADAPCC_AUDIT hooks (no-ops in regular builds): byte conservation for a
  /// transfer about to complete, and whole-link accounting invariants.
  void audit_on_complete(const TransferKey& key);
  void audit_verify();

  Simulator& sim_;
  std::string name_;
  Seconds alpha_;
  BytesPerSecond capacity_;
  BytesPerSecond per_transfer_cap_;
  std::vector<TransferKey> transfers_;  ///< min-heap (TargetLater) of in-flight transfers
  std::vector<std::unique_ptr<TransferData[]>> slab_blocks_;  ///< callback storage, free-listed
  std::uint32_t slab_count_ = 0;
  std::uint32_t free_head_ = 0xffffffffu;
  /// Scratch for on_completion_event's completed-(sequence, slot) list;
  /// a member so steady-state pipelines reuse its capacity instead of
  /// paying a vector allocation per completion event. Safe because
  /// on_completion_event never reenters (it only runs from the simulator
  /// event loop and callbacks fire after the list is fully built).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> done_scratch_;
  double service_ = 0.0;  ///< cumulative per-transfer service, bytes
  /// Starts at 1: sequence doubles as the public transfer id and 0 means
  /// "no transfer" (zero-byte sends).
  std::uint64_t next_transfer_sequence_ = 1;
  Seconds last_update_ = 0.0;
  EventId completion_event_{};
  Bytes bytes_delivered_ = 0;
  Seconds busy_accum_ = 0.0;
  /// Slots popped off the heap but not yet released (completion in
  /// progress); maintained only under ADAPCC_AUDIT so the slab-coverage
  /// check stays exact even when a completion callback re-enters
  /// start_transfer mid-batch.
  std::uint32_t audit_limbo_ = 0;
  /// Per-transfer rate used by the most recent service advance; bounds how
  /// far past a finish target the counter may legitimately overshoot inside
  /// a kMinEta-clamped completion window (maintained only under
  /// ADAPCC_AUDIT, read by audit_verify).
  double audit_advance_rate_ = 0.0;

  // Telemetry handles, resolved lazily per telemetry epoch (see
  // telemetry::epoch()); raw pointers stay valid for the epoch's lifetime.
  // Metric/track names are precomputed once so an epoch bump does not
  // rebuild strings on the hot path.
  std::string tel_track_name_;
  std::string tel_bytes_name_;
  std::string tel_busy_name_;
  std::uint64_t tel_epoch_ = 0;
  telemetry::TrackId tel_track_ = telemetry::kInvalidTrack;
  telemetry::Counter* tel_bytes_ = nullptr;
  telemetry::Gauge* tel_busy_ = nullptr;
};

}  // namespace adapcc::sim
