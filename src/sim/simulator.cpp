#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

namespace adapcc::sim {

EventId Simulator::schedule_at(Seconds when, EventCallback callback) {
  if (when < now_) throw std::invalid_argument("schedule_at: time in the past");
  const std::uint64_t id = next_sequence_++;
  queue_.push(Entry{when, id, std::move(callback)});
  live_ids_.insert(id);
  return EventId{id};
}

EventId Simulator::schedule_after(Seconds delay, EventCallback callback) {
  if (delay < 0) throw std::invalid_argument("schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(callback));
}

void Simulator::cancel(EventId id) noexcept {
  if (id.valid()) live_ids_.erase(id.value);
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (live_ids_.erase(entry.sequence) == 0) continue;  // was cancelled
    now_ = entry.when;
    ++events_processed_;
    entry.callback();
    return true;
  }
  return false;
}

void Simulator::run() {
  while (step()) {
  }
}

std::size_t Simulator::run_until(Seconds deadline) {
  std::size_t processed = 0;
  while (!queue_.empty()) {
    // Drop cancelled entries without advancing time.
    if (!live_ids_.contains(queue_.top().sequence)) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > deadline) break;
    if (step()) ++processed;
  }
  if (now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace adapcc::sim
