// adapcc-lint: hot-path — std::function is banned in this file (DESIGN.md §7).

#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

#include "util/audit.h"

namespace adapcc::sim {

namespace {
// EventId layout: generation in the high 32 bits (always >= 1, so a valid id
// is never 0), slot index in the low 32 bits.
std::uint64_t encode(std::uint32_t slot, std::uint32_t generation) {
  return (static_cast<std::uint64_t>(generation) << 32) | slot;
}

// splitmix64 finalizer: a bijection on 64-bit integers, so scrambled tie
// keys stay unique (distinct sequences map to distinct keys) while the
// relative order of same-timestamp events becomes seed-dependent.
std::uint64_t scramble(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

std::uint64_t Simulator::next_tie_key() noexcept {
  const std::uint64_t sequence = next_sequence_++;
  return tie_seed_ == 0 ? sequence : scramble(sequence ^ tie_seed_);
}

std::uint32_t Simulator::acquire_slot() {
  if (free_head_ != kNone) {
    const std::uint32_t index = free_head_;
    Slot& s = slot(index);
    free_head_ = s.next_free;
    s.next_free = kNone;
    return index;
  }
  if ((slot_count_ >> kSlotBlockShift) == slot_blocks_.size()) {
    slot_blocks_.push_back(std::make_unique<Slot[]>(kSlotBlockSize));
    slot_pos_.resize(slot_pos_.size() + kSlotBlockSize, kNone);
  }
  return slot_count_++;
}

void Simulator::release_slot(std::uint32_t index) noexcept {
  Slot& s = slot(index);
  s.callback.reset();
  slot_pos_[index] = kNone;
  ++s.generation;  // invalidates outstanding EventIds for this slot
  s.next_free = free_head_;
  free_head_ = index;
}

void Simulator::pad_heap() {
  if (heap_.size() < heap_size_ + 5) heap_.resize(heap_size_ + 5, kSentinel);
}

std::uint32_t Simulator::min_child(std::uint32_t first_child) const noexcept {
  const HeapEntry* h = heap_.data();
  const std::uint32_t a = earlier(h[first_child + 1], h[first_child]) ? first_child + 1
                                                                      : first_child;
  const std::uint32_t b = earlier(h[first_child + 3], h[first_child + 2]) ? first_child + 3
                                                                          : first_child + 2;
  return earlier(h[b], h[a]) ? b : a;
}

void Simulator::sift_up(std::uint32_t pos, HeapEntry entry) noexcept {
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!earlier(entry, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slot_pos_[heap_[pos].slot] = pos;
    pos = parent;
  }
  heap_[pos] = entry;
  slot_pos_[entry.slot] = pos;
}

void Simulator::sift_down(std::uint32_t pos, HeapEntry entry) noexcept {
  for (;;) {
    const std::uint32_t first_child = pos * 4 + 1;
    if (first_child >= heap_size_) break;
    const std::uint32_t best = min_child(first_child);
    if (!earlier(heap_[best], entry)) break;
    heap_[pos] = heap_[best];
    slot_pos_[heap_[pos].slot] = pos;
    pos = best;
  }
  heap_[pos] = entry;
  slot_pos_[entry.slot] = pos;
}

void Simulator::pop_root() noexcept {
  --heap_size_;
  const HeapEntry moved = heap_[heap_size_];
  heap_[heap_size_] = kSentinel;
  if (heap_size_ == 0) return;
  std::uint32_t pos = 0;
  for (;;) {
    const std::uint32_t first_child = pos * 4 + 1;
    if (first_child >= heap_size_) break;
    const std::uint32_t best = min_child(first_child);
    heap_[pos] = heap_[best];
    slot_pos_[heap_[pos].slot] = pos;
    pos = best;
  }
  sift_up(pos, moved);
}

void Simulator::heap_remove(std::uint32_t pos) noexcept {
  --heap_size_;
  const std::uint32_t last = heap_size_;
  const HeapEntry moved = heap_[last];
  heap_[last] = kSentinel;
  if (pos != last) {
    // The moved entry may need to travel either direction.
    sift_up(pos, moved);
    sift_down(slot_pos_[moved.slot], moved);
  }
}

EventId Simulator::schedule_at(Seconds when, EventCallback callback) {
  if (when < now_) throw std::invalid_argument("schedule_at: time in the past");
  const std::uint32_t index = acquire_slot();
  Slot& s = slot(index);
  s.callback = std::move(callback);
  pad_heap();
  sift_up(heap_size_++, HeapEntry{when, next_tie_key(), index});
  return EventId{encode(index, s.generation)};
}

EventId Simulator::schedule_after(Seconds delay, EventCallback callback) {
  if (delay < 0) throw std::invalid_argument("schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(callback));
}

void Simulator::cancel(EventId id) noexcept {
  if (!id.valid()) return;
  const std::uint32_t index = static_cast<std::uint32_t>(id.value & 0xffffffffu);
  const std::uint32_t generation = static_cast<std::uint32_t>(id.value >> 32);
  if (index >= slot_count_) return;
  Slot& s = slot(index);
  if (s.generation != generation || slot_pos_[index] == kNone) return;  // fired or recycled
  heap_remove(slot_pos_[index]);
  release_slot(index);
  if constexpr (audit::kEnabled) audit_verify();
}

bool Simulator::reschedule(EventId id, Seconds when) {
  if (!id.valid()) return false;
  const std::uint32_t index = static_cast<std::uint32_t>(id.value & 0xffffffffu);
  const std::uint32_t generation = static_cast<std::uint32_t>(id.value >> 32);
  if (index >= slot_count_) return false;
  Slot& s = slot(index);
  if (s.generation != generation || slot_pos_[index] == kNone) return false;
  if (when < now_) throw std::invalid_argument("reschedule: time in the past");
  const std::uint32_t pos = slot_pos_[index];
  // Fresh sequence: ties at the new time fire after events already there,
  // exactly as cancel + schedule_at would order them.
  const HeapEntry entry{when, next_tie_key(), index};
  sift_up(pos, entry);
  sift_down(slot_pos_[index], entry);
  if constexpr (audit::kEnabled) audit_verify();
  return true;
}

void Simulator::audit_verify() const {
  // Heap shape: every live entry orders after its parent, carries a valid
  // slot whose position link points back at it, and the padding past the
  // live prefix is all +inf sentinels (min_child reads it unconditionally).
  for (std::uint32_t pos = 0; pos < heap_size_; ++pos) {
    const HeapEntry& entry = heap_[pos];
    ADAPCC_AUDIT_CHECK("simulator", entry.slot < slot_count_,
                       "heap pos " << pos << " slot " << entry.slot << " of " << slot_count_);
    ADAPCC_AUDIT_CHECK("simulator", slot_pos_[entry.slot] == pos,
                       "slot " << entry.slot << " position link " << slot_pos_[entry.slot]
                               << " != heap pos " << pos);
    if (pos > 0) {
      const HeapEntry& parent = heap_[(pos - 1) / 4];
      ADAPCC_AUDIT_CHECK("simulator", !earlier(entry, parent),
                         "heap order violated at pos " << pos << " (when=" << entry.when
                                                       << " parent when=" << parent.when << ")");
    }
    ADAPCC_AUDIT_CHECK("simulator", entry.when >= now_,
                       "pending event in the past: when=" << entry.when << " now=" << now_);
  }
  for (std::size_t pos = heap_size_; pos < heap_.size(); ++pos) {
    ADAPCC_AUDIT_CHECK("simulator", heap_[pos].slot == kSentinel.slot,
                       "non-sentinel padding at pos " << pos);
  }
  // Slot table: exactly the heap's slots are live; everything else is either
  // on the free list or awaiting release inside step().
  std::uint32_t live = 0;
  for (std::uint32_t index = 0; index < slot_count_; ++index) {
    if (slot_pos_[index] != kNone) ++live;
  }
  ADAPCC_AUDIT_CHECK("simulator", live == heap_size_,
                     live << " slots with heap positions vs heap size " << heap_size_);
  // Free list: no cycles (bounded walk), members have no heap position, and
  // generation tags stayed >= 1 (a wrapped tag would resurrect stale ids).
  std::uint32_t free_len = 0;
  for (std::uint32_t index = free_head_; index != kNone; ++free_len) {
    ADAPCC_AUDIT_CHECK("simulator", free_len <= slot_count_, "free-list cycle");
    ADAPCC_AUDIT_CHECK("simulator", index < slot_count_, "free-list index " << index);
    ADAPCC_AUDIT_CHECK("simulator", slot_pos_[index] == kNone,
                       "free slot " << index << " still in heap");
    const Slot& s = const_cast<Simulator*>(this)->slot(index);
    ADAPCC_AUDIT_CHECK("simulator", s.generation >= 1, "generation wrapped on slot " << index);
    index = s.next_free;
  }
  ADAPCC_AUDIT_CHECK("simulator", free_len + live <= slot_count_,
                     "free " << free_len << " + live " << live << " > slots " << slot_count_);
}

bool Simulator::step() {
  if (heap_size_ == 0) return false;
  const HeapEntry top = heap_[0];
  now_ = top.when;
  pop_root();
  // Mark fired before invoking so the callback sees its own id as spent
  // (cancel is a no-op, reschedule returns false) — same contract as the
  // old move-out-then-release order.
  slot_pos_[top.slot] = kNone;
  ++events_processed_;
  Slot& s = slot(top.slot);
  // Invoke in place: slots live in stable blocks and this one cannot be
  // recycled until release_slot below, so the callback may freely schedule
  // new events without invalidating `s`.
  if (s.callback) s.callback();
  release_slot(top.slot);
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

std::size_t Simulator::run_until(Seconds deadline) {
  std::size_t processed = 0;
  while (heap_size_ != 0 && heap_[0].when <= deadline) {
    if (step()) ++processed;
  }
  if (now_ < deadline) now_ = deadline;
  return processed;
}

}  // namespace adapcc::sim
