// InlineCallback: a move-only type-erased `void()` callable with a small
// inline buffer sized for the capturing lambdas the executor and links
// actually schedule (a handful of pointers / integers).
//
// std::function heap-allocates once a capture outgrows its ~2-pointer SBO,
// and the simulator schedules millions of such events per run —
// FlowLink::reschedule_completion alone cancels + re-pushes an event on
// every start_transfer/set_capacity. With InlineCallback those callbacks
// live inside the event-heap slot itself, so dispatch touches no allocator.
// Larger callables (rare: deep capture chains in tests) transparently fall
// back to the heap.
//
// adapcc-lint: hot-path — std::function is banned in this file (DESIGN.md §7).
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace adapcc::sim {

class InlineCallback {
 public:
  /// Inline storage size. 48 bytes fits every hot-path lambda in the tree
  /// (executor chunk completions capture ~4 pointers) and a std::function.
  static constexpr std::size_t kInlineBytes = 48;

  InlineCallback() noexcept = default;
  InlineCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (storage()) D(std::forward<F>(f));
      if constexpr (std::is_trivially_copyable_v<D> && std::is_trivially_destructible_v<D>) {
        ops_ = &kTrivialOps<D>;
      } else {
        ops_ = &kInlineOps<D>;
      }
    } else {
      heap_ = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { steal(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { reset(); }

  void operator()() { ops_->invoke(*this); }
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(*this);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(InlineCallback&);
    /// Moves src's target into dst (raw storage, no live target) and
    /// destroys the src target. Null means a bitwise copy of the whole
    /// storage union suffices — true for heap-held targets (pointer steal)
    /// and trivially copyable inline targets, so the common pointer-capture
    /// lambdas move with one memcpy and no indirect call.
    void (*relocate)(InlineCallback& dst, InlineCallback& src) noexcept;
    /// Null when destruction is a no-op (trivially destructible inline
    /// target), so reset() skips the indirect call on the hot path.
    void (*destroy)(InlineCallback&) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  // Data members precede the Ops tables: static member initializers are not
  // a complete-class context, so the lambdas below can only name members
  // already declared.
  union {
    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    void* heap_;
  };
  const Ops* ops_ = nullptr;

  void* storage() noexcept { return static_cast<void*>(storage_); }

  template <typename D>
  D& inline_target() noexcept {
    return *std::launder(reinterpret_cast<D*>(storage_));
  }

  template <typename D>
  static constexpr Ops kTrivialOps{
      [](InlineCallback& self) { self.inline_target<D>()(); },
      nullptr,
      nullptr,
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](InlineCallback& self) { self.inline_target<D>()(); },
      [](InlineCallback& dst, InlineCallback& src) noexcept {
        ::new (dst.storage()) D(std::move(src.inline_target<D>()));
        src.inline_target<D>().~D();
      },
      [](InlineCallback& self) noexcept { self.inline_target<D>().~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps{
      [](InlineCallback& self) { (*static_cast<D*>(self.heap_))(); },
      nullptr,
      [](InlineCallback& self) noexcept { delete static_cast<D*>(self.heap_); },
  };

  void steal(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (ops_->relocate != nullptr) {
      ops_->relocate(*this, other);
    } else {
      // Bitwise relocation: copies an inline trivially-copyable target or
      // the heap pointer alike (both live in the union).
      std::memcpy(static_cast<void*>(storage_), static_cast<const void*>(other.storage_),
                  kInlineBytes);
    }
    other.ops_ = nullptr;
  }
};

}  // namespace adapcc::sim
