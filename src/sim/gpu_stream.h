// Simulated CUDA stream: operations enqueued on one stream execute strictly
// in order, each occupying the stream for its duration. Cross-stream
// dependencies (cudaStreamWaitEvent) are expressed by the caller only
// enqueueing an op once its inputs are ready, mirroring how the Communicator
// (Sec. V-B) records events on the sender stream and waits on the receiver.
#pragma once

#include <algorithm>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "util/units.h"

namespace adapcc::sim {

class GpuStream {
 public:
  explicit GpuStream(Simulator& sim) : sim_(sim) {}
  GpuStream(const GpuStream&) = delete;
  GpuStream& operator=(const GpuStream&) = delete;

  /// Enqueues an operation taking `duration` seconds of stream time;
  /// `on_complete` fires when the operation retires.
  void enqueue(Seconds duration, std::function<void()> on_complete) {
    const Seconds start = std::max(sim_.now(), busy_until_);
    busy_until_ = start + duration;
    total_busy_ += duration;
    if (on_complete) pending_.push_back(sim_.schedule_at(busy_until_, std::move(on_complete)));
  }

  /// Abort path (chaos/watchdog recovery): cancels every retirement event
  /// that has not fired yet (cancelling already-fired ids is a safe no-op —
  /// generation tags) and drains the stream. Enqueued-but-unretired work is
  /// abandoned; its completion callbacks never run.
  void cancel_pending() {
    for (const EventId& id : pending_) sim_.cancel(id);
    pending_.clear();
    busy_until_ = sim_.now();
  }

  /// Time at which the stream drains, given no further enqueues.
  Seconds busy_until() const noexcept { return busy_until_; }
  /// Total stream-occupancy time enqueued so far (for utilization stats).
  Seconds total_busy() const noexcept { return total_busy_; }
  bool idle() const noexcept { return busy_until_ <= sim_.now(); }

 private:
  Simulator& sim_;
  Seconds busy_until_ = 0.0;
  Seconds total_busy_ = 0.0;
  /// Retirement events issued so far; fired ids go stale harmlessly (one
  /// 8-byte handle per kernel, bounded by the owner's lifetime — streams are
  /// per-invocation in the executor).
  std::vector<EventId> pending_;
};

}  // namespace adapcc::sim
