#include "sim/edge_channel.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "telemetry/telemetry.h"

namespace adapcc::sim {

EdgeChannel::EdgeChannel(Simulator& sim, std::vector<FlowLink*> path)
    : sim_(sim),
      path_(std::move(path)),
      link_busy_(path_.size(), false),
      active_transfer_(path_.size(), 0),
      alive_(std::make_shared<bool>(true)) {
  if (path_.empty()) throw std::invalid_argument("EdgeChannel: empty path");
  for (const auto* link : path_) {
    if (link == nullptr) throw std::invalid_argument("EdgeChannel: null link in path");
  }
}

EdgeChannel::~EdgeChannel() {
  // Disarm any propagation-tail events still scheduled against this channel
  // (delivery callbacks fire alpha after the service phase ends and may
  // outlive the channel on the abort path).
  *alive_ = false;
}

void EdgeChannel::abort() {
  if (aborted_) return;
  aborted_ = true;
  *alive_ = false;
  for (std::size_t i = 0; i < path_.size(); ++i) {
    if (active_transfer_[i] != 0) {
      path_[i]->cancel_transfer(active_transfer_[i]);
      active_transfer_[i] = 0;
    }
    link_busy_[i] = false;
  }
  // Dropping the queue destroys the undelivered chunks' callbacks (and
  // whatever resources they own) without firing them.
  chunks_.clear();
  in_flight_ = 0;
}

Seconds EdgeChannel::path_alpha() const noexcept {
  Seconds alpha = 0;
  for (const auto* link : path_) alpha += link->alpha();
  return alpha;
}

BytesPerSecond EdgeChannel::path_bandwidth() const noexcept {
  BytesPerSecond bw = 0;
  bool first = true;
  for (const auto* link : path_) {
    BytesPerSecond effective = link->capacity();
    if (link->per_transfer_cap() > 0) effective = std::min(effective, link->per_transfer_cap());
    bw = first ? effective : std::min(bw, effective);
    first = false;
  }
  return bw;
}

void EdgeChannel::send(Bytes bytes, DeliveryCallback on_delivered) {
  if (aborted_) throw std::logic_error("EdgeChannel: send after abort");
  if (auto* t = telemetry::get()) {
    // Queueing pressure: how many chunks of this channel are already waiting
    // or in flight when a new one is enqueued (pipeline depth).
    t->metrics().histogram("channel.queue_depth").observe(static_cast<double>(chunks_.size()));
    t->metrics().counter("channel.bytes_enqueued").add(static_cast<double>(bytes));
  }
  chunks_.push_back(Chunk{next_chunk_id_++, bytes, std::move(on_delivered), 0, false});
  ++in_flight_;
  try_start(0);
}

void EdgeChannel::try_start(std::size_t link_index) {
  if (link_index >= path_.size() || link_busy_[link_index]) return;
  // First (oldest) chunk waiting for this link; FIFO order is preserved
  // because a later chunk can never be further along the path.
  for (auto& chunk : chunks_) {
    if (chunk.next_link == link_index && !chunk.on_link) {
      chunk.on_link = true;
      link_busy_[link_index] = true;
      const std::uint64_t id = chunk.id;
      // Both callbacks carry the liveness guard: after an abort (or channel
      // destruction) a propagation-tail event already in the simulator fires
      // harmlessly instead of dereferencing freed channel state.
      const std::uint64_t transfer_id = path_[link_index]->start_transfer(
          chunk.bytes,
          /*on_delivered=*/
          [guard = alive_, this, link_index, id] {
            if (!*guard) return;
            on_link_done(link_index, id);
          },
          /*on_served=*/
          [guard = alive_, this, link_index] {
            if (!*guard) return;
            // Capacity released: the next chunk can enter this link while
            // the current one is still propagating (latency hiding).
            active_transfer_[link_index] = 0;
            link_busy_[link_index] = false;
            try_start(link_index);
          });
      // Chunks have non-zero size, so service always completes via a future
      // event: on_served cannot have fired synchronously above and this
      // assignment cannot clobber a successor chunk's id. Zero-byte sends
      // (id 0) are left unrecorded either way.
      if (transfer_id != 0) active_transfer_[link_index] = transfer_id;
      return;
    }
  }
}

void EdgeChannel::on_link_done(std::size_t link_index, std::uint64_t chunk_id) {
  const auto it = std::find_if(chunks_.begin(), chunks_.end(),
                               [chunk_id](const Chunk& c) { return c.id == chunk_id; });
  if (it == chunks_.end()) throw std::logic_error("EdgeChannel: unknown chunk completed");
  it->next_link = link_index + 1;
  it->on_link = false;

  if (it->next_link == path_.size()) {
    // Fully delivered; must be the front chunk by the FIFO invariant.
    DeliveryCallback callback = std::move(it->on_delivered);
    bytes_sent_ += it->bytes;
    chunks_.erase(it);
    --in_flight_;
    if (callback) callback();
    return;
  }
  try_start(it->next_link);  // this chunk may enter the next link
}

void pipelined_transfer(Simulator& sim, std::vector<FlowLink*> path, Bytes total, Bytes chunk,
                        std::function<void()> on_complete) {
  if (chunk == 0) throw std::invalid_argument("pipelined_transfer: zero chunk size");
  if (total == 0) {
    if (on_complete) sim.schedule_after(0, std::move(on_complete));
    return;
  }
  auto channel = std::make_shared<EdgeChannel>(sim, std::move(path));
  const Bytes chunks = (total + chunk - 1) / chunk;
  // One shared completion record instead of a per-chunk copy of the
  // callback; the per-chunk capture is two shared_ptrs (fits inline).
  struct State {
    Bytes remaining;
    std::function<void()> done;
  };
  auto state = std::make_shared<State>(State{chunks, std::move(on_complete)});
  for (Bytes i = 0; i < chunks; ++i) {
    const Bytes this_chunk = std::min<Bytes>(chunk, total - i * chunk);
    channel->send(this_chunk, [channel, state] {
      if (--state->remaining == 0 && state->done) state->done();
    });
  }
}

}  // namespace adapcc::sim
