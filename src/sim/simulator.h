// Discrete-event simulation engine.
//
// The substrate for the whole reproduction: the cluster, its links, GPU
// streams, the coordinator's timers and the training loop all advance on one
// Simulator instance. Events are callbacks scheduled at absolute simulated
// times; ties are broken by insertion order so runs are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.h"

namespace adapcc::sim {

using EventCallback = std::function<void()>;

/// Opaque handle for cancelling a scheduled event.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const noexcept { return value != 0; }
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Seconds now() const noexcept { return now_; }

  /// Schedules `callback` at absolute time `when` (must be >= now()).
  EventId schedule_at(Seconds when, EventCallback callback);

  /// Schedules `callback` `delay` seconds from now (delay must be >= 0).
  EventId schedule_after(Seconds delay, EventCallback callback);

  /// Cancels a pending event. Cancelling an already-fired or invalid id is a
  /// no-op, which keeps completion-event bookkeeping simple for callers.
  void cancel(EventId id) noexcept;

  /// Runs until the event queue is empty.
  void run();

  /// Runs until simulated time reaches `deadline` (events at exactly
  /// `deadline` are executed). Returns the number of events processed.
  std::size_t run_until(Seconds deadline);

  /// Executes the single next event, if any. Returns false when idle.
  bool step();

  std::size_t pending_events() const noexcept { return live_ids_.size(); }
  std::uint64_t events_processed() const noexcept { return events_processed_; }

 private:
  struct Entry {
    Seconds when;
    std::uint64_t sequence;  // doubles as the event id; FIFO tie-break
    EventCallback callback;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  Seconds now_ = 0.0;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
  std::unordered_set<std::uint64_t> live_ids_;  // scheduled and not yet fired/cancelled
};

}  // namespace adapcc::sim
