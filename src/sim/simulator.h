// Discrete-event simulation engine.
//
// The substrate for the whole reproduction: the cluster, its links, GPU
// streams, the coordinator's timers and the training loop all advance on one
// Simulator instance. Events are callbacks scheduled at absolute simulated
// times; ties are broken by insertion order so runs are deterministic.
//
// The queue is an indexed 4-ary min-heap: heap entries carry their sort key
// (when, sequence) inline so comparisons stay in contiguous memory, plus the
// index of a slab slot holding the callback. Every slot tracks its heap
// position, so cancel() and reschedule() fix the entry in place in O(log n)
// — no tombstones linger, pending_events() is exact, and slots are recycled
// through a free list so schedule/cancel cycles do not grow memory.
// Callbacks are InlineCallback (small-buffer optimized), so the hot path
// performs no heap allocation per event.
//
// adapcc-lint: hot-path — std::function is banned in this file (DESIGN.md §7).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "sim/inline_callback.h"
#include "util/units.h"

namespace adapcc::sim {

using EventCallback = InlineCallback;

/// Opaque handle for cancelling a scheduled event. Encodes the slab slot and
/// its generation, so a handle kept past the event's firing safely misses.
struct EventId {
  std::uint64_t value = 0;
  bool valid() const noexcept { return value != 0; }
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Seconds now() const noexcept { return now_; }

  /// Schedules `callback` at absolute time `when` (must be >= now()).
  EventId schedule_at(Seconds when, EventCallback callback);

  /// Schedules `callback` `delay` seconds from now (delay must be >= 0).
  EventId schedule_after(Seconds delay, EventCallback callback);

  /// Cancels a pending event in place (O(log n)). Cancelling an
  /// already-fired or invalid id is a no-op, which keeps completion-event
  /// bookkeeping simple for callers.
  void cancel(EventId id) noexcept;

  /// Moves a pending event to absolute time `when` (must be >= now()),
  /// keeping its callback — equivalent to cancel + schedule_at with the same
  /// callback (the event re-enters the FIFO tie-break order as if newly
  /// scheduled) but without releasing the slot or touching the callback.
  /// Returns false when the id has already fired or was cancelled; the
  /// caller then schedules a fresh event. This is the fast path for
  /// FlowLink::reschedule_completion, which moves its completion event on
  /// every start_transfer / set_capacity.
  bool reschedule(EventId id, Seconds when);

  /// Determinism/race probing: with a non-zero seed, ties between events
  /// scheduled for the same timestamp are broken by a seeded pseudo-random
  /// permutation of the insertion order instead of FIFO. Simulation results
  /// must not depend on same-timestamp ordering; the tie-shuffle harness
  /// (tools/determinism_check.py) re-runs benchmarks across seeds and diffs
  /// the outputs — a race detector for simulated time. Seed 0 restores the
  /// documented FIFO ordering. Affects only events scheduled after the call.
  void set_tie_shuffle_seed(std::uint64_t seed) noexcept { tie_seed_ = seed; }
  std::uint64_t tie_shuffle_seed() const noexcept { return tie_seed_; }

  /// Runs until the event queue is empty.
  void run();

  /// Runs until simulated time reaches `deadline` (events at exactly
  /// `deadline` are executed). Returns the number of events processed.
  std::size_t run_until(Seconds deadline);

  /// Executes the single next event, if any. Returns false when idle.
  bool step();

  /// Exact count of scheduled, not-yet-fired, not-cancelled events.
  std::size_t pending_events() const noexcept { return heap_size_; }
  /// Heap entries currently live — equals pending_events(): cancelled
  /// events leave no dead entries behind (regression guard for the old
  /// tombstone design).
  std::size_t heap_size() const noexcept { return heap_size_; }
  /// Slab slots ever allocated; bounded by the peak number of concurrently
  /// pending events, not by the schedule/cancel count.
  std::size_t slot_capacity() const noexcept { return slot_count_; }
  std::uint64_t events_processed() const noexcept { return events_processed_; }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct HeapEntry {
    Seconds when;
    std::uint64_t sequence;  ///< FIFO tie-break for equal timestamps
    std::uint32_t slot;
  };
  /// Padding value beyond the live heap prefix; loses every comparison
  /// against a real entry, so min_child needs no bounds branches.
  static constexpr HeapEntry kSentinel{std::numeric_limits<Seconds>::infinity(),
                                       std::numeric_limits<std::uint64_t>::max(), 0xffffffffu};
  struct Slot {  // callback first: 56 + 4 + 4 = one 64-byte line per slot
    EventCallback callback;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNone;
  };
  /// Slots live in stable fixed-size blocks, never a growable vector:
  /// vector growth would move-construct every existing Slot (a callback
  /// steal each), and stable addresses let step() invoke a callback in
  /// place while it schedules new events. 64 slots x 64 bytes = one 4 KiB
  /// block — small enough that a tiny simulation initializes one page,
  /// indexed with a shift and a mask.
  static constexpr std::uint32_t kSlotBlockShift = 6;
  static constexpr std::uint32_t kSlotBlockSize = 1u << kSlotBlockShift;

  Slot& slot(std::uint32_t index) noexcept {
    return slot_blocks_[index >> kSlotBlockShift][index & (kSlotBlockSize - 1)];
  }

  /// Strict ordering on (when, sequence). Written with bitwise operators so
  /// it compiles to flag arithmetic, not short-circuit branches — the child
  /// comparisons in sift_down are data-dependent and would mispredict.
  static bool earlier(const HeapEntry& a, const HeapEntry& b) noexcept {
    return (a.when < b.when) |
           (static_cast<int>(a.when == b.when) & static_cast<int>(a.sequence < b.sequence));
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;
  /// Index of the least of the (up to four) children of `pos`. Sentinel
  /// padding guarantees four readable entries, so the selection is a
  /// branch-free three-comparison tournament.
  std::uint32_t min_child(std::uint32_t first_child) const noexcept;
  /// Places `entry` at `pos`, bubbling it toward the root while smaller than
  /// its parent. Maintains the slot -> heap position links.
  void sift_up(std::uint32_t pos, HeapEntry entry) noexcept;
  /// Places `entry` at `pos`, sinking it while larger than its least child.
  void sift_down(std::uint32_t pos, HeapEntry entry) noexcept;
  void heap_remove(std::uint32_t pos) noexcept;
  /// Removes the root (the hot pop in step()): sinks the hole along the
  /// min-child path to a leaf, then bubbles the displaced last entry up from
  /// there. Skips the per-level "done yet?" comparison of a classic
  /// sift-down; since the last entry of a near-sorted workload belongs at
  /// the bottom anyway, the bubble-up usually terminates immediately.
  void pop_root() noexcept;
  /// Grows heap_ so indices [heap_size_, heap_size_+4] are readable and
  /// keeps everything past the live prefix at the +inf sentinel.
  void pad_heap();
  /// Tie-break key for the next scheduled event: the raw FIFO sequence, or a
  /// bijectively scrambled one under tie-shuffle (see set_tie_shuffle_seed).
  std::uint64_t next_tie_key() noexcept;
  /// ADAPCC_AUDIT hook: full heap-shape/slot-link/free-list verification,
  /// O(n); a no-op in regular builds. Called after cancel and reschedule.
  void audit_verify() const;

  Seconds now_ = 0.0;
  std::uint64_t next_sequence_ = 1;
  std::uint64_t tie_seed_ = 0;
  std::uint64_t events_processed_ = 0;
  std::vector<std::unique_ptr<Slot[]>> slot_blocks_;
  std::uint32_t slot_count_ = 0;
  /// Heap position of each slot's entry (kNone when free / fired). Kept as a
  /// dense side array — sift operations rewrite these constantly, and a
  /// 4-byte lane stays cache-resident where the 64-byte Slot would not.
  std::vector<std::uint32_t> slot_pos_;
  /// 4-ary min-heap. The live prefix is heap_size_ entries; the vector is
  /// padded with +inf sentinels so min_child can always read four children.
  std::vector<HeapEntry> heap_;
  std::uint32_t heap_size_ = 0;
  std::uint32_t free_head_ = kNone;
};

}  // namespace adapcc::sim
