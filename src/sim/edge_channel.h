// EdgeChannel: an ordered chunk pipeline over a path of FlowLinks.
//
// One logical-topology edge maps onto 1..n simulated links (e.g. a network
// edge crosses the source NIC egress and the destination NIC ingress). A
// channel sends chunks in FIFO order with two rules that mirror the real
// Communicator (Sec. V-B):
//   * per-link serialization — chunk i+1 cannot enter link j before chunk i
//     has left it (async copies issued on one stream execute in order);
//   * store-and-forward per chunk — chunk i enters link j+1 only once it has
//     fully left link j (an event recorded after the copy, waited on by the
//     receiver).
// Together these give pipelining: chunk i+1 rides the egress link while
// chunk i rides the ingress link, hiding the staging cost exactly like the
// "hidden memory movements" paragraph describes.
//
// Bandwidth contention *between* channels is handled by the underlying
// FlowLinks' processor sharing; a channel only serializes its own chunks.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "sim/flow_link.h"
#include "sim/simulator.h"
#include "util/units.h"

namespace adapcc::sim {

class EdgeChannel {
 public:
  /// Move-only small-buffer callable (see inline_callback.h); chunk
  /// completion handlers move through the link and event layers without
  /// re-wrapping or allocation.
  using DeliveryCallback = InlineCallback;

  /// `path` must be non-empty and outlive the channel.
  EdgeChannel(Simulator& sim, std::vector<FlowLink*> path);
  EdgeChannel(const EdgeChannel&) = delete;
  EdgeChannel& operator=(const EdgeChannel&) = delete;
  ~EdgeChannel();

  /// Enqueues one chunk; `on_delivered` fires when it exits the last link.
  /// Chunks are delivered in the order they were sent.
  void send(Bytes bytes, DeliveryCallback on_delivered);

  std::size_t chunks_in_flight() const noexcept { return in_flight_; }
  Bytes bytes_sent() const noexcept { return bytes_sent_; }

  /// Abort path (chaos/watchdog recovery): cancels the in-service transfer
  /// on every link of the path, drops all queued/in-flight chunks without
  /// delivering them, and disarms any link callbacks still scheduled in the
  /// simulator (they become no-ops via the shared liveness guard). After
  /// abort() the channel accepts no further sends. Idempotent.
  void abort();
  bool aborted() const noexcept { return aborted_; }

  /// Sum of per-link alphas (the latency a lone chunk pays end to end).
  Seconds path_alpha() const noexcept;
  /// Bottleneck single-transfer bandwidth along the path.
  BytesPerSecond path_bandwidth() const noexcept;

 private:
  struct Chunk {
    std::uint64_t id;
    Bytes bytes;
    DeliveryCallback on_delivered;
    /// Index of the link this chunk will occupy (or occupies) next.
    std::size_t next_link = 0;
    /// True while the chunk is being transferred on `next_link`.
    bool on_link = false;
  };

  void try_start(std::size_t link_index);
  void on_link_done(std::size_t link_index, std::uint64_t chunk_id);

  Simulator& sim_;
  std::vector<FlowLink*> path_;
  /// Chunks not yet delivered, in send order. Front chunks are further
  /// along the path.
  std::deque<Chunk> chunks_;
  /// Per link: is a chunk of this channel currently on it?
  std::vector<bool> link_busy_;
  /// Per link: FlowLink transfer id of the chunk currently in service (0
  /// when idle) — what abort() hands to FlowLink::cancel_transfer.
  std::vector<std::uint64_t> active_transfer_;
  /// Shared liveness flag captured by every callback handed to the links.
  /// Service/propagation events that outlive an abort (or the channel
  /// itself) check it and fall through instead of touching freed state.
  std::shared_ptr<bool> alive_;
  bool aborted_ = false;
  std::size_t in_flight_ = 0;
  std::uint64_t next_chunk_id_ = 1;
  Bytes bytes_sent_ = 0;
};

/// Convenience: sends `total` bytes as ceil(total/chunk) chunks through a
/// fresh channel and invokes `on_complete` when the last chunk arrives.
/// The channel is kept alive internally until completion.
void pipelined_transfer(Simulator& sim, std::vector<FlowLink*> path, Bytes total, Bytes chunk,
                        std::function<void()> on_complete);

}  // namespace adapcc::sim
