#include "sim/flow_link.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "telemetry/telemetry.h"

namespace adapcc::sim {

namespace {
// Transfers whose residual drops below this are considered delivered; avoids
// zero-length completion events from floating-point progress arithmetic.
constexpr double kResidualEpsilonBytes = 1e-6;
// A link throttled to (or below) this capacity is treated as stalled.
constexpr BytesPerSecond kMinRate = 1e-3;
// Completion events are scheduled at least this far in the future. Without
// a floor, a sub-femtosecond eta can be absorbed by floating-point addition
// (now + eta == now), so the event fires at the same timestamp, elapsed
// time is zero, no progress accrues, and the link respawns the event
// forever. One nanosecond is far below any modelled latency and large
// enough to stay representable against simulated times up to ~10^6 s.
constexpr Seconds kMinEta = 1e-9;
}  // namespace

FlowLink::FlowLink(Simulator& sim, std::string name, Seconds alpha, BytesPerSecond capacity,
                   BytesPerSecond per_transfer_cap)
    : sim_(sim),
      name_(std::move(name)),
      alpha_(alpha),
      capacity_(capacity),
      per_transfer_cap_(per_transfer_cap) {
  if (alpha < 0) throw std::invalid_argument("FlowLink: negative alpha");
  if (capacity <= 0) throw std::invalid_argument("FlowLink: non-positive capacity");
  if (per_transfer_cap < 0) throw std::invalid_argument("FlowLink: negative per-transfer cap");
}

bool FlowLink::telemetry_ready() {
  telemetry::Telemetry* t = telemetry::get();
  if (t == nullptr) return false;
  if (tel_epoch_ != telemetry::epoch()) {
    tel_epoch_ = telemetry::epoch();
    tel_track_ = t->trace().track("link/" + name_);
    tel_bytes_ = &t->metrics().counter("link." + name_ + ".bytes");
    tel_busy_ = &t->metrics().gauge("link." + name_ + ".busy_seconds");
  }
  return true;
}

double FlowLink::current_rate() const noexcept {
  if (transfers_.empty()) return 0.0;
  double rate = std::max(capacity_, 0.0) / static_cast<double>(transfers_.size());
  if (per_transfer_cap_ > 0.0) rate = std::min(rate, per_transfer_cap_);
  return rate;
}

void FlowLink::start_transfer(Bytes bytes, CompletionCallback on_delivered,
                              CompletionCallback on_served) {
  if (bytes == 0) {
    if (on_served) on_served();
    if (on_delivered) sim_.schedule_after(alpha_, std::move(on_delivered));
    return;
  }
  advance_progress();
  transfers_.push_back(
      Transfer{static_cast<double>(bytes), bytes, std::move(on_delivered), std::move(on_served)});
  if (telemetry_ready()) {
    auto& trace = telemetry::get()->trace();
    transfers_.back().span = trace.begin_span(tel_track_, "xfer", sim_.now(),
                                              telemetry::kv("bytes", static_cast<double>(bytes)));
    trace.counter(tel_track_, "in_flight", sim_.now(),
                  static_cast<double>(transfers_.size()));
  }
  reschedule_completion();
}

void FlowLink::set_capacity(BytesPerSecond capacity) {
  if (capacity < 0) throw std::invalid_argument("FlowLink: negative capacity");
  advance_progress();
  capacity_ = capacity;
  reschedule_completion();
}

Seconds FlowLink::busy_time() const noexcept {
  Seconds total = busy_accum_;
  if (!transfers_.empty()) total += sim_.now() - last_update_;
  return total;
}

void FlowLink::advance_progress() {
  const Seconds now = sim_.now();
  const Seconds elapsed = now - last_update_;
  if (elapsed > 0 && !transfers_.empty()) {
    const double progressed = current_rate() * elapsed;
    for (auto& transfer : transfers_) {
      transfer.remaining_bytes = std::max(0.0, transfer.remaining_bytes - progressed);
    }
    busy_accum_ += elapsed;
  }
  last_update_ = now;
}

void FlowLink::reschedule_completion() {
  sim_.cancel(completion_event_);
  completion_event_ = EventId{};
  if (transfers_.empty()) return;

  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& transfer : transfers_) {
    min_remaining = std::min(min_remaining, transfer.remaining_bytes);
  }
  const double rate = current_rate();
  if (rate < kMinRate) return;  // stalled link; woken up by set_capacity()
  const Seconds eta = std::max(std::max(0.0, min_remaining) / rate, kMinEta);
  completion_event_ = sim_.schedule_after(eta, [this] { on_completion_event(); });
}

void FlowLink::on_completion_event() {
  completion_event_ = EventId{};
  advance_progress();
  // Collect callbacks first: a completion callback may start a new transfer
  // on this very link, which must not observe a half-updated state.
  std::vector<Transfer> done;
  for (auto it = transfers_.begin(); it != transfers_.end();) {
    if (it->remaining_bytes <= kResidualEpsilonBytes) {
      bytes_delivered_ += it->total_bytes;
      done.push_back(std::move(*it));
      it = transfers_.erase(it);
    } else {
      ++it;
    }
  }
  if (!done.empty() && telemetry_ready()) {
    auto& trace = telemetry::get()->trace();
    Bytes done_bytes = 0;
    for (const auto& transfer : done) {
      trace.end_span(transfer.span, sim_.now());
      done_bytes += transfer.total_bytes;
    }
    trace.counter(tel_track_, "in_flight", sim_.now(), static_cast<double>(transfers_.size()));
    tel_bytes_->add(static_cast<double>(done_bytes));
    tel_busy_->set(busy_time());
  }
  reschedule_completion();
  for (auto& transfer : done) {
    if (transfer.on_served) transfer.on_served();
    if (transfer.on_delivered) {
      sim_.schedule_after(alpha_, std::move(transfer.on_delivered));
    }
  }
}

}  // namespace adapcc::sim
