// adapcc-lint: hot-path — std::function is banned in this file (DESIGN.md §7).

#include "sim/flow_link.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "telemetry/telemetry.h"
#include "util/audit.h"

namespace adapcc::sim {

namespace {
// Transfers whose residual drops below this are considered delivered; avoids
// zero-length completion events from floating-point progress arithmetic.
constexpr double kResidualEpsilonBytes = 1e-6;
// A link throttled to (or below) this capacity is treated as stalled.
constexpr BytesPerSecond kMinRate = 1e-3;
// Completion events are scheduled at least this far in the future. Without
// a floor, a sub-femtosecond eta can be absorbed by floating-point addition
// (now + eta == now), so the event fires at the same timestamp, elapsed
// time is zero, no progress accrues, and the link respawns the event
// forever. One nanosecond is far below any modelled latency and large
// enough to stay representable against simulated times up to ~10^6 s.
constexpr Seconds kMinEta = 1e-9;
}  // namespace

FlowLink::FlowLink(Simulator& sim, std::string name, Seconds alpha, BytesPerSecond capacity,
                   BytesPerSecond per_transfer_cap)
    : sim_(sim),
      name_(std::move(name)),
      alpha_(alpha),
      capacity_(capacity),
      per_transfer_cap_(per_transfer_cap),
      tel_track_name_("link/" + name_),
      tel_bytes_name_("link." + name_ + ".bytes"),
      tel_busy_name_("link." + name_ + ".busy_seconds") {
  if (alpha < 0) throw std::invalid_argument("FlowLink: negative alpha");
  if (capacity <= 0) throw std::invalid_argument("FlowLink: non-positive capacity");
  if (per_transfer_cap < 0) throw std::invalid_argument("FlowLink: negative per-transfer cap");
}

bool FlowLink::telemetry_ready() {
  telemetry::Telemetry* t = telemetry::get();
  if (t == nullptr) return false;
  if (tel_epoch_ != telemetry::epoch()) {
    tel_epoch_ = telemetry::epoch();
    tel_track_ = t->trace().track(tel_track_name_);
    tel_bytes_ = &t->metrics().counter(tel_bytes_name_);
    tel_busy_ = &t->metrics().gauge(tel_busy_name_);
  }
  return true;
}

double FlowLink::current_rate() const noexcept {
  if (transfers_.empty()) return 0.0;
  double rate = std::max(capacity_, 0.0) / static_cast<double>(transfers_.size());
  if (per_transfer_cap_ > 0.0) rate = std::min(rate, per_transfer_cap_);
  return rate;
}

std::uint32_t FlowLink::acquire_slot() {
  if (free_head_ != 0xffffffffu) {
    const std::uint32_t slot = free_head_;
    TransferData& data = slab(slot);
    free_head_ = data.next_free;
    data.next_free = 0xffffffffu;
    return slot;
  }
  if ((slab_count_ >> kSlabBlockShift) == slab_blocks_.size()) {
    slab_blocks_.push_back(std::make_unique<TransferData[]>(kSlabBlockSize));
  }
  return slab_count_++;
}

void FlowLink::release_slot(std::uint32_t slot) noexcept {
  if constexpr (audit::kEnabled) {
    if (audit_limbo_ > 0) --audit_limbo_;
  }
  TransferData& data = slab(slot);
  data.on_delivered = nullptr;
  data.on_served = nullptr;
  data.span = 0;
  data.next_free = free_head_;
  free_head_ = slot;
}

std::uint64_t FlowLink::start_transfer(Bytes bytes, CompletionCallback on_delivered,
                                       CompletionCallback on_served) {
  if (bytes == 0) {
    if (on_served) on_served();
    if (on_delivered) sim_.schedule_after(alpha_, std::move(on_delivered));
    return 0;
  }
  advance_progress();
  const std::uint32_t slot = acquire_slot();
  TransferData& data = slab(slot);
  data.total_bytes = bytes;
  data.on_delivered = std::move(on_delivered);
  data.on_served = std::move(on_served);
  if constexpr (audit::kEnabled) data.audit_enqueue_service = service_;
  const std::uint64_t transfer_id = next_transfer_sequence_++;
  transfers_.push_back(TransferKey{service_ + static_cast<double>(bytes), transfer_id, slot});
  if (telemetry_ready()) {
    auto& trace = telemetry::get()->trace();
    data.span = trace.begin_span(tel_track_, "xfer", sim_.now(),
                                 telemetry::kv("bytes", static_cast<double>(bytes)));
    trace.counter(tel_track_, "in_flight", sim_.now(),
                  static_cast<double>(transfers_.size()));
  }
  std::push_heap(transfers_.begin(), transfers_.end(), TargetLater{});
  // A new transfer only slows the others down (equal sharing), so a pending
  // completion event can now only be early — firing early is harmless (it
  // pops nothing and re-arms with the exact same arithmetic). The event only
  // has to move when the new transfer itself is the next to finish. This
  // keeps a burst of starts at one timestamp O(1) per start instead of
  // paying two divisions and a heap reshuffle each.
  if (!completion_event_.valid() || transfers_.front().slot == slot) {
    reschedule_completion();
  }
  if constexpr (audit::kEnabled) audit_verify();
  return transfer_id;
}

bool FlowLink::cancel_transfer(std::uint64_t transfer_id) {
  if (transfer_id == 0) return false;
  advance_progress();
  const auto it =
      std::find_if(transfers_.begin(), transfers_.end(),
                   [transfer_id](const TransferKey& key) { return key.sequence == transfer_id; });
  if (it == transfers_.end()) return false;
  const std::uint32_t slot = it->slot;
  if (telemetry_ready()) {
    auto& trace = telemetry::get()->trace();
    trace.end_span(slab(slot).span, sim_.now());
    trace.counter(tel_track_, "in_flight", sim_.now(),
                  static_cast<double>(transfers_.size() - 1));
  }
  // The cancelled bytes are abandoned, not delivered: the slot goes straight
  // back to the free list and neither callback fires. A linear erase +
  // re-heapify is fine — cancellation only runs from the recovery path,
  // never from steady-state pipelining.
  transfers_.erase(it);
  std::make_heap(transfers_.begin(), transfers_.end(), TargetLater{});
  release_slot(slot);
  reschedule_completion();
  if constexpr (audit::kEnabled) audit_verify();
  return true;
}

void FlowLink::set_capacity(BytesPerSecond capacity) {
  if (capacity < 0) throw std::invalid_argument("FlowLink: negative capacity");
  advance_progress();
  capacity_ = capacity;
  reschedule_completion();
  if constexpr (audit::kEnabled) audit_verify();
}

Seconds FlowLink::busy_time() const noexcept {
  Seconds total = busy_accum_;
  if (!transfers_.empty()) total += sim_.now() - last_update_;
  return total;
}

void FlowLink::advance_progress() {
  const Seconds now = sim_.now();
  const Seconds elapsed = now - last_update_;
  if (elapsed > 0 && !transfers_.empty()) {
    if constexpr (audit::kEnabled) audit_advance_rate_ = current_rate();
    service_ += current_rate() * elapsed;
    busy_accum_ += elapsed;
  }
  last_update_ = now;
}

void FlowLink::reschedule_completion() {
  if (transfers_.empty()) {
    sim_.cancel(completion_event_);
    completion_event_ = EventId{};
    return;
  }
  const double rate = current_rate();
  if (rate < kMinRate) {  // stalled link; woken up by set_capacity()
    sim_.cancel(completion_event_);
    completion_event_ = EventId{};
    return;
  }
  const double min_remaining = transfers_.front().finish_target - service_;
  // An already-due front can arise when another link event lands inside a
  // kMinEta-clamped completion window and advances the service counter past
  // the target. Complete it with a zero-delay event rather than re-clamping:
  // re-clamping would add a spurious nanosecond of in-flight time per poke
  // (and lets the overshoot grow without bound under event churn). The
  // kMinEta floor below only guards *positive* remainders whose exact ETA
  // underflows, where firing early and re-arming would loop.
  const Seconds eta =
      min_remaining <= kResidualEpsilonBytes ? 0.0 : std::max(min_remaining / rate, kMinEta);
  // Move the pending event in place when one exists; fall back to a fresh
  // event otherwise. Both orderings are identical to cancel + schedule.
  if (!sim_.reschedule(completion_event_, sim_.now() + eta)) {
    completion_event_ = sim_.schedule_after(eta, [this] { on_completion_event(); });
  }
}

void FlowLink::on_completion_event() {
  completion_event_ = EventId{};
  advance_progress();
  // Collect completed transfers first: a completion callback may start a new
  // transfer on this very link, which must not observe a half-updated state.
  // The heap pops by (target, sequence); same-event completions must fire in
  // FIFO start order, so collect (sequence, slot) pairs and sort.
  std::vector<std::pair<std::uint64_t, std::uint32_t>>& done = done_scratch_;
  done.clear();
  bool all_done = !transfers_.empty();
  for (const TransferKey& key : transfers_) {
    if (key.finish_target - service_ > kResidualEpsilonBytes) {
      all_done = false;
      break;
    }
  }
  if (all_done) {
    // Equal-share links routinely finish every transfer at once (transfers
    // started together with equal sizes); take them all without heap pops.
    done.reserve(transfers_.size());
    for (const TransferKey& key : transfers_) {
      if constexpr (audit::kEnabled) {
        audit_on_complete(key);
        ++audit_limbo_;
      }
      bytes_delivered_ += slab(key.slot).total_bytes;
      done.emplace_back(key.sequence, key.slot);
    }
    transfers_.clear();
  } else {
    while (!transfers_.empty() &&
           transfers_.front().finish_target - service_ <= kResidualEpsilonBytes) {
      std::pop_heap(transfers_.begin(), transfers_.end(), TargetLater{});
      if constexpr (audit::kEnabled) {
        audit_on_complete(transfers_.back());
        ++audit_limbo_;
      }
      bytes_delivered_ += slab(transfers_.back().slot).total_bytes;
      done.emplace_back(transfers_.back().sequence, transfers_.back().slot);
      transfers_.pop_back();
    }
  }
  // Both collection paths emit in (target, sequence) pop order, which for
  // same-event completions is almost always already sequence-sorted (heap
  // pushes with equal targets keep insertion order) — check before sorting.
  if (!std::is_sorted(done.begin(), done.end())) std::sort(done.begin(), done.end());
  if (!done.empty() && telemetry_ready()) {
    auto& trace = telemetry::get()->trace();
    Bytes done_bytes = 0;
    for (const auto& [sequence, slot] : done) {
      trace.end_span(slab(slot).span, sim_.now());
      done_bytes += slab(slot).total_bytes;
    }
    trace.counter(tel_track_, "in_flight", sim_.now(), static_cast<double>(transfers_.size()));
    tel_bytes_->add(static_cast<double>(done_bytes));
    tel_busy_->set(busy_time());
  }
  reschedule_completion();
  // Every delivery from this event lands at exactly now + alpha, so they
  // share one simulator event instead of one each; the batch preserves FIFO
  // order. A lone delivery (the common pipelined case) skips the batch
  // vector and rides the event slot directly; the batch vector is sized
  // exactly once and moves into the event inline (24-byte capture).
  CompletionCallback first_delivery;
  std::vector<CompletionCallback> batch;
  for (const auto& [sequence, slot] : done) {
    TransferData& data = slab(slot);
    CompletionCallback on_served = std::move(data.on_served);
    CompletionCallback on_delivered = std::move(data.on_delivered);
    release_slot(slot);  // before firing: the callback may start a transfer
    if (on_served) on_served();
    if (on_delivered) {
      if (!first_delivery && batch.empty()) {
        first_delivery = std::move(on_delivered);
      } else {
        if (batch.empty()) {
          batch.reserve(done.size());
          batch.push_back(std::move(first_delivery));
        }
        batch.push_back(std::move(on_delivered));
      }
    }
  }
  if (!batch.empty()) {
    sim_.schedule_after(alpha_, [batch = std::move(batch)]() mutable {
      for (CompletionCallback& callback : batch) callback();
    });
  } else if (first_delivery) {
    sim_.schedule_after(alpha_, std::move(first_delivery));
  }
  if constexpr (audit::kEnabled) audit_verify();
}

void FlowLink::audit_on_complete(const TransferKey& key) {
  // Byte conservation per transfer: the fixed finish target must still equal
  // service-at-enqueue + size bit-for-bit (the target is computed once and
  // never touched; drift here would mean slab or heap corruption), and the
  // service counter must actually have reached it, up to the residual
  // epsilon that defines "complete". The comparison re-runs the enqueue-time
  // sum — stated additively, because (a + b) - a == b does not hold for
  // doubles even though a + b == a + b does.
  const TransferData& data = slab(key.slot);
  ADAPCC_AUDIT_CHECK("flow_link",
                     key.finish_target ==
                         data.audit_enqueue_service + static_cast<double>(data.total_bytes),
                     name_ << ": target " << key.finish_target << " != enqueue service "
                           << data.audit_enqueue_service << " + size " << data.total_bytes);
  ADAPCC_AUDIT_CHECK("flow_link", service_ >= key.finish_target - kResidualEpsilonBytes,
                     name_ << ": completing at service " << service_ << " short of target "
                           << key.finish_target);
}

void FlowLink::audit_verify() {
  // Whole-link accounting: the in-flight set is a well-formed heap, no
  // in-flight transfer is already past its target (completions would have
  // collected it), every heap key points at a live slab slot carrying a
  // positive size, and busy time never outruns simulated time.
  ADAPCC_AUDIT_CHECK("flow_link",
                     std::is_heap(transfers_.begin(), transfers_.end(), TargetLater{}),
                     name_ << ": transfer heap order violated with "
                           << transfers_.size() << " in flight");
  // A transfer may sit past its target by up to one kMinEta clamp window of
  // service (the completion event fires at most kMinEta after the true
  // crossing; any intervening link event advances the counter across the
  // target and immediately re-arms a zero-delay completion). Beyond the
  // residual epsilon, that bound — accrued at the rate the last advance
  // used — is the most a live transfer may be overdue, and only with a
  // completion event armed (or the link stalled below kMinRate).
  const double overshoot_slack = kResidualEpsilonBytes + audit_advance_rate_ * kMinEta;
  for (const TransferKey& key : transfers_) {
    ADAPCC_AUDIT_CHECK("flow_link", key.slot < slab_count_,
                       name_ << ": heap slot " << key.slot << " of " << slab_count_);
    const TransferData& data = slab(key.slot);
    ADAPCC_AUDIT_CHECK("flow_link", data.total_bytes > 0,
                       name_ << ": in-flight transfer with zero size in slot " << key.slot);
    ADAPCC_AUDIT_CHECK("flow_link", key.finish_target - service_ > -overshoot_slack,
                       name_ << ": transfer past its target (target " << key.finish_target
                             << " service " << service_ << " slack " << overshoot_slack
                             << ") left in flight");
    if (key.finish_target - service_ <= -kResidualEpsilonBytes) {
      ADAPCC_AUDIT_CHECK("flow_link", completion_event_.valid() || current_rate() < kMinRate,
                         name_ << ": overdue transfer with no completion event armed");
    }
  }
  ADAPCC_AUDIT_CHECK("flow_link", last_update_ <= sim_.now(),
                     name_ << ": progress clock " << last_update_ << " ahead of now "
                           << sim_.now());
  ADAPCC_AUDIT_CHECK("flow_link", busy_time() <= sim_.now() + 1e-12,
                     name_ << ": busy time " << busy_time() << " exceeds simulated time "
                           << sim_.now());
  // Slab free list: bounded walk, and free + in-flight slots cover the slab.
  std::uint32_t free_len = 0;
  for (std::uint32_t slot = free_head_; slot != 0xffffffffu; ++free_len) {
    ADAPCC_AUDIT_CHECK("flow_link", free_len <= slab_count_, name_ << ": slab free-list cycle");
    ADAPCC_AUDIT_CHECK("flow_link", slot < slab_count_,
                       name_ << ": slab free-list index " << slot);
    slot = slab(slot).next_free;
  }
  ADAPCC_AUDIT_CHECK("flow_link",
                     free_len + transfers_.size() + audit_limbo_ == slab_count_,
                     name_ << ": free " << free_len << " + in-flight " << transfers_.size()
                           << " + completing " << audit_limbo_ << " != slab slots "
                           << slab_count_);
}

}  // namespace adapcc::sim
