// Training workload models (Sec. VI-D): the four DNNs the paper trains,
// reduced to what the communication experiments consume — gradient/token
// volume per iteration, the collective primitive used, and a per-sample
// compute cost that drives the straggler model.
#pragma once

#include <string>

#include "collective/primitive.h"
#include "util/units.h"

namespace adapcc::training {

struct ModelSpec {
  std::string name;
  /// Gradient (or token buffer) volume communicated per iteration.
  Bytes tensor_bytes = 0;
  /// Collective used for synchronization: AllReduce for data-parallel DNNs,
  /// AllToAll for MoE token dispatch.
  collective::Primitive primitive = collective::Primitive::kAllReduce;
  /// Compute seconds per sample on a V100 (compute_scale = 1); other GPU
  /// kinds divide by their compute_scale.
  double seconds_per_sample_v100 = 0.0;
  /// Batch-independent per-iteration overhead (kernel launches, optimizer
  /// step, data loading) — largely GPU-generation independent, which is why
  /// the A100/V100 gap narrows at small batch sizes and the compute-time
  /// variance "increases with a larger batch size" (Secs. II-C, VI-D).
  double fixed_overhead_seconds = 0.0;
  int default_local_batch = 128;
};

/// VGG16, 528 MB of gradients, ImageNet (Sec. VI-D).
ModelSpec vgg16();
/// GPT-2, 475 MB, personal-chat dataset, local batch 16.
ModelSpec gpt2();
/// ViT (Vision Transformer), 208 MB, ImageNet.
ModelSpec vit();
/// MoE on fastMoE with one expert per GPU; 512 MB of tokens via AllToAll.
ModelSpec moe();

}  // namespace adapcc::training
