// Per-worker computation-time model (Secs. II-C, VI-D).
//
// Tensor-ready times differ across workers because of GPU-generation
// heterogeneity (A100 vs V100), run-to-run jitter, and interference from
// co-located CPU workloads in hybrid clusters. This model samples an
// iteration's compute duration per rank:
//   t = seconds_per_sample_v100 * batch / compute_scale(kind)
//       * lognormal_jitter * interference_slowdown.
#pragma once

#include <map>
#include <vector>

#include "topology/cluster.h"
#include "training/model_spec.h"
#include "util/rng.h"

namespace adapcc::training {

struct ComputeModelConfig {
  /// Sigma of the log-normal run-to-run jitter (~1% relative; the large
  /// ready-time differences in practice come from hardware heterogeneity
  /// and interference, not iteration noise).
  double jitter_sigma = 0.012;
};

class ComputeModel {
 public:
  ComputeModel(const topology::Cluster& cluster, ModelSpec spec, util::Rng rng,
               ComputeModelConfig config = {})
      : cluster_(cluster), spec_(std::move(spec)), rng_(rng), config_(config) {}

  /// Samples the compute time of one iteration for `rank` at `batch`.
  Seconds sample_iteration_time(int rank, int batch);

  /// Mean (jitter-free) compute time for `rank`.
  Seconds mean_iteration_time(int rank, int batch) const;

  /// CPU-interference slowdown factor for `rank` (1.0 = none). The Fig. 18b
  /// harness maps a CPU-utilization interference level onto this.
  void set_interference(int rank, double slowdown);
  void clear_interference();
  double interference(int rank) const;

  const ModelSpec& spec() const noexcept { return spec_; }

 private:
  const topology::Cluster& cluster_;
  ModelSpec spec_;
  util::Rng rng_;
  ComputeModelConfig config_;
  std::map<int, double> interference_;
};

/// Maps the paper's "CPU interference level" (0-400 %) to a GPU-side
/// compute slowdown: cache and memory-bandwidth contention degrade the
/// input pipeline and kernels roughly linearly in the occupied cores.
double interference_slowdown(double cpu_interference_percent);

}  // namespace adapcc::training
