// Real SGD on synthetic data for the model-accuracy experiment (Fig. 19b).
//
// The paper trains VGG16 on a down-scaled 100k-image ImageNet and shows:
//  * AdapCC (phase-1 partial aggregation completed by phase-2) matches
//    NCCL's accuracy exactly — the two-phase protocol preserves the sum;
//  * 'Relay Async' (simply discarding late workers' tensors) converges
//    worse;
//  * 'AdapCC-nccl graph' (same sums in a different aggregation order)
//    matches NCCL — order changes are numerically immaterial.
// We reproduce the experiment with multinomial logistic regression on a
// synthetic 100k-sample classification task, sharded non-IID across workers
// (each worker's shard is class-skewed) so that dropping stragglers' work
// visibly biases the gradient. The SGD is real float32 arithmetic; only the
// data is synthetic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace adapcc::training {

enum class AggregationMode {
  kFullSync,      ///< NCCL: wait for every worker, aggregate all gradients
  kPhase1Phase2,  ///< AdapCC: partial aggregation first, late tensors merged
  kRelayAsync,    ///< 'Relay Async': late workers' gradients are discarded
  kShuffledOrder, ///< 'AdapCC-nccl graph': full sum in a different order
};

std::string to_string(AggregationMode mode);

struct SgdConfig {
  int workers = 10;
  int features = 64;
  int classes = 10;
  int train_samples = 100000;  ///< the paper's down-scaled 100k dataset
  int test_samples = 10000;
  int local_batch = 32;
  int iterations = 400;
  int eval_every = 20;
  float learning_rate = 0.15f;
  /// Straggling is chronic in practice (the same under-provisioned or
  /// interfered workers are late iteration after iteration — Sec. II-C):
  /// the first `chronic_fraction` of workers straggle with
  /// `straggler_probability`, the rest with `background_probability`.
  double straggler_probability = 0.85;
  double background_probability = 0.05;
  double chronic_fraction = 0.3;
  /// Non-IID skew: fraction of each worker's shard drawn from its "home"
  /// classes (the remainder is uniform).
  double shard_skew = 0.8;
  std::uint64_t seed = 17;
};

struct AccuracyCurve {
  std::vector<int> iteration;   ///< evaluation points
  std::vector<double> accuracy; ///< top-1 accuracy on the test set
  double final_accuracy() const { return accuracy.empty() ? 0.0 : accuracy.back(); }
};

/// Trains multinomial logistic regression under the given aggregation mode
/// and returns the accuracy curve. Deterministic for a given config seed
/// (mode-specific divergence comes only from the aggregation arithmetic).
AccuracyCurve train_synthetic_sgd(AggregationMode mode, const SgdConfig& config = {});

}  // namespace adapcc::training
