#include "training/compute_model.h"

#include <cmath>
#include <stdexcept>

namespace adapcc::training {

Seconds ComputeModel::mean_iteration_time(int rank, int batch) const {
  if (batch <= 0) throw std::invalid_argument("ComputeModel: non-positive batch");
  const double scale = topology::compute_scale(cluster_.gpu_kind(rank));
  return spec_.fixed_overhead_seconds +
         spec_.seconds_per_sample_v100 * static_cast<double>(batch) / scale;
}

Seconds ComputeModel::sample_iteration_time(int rank, int batch) {
  const double jitter =
      rng_.lognormal(-0.5 * config_.jitter_sigma * config_.jitter_sigma, config_.jitter_sigma);
  return mean_iteration_time(rank, batch) * jitter * interference(rank);
}

void ComputeModel::set_interference(int rank, double slowdown) {
  if (slowdown < 1.0) throw std::invalid_argument("ComputeModel: slowdown < 1");
  interference_[rank] = slowdown;
}

void ComputeModel::clear_interference() { interference_.clear(); }

double ComputeModel::interference(int rank) const {
  const auto it = interference_.find(rank);
  return it == interference_.end() ? 1.0 : it->second;
}

double interference_slowdown(double cpu_interference_percent) {
  if (cpu_interference_percent < 0) {
    throw std::invalid_argument("interference_slowdown: negative level");
  }
  // 400% CPU interference (four busy cores on the affinity socket) slows the
  // co-located GPU worker's iteration by ~60%.
  return 1.0 + 0.15 * cpu_interference_percent / 100.0;
}

}  // namespace adapcc::training
