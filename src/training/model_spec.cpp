#include "training/model_spec.h"

namespace adapcc::training {

ModelSpec vgg16() {
  // ~0.38 s per iteration at batch 128 on an A100 (compute_scale 2).
  return ModelSpec{"vgg16", megabytes(528), collective::Primitive::kAllReduce,
                   /*seconds_per_sample_v100=*/0.004, /*fixed_overhead_seconds=*/0.12,
                   /*default_local_batch=*/128};
}

ModelSpec gpt2() {
  // ~0.35 s per iteration at batch 16 on an A100; launch/optimizer overhead
  // dominates at this small batch, so the A100/V100 gap is modest and grows
  // with batch size (Fig. 16).
  return ModelSpec{"gpt2", megabytes(475), collective::Primitive::kAllReduce,
                   /*seconds_per_sample_v100=*/0.005, /*fixed_overhead_seconds=*/0.30,
                   /*default_local_batch=*/16};
}

ModelSpec vit() {
  // ~0.30 s per iteration at batch 128 on an A100.
  return ModelSpec{"vit", megabytes(208), collective::Primitive::kAllReduce,
                   /*seconds_per_sample_v100=*/0.003, /*fixed_overhead_seconds=*/0.11,
                   /*default_local_batch=*/128};
}

ModelSpec moe() {
  return ModelSpec{"moe", megabytes(512), collective::Primitive::kAllToAll,
                   /*seconds_per_sample_v100=*/0.003, /*fixed_overhead_seconds=*/0.11,
                   /*default_local_batch=*/128};
}

}  // namespace adapcc::training
