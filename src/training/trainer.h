// Data-parallel training loop over the simulated cluster (Sec. VI-D).
//
// Each iteration samples per-worker compute times from the ComputeModel,
// then synchronizes gradients either through AdapCC's adaptive relay control
// (wait-vs-proceed + phase 1/2) or through a baseline backend that waits for
// all workers (the NCCL behaviour). The trainer records per-iteration wait
// time, communication time, relay assignments and fault events — the raw
// material of Figs. 3b, 14-18.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "baselines/backend.h"
#include "relay/data_loader.h"
#include "runtime/adapcc.h"
#include "training/compute_model.h"

namespace adapcc::training {

struct IterationStats {
  Seconds compute_min = 0.0;  ///< fastest worker's compute duration
  Seconds compute_max = 0.0;  ///< slowest worker's compute duration
  Seconds wait_time = 0.0;    ///< fastest worker's wait before comm trigger
  Seconds comm_time = 0.0;    ///< trigger -> final tensor available
  Seconds total_comm = 0.0;   ///< fastest-ready -> done (wait + comm)
  Seconds iteration_time = 0.0;
  bool partial = false;
  std::vector<int> relays;
  std::set<int> faulty;
};

struct TrainingStats {
  std::vector<IterationStats> iterations;
  Seconds makespan = 0.0;
  std::map<int, int> relay_count;  ///< times each rank served as a relay
  /// Terminal halt: a mass failure left fewer than 2 survivors, so the run
  /// stopped gracefully instead of throwing out of the training loop. The
  /// iterations recorded so far stay valid.
  bool halted = false;
  std::string halt_reason;
  int halted_at_iteration = -1;

  double mean_comm_time() const;
  double mean_iteration_time() const;
  /// global_batch_size / mean iteration time (samples per second).
  double throughput(int global_batch_size) const;
  /// wait / actual-communication ratios per iteration (Fig. 3b).
  std::vector<double> wait_ratios() const;
  /// Fraction of iterations that used phase-1 partial communication.
  double partial_fraction() const;
};

struct TrainerConfig {
  int iterations = 100;
  int batch_per_gpu = 16;
  /// Reprofile (adapcc.profile()) every this many iterations; 0 = off.
  int profile_period = 0;
  /// Hook invoked before each iteration (interference injection, shaping).
  std::function<void(int iteration)> on_iteration;
  /// Chaos hook: absolute crash times per rank for this iteration's
  /// AllReduce (see collective::CollectiveOptions::dead_at), given the
  /// iteration index and its start time. Null = no crashes.
  std::function<std::map<int, Seconds>(int iteration, Seconds t0)> crash_schedule;
};

class Trainer {
 public:
  Trainer(topology::Cluster& cluster, ComputeModel compute, TrainerConfig config)
      : cluster_(cluster), compute_(std::move(compute)), config_(std::move(config)) {}

  /// AdapCC mode: adaptive relay control for AllReduce models; AllToAll
  /// models run the synthesized AllToAll after all workers are ready (token
  /// dispatch needs every worker's tokens).
  TrainingStats train_with_adapcc(runtime::Adapcc& adapcc);

  /// Baseline mode (NCCL/MSCCL/Blink): wait for all workers, then run the
  /// backend's collective.
  TrainingStats train_with_backend(baselines::Backend& backend);

  ComputeModel& compute_model() noexcept { return compute_; }

 private:
  std::map<int, Seconds> sample_ready_times(const std::vector<int>& participants,
                                            const relay::DataLoader& loader, Seconds now,
                                            Seconds* min_compute, Seconds* max_compute);

  topology::Cluster& cluster_;
  ComputeModel compute_;
  TrainerConfig config_;
};

}  // namespace adapcc::training
