#include "training/trainer.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "telemetry/telemetry.h"
#include "util/logging.h"

namespace adapcc::training {

namespace {

/// One iteration as nested spans on the "trainer" track: the iteration span
/// with three sequential children — compute (until the fastest worker is
/// ready), wait (the coordinator's deliberation window) and comm (trigger to
/// final tensor). Also feeds per-iteration histograms and labels a metrics
/// snapshot, giving the per-iteration time series the exporters flatten.
void trace_iteration(int iteration, Seconds t0, Seconds end, const IterationStats& iter) {
  auto* t = telemetry::get();
  if (t == nullptr) return;
  auto& trace = t->trace();
  const telemetry::TrackId track = trace.track("trainer");
  trace.complete(track, "iteration " + std::to_string(iteration), t0, end - t0,
                 telemetry::kv("partial", iter.partial ? 1.0 : 0.0) + "," +
                     telemetry::kv("relays", static_cast<double>(iter.relays.size())));
  const Seconds fastest = t0 + iter.compute_min;
  trace.complete(track, "compute", t0, iter.compute_min);
  if (iter.wait_time > 0) trace.complete(track, "wait", fastest, iter.wait_time);
  trace.complete(track, "comm", fastest + iter.wait_time, iter.comm_time);
  t->metrics().histogram("trainer.compute_seconds").observe(iter.compute_max);
  t->metrics().histogram("trainer.wait_seconds").observe(iter.wait_time);
  t->metrics().histogram("trainer.comm_seconds").observe(iter.comm_time);
  t->metrics().histogram("trainer.iteration_seconds").observe(iter.iteration_time);
  t->metrics().counter("trainer.iterations").add(1.0);
  t->metrics().snapshot("iter " + std::to_string(iteration), end);
}

/// Keeps the loader's shard assignment in lockstep with the runtime's
/// participant set: workers re-admitted through Adapcc::include_workers get
/// shards back (DataLoader::readmit) and workers excluded outside the
/// trainer's own fault path release theirs — the global batch size is
/// preserved either way.
void reconcile_loader(relay::DataLoader& loader, const std::vector<int>& participants) {
  const std::set<int> current(participants.begin(), participants.end());
  const std::set<int> tracked(loader.workers().begin(), loader.workers().end());
  std::set<int> removed;
  std::set<int> added;
  for (const int worker : tracked) {
    if (current.count(worker) == 0) removed.insert(worker);
  }
  for (const int worker : current) {
    if (tracked.count(worker) == 0) added.insert(worker);
  }
  if (!added.empty()) loader.readmit(added);
  if (!removed.empty()) loader.redistribute(removed);
}

}  // namespace

double TrainingStats::mean_comm_time() const {
  if (iterations.empty()) return 0.0;
  double sum = 0;
  for (const auto& it : iterations) sum += it.total_comm;
  return sum / static_cast<double>(iterations.size());
}

double TrainingStats::mean_iteration_time() const {
  if (iterations.empty()) return 0.0;
  double sum = 0;
  for (const auto& it : iterations) sum += it.iteration_time;
  return sum / static_cast<double>(iterations.size());
}

double TrainingStats::throughput(int global_batch_size) const {
  const double mean = mean_iteration_time();
  return mean > 0 ? static_cast<double>(global_batch_size) / mean : 0.0;
}

std::vector<double> TrainingStats::wait_ratios() const {
  std::vector<double> ratios;
  for (const auto& it : iterations) {
    if (it.comm_time > 0) ratios.push_back(it.wait_time / it.comm_time);
  }
  return ratios;
}

double TrainingStats::partial_fraction() const {
  if (iterations.empty()) return 0.0;
  int partial = 0;
  for (const auto& it : iterations) partial += it.partial ? 1 : 0;
  return static_cast<double>(partial) / static_cast<double>(iterations.size());
}

std::map<int, Seconds> Trainer::sample_ready_times(const std::vector<int>& participants,
                                                   const relay::DataLoader& loader, Seconds now,
                                                   Seconds* min_compute, Seconds* max_compute) {
  std::map<int, Seconds> ready_at;
  *min_compute = std::numeric_limits<double>::infinity();
  *max_compute = 0.0;
  for (const int rank : participants) {
    const Seconds compute = compute_.sample_iteration_time(rank, loader.batch_of(rank));
    *min_compute = std::min(*min_compute, compute);
    *max_compute = std::max(*max_compute, compute);
    ready_at[rank] = now + compute;
  }
  return ready_at;
}

TrainingStats Trainer::train_with_adapcc(runtime::Adapcc& adapcc) {
  sim::Simulator& sim = cluster_.simulator();
  TrainingStats stats;
  const Seconds start = sim.now();
  relay::DataLoader loader(config_.batch_per_gpu * static_cast<int>(adapcc.participants().size()),
                           adapcc.participants());
  const ModelSpec& spec = compute_.spec();

  for (int iteration = 0; iteration < config_.iterations; ++iteration) {
    if (config_.on_iteration) config_.on_iteration(iteration);
    IterationStats iter;
    const Seconds t0 = sim.now();
    const auto participants = adapcc.participants();
    reconcile_loader(loader, participants);
    const auto ready_at =
        sample_ready_times(participants, loader, t0, &iter.compute_min, &iter.compute_max);

    if (spec.primitive == collective::Primitive::kAllToAll) {
      // Token dispatch needs all workers' tokens; executor ready times model
      // the stagger, flows start as workers finish.
      collective::CollectiveOptions options;
      options.ready_at = ready_at;
      const auto result = adapcc.alltoall(spec.tensor_bytes, options);
      const Seconds fastest = t0 + iter.compute_min;
      const Seconds slowest = t0 + iter.compute_max;
      iter.total_comm = result.finished - fastest;
      iter.comm_time = result.finished - slowest;
      iter.wait_time = slowest - fastest;
    } else {
      // Gradients are produced progressively during the backward pass
      // (roughly the second half of the iteration), so a late worker's
      // chunks can join the ongoing phase-1 aggregation (Sec. IV-C).
      std::map<int, Seconds> fill_start;
      for (const auto& [rank, ready] : ready_at) {
        fill_start[rank] = t0 + 0.5 * (ready - t0);
      }
      std::map<int, Seconds> dead_at;
      if (config_.crash_schedule) dead_at = config_.crash_schedule(iteration, t0);
      const auto result =
          adapcc.allreduce_adaptive(spec.tensor_bytes, ready_at, fill_start, dead_at);
      iter.wait_time = result.wait_time;
      iter.comm_time = result.comm_time;
      iter.total_comm = result.total_time;
      iter.partial = result.partial;
      iter.relays = result.relays;
      iter.faulty = result.faulty;
      for (const int relay : result.relays) ++stats.relay_count[relay];
      if (!result.faulty.empty()) {
        // A mass failure can leave fewer than 2 survivors, which
        // exclude_workers rejects; that is a terminal condition for the
        // training run, not a programming error, so it must not escape the
        // loop as an exception.
        try {
          adapcc.exclude_workers(result.faulty);
        } catch (const std::invalid_argument&) {
          stats.halted = true;
          stats.halted_at_iteration = iteration;
          stats.halt_reason = "training halted: insufficient workers (" +
                              std::to_string(result.faulty.size()) + " faulty of " +
                              std::to_string(participants.size()) + ")";
          ADAPCC_LOG(kError, "trainer") << stats.halt_reason;
          if (auto* t = telemetry::get()) {
            t->metrics().counter("trainer.halts").add(1.0);
            t->trace().instant(t->trace().track("trainer"), "training-halted", sim.now());
          }
          iter.iteration_time = sim.now() - t0;
          stats.iterations.push_back(std::move(iter));
          break;
        }
        loader.redistribute(result.faulty);
        ADAPCC_LOG(kWarn, "trainer") << result.faulty.size()
                                     << " faulty worker(s) excluded at iteration " << iteration;
      }
    }
    iter.iteration_time = sim.now() - t0;
    trace_iteration(iteration, t0, sim.now(), iter);
    stats.iterations.push_back(std::move(iter));

    if (config_.profile_period > 0 && (iteration + 1) % config_.profile_period == 0) {
      adapcc.reprofile(spec.tensor_bytes);
    }
  }
  stats.makespan = sim.now() - start;
  return stats;
}

TrainingStats Trainer::train_with_backend(baselines::Backend& backend) {
  sim::Simulator& sim = cluster_.simulator();
  TrainingStats stats;
  const Seconds start = sim.now();
  std::vector<int> participants;
  for (int r = 0; r < cluster_.world_size(); ++r) participants.push_back(r);
  relay::DataLoader loader(config_.batch_per_gpu * static_cast<int>(participants.size()),
                           participants);
  const ModelSpec& spec = compute_.spec();

  for (int iteration = 0; iteration < config_.iterations; ++iteration) {
    if (config_.on_iteration) config_.on_iteration(iteration);
    IterationStats iter;
    const Seconds t0 = sim.now();
    const auto ready_at =
        sample_ready_times(participants, loader, t0, &iter.compute_min, &iter.compute_max);

    // NCCL-style lockstep semantics (Sec. II-C): only ranks inside the
    // pre-built communicator participate, and the ring/tree kernels stall
    // until every rank has launched — the collective effectively starts at
    // the slowest worker's ready time and then takes its full duration.
    const Seconds fastest = t0 + iter.compute_min;
    const Seconds slowest = t0 + iter.compute_max;
    collective::CollectiveOptions options;
    for (const int rank : participants) options.ready_at[rank] = slowest;
    const auto result = backend.run(spec.primitive, participants, spec.tensor_bytes, options);
    iter.total_comm = result.finished - fastest;
    iter.comm_time = result.finished - slowest;
    iter.wait_time = slowest - fastest;  // everyone waits for the straggler
    iter.iteration_time = sim.now() - t0;
    trace_iteration(iteration, t0, sim.now(), iter);
    stats.iterations.push_back(std::move(iter));
  }
  stats.makespan = sim.now() - start;
  return stats;
}

}  // namespace adapcc::training
