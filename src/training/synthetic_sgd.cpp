#include "training/synthetic_sgd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace adapcc::training {

namespace {

struct Dataset {
  int features;
  int classes;
  std::vector<float> x;   // row-major [samples][features]
  std::vector<int> y;
  int samples() const { return static_cast<int>(y.size()); }
};

std::vector<float> make_centers(int features, int classes, util::Rng& rng) {
  std::vector<float> centers(static_cast<std::size_t>(classes * features));
  for (auto& c : centers) c = static_cast<float>(rng.normal(0.0, 0.30));
  return centers;
}

Dataset make_dataset(int samples, int features, int classes,
                     const std::vector<float>& centers, util::Rng& rng) {
  // Gaussian class clusters: separable but noisy.
  Dataset data;
  data.features = features;
  data.classes = classes;
  data.x.resize(static_cast<std::size_t>(samples) * features);
  data.y.resize(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const int label = static_cast<int>(rng.uniform_int(0, classes - 1));
    data.y[static_cast<std::size_t>(i)] = label;
    for (int f = 0; f < features; ++f) {
      data.x[static_cast<std::size_t>(i) * features + f] =
          centers[static_cast<std::size_t>(label * features + f)] +
          static_cast<float>(rng.normal(0.0, 1.0));
    }
  }
  return data;
}

/// Class-skewed shards: worker w draws `shard_skew` of its samples from its
/// home classes (w mod classes and neighbours) and the rest uniformly.
std::vector<std::vector<int>> shard_indices(const Dataset& data, int workers, double skew,
                                            util::Rng& rng) {
  std::vector<std::vector<int>> by_class(static_cast<std::size_t>(data.classes));
  for (int i = 0; i < data.samples(); ++i) {
    by_class[static_cast<std::size_t>(data.y[static_cast<std::size_t>(i)])].push_back(i);
  }
  std::vector<std::vector<int>> shards(static_cast<std::size_t>(workers));
  const int per_worker = data.samples() / workers;
  std::vector<std::size_t> class_cursor(static_cast<std::size_t>(data.classes), 0);
  for (int w = 0; w < workers; ++w) {
    auto& shard = shards[static_cast<std::size_t>(w)];
    for (int i = 0; i < per_worker; ++i) {
      const bool home = rng.bernoulli(skew);
      const int cls = home ? w % data.classes
                           : static_cast<int>(rng.uniform_int(0, data.classes - 1));
      auto& cursor = class_cursor[static_cast<std::size_t>(cls)];
      const auto& pool = by_class[static_cast<std::size_t>(cls)];
      if (pool.empty()) continue;
      shard.push_back(pool[cursor % pool.size()]);
      ++cursor;
    }
  }
  return shards;
}

class LogisticModel {
 public:
  LogisticModel(int features, int classes)
      : features_(features), classes_(classes),
        w_(static_cast<std::size_t>(classes) * (features + 1), 0.0f) {}

  /// Gradient of the cross-entropy over `batch` sample indices; float32
  /// accumulation so aggregation-order effects are realistic.
  std::vector<float> gradient(const Dataset& data, const std::vector<int>& batch) const {
    std::vector<float> grad(w_.size(), 0.0f);
    std::vector<float> logits(static_cast<std::size_t>(classes_));
    for (const int index : batch) {
      const float* x = &data.x[static_cast<std::size_t>(index) * features_];
      forward(x, logits.data());
      const int label = data.y[static_cast<std::size_t>(index)];
      for (int c = 0; c < classes_; ++c) {
        const float err =
            logits[static_cast<std::size_t>(c)] - (c == label ? 1.0f : 0.0f);
        float* g = &grad[static_cast<std::size_t>(c) * (features_ + 1)];
        for (int f = 0; f < features_; ++f) g[f] += err * x[f];
        g[features_] += err;  // bias
      }
    }
    const float inv = 1.0f / static_cast<float>(batch.size());
    for (auto& g : grad) g *= inv;
    return grad;
  }

  void apply(const std::vector<float>& grad, float lr) {
    for (std::size_t i = 0; i < w_.size(); ++i) w_[i] -= lr * grad[i];
  }

  double accuracy(const Dataset& data) const {
    std::vector<float> logits(static_cast<std::size_t>(classes_));
    int correct = 0;
    for (int i = 0; i < data.samples(); ++i) {
      forward(&data.x[static_cast<std::size_t>(i) * features_], logits.data());
      const auto best = std::max_element(logits.begin(), logits.end());
      if (static_cast<int>(best - logits.begin()) == data.y[static_cast<std::size_t>(i)]) {
        ++correct;
      }
    }
    return static_cast<double>(correct) / data.samples();
  }

  std::size_t size() const { return w_.size(); }

 private:
  void forward(const float* x, float* probs) const {
    float max_logit = -1e30f;
    for (int c = 0; c < classes_; ++c) {
      const float* wc = &w_[static_cast<std::size_t>(c) * (features_ + 1)];
      float z = wc[features_];
      for (int f = 0; f < features_; ++f) z += wc[f] * x[f];
      probs[c] = z;
      max_logit = std::max(max_logit, z);
    }
    float sum = 0.0f;
    for (int c = 0; c < classes_; ++c) {
      probs[c] = std::exp(probs[c] - max_logit);
      sum += probs[c];
    }
    for (int c = 0; c < classes_; ++c) probs[c] /= sum;
  }

  int features_;
  int classes_;
  std::vector<float> w_;
};

}  // namespace

std::string to_string(AggregationMode mode) {
  switch (mode) {
    case AggregationMode::kFullSync: return "nccl-full-sync";
    case AggregationMode::kPhase1Phase2: return "adapcc-phase1+2";
    case AggregationMode::kRelayAsync: return "relay-async";
    case AggregationMode::kShuffledOrder: return "adapcc-nccl-graph";
  }
  return "?";
}

AccuracyCurve train_synthetic_sgd(AggregationMode mode, const SgdConfig& config) {
  if (config.workers < 2) throw std::invalid_argument("synthetic sgd: < 2 workers");
  util::Rng data_rng(config.seed);
  const auto centers = make_centers(config.features, config.classes, data_rng);
  const Dataset train = make_dataset(config.train_samples, config.features, config.classes,
                                     centers, data_rng);
  const Dataset test = make_dataset(config.test_samples, config.features, config.classes,
                                    centers, data_rng);
  const auto shards = shard_indices(train, config.workers, config.shard_skew, data_rng);

  // Separate stream for straggler/batch draws so every mode sees the same
  // sequence of late workers and minibatches.
  util::Rng run_rng(config.seed ^ 0xabcdef12345ull);
  LogisticModel model(config.features, config.classes);
  AccuracyCurve curve;

  for (int iteration = 0; iteration < config.iterations; ++iteration) {
    // Per-worker gradients.
    std::vector<std::vector<float>> gradients;
    std::vector<bool> late(static_cast<std::size_t>(config.workers));
    int late_count = 0;
    for (int w = 0; w < config.workers; ++w) {
      const auto& shard = shards[static_cast<std::size_t>(w)];
      std::vector<int> batch;
      for (int b = 0; b < config.local_batch; ++b) {
        batch.push_back(
            shard[static_cast<std::size_t>(run_rng.uniform_int(0, static_cast<std::int64_t>(shard.size()) - 1))]);
      }
      gradients.push_back(model.gradient(train, batch));
      const bool chronic =
          w < static_cast<int>(config.chronic_fraction * config.workers + 0.5);
      const double p =
          chronic ? config.straggler_probability : config.background_probability;
      late[static_cast<std::size_t>(w)] = run_rng.bernoulli(p);
      if (late[static_cast<std::size_t>(w)]) ++late_count;
    }
    if (late_count == config.workers) {
      late.assign(static_cast<std::size_t>(config.workers), false);  // someone must be ready
      late_count = 0;
    }

    // Aggregate according to the mode.
    std::vector<float> aggregate(model.size(), 0.0f);
    int contributors = 0;
    const auto add = [&](int w) {
      const auto& g = gradients[static_cast<std::size_t>(w)];
      for (std::size_t i = 0; i < aggregate.size(); ++i) aggregate[i] += g[i];
      ++contributors;
    };
    switch (mode) {
      case AggregationMode::kFullSync:
        for (int w = 0; w < config.workers; ++w) add(w);
        break;
      case AggregationMode::kPhase1Phase2:
        // Phase 1: ready workers in rank order; phase 2: late ones after.
        for (int w = 0; w < config.workers; ++w) {
          if (!late[static_cast<std::size_t>(w)]) add(w);
        }
        for (int w = 0; w < config.workers; ++w) {
          if (late[static_cast<std::size_t>(w)]) add(w);
        }
        break;
      case AggregationMode::kRelayAsync:
        for (int w = 0; w < config.workers; ++w) {
          if (!late[static_cast<std::size_t>(w)]) add(w);
        }
        break;
      case AggregationMode::kShuffledOrder: {
        std::vector<int> order(static_cast<std::size_t>(config.workers));
        std::iota(order.begin(), order.end(), 0);
        std::shuffle(order.begin(), order.end(), run_rng.engine());
        for (const int w : order) add(w);
        break;
      }
    }
    const float inv = 1.0f / static_cast<float>(contributors);
    for (auto& g : aggregate) g *= inv;
    model.apply(aggregate, config.learning_rate);

    if (iteration % config.eval_every == 0 || iteration + 1 == config.iterations) {
      curve.iteration.push_back(iteration);
      curve.accuracy.push_back(model.accuracy(test));
    }
  }
  return curve;
}

}  // namespace adapcc::training
