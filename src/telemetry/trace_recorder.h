// TraceRecorder: structured tracing against *simulated* time.
//
// Records spans (begin/end or pre-timed complete events), instant events and
// counter samples into a bounded ring buffer. Every event lives on a named
// track (one per rank, link, stream, subsystem...) which the Chrome-trace
// exporter maps onto a "thread" so Perfetto renders each track as its own
// lane. All timestamps are explicit `Seconds` of simulated time supplied by
// the caller — the recorder has no clock of its own, which keeps it usable
// from pure decision code (e.g. the relay coordinator) that reasons about
// times other than "now".
//
// The ring buffer holds the *most recent* `capacity` events: long training
// runs keep the interesting tail instead of aborting or growing without
// bound. `dropped()` reports how many events were evicted.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "telemetry/fwd.h"
#include "util/units.h"

namespace adapcc::telemetry {

/// Chrome-trace phase of a recorded event.
enum class EventKind {
  kComplete,  ///< "X": a span with ts + dur
  kInstant,   ///< "i": a point-in-time marker
  kCounter,   ///< "C": a sampled numeric series
};

struct TraceEvent {
  EventKind kind = EventKind::kInstant;
  TrackId track = 0;
  Seconds ts = 0.0;
  Seconds dur = 0.0;    ///< kComplete only
  double value = 0.0;   ///< kCounter only
  std::string name;
  /// Preformatted JSON object *body* (e.g. `"bytes":1024,"chunk":3`) or
  /// empty; the exporter wraps it in `{...}` under "args".
  std::string args;
};

/// Formats one numeric / string key-value pair for TraceEvent::args.
std::string kv(std::string_view key, double value);
std::string kv(std::string_view key, std::string_view value);

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity);
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Interns a track, returning its stable id. Repeated calls with the same
  /// name return the same id.
  TrackId track(std::string_view name);

  /// Opens a span on `track` starting at `ts`; end it with end_span(). Spans
  /// may nest and may close out of order (chunk pipelines complete spans
  /// opened earlier than still-running ones).
  SpanId begin_span(TrackId track, std::string_view name, Seconds ts, std::string args = {});

  /// Closes an open span, emitting a complete event. Unknown / already
  /// closed ids are ignored (a span may be evicted by reset()).
  void end_span(SpanId span, Seconds ts);

  /// Records a complete span whose begin and duration are already known.
  void complete(TrackId track, std::string_view name, Seconds ts, Seconds dur,
                std::string args = {});

  /// Records a point event.
  void instant(TrackId track, std::string_view name, Seconds ts, std::string args = {});

  /// Records a counter sample (rendered as a stacked series in Perfetto).
  void counter(TrackId track, std::string_view name, Seconds ts, double value);

  const std::vector<std::string>& tracks() const noexcept { return track_names_; }

  /// Buffered events, oldest first (eviction already applied).
  std::vector<TraceEvent> events() const;

  std::size_t size() const noexcept { return buffer_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::size_t open_spans() const noexcept { return open_.size(); }

  /// Drops all buffered events and open spans; keeps interned tracks.
  void clear();

 private:
  struct OpenSpan {
    TrackId track = 0;
    Seconds ts = 0.0;
    std::string name;
    std::string args;
  };

  void push(TraceEvent event);

  std::size_t capacity_;
  std::vector<TraceEvent> buffer_;  ///< ring once size reaches capacity_
  std::size_t next_ = 0;            ///< overwrite position when full
  std::uint64_t dropped_ = 0;
  std::vector<std::string> track_names_;
  std::unordered_map<std::string, TrackId> track_ids_;
  std::unordered_map<SpanId, OpenSpan> open_;
  SpanId next_span_ = 1;
};

}  // namespace adapcc::telemetry
