// Exporters: Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing) and flat CSV / JSON dumps of the metrics registry.
#pragma once

#include <ostream>
#include <string>

#include "telemetry/metrics.h"
#include "telemetry/trace_recorder.h"
#include "telemetry/telemetry.h"

namespace adapcc::telemetry {

/// Writes the recorder's events as a Chrome trace ("traceEvents" JSON
/// object). Tracks become threads of one process, named via "M" metadata
/// events; simulated seconds map to microseconds (the format's unit).
/// Events are emitted in non-decreasing timestamp order.
void write_chrome_trace(const TraceRecorder& recorder, std::ostream& out);

/// Long-form CSV: one row per metric per snapshot, plus a trailing "final"
/// snapshot of the current values. Columns: snapshot,ts_seconds,name,kind,value.
void write_metrics_csv(const MetricsRegistry& metrics, std::ostream& out);

/// JSON object: {"snapshots":[{label, ts, metrics:{name:value,...}},...],
/// "final":{name:value,...}}.
void write_metrics_json(const MetricsRegistry& metrics, std::ostream& out);

/// File-writing conveniences; return false (and log) when the file cannot
/// be opened. Used by the runtime's export-on-shutdown hook.
bool export_chrome_trace(const Telemetry& telemetry, const std::string& path);
bool export_metrics_csv(const Telemetry& telemetry, const std::string& path);
bool export_metrics_json(const Telemetry& telemetry, const std::string& path);

}  // namespace adapcc::telemetry
