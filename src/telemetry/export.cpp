#include "telemetry/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>

#include "util/logging.h"

namespace adapcc::telemetry {

namespace {

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", value);
  }
  return buf;
}

/// Simulated seconds -> trace microseconds.
std::string format_ts(Seconds ts) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ts * 1e6);
  return buf;
}

}  // namespace

void write_chrome_trace(const TraceRecorder& recorder, std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit_sep = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  // Track metadata: one process ("adapcc sim"), one named thread per track.
  // sort_index keeps the lanes in interning (creation) order.
  emit_sep();
  out << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"adapcc sim\"}}";
  const auto& tracks = recorder.tracks();
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    emit_sep();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << i + 1
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << escape_json(tracks[i])
        << "\"}}";
    emit_sep();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << i + 1
        << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << i + 1 << "}}";
  }
  // Events in non-decreasing timestamp order (the ring buffer holds them in
  // completion order, which interleaves spans of different lengths).
  std::vector<TraceEvent> events = recorder.events();
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts < b.ts; });
  for (const TraceEvent& event : events) {
    emit_sep();
    out << "{\"pid\":1,\"tid\":" << event.track + 1 << ",\"ts\":" << format_ts(event.ts)
        << ",\"name\":\"" << escape_json(event.name) << "\"";
    switch (event.kind) {
      case EventKind::kComplete:
        out << ",\"ph\":\"X\",\"dur\":" << format_ts(event.dur);
        if (!event.args.empty()) out << ",\"args\":{" << event.args << "}";
        break;
      case EventKind::kInstant:
        out << ",\"ph\":\"i\",\"s\":\"t\"";
        if (!event.args.empty()) out << ",\"args\":{" << event.args << "}";
        break;
      case EventKind::kCounter:
        out << ",\"ph\":\"C\",\"args\":{\"value\":" << format_number(event.value) << "}";
        break;
    }
    out << "}";
  }
  out << "\n]}\n";
}

void write_metrics_csv(const MetricsRegistry& metrics, std::ostream& out) {
  out << "snapshot,ts_seconds,name,kind,value\n";
  const auto emit_rows = [&out](const std::string& label, Seconds ts,
                                const std::vector<MetricRow>& rows) {
    for (const MetricRow& row : rows) {
      out << '"' << label << "\"," << format_number(ts) << ',' << row.name << ',' << row.kind
          << ',' << format_number(row.value) << '\n';
    }
  };
  for (const MetricsSnapshot& snap : metrics.snapshots()) {
    emit_rows(snap.label, snap.ts, snap.rows);
  }
  emit_rows("final", 0.0, metrics.current_rows());
}

void write_metrics_json(const MetricsRegistry& metrics, std::ostream& out) {
  const auto emit_rows = [&out](const std::vector<MetricRow>& rows) {
    out << '{';
    bool first = true;
    for (const MetricRow& row : rows) {
      if (!first) out << ',';
      first = false;
      out << '"' << escape_json(row.name) << "\":" << format_number(row.value);
    }
    out << '}';
  };
  out << "{\"snapshots\":[";
  bool first = true;
  for (const MetricsSnapshot& snap : metrics.snapshots()) {
    if (!first) out << ',';
    first = false;
    out << "\n{\"label\":\"" << escape_json(snap.label)
        << "\",\"ts_seconds\":" << format_number(snap.ts) << ",\"metrics\":";
    emit_rows(snap.rows);
    out << '}';
  }
  out << "\n],\"final\":";
  emit_rows(metrics.current_rows());
  out << "}\n";
}

namespace {
bool export_to(const std::string& path, const char* what,
               const std::function<void(std::ostream&)>& writer) {
  std::ofstream out(path);
  if (!out) {
    ADAPCC_LOG(kError, "telemetry") << "cannot open " << path << " for " << what << " export";
    return false;
  }
  writer(out);
  ADAPCC_LOG(kInfo, "telemetry") << what << " exported to " << path;
  return true;
}
}  // namespace

bool export_chrome_trace(const Telemetry& telemetry, const std::string& path) {
  return export_to(path, "chrome-trace",
                   [&](std::ostream& out) { write_chrome_trace(telemetry.trace(), out); });
}

bool export_metrics_csv(const Telemetry& telemetry, const std::string& path) {
  return export_to(path, "metrics-csv",
                   [&](std::ostream& out) { write_metrics_csv(telemetry.metrics(), out); });
}

bool export_metrics_json(const Telemetry& telemetry, const std::string& path) {
  return export_to(path, "metrics-json",
                   [&](std::ostream& out) { write_metrics_json(telemetry.metrics(), out); });
}

}  // namespace adapcc::telemetry
