// Forward declarations for the telemetry subsystem, so hot-path headers
// (e.g. sim/flow_link.h) can hold cached telemetry handles without pulling
// in the full telemetry dependency.
#pragma once

#include <cstdint>

namespace adapcc::telemetry {

class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
class TraceRecorder;
class Telemetry;

/// Index into the recorder's track table ("pid/tid" in Chrome-trace terms).
using TrackId = std::uint32_t;
/// Handle of an open (begun, not yet ended) span. 0 is never issued.
using SpanId = std::uint64_t;

/// Sentinel for lazily resolved track caches.
inline constexpr TrackId kInvalidTrack = 0xffffffffu;

}  // namespace adapcc::telemetry
