// Telemetry subsystem entry point.
//
// One process-wide Telemetry instance (a TraceRecorder + a MetricsRegistry)
// gates every instrumentation site in the library. Disabled by default: the
// hot-path check is a single pointer load (`telemetry::get() == nullptr`),
// so simulation throughput is unaffected until a run opts in:
//
//   telemetry::enable({.trace_capacity = 1 << 18});
//   ... run training ...
//   std::ofstream out("trace.json");
//   telemetry::write_chrome_trace(telemetry::get()->trace(), out);
//
// or, through the runtime: Adapcc::enable_telemetry({...}) which also
// exports on shutdown. Instrumented objects that cache TrackIds / metric
// pointers key their caches on epoch(), which advances on every enable() /
// disable(), so stale handles from a previous session are never reused.
//
// The simulation is single-threaded (one Simulator drives everything), so
// the subsystem is deliberately lock-free and unsynchronized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace_recorder.h"
#include "util/task_pool.h"

namespace adapcc::telemetry {

struct TelemetryConfig {
  /// Ring-buffer capacity of the trace recorder (most recent events kept).
  std::size_t trace_capacity = 1 << 17;
  /// Per-histogram reservoir size for percentile estimation.
  std::size_t histogram_reservoir = 2048;
  /// Also record *host*-side wall-clock spans (solver task-pool work) onto
  /// per-worker `solver/worker-K` tracks, tid-tagged in the Chrome trace.
  /// Off by default: host spans carry real wall-clock durations, so traces
  /// that must byte-compare across runs (tools/determinism_check.py) leave
  /// this disabled. See DESIGN.md §10.
  bool host_spans = false;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config)
      : config_(config), trace_(config.trace_capacity), metrics_(config.histogram_reservoir) {}
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  TraceRecorder& trace() noexcept { return trace_; }
  const TraceRecorder& trace() const noexcept { return trace_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }
  const TelemetryConfig& config() const noexcept { return config_; }

 private:
  TelemetryConfig config_;
  TraceRecorder trace_;
  MetricsRegistry metrics_;
};

namespace detail {
extern Telemetry* g_instance;  // owned by telemetry.cpp
}

/// The active instance, or nullptr when telemetry is disabled. This is THE
/// hot-path gate: `if (auto* t = telemetry::get()) { ... }`.
inline Telemetry* get() noexcept { return detail::g_instance; }
inline bool enabled() noexcept { return detail::g_instance != nullptr; }

/// (Re)creates the process-wide instance, discarding any previous data, and
/// advances epoch(). Returns the fresh instance.
Telemetry& enable(TelemetryConfig config = {});

/// Destroys the instance (collection stops, data is freed) and advances
/// epoch(). No-op when already disabled.
void disable() noexcept;

/// Monotonic counter bumped by enable()/disable(). Instrumented objects
/// cache TrackIds / metric pointers together with the epoch they were
/// resolved under and re-resolve when it changes.
std::uint64_t epoch() noexcept;

/// Host-span gate for solver task pools: true when telemetry is enabled
/// with `host_spans = true`. Callers check this before asking a TaskPool to
/// record TaskSpans.
bool host_spans_enabled() noexcept;

/// Emits recorded pool TaskSpans as tid-tagged Chrome-trace spans named
/// `label`, one per task, onto per-lane `solver/worker-K` tracks. Must be
/// called from the thread driving the recorder (after the batch joined —
/// the recorder itself is unsynchronized). No-op when telemetry is off.
void flush_solver_spans(const std::vector<util::TaskSpan>& spans, const char* label);

}  // namespace adapcc::telemetry
