#include "telemetry/telemetry.h"

namespace adapcc::telemetry {

namespace detail {
Telemetry* g_instance = nullptr;
}

namespace {
std::unique_ptr<Telemetry> g_owner;
std::uint64_t g_epoch = 1;
}  // namespace

Telemetry& enable(TelemetryConfig config) {
  g_owner = std::make_unique<Telemetry>(config);
  detail::g_instance = g_owner.get();
  ++g_epoch;
  return *g_owner;
}

void disable() noexcept {
  if (g_owner == nullptr) return;
  detail::g_instance = nullptr;
  g_owner.reset();
  ++g_epoch;
}

std::uint64_t epoch() noexcept { return g_epoch; }

}  // namespace adapcc::telemetry
