#include "telemetry/telemetry.h"

namespace adapcc::telemetry {

namespace detail {
Telemetry* g_instance = nullptr;
}

namespace {
std::unique_ptr<Telemetry> g_owner;
std::uint64_t g_epoch = 1;
}  // namespace

Telemetry& enable(TelemetryConfig config) {
  g_owner = std::make_unique<Telemetry>(config);
  detail::g_instance = g_owner.get();
  ++g_epoch;
  return *g_owner;
}

void disable() noexcept {
  if (g_owner == nullptr) return;
  detail::g_instance = nullptr;
  g_owner.reset();
  ++g_epoch;
}

std::uint64_t epoch() noexcept { return g_epoch; }

bool host_spans_enabled() noexcept {
  const Telemetry* t = get();
  return t != nullptr && t->config().host_spans;
}

void flush_solver_spans(const std::vector<util::TaskSpan>& spans, const char* label) {
  Telemetry* t = get();
  if (t == nullptr || spans.empty()) return;
  for (const util::TaskSpan& span : spans) {
    const TrackId track = t->trace().track("solver/worker-" + std::to_string(span.lane));
    t->trace().complete(track, label, span.start_seconds, span.duration_seconds,
                        kv("task", static_cast<double>(span.task)) + "," +
                            kv("tid", static_cast<double>(span.lane)));
  }
}

}  // namespace adapcc::telemetry
