#include "telemetry/trace_recorder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace adapcc::telemetry {

namespace {

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  // Integral values print without a trailing ".000000" so byte counts and
  // ranks stay readable in the trace viewer.
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace

std::string kv(std::string_view key, double value) {
  std::string out;
  out.reserve(key.size() + 24);
  out += '"';
  out += key;
  out += "\":";
  out += json_number(value);
  return out;
}

std::string kv(std::string_view key, std::string_view value) {
  std::string out;
  out.reserve(key.size() + value.size() + 6);
  out += '"';
  out += key;
  out += "\":\"";
  // Minimal escaping; full escaping happens for names in the exporter. Args
  // values are library-generated identifiers (node names, primitives).
  for (const char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {
  buffer_.reserve(std::min<std::size_t>(capacity_, 4096));
}

TrackId TraceRecorder::track(std::string_view name) {
  const auto it = track_ids_.find(std::string(name));
  if (it != track_ids_.end()) return it->second;
  const TrackId id = static_cast<TrackId>(track_names_.size());
  track_names_.emplace_back(name);
  track_ids_.emplace(track_names_.back(), id);
  return id;
}

SpanId TraceRecorder::begin_span(TrackId track, std::string_view name, Seconds ts,
                                 std::string args) {
  const SpanId id = next_span_++;
  open_.emplace(id, OpenSpan{track, ts, std::string(name), std::move(args)});
  return id;
}

void TraceRecorder::end_span(SpanId span, Seconds ts) {
  const auto it = open_.find(span);
  if (it == open_.end()) return;
  OpenSpan open = std::move(it->second);
  open_.erase(it);
  push(TraceEvent{EventKind::kComplete, open.track, open.ts, std::max(0.0, ts - open.ts), 0.0,
                  std::move(open.name), std::move(open.args)});
}

void TraceRecorder::complete(TrackId track, std::string_view name, Seconds ts, Seconds dur,
                             std::string args) {
  push(TraceEvent{EventKind::kComplete, track, ts, std::max(0.0, dur), 0.0, std::string(name),
                  std::move(args)});
}

void TraceRecorder::instant(TrackId track, std::string_view name, Seconds ts, std::string args) {
  push(TraceEvent{EventKind::kInstant, track, ts, 0.0, 0.0, std::string(name), std::move(args)});
}

void TraceRecorder::counter(TrackId track, std::string_view name, Seconds ts, double value) {
  push(TraceEvent{EventKind::kCounter, track, ts, 0.0, value, std::string(name), {}});
}

void TraceRecorder::push(TraceEvent event) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(std::move(event));
    return;
  }
  buffer_[next_] = std::move(event);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  out.reserve(buffer_.size());
  // next_ is the oldest element once the ring has wrapped.
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    out.push_back(buffer_[(next_ + i) % buffer_.size()]);
  }
  return out;
}

void TraceRecorder::clear() {
  buffer_.clear();
  next_ = 0;
  dropped_ = 0;
  open_.clear();
}

}  // namespace adapcc::telemetry
