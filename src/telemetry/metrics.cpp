#include "telemetry/metrics.h"

#include <algorithm>

namespace adapcc::telemetry {

Histogram::Histogram(std::size_t reservoir_capacity)
    : reservoir_capacity_(std::max<std::size_t>(reservoir_capacity, 1)) {
  reservoir_.reserve(std::min<std::size_t>(reservoir_capacity_, 1024));
}

void Histogram::observe(double x) {
  stats_.add(x);
  if (reservoir_.size() < reservoir_capacity_) {
    reservoir_.push_back(x);
    return;
  }
  // Algorithm R: keep sample i with probability capacity / i.
  lcg_ = lcg_ * 6364136223846793005ull + 1442695040888963407ull;
  const std::uint64_t slot = (lcg_ >> 17) % stats_.count();
  if (slot < reservoir_capacity_) reservoir_[slot] = x;
}

double Histogram::percentile(double q) const { return util::percentile(reservoir_, q); }

MetricsRegistry::MetricsRegistry(std::size_t histogram_reservoir)
    : histogram_reservoir_(histogram_reservoir) {}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram(histogram_reservoir_)).first->second;
}

std::vector<MetricRow> MetricsRegistry::current_rows() const {
  std::vector<MetricRow> rows;
  rows.reserve(counters_.size() + gauges_.size() + histograms_.size() * 7);
  for (const auto& [name, metric] : counters_) {
    rows.push_back({name, "counter", metric.value()});
  }
  for (const auto& [name, metric] : gauges_) {
    rows.push_back({name, "gauge", metric.value()});
  }
  for (const auto& [name, metric] : histograms_) {
    rows.push_back({name + ".count", "histogram", static_cast<double>(metric.count())});
    if (metric.count() == 0) continue;
    rows.push_back({name + ".mean", "histogram", metric.mean()});
    rows.push_back({name + ".min", "histogram", metric.min()});
    rows.push_back({name + ".max", "histogram", metric.max()});
    rows.push_back({name + ".p50", "histogram", metric.percentile(0.50)});
    rows.push_back({name + ".p95", "histogram", metric.percentile(0.95)});
    rows.push_back({name + ".p99", "histogram", metric.percentile(0.99)});
  }
  return rows;
}

void MetricsRegistry::snapshot(std::string label, Seconds ts) {
  snapshots_.push_back(MetricsSnapshot{std::move(label), ts, current_rows()});
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  snapshots_.clear();
}

}  // namespace adapcc::telemetry
