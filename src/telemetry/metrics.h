// MetricsRegistry: named counters, gauges and histograms with per-iteration
// snapshots.
//
// Counters accumulate monotonically (bytes moved, chunks sent), gauges hold
// the latest value (link busy time, utilization), histograms keep running
// moments (util::RunningStats) plus a bounded deterministic reservoir so
// percentiles stay cheap over arbitrarily long runs (util::percentile).
// snapshot() copies the current value of every metric under a label — the
// trainer calls it once per iteration, giving the per-iteration time series
// the CSV/JSON exporters flatten.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/fwd.h"
#include "util/stats.h"
#include "util/units.h"

namespace adapcc::telemetry {

class Counter {
 public:
  void add(double delta = 1.0) noexcept { value_ += delta; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Running moments + a bounded uniform reservoir (Vitter's algorithm R with
/// a fixed-seed LCG, so runs stay deterministic).
class Histogram {
 public:
  explicit Histogram(std::size_t reservoir_capacity);

  void observe(double x);

  std::size_t count() const noexcept { return stats_.count(); }
  double mean() const noexcept { return stats_.mean(); }
  double stddev() const noexcept { return stats_.stddev(); }
  double min() const noexcept { return stats_.min(); }
  double max() const noexcept { return stats_.max(); }
  /// Percentile over the reservoir; `q` in [0, 1]. Throws when empty.
  double percentile(double q) const;
  const std::vector<double>& reservoir() const noexcept { return reservoir_; }

 private:
  util::RunningStats stats_;
  std::vector<double> reservoir_;
  std::size_t reservoir_capacity_;
  std::uint64_t lcg_ = 0x9e3779b97f4a7c15ull;
};

struct MetricRow {
  std::string name;  ///< metric name, histograms expanded as name.p50 etc.
  std::string kind;  ///< "counter" | "gauge" | "histogram"
  double value = 0.0;
};

struct MetricsSnapshot {
  std::string label;  ///< e.g. "iter 17"
  Seconds ts = 0.0;   ///< simulated time of the snapshot
  std::vector<MetricRow> rows;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t histogram_reservoir);
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates a metric. References stay valid for the registry's
  /// lifetime (std::map node stability), so hot paths can cache them.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  const std::map<std::string, Counter, std::less<>>& counters() const noexcept {
    return counters_;
  }
  const std::map<std::string, Gauge, std::less<>>& gauges() const noexcept { return gauges_; }
  const std::map<std::string, Histogram, std::less<>>& histograms() const noexcept {
    return histograms_;
  }

  /// Rows describing every metric's current value (histograms expanded into
  /// count/mean/min/max/p50/p95/p99).
  std::vector<MetricRow> current_rows() const;

  /// Labels and stores the current value of every metric.
  void snapshot(std::string label, Seconds ts);
  const std::vector<MetricsSnapshot>& snapshots() const noexcept { return snapshots_; }

  void clear();

 private:
  std::size_t histogram_reservoir_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::vector<MetricsSnapshot> snapshots_;
};

}  // namespace adapcc::telemetry
