#include "relay/rpc.h"

#include <vector>

#include "sim/flow_link.h"

namespace adapcc::relay {

namespace {

/// One-way control message along the cluster path; returns on delivery.
void send_control(topology::Cluster& cluster, int from_rank, int to_rank, Bytes bytes,
                  std::function<void()> on_done) {
  using topology::NodeId;
  const int from_inst = cluster.instance_of_rank(from_rank);
  const int to_inst = cluster.instance_of_rank(to_rank);
  std::vector<sim::FlowLink*> links;
  if (from_inst == to_inst) {
    // Same instance: loopback through shared memory; modelled as free.
    cluster.simulator().schedule_after(microseconds(15), std::move(on_done));
    return;
  }
  const auto segment = cluster.edge_path(NodeId::nic(from_inst), NodeId::nic(to_inst));
  links.insert(links.end(), segment.begin(), segment.end());
  // Store-and-forward of one small message through the NIC pair.
  struct Hop {
    static void advance(std::vector<sim::FlowLink*> path, std::size_t index, Bytes bytes,
                        std::function<void()> done) {
      if (index >= path.size()) {
        if (done) done();
        return;
      }
      sim::FlowLink* link = path[index];
      link->start_transfer(bytes, [path = std::move(path), index, bytes,
                                   done = std::move(done)]() mutable {
        advance(std::move(path), index + 1, bytes, std::move(done));
      });
    }
  };
  Hop::advance(std::move(links), 0, bytes, std::move(on_done));
}

}  // namespace

Seconds measure_rpc_latency(topology::Cluster& cluster, int rank, int coordinator_rank,
                            util::Rng& rng, const RpcConfig& config) {
  sim::Simulator& sim = cluster.simulator();
  const Seconds start = sim.now();
  bool done = false;
  // Request to the coordinator, then the relay-list response back.
  send_control(cluster, rank, coordinator_rank, config.message_bytes, [&] {
    send_control(cluster, coordinator_rank, rank, config.message_bytes, [&] { done = true; });
  });
  while (!done && sim.step()) {
  }
  Seconds host = 0.0;
  for (int endpoint = 0; endpoint < 2; ++endpoint) {
    host += rng.normal_at_least(config.host_overhead_mean, config.host_overhead_stddev,
                                microseconds(20));
  }
  return (sim.now() - start) + host;
}

}  // namespace adapcc::relay
