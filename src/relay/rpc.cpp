#include "relay/rpc.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/flow_link.h"
#include "telemetry/telemetry.h"

namespace adapcc::relay {

namespace {

/// One-way control message along the cluster path; returns on delivery.
void send_control(topology::Cluster& cluster, int from_rank, int to_rank, Bytes bytes,
                  std::function<void()> on_done) {
  using topology::NodeId;
  const int from_inst = cluster.instance_of_rank(from_rank);
  const int to_inst = cluster.instance_of_rank(to_rank);
  std::vector<sim::FlowLink*> links;
  if (from_inst == to_inst) {
    // Same instance: loopback through shared memory; modelled as free.
    cluster.simulator().schedule_after(microseconds(15), std::move(on_done));
    return;
  }
  const auto segment = cluster.edge_path(NodeId::nic(from_inst), NodeId::nic(to_inst));
  links.insert(links.end(), segment.begin(), segment.end());
  // Store-and-forward of one small message through the NIC pair.
  struct Hop {
    static void advance(std::vector<sim::FlowLink*> path, std::size_t index, Bytes bytes,
                        std::function<void()> done) {
      if (index >= path.size()) {
        if (done) done();
        return;
      }
      sim::FlowLink* link = path[index];
      link->start_transfer(bytes, [path = std::move(path), index, bytes,
                                   done = std::move(done)]() mutable {
        advance(std::move(path), index + 1, bytes, std::move(done));
      });
    }
  };
  Hop::advance(std::move(links), 0, bytes, std::move(on_done));
}

}  // namespace

Seconds measure_rpc_latency(topology::Cluster& cluster, int rank, int coordinator_rank,
                            util::Rng& rng, const RpcConfig& config) {
  sim::Simulator& sim = cluster.simulator();
  const Seconds start = sim.now();
  bool done = false;
  // Request to the coordinator, then the relay-list response back.
  send_control(cluster, rank, coordinator_rank, config.message_bytes, [&] {
    send_control(cluster, coordinator_rank, rank, config.message_bytes, [&] { done = true; });
  });
  while (!done && sim.step()) {
  }
  Seconds host = 0.0;
  for (int endpoint = 0; endpoint < 2; ++endpoint) {
    host += rng.normal_at_least(config.host_overhead_mean, config.host_overhead_stddev,
                                microseconds(20));
  }
  return (sim.now() - start) + host;
}

RpcExchangeResult rpc_with_retry(topology::Cluster& cluster, int rank, int coordinator_rank,
                                 util::Rng& rng, const RpcRetryConfig& config,
                                 RpcMessageFilter* filter) {
  sim::Simulator& sim = cluster.simulator();
  RpcExchangeResult result;
  const Seconds start = sim.now();
  auto* t = telemetry::get();
  for (int attempt = 1; attempt <= config.max_attempts; ++attempt) {
    result.attempts = attempt;
    // The round's state is shared with the in-flight message callbacks: a
    // straggler (request or response) that lands after the sender already
    // timed out must not touch a dead stack frame.
    struct Round {
      bool ok = false;
      int drops = 0;
    };
    auto round = std::make_shared<Round>();
    const Bytes message_bytes = config.rpc.message_bytes;
    if (filter != nullptr && filter->should_drop(rank, coordinator_rank, sim.now())) {
      ++round->drops;  // request lost before reaching the coordinator
    } else {
      send_control(cluster, rank, coordinator_rank, message_bytes,
                   [&cluster, &sim, rank, coordinator_rank, message_bytes, filter, round] {
                     if (filter != nullptr &&
                         filter->should_drop(coordinator_rank, rank, sim.now())) {
                       ++round->drops;  // response lost on the way back
                       return;
                     }
                     send_control(cluster, coordinator_rank, rank, message_bytes,
                                  [round] { round->ok = true; });
                   });
    }
    // Wait for the response or the retransmission timer, whichever first.
    bool timed_out = false;
    const sim::EventId timer =
        sim.schedule_after(config.ack_timeout, [&timed_out] { timed_out = true; });
    while (!round->ok && !timed_out && sim.step()) {
    }
    sim.cancel(timer);
    result.drops += round->drops;
    if (t != nullptr && round->drops > 0) {
      t->metrics().counter("rpc.messages_dropped").add(static_cast<double>(round->drops));
    }
    if (round->ok) {
      result.ok = true;
      break;
    }
    if (attempt == config.max_attempts) break;
    // Exponential backoff with jitter, on the simulated clock.
    double scale = 1.0;
    for (int k = 1; k < attempt; ++k) scale *= config.backoff_multiplier;
    const double jitter =
        rng.uniform(1.0 - config.jitter_fraction, 1.0 + config.jitter_fraction);
    const Seconds delay = std::max(config.backoff_base * scale * jitter, microseconds(1));
    bool backed_off = false;
    sim.schedule_after(delay, [&backed_off] { backed_off = true; });
    while (!backed_off && sim.step()) {
    }
    if (t != nullptr) t->metrics().counter("rpc.retries").add(1.0);
  }
  Seconds host = 0.0;
  if (result.ok) {
    for (int endpoint = 0; endpoint < 2; ++endpoint) {
      host += rng.normal_at_least(config.rpc.host_overhead_mean, config.rpc.host_overhead_stddev,
                                  microseconds(20));
    }
  } else if (t != nullptr) {
    t->metrics().counter("rpc.failures").add(1.0);
  }
  result.latency = (sim.now() - start) + host;
  return result;
}

}  // namespace adapcc::relay
