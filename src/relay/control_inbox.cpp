#include "relay/control_inbox.h"

namespace adapcc::relay {

std::uint64_t ControlInbox::post(int rank, ControlMessage::Kind kind, Seconds time) {
  std::uint64_t sequence = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return 0;
    sequence = next_sequence_++;
    pending_.push_back(ControlMessage{rank, kind, time, sequence});
  }
  cv_.notify_one();
  return sequence;
}

std::vector<ControlMessage> ControlInbox::drain() {
  std::vector<ControlMessage> taken;
  std::lock_guard<std::mutex> lock(mutex_);
  taken.swap(pending_);
  return taken;
}

std::size_t ControlInbox::fold_reports(std::map<int, Seconds>& ready_at,
                                       std::map<int, Seconds>& fill_start) {
  const std::vector<ControlMessage> messages = drain();
  for (const ControlMessage& message : messages) {
    switch (message.kind) {
      case ControlMessage::Kind::kReady:
        ready_at[message.rank] = message.time;
        break;
      case ControlMessage::Kind::kFillStart:
        fill_start[message.rank] = message.time;
        break;
      case ControlMessage::Kind::kFaultSuspect:
        break;  // folded by the fault detector, not the ready maps
    }
  }
  return messages.size();
}

bool ControlInbox::wait_for_messages() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return !pending_.empty() || closed_; });
  return !pending_.empty();
}

void ControlInbox::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool ControlInbox::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t ControlInbox::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

}  // namespace adapcc::relay
