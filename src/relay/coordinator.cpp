#include "relay/coordinator.h"

#include <algorithm>
#include <stdexcept>

#include "relay/ski_rental.h"
#include "synthesizer/cost_model.h"
#include "telemetry/telemetry.h"

namespace adapcc::relay {

namespace {

/// Traces a wait-vs-proceed decision: a "decide" span covering the waiting
/// window plus an instant carrying the ski-rental inputs, so a trace shows
/// exactly when the coordinator committed and what the buy estimate was.
void trace_decision(const RelayDecision& decision, Seconds request_time) {
  auto* t = telemetry::get();
  if (t == nullptr) return;
  auto& trace = t->trace();
  const telemetry::TrackId track = trace.track("coordinator");
  std::string args = telemetry::kv("waited", decision.waited) + "," +
                     telemetry::kv("buy_cost", decision.buy_cost_estimate) + "," +
                     telemetry::kv("ready", static_cast<double>(decision.phase1_active.size())) +
                     "," + telemetry::kv("relays", static_cast<double>(decision.relays.size()));
  trace.complete(track, "decide", request_time, decision.waited, args);
  trace.instant(track, decision.partial ? "proceed-partial" : "wait-through",
                decision.trigger_time, std::move(args));
  t->metrics().counter(decision.partial ? "coordinator.partial_decisions"
                                        : "coordinator.full_decisions")
      .add(1.0);
  t->metrics().histogram("coordinator.wait_seconds").observe(decision.waited);
}

}  // namespace

RelayDecision Coordinator::decide(const std::map<int, Seconds>& ready_at, Seconds now,
                                  const collective::Strategy& strategy, Bytes tensor_bytes,
                                  const std::map<int, Seconds>& fill_start) const {
  if (strategy.participants.empty()) throw std::invalid_argument("decide: no participants");
  Seconds all_ready = now;
  for (const int rank : strategy.participants) {
    const auto it = ready_at.find(rank);
    const Seconds t = it == ready_at.end() ? now : it->second;
    all_ready = std::max(all_ready, t);
  }

  // Per-late-tensor phase-2 cost is bounded by the slowest network hop.
  const double net_beta = synthesizer::max_network_beta(strategy, topo_);
  const Seconds full_estimate =
      synthesizer::estimate_completion_time(strategy, topo_, tensor_bytes, {});
  const auto ready_set = [&](Seconds t) {
    std::set<int> ready;
    for (const int rank : strategy.participants) {
      const auto it = ready_at.find(rank);
      if (it == ready_at.end() || it->second <= t) ready.insert(rank);
    }
    return ready;
  };

  RelayDecision decision;
  const std::size_t world = strategy.participants.size();
  if (config_.policy == WaitPolicy::kAlwaysWait) {
    decision.partial = false;
    decision.trigger_time = std::max(all_ready, now);
    decision.phase1_active = ready_set(all_ready);
    decision.waited = decision.trigger_time - now;
    trace_decision(decision, now);
    return decision;
  }
  // Walk decision cycles until either everyone is ready or the accumulated
  // waiting cost crosses the break-even threshold (or, under
  // kAlwaysProceed, the first cycle with two ready workers).
  for (Seconds t = now;; t += config_.cycle) {
    const auto ready = ready_set(t);
    if (ready.size() == world) {
      decision.partial = false;
      decision.trigger_time = std::max(all_ready, now);
      decision.phase1_active = ready;
      decision.waited = decision.trigger_time - now;
      trace_decision(decision, now);
      return decision;
    }
    // Buying = the *extra* time option (2) spends versus simply running the
    // full collective once everyone is ready: phase 1 among the ready subset
    // replaces work the full collective would do anyway, so only (a) any
    // slowdown of phase 1 caused by the smaller active set and (b) phase-2
    // dissemination of the missing tensors count. Phase 2 = one reduce among
    // the late workers plus one broadcast (see RelayCollectiveRunner), at
    // most two network tensor traversals however many workers are late.
    const Seconds phase1_est = ready.size() >= 2
                                   ? synthesizer::estimate_completion_time(
                                         strategy, topo_, tensor_bytes, ready)
                                   : 0.0;
    const Seconds phase1_penalty = std::max(0.0, phase1_est - full_estimate);
    // Non-ready workers whose buffers are already filling will join the
    // ongoing aggregation (Sec. IV-C) — free; only the rest need phase 2.
    double phase2_late = 0.0;
    for (const int rank : strategy.participants) {
      if (ready.contains(rank)) continue;
      const auto fill_it = fill_start.find(rank);
      const bool filling = fill_it != fill_start.end() && fill_it->second <= t;
      if (!filling) phase2_late += 1.0;
    }
    const Seconds phase2_est =
        std::min(phase2_late, 2.0) * net_beta * static_cast<double>(tensor_bytes);
    const Seconds buy = phase1_penalty + phase2_est;
    const Seconds waited = t - now;
    // Phase 1 needs at least two contributors to be meaningful.
    const bool proceed =
        config_.policy == WaitPolicy::kAlwaysProceed ||
        SkiRentalPolicy::decide(waited, buy) == SkiRentalPolicy::Choice::kProceed;
    if (ready.size() >= 2 && proceed) {
      decision.partial = true;
      decision.trigger_time = t;
      decision.phase1_active = ready;
      for (const int rank : strategy.participants) {
        if (!ready.contains(rank)) decision.relays.push_back(rank);
      }
      decision.waited = waited;
      decision.buy_cost_estimate = buy;
      trace_decision(decision, now);
      return decision;
    }
  }
}

Seconds Coordinator::fault_deadline(Seconds phase1_finish, Seconds request_time) const noexcept {
  // Floor the scaling span at one coordinator cycle: an immediate trigger
  // (kAlwaysProceed, or everyone ready at request time) makes
  // phase1_finish - request_time collapse toward zero, which would set
  // T_fault ~ 0 and instantly flag mildly late workers as faulty.
  const Seconds span = std::max(phase1_finish - request_time, config_.cycle);
  return phase1_finish + config_.fault_multiplier * span;
}

}  // namespace adapcc::relay
