// Data-loader redistribution (Sec. IV-C-2).
//
// After fault recovery the coordinator notifies the remaining workers' data
// loaders to repartition the training data so the *global* batch size stays
// constant for the whole run — the invariant that keeps training statistics
// unchanged when workers are excluded.
#pragma once

#include <map>
#include <set>
#include <stdexcept>
#include <vector>

namespace adapcc::relay {

class DataLoader {
 public:
  DataLoader(int global_batch_size, std::vector<int> workers);

  /// Removes `failed` workers and re-splits the global batch among the rest.
  void redistribute(const std::set<int>& failed);

  int batch_of(int worker) const;
  int global_batch_size() const noexcept { return global_batch_; }
  const std::vector<int>& workers() const noexcept { return workers_; }

 private:
  void split();

  int global_batch_;
  std::vector<int> workers_;
  std::map<int, int> batch_of_;
};

}  // namespace adapcc::relay
