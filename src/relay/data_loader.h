// Data-loader redistribution (Sec. IV-C-2).
//
// After fault recovery the coordinator notifies the remaining workers' data
// loaders to repartition the training data so the *global* batch size stays
// constant for the whole run — the invariant that keeps training statistics
// unchanged when workers are excluded.
#pragma once

#include <map>
#include <set>
#include <stdexcept>
#include <vector>

namespace adapcc::relay {

class DataLoader {
 public:
  DataLoader(int global_batch_size, std::vector<int> workers);

  /// Removes `failed` workers and re-splits the global batch among the rest.
  void redistribute(const std::set<int>& failed);

  /// Re-admission path (pairs with Adapcc::include_workers): adds
  /// `recovered` workers back and re-splits the same global batch across the
  /// enlarged group, so participants and loader shards cannot diverge after
  /// a recovery. Workers already present are ignored; the global batch size
  /// is preserved exactly.
  void readmit(const std::set<int>& recovered);

  int batch_of(int worker) const;
  int global_batch_size() const noexcept { return global_batch_; }
  const std::vector<int>& workers() const noexcept { return workers_; }

 private:
  void split();

  int global_batch_;
  std::vector<int> workers_;
  std::map<int, int> batch_of_;
};

}  // namespace adapcc::relay
