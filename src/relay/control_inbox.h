// Coordinator control inbox (Sec. IV-C): the thread-safe mailbox where
// workers' small control messages — tensor-ready reports, buffer-fill
// notifications, fault suspicions — land on the rank-0 coordinator.
//
// In the real system each worker's RPC handler thread posts into this inbox
// while the coordinator's decision loop drains it once per 5 ms cycle. The
// simulation is single-threaded, so this inbox is the relay subsystem's one
// genuinely concurrent surface: post() may be called from any thread;
// drain()/latest_ready_times() belong to the coordinator thread. The TSan
// CI job exercises it with real producer threads (tests/relay_test.cpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "util/units.h"

namespace adapcc::relay {

struct ControlMessage {
  enum class Kind { kReady, kFillStart, kFaultSuspect };
  int rank = -1;
  Kind kind = Kind::kReady;
  /// Simulated time the report refers to (ready time, fill start, ...).
  Seconds time = 0.0;
  /// Arrival order across all producers, assigned by the inbox (1-based).
  std::uint64_t sequence = 0;
};

class ControlInbox {
 public:
  ControlInbox() = default;
  ControlInbox(const ControlInbox&) = delete;
  ControlInbox& operator=(const ControlInbox&) = delete;

  /// Posts a message (any thread). Returns its arrival sequence, 0 when the
  /// inbox is closed.
  std::uint64_t post(int rank, ControlMessage::Kind kind, Seconds time);

  /// Removes and returns all pending messages in arrival order (coordinator
  /// thread only).
  std::vector<ControlMessage> drain();

  /// Drains, folding kReady / kFillStart reports into the per-rank maps the
  /// Coordinator's decide() consumes. A newer report from the same rank
  /// overwrites the older one (re-reports after a stall are the common
  /// case). Returns the number of messages folded.
  std::size_t fold_reports(std::map<int, Seconds>& ready_at,
                           std::map<int, Seconds>& fill_start);

  /// Blocks until a message is pending or the inbox is closed; true when
  /// messages are available. Host wall time — the coordinator thread's idle
  /// wait, outside the simulated clock.
  bool wait_for_messages();

  void close();
  bool closed() const;
  std::size_t pending() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<ControlMessage> pending_;
  std::uint64_t next_sequence_ = 1;
  bool closed_ = false;
};

}  // namespace adapcc::relay
