// Coordinator (Sec. IV-C): runs on the rank-0 worker, collects tensor-ready
// times, and every cycle (5 ms) chooses between waiting for all workers and
// triggering phase-1 partial communication with non-ready workers assigned
// as relays. Also detects faults: workers still not ready T_fault after
// phase-1 completes are excluded from the training group.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "collective/comm_graph.h"
#include "collective/primitive.h"
#include "topology/logical_topology.h"
#include "util/units.h"

namespace adapcc::relay {

/// Wait-vs-proceed policy; kBreakEven is AdapCC's (Sec. IV-C-1), the other
/// two are the ablation baselines ("naive waiting policies in existing
/// libraries" and eager partial communication).
enum class WaitPolicy { kBreakEven, kAlwaysWait, kAlwaysProceed };

struct CoordinatorConfig {
  WaitPolicy policy = WaitPolicy::kBreakEven;
  /// Decision cycle (the paper uses 5 ms).
  Seconds cycle = milliseconds(5);
  /// T_fault = fault_multiplier x (time since the fastest worker was ready).
  double fault_multiplier = 5.0;
  /// Relay workers expected ready within join_horizon_factor x the full
  /// collective's estimated duration after the trigger are kept in phase 1
  /// as joiners: their chunks enter the ongoing aggregation while their
  /// buffers fill (Sec. IV-C), so no phase-2 work remains for them.
  double join_horizon_factor = 2.0;
  /// Per-collective watchdog for the phase-1 executor (see
  /// CollectiveOptions::watchdog_timeout); 0 disables it. With a watchdog, a
  /// joiner that crashes mid-collective aborts phase 1 instead of stalling
  /// it forever, and the runner re-executes for the survivors.
  Seconds watchdog_timeout = 0.0;
  /// Bound on phase-1 (re-)executions per iteration under the watchdog.
  int max_recovery_attempts = 3;
};

struct RelayDecision {
  /// False: all workers became ready within the waiting budget; communicate
  /// together at `trigger_time`. True: phase-1 partial communication.
  bool partial = false;
  /// When communication is triggered (absolute simulated time).
  Seconds trigger_time = 0.0;
  /// Workers contributing tensors in phase 1 (ready at trigger_time).
  std::set<int> phase1_active;
  /// Non-ready workers assigned as relays.
  std::vector<int> relays;
  /// Time spent waiting before the trigger.
  Seconds waited = 0.0;
  /// The buy-cost estimate at the trigger cycle (for diagnostics).
  Seconds buy_cost_estimate = 0.0;
};

class Coordinator {
 public:
  Coordinator(const topology::LogicalTopology& topo, CoordinatorConfig config = {})
      : topo_(topo), config_(config) {}

  /// Decides wait-vs-proceed for one iteration. `ready_at` maps every
  /// participant to the absolute time its tensor is ready; `now` is the time
  /// the first communication request arrives (= min ready time, typically).
  /// `strategy` is the communication graph in use (its aggregate bandwidth
  /// feeds the cost estimates).
  /// `fill_start` (optional) reports when each worker's gradient buffer
  /// began filling; a non-ready worker already filling will join phase 1 at
  /// no extra cost, so it does not contribute to the buying estimate.
  RelayDecision decide(const std::map<int, Seconds>& ready_at, Seconds now,
                       const collective::Strategy& strategy, Bytes tensor_bytes,
                       const std::map<int, Seconds>& fill_start = {}) const;

  /// Fault threshold: workers still not ready T_fault after phase-1
  /// completion are declared faulty, with T_fault = fault_multiplier x the
  /// duration from the arrival of the iteration's first communication
  /// request (`request_time`) to phase-1 completion. Scaling by the whole
  /// span (which includes the fastest worker's wait) keeps ordinary compute
  /// stagger well inside the deadline while still detecting dead workers in
  /// a few seconds — far quicker than PyTorch Elastic's 15 s keep-alive.
  /// The span is floored at one coordinator cycle so a zero-wait trigger
  /// cannot collapse T_fault to ~0.
  Seconds fault_deadline(Seconds phase1_finish, Seconds request_time) const noexcept;

  const CoordinatorConfig& config() const noexcept { return config_; }

 private:
  const topology::LogicalTopology& topo_;
  CoordinatorConfig config_;
};

}  // namespace adapcc::relay
