// Break-even ski-rental policy for the wait-vs-proceed decision
// (Sec. IV-C-1).
//
// Waiting one coordinator cycle for stragglers is "renting"; triggering
// partial (phase-1 + phase-2) communication among the ready workers is
// "buying". The break-even rule — proceed once the accumulated waiting cost
// reaches the current buying cost — is the best deterministic policy, with
// competitive ratio 2 against the offline optimum.
#pragma once

#include "util/units.h"

namespace adapcc::relay {

class SkiRentalPolicy {
 public:
  enum class Choice { kWait, kProceed };

  /// `buy_cost` is the estimated time of phase-1 + phase-2 at this cycle
  /// (it changes over time as more workers become ready). `accumulated_wait`
  /// is the total time already spent waiting this iteration.
  static Choice decide(Seconds accumulated_wait, Seconds buy_cost) noexcept {
    return accumulated_wait >= buy_cost ? Choice::kProceed : Choice::kWait;
  }
};

/// Cost estimate of a full collective: total communicated volume S divided
/// by the aggregate bandwidth B of the communication graph (Sec. IV-C-1).
inline Seconds collective_time_estimate(double data_volume_bytes,
                                        BytesPerSecond aggregate_bandwidth) noexcept {
  return aggregate_bandwidth > 0 ? data_volume_bytes / aggregate_bandwidth : 0.0;
}

}  // namespace adapcc::relay
