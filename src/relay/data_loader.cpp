#include "relay/data_loader.h"

#include <algorithm>

namespace adapcc::relay {

DataLoader::DataLoader(int global_batch_size, std::vector<int> workers)
    : global_batch_(global_batch_size), workers_(std::move(workers)) {
  if (global_batch_ <= 0) throw std::invalid_argument("DataLoader: non-positive batch");
  if (workers_.empty()) throw std::invalid_argument("DataLoader: no workers");
  std::sort(workers_.begin(), workers_.end());
  split();
}

void DataLoader::redistribute(const std::set<int>& failed) {
  std::vector<int> remaining;
  for (const int w : workers_) {
    if (!failed.contains(w)) remaining.push_back(w);
  }
  if (remaining.empty()) throw std::invalid_argument("DataLoader: all workers failed");
  workers_ = std::move(remaining);
  split();
}

void DataLoader::readmit(const std::set<int>& recovered) {
  std::vector<int> added;
  for (const int w : recovered) {
    if (!std::binary_search(workers_.begin(), workers_.end(), w)) added.push_back(w);
  }
  if (added.empty()) return;
  workers_.insert(workers_.end(), added.begin(), added.end());
  std::sort(workers_.begin(), workers_.end());
  split();
}

int DataLoader::batch_of(int worker) const {
  const auto it = batch_of_.find(worker);
  if (it == batch_of_.end()) throw std::out_of_range("DataLoader: unknown worker");
  return it->second;
}

void DataLoader::split() {
  batch_of_.clear();
  const int n = static_cast<int>(workers_.size());
  const int base = global_batch_ / n;
  int remainder = global_batch_ % n;
  for (const int w : workers_) {
    batch_of_[w] = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
  }
}

}  // namespace adapcc::relay
