#include "relay/relay_collective.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "collective/builders.h"
#include "collective/payload.h"
#include "synthesizer/cost_model.h"
#include "telemetry/telemetry.h"
#include "util/logging.h"

namespace adapcc::relay {

namespace {
using collective::CollectiveOptions;
using collective::CollectiveResult;
using collective::Executor;
using collective::payload_value;
using collective::Primitive;
using collective::rank_bit;
using collective::Strategy;
using collective::Tree;
using topology::NodeId;
}  // namespace

Tree RelayCollectiveRunner::broadcast_tree(const std::vector<int>& participants,
                                           int root_rank) const {
  // Per-instance rank-order chains headed by the lowest rank (or the root on
  // its own instance); heads hang off their NIC, and the NICs form a chain
  // starting at the root's NIC. A chain is bandwidth-optimal for a pipelined
  // broadcast: each inter-instance link carries exactly one copy of the
  // tensor, instead of the root NIC's egress fanning out several copies.
  std::map<int, std::vector<int>> by_instance;
  for (const int rank : participants) {
    by_instance[cluster_.instance_of_rank(rank)].push_back(rank);
  }
  const int root_instance = cluster_.instance_of_rank(root_rank);
  Tree tree;
  tree.root = NodeId::gpu(root_rank);
  for (auto& [inst, ranks] : by_instance) {
    std::sort(ranks.begin(), ranks.end());
    // Head: the root itself on the root instance, else the lowest rank.
    const int head = inst == root_instance ? root_rank : ranks.front();
    std::vector<int> order{head};
    for (const int rank : ranks) {
      if (rank != head) order.push_back(rank);
    }
    for (std::size_t i = order.size(); i-- > 1;) {
      tree.parent[NodeId::gpu(order[i])] = NodeId::gpu(order[i - 1]);
    }
  }
  // Chain the heads across instances, starting at the root's head: each
  // inter-instance hop carries exactly one copy of the tensor.
  NodeId up = NodeId::gpu(root_rank);
  for (const auto& [inst, ranks] : by_instance) {
    if (inst == root_instance) continue;
    const NodeId head = NodeId::gpu(ranks.front());
    tree.parent[head] = up;
    up = head;
  }
  return tree;
}

RelayRunResult RelayCollectiveRunner::run_allreduce(const Strategy& strategy, Bytes tensor_bytes,
                                                    const std::map<int, Seconds>& ready_at,
                                                    const std::map<int, Seconds>& fill_start,
                                                    const std::map<int, Seconds>& dead_at) {
  sim::Simulator& sim = cluster_.simulator();
  RelayRunResult result;
  const Seconds request_time = sim.now();

  Seconds fastest = std::numeric_limits<Seconds>::infinity();
  for (const int rank : strategy.participants) {
    const auto it = ready_at.find(rank);
    fastest = std::min(fastest, it == ready_at.end() ? sim.now() : it->second);
  }
  fastest = std::max(fastest, sim.now());

  const RelayDecision decision =
      coordinator_.decide(ready_at, fastest, strategy, tensor_bytes, fill_start);
  result.decision = decision;
  result.partial = decision.partial;
  result.relays = decision.relays;
  result.wait_time = decision.waited;

  // --- Joiner selection (Sec. IV-C): relays expected ready soon keep
  // contributing — their chunks enter the ongoing aggregation while their
  // gradient buffers fill, leaving no phase-2 work for them.
  std::set<int> phase1_active = decision.phase1_active;
  std::vector<int> still_late;
  if (decision.partial) {
    // A relay whose gradient buffer is already filling at the trigger (its
    // backward pass is running — the "computed tensor data fills the GPU
    // memory buffer" signal of Sec. IV-C) keeps contributing: its chunks
    // join the ongoing aggregation, which always beats disseminating the
    // whole tensor in phase 2 afterwards. Relays with no fill progress —
    // not yet computing, severely interfered, or dead — stay out, so a
    // failed worker can never stall the phase-1 executor; they are covered
    // by phase 2 and the fault detector. Without fill information a
    // conservative readiness window substitutes for the progress signal.
    const Seconds full_est = synthesizer::estimate_completion_time(
        strategy, topo_, tensor_bytes, {});
    const Seconds join_window =
        decision.trigger_time + coordinator_.config().join_horizon_factor * full_est;
    for (const int rank : decision.relays) {
      const auto ready_it = ready_at.find(rank);
      const Seconds ready = ready_it == ready_at.end() ? decision.trigger_time : ready_it->second;
      const auto fill_it = fill_start.find(rank);
      const bool filling = fill_it != fill_start.end() && fill_it->second <= decision.trigger_time;
      if (filling || ready <= join_window) {
        phase1_active.insert(rank);
        result.joined.push_back(rank);
      } else {
        still_late.push_back(rank);
      }
    }
  }

  // --- Phase 1 (or the full collective when not partial). -----------------
  // Either way the executor starts immediately: tensors (and, with
  // fill_start, individual chunks) enter the pipeline as they are produced,
  // so communication overlaps the stragglers' remaining computation. The
  // trigger time only marks when the coordinator committed to partial mode.
  CollectiveOptions options;
  options.active_ranks = phase1_active;
  for (const auto& [rank, t] : ready_at) options.ready_at[rank] = t;
  // Incremental buffer filling applies to the joining relays only: ready
  // workers' tensors enter when their computation completes (the normal
  // communication request), while a joiner's chunks stream into the ongoing
  // aggregation as its backward pass produces them (Sec. IV-C).
  for (const int rank : result.joined) {
    const auto it = fill_start.find(rank);
    if (it != fill_start.end()) options.fill_start[rank] = it->second;
  }
  options.dead_at = dead_at;
  options.watchdog_timeout = coordinator_.config().watchdog_timeout;

  if (auto* t = telemetry::get()) {
    const telemetry::TrackId track = t->trace().track("relay");
    for (const int rank : decision.relays) {
      t->trace().instant(track, "relay-assign", decision.trigger_time,
                         telemetry::kv("rank", rank));
      t->metrics().counter("relay.assignments").add(1.0);
    }
    for (const int rank : result.joined) {
      t->trace().instant(track, "relay-join", decision.trigger_time,
                         telemetry::kv("rank", rank));
    }
  }

  Executor executor(cluster_, strategy);
  CollectiveResult phase1 = executor.run(tensor_bytes, options);
  // --- Watchdog recovery (Sec. IV-C-2): a mid-collective crash (e.g. a
  // joiner dying while its chunks stream in) aborts phase 1 instead of
  // stalling it. The suspects become faulty, and phase 1 re-executes for
  // the survivors; a stall with no rank-level culprit (link blackout) gets
  // one watchdog window to heal before each retry.
  while (!phase1.ok() && result.phase1_attempts < coordinator_.config().max_recovery_attempts) {
    ++result.phase1_attempts;
    if (auto* t = telemetry::get()) {
      t->metrics().counter("relay.phase1_retries").add(1.0);
      t->trace().instant(t->trace().track("relay"), "phase1-retry", sim.now(),
                         telemetry::kv("suspects",
                                       static_cast<double>(phase1.error.suspects.size())));
    }
    if (!phase1.error.suspects.empty()) {
      for (const int rank : phase1.error.suspects) {
        result.faulty.insert(rank);
        phase1_active.erase(rank);
        options.active_ranks.erase(rank);
        options.fill_start.erase(rank);
      }
      std::erase_if(result.joined, [&](int rank) { return phase1.error.suspects.contains(rank); });
      std::erase_if(still_late, [&](int rank) { return result.faulty.contains(rank); });
      if (phase1_active.size() < 2) break;  // nothing meaningful left to aggregate
    } else {
      // Give the network one more watchdog window before retrying.
      bool healed = false;
      sim.schedule_after(coordinator_.config().watchdog_timeout, [&healed] { healed = true; });
      while (!healed && sim.step()) {
      }
    }
    phase1 = executor.run(tensor_bytes, options);
  }
  if (!phase1.ok()) {
    // Unrecovered within the attempt budget: report the structured error and
    // whatever suspects remain, rather than hanging or returning bogus data.
    result.error = phase1.error;
    for (const int rank : phase1.error.suspects) result.faulty.insert(rank);
    result.phase1_finish = result.phase2_finish = phase1.finished;
    result.final_values.clear();
    result.final_mask = 0;
    result.comm_time = phase1.finished - decision.trigger_time;
    result.total_time = phase1.finished - fastest;
    return result;
  }
  result.phase1_finish = phase1.finished;
  if (auto* t = telemetry::get()) {
    t->trace().complete(t->trace().track("relay"), decision.partial ? "phase1" : "full-collective",
                        decision.trigger_time, result.phase1_finish - decision.trigger_time,
                        telemetry::kv("active", static_cast<double>(phase1_active.size())));
  }

  // Collect phase-1 values of (sub 0, chunk 0) per participant.
  collective::ContributorMask mask = 0;
  for (const int rank : phase1_active) mask |= rank_bit(rank);
  for (const int rank : strategy.participants) {
    const auto it = phase1.delivered.find(rank);
    double value = 0.0;
    if (it != phase1.delivered.end() && !it->second.empty() && !it->second[0].empty() &&
        !std::isnan(it->second[0][0])) {
      value = it->second[0][0];
    }
    result.final_values[rank] = value;
  }

  result.phase2_finish = result.phase1_finish;

  if (decision.partial) {
    // --- Fault detection. --------------------------------------------------
    const Seconds deadline = coordinator_.fault_deadline(result.phase1_finish, request_time);
    std::vector<int> late_ok;
    for (const int rank : still_late) {
      const auto it = ready_at.find(rank);
      Seconds t = it == ready_at.end() ? result.phase1_finish : it->second;
      // A rank that crashed before producing its tensor never becomes ready,
      // whatever its nominal compute-finish time said.
      const auto dead_it = dead_at.find(rank);
      if (dead_it != dead_at.end() && dead_it->second < t) {
        t = std::numeric_limits<Seconds>::infinity();
      }
      if (t <= deadline) {
        late_ok.push_back(rank);
      } else {
        result.faulty.insert(rank);
        if (auto* tel = telemetry::get()) {
          tel->trace().instant(tel->trace().track("relay"), "fault-exclude", deadline,
                               telemetry::kv("rank", rank) + "," +
                                   telemetry::kv("deadline", deadline));
          tel->metrics().counter("relay.fault_exclusions").add(1.0);
        }
      }
    }

    // --- Phase 2: disseminate the late tensors, combine locally. -----------
    // A few late workers broadcast their tensors individually and
    // concurrently, each the moment it becomes ready — a mildly late worker
    // must not be gated on a severe straggler. A large late group (e.g. the
    // slow half of a bimodal cluster) is first aggregated among the late
    // workers with one Reduce and the combined tensor broadcast once, which
    // moves two tensors across the network instead of |late| tensors.
    if (!late_ok.empty()) {
      std::sort(late_ok.begin(), late_ok.end());
      // Group when a sizable cohort (>= 1/3 of the world) is late, e.g. the
      // slow half of a bimodal cluster; scattered jitter-tail stragglers
      // broadcast individually so none is gated on the slowest.
      const std::size_t kGroupThreshold =
          std::max<std::size_t>(4, (strategy.participants.size() + 2) / 3);
      const auto make_broadcast = [&](int root) {
        Strategy bcast;
        bcast.primitive = Primitive::kBroadcast;
        bcast.participants = strategy.participants;
        bcast.origin = strategy.origin;
        collective::SubCollective sub;
        sub.fraction = 1.0;
        sub.chunk_bytes = strategy.subs.front().chunk_bytes;
        sub.tree = broadcast_tree(strategy.participants, root);
        bcast.subs.push_back(std::move(sub));
        return bcast;
      };

      if (late_ok.size() < kGroupThreshold) {
        std::vector<std::unique_ptr<Executor>> broadcasts;
        std::size_t outstanding = late_ok.size();
        std::vector<Seconds> finishes(late_ok.size(), 0.0);
        for (std::size_t i = 0; i < late_ok.size(); ++i) {
          const int late = late_ok[i];
          broadcasts.push_back(std::make_unique<Executor>(cluster_, make_broadcast(late)));
          CollectiveOptions options2;
          const auto it = ready_at.find(late);
          if (it != ready_at.end()) options2.ready_at[late] = it->second;
          broadcasts.back()->start(tensor_bytes, options2,
                                   [&finishes, &outstanding, i](const CollectiveResult& r) {
                                     finishes[i] = r.finished;
                                     --outstanding;
                                   });
        }
        while (outstanding > 0 && sim.step()) {
        }
        if (outstanding > 0) throw std::logic_error("phase 2 drained early");
        // Drain executor tail traffic before the executors go out of scope.
        for (;;) {
          bool busy = false;
          for (const auto& phase2_exec : broadcasts) busy = busy || phase2_exec->busy();
          if (!busy || !sim.step()) break;
        }
        for (const Seconds f : finishes) result.phase2_finish = std::max(result.phase2_finish, f);
      } else {
        const int phase2_root = late_ok.front();
        Strategy gather;
        gather.primitive = Primitive::kReduce;
        gather.participants = late_ok;
        gather.origin = strategy.origin;
        collective::SubCollective sub;
        sub.fraction = 1.0;
        sub.chunk_bytes = strategy.subs.front().chunk_bytes;
        sub.tree = broadcast_tree(late_ok, phase2_root);
        gather.subs.push_back(std::move(sub));
        Executor reduce_exec(cluster_, std::move(gather));
        CollectiveOptions reduce_options;
        for (const int late : late_ok) {
          const auto it = ready_at.find(late);
          if (it != ready_at.end()) reduce_options.ready_at[late] = it->second;
        }
        const Seconds late_sum_ready = reduce_exec.run(tensor_bytes, reduce_options).finished;

        Executor bcast_exec(cluster_, make_broadcast(phase2_root));
        CollectiveOptions bcast_options;
        bcast_options.ready_at[phase2_root] = late_sum_ready;
        result.phase2_finish = bcast_exec.run(tensor_bytes, bcast_options).finished;
      }
    }

    // Local combination: phase-1 aggregate + the late tensors. The late
    // workers themselves also hold the phase-1 result (they relayed it /
    // fetch it from the relay GPU's result queue, Sec. IV-C).
    double phase1_value = 0.0;
    for (const int rank : phase1_active) {
      phase1_value = std::max(phase1_value, result.final_values[rank]);
    }
    for (const int late : late_ok) mask |= rank_bit(late);
    for (const int rank : strategy.participants) {
      if (result.faulty.contains(rank)) continue;
      double value = std::max(result.final_values[rank], phase1_value);
      for (const int late : late_ok) value += payload_value(late, 0, 0);
      result.final_values[rank] = value;
    }
    for (const int rank : result.faulty) result.final_values.erase(rank);
  }

  // Faulty ranks (fault detector or watchdog recovery) hold no usable final
  // tensor, in partial and non-partial mode alike.
  for (const int rank : result.faulty) result.final_values.erase(rank);
  result.final_mask = mask;
  result.comm_time = result.phase2_finish - decision.trigger_time;
  result.total_time = result.phase2_finish - fastest;
  if (auto* t = telemetry::get()) {
    if (decision.partial && result.phase2_finish > result.phase1_finish) {
      t->trace().complete(t->trace().track("relay"), "phase2", result.phase1_finish,
                          result.phase2_finish - result.phase1_finish,
                          telemetry::kv("late", static_cast<double>(still_late.size())));
    }
    t->metrics().histogram("relay.comm_seconds").observe(result.comm_time);
  }
  return result;
}

}  // namespace adapcc::relay
