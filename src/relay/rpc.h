// Coordinator RPC modelling (Sec. IV-C / Fig. 19d).
//
// Workers exchange relay information with the rank-0 coordinator via small
// control messages. We measure the negotiation latency by sending an actual
// control-sized payload through the simulated network path (worker GPU ->
// NIC -> coordinator NIC -> coordinator GPU) plus host processing jitter.
#pragma once

#include "topology/cluster.h"
#include "util/rng.h"
#include "util/units.h"

namespace adapcc::relay {

struct RpcConfig {
  Bytes message_bytes = 256;
  /// Mean/stddev of per-endpoint host processing (serialization, syscall).
  Seconds host_overhead_mean = microseconds(120);
  Seconds host_overhead_stddev = microseconds(60);
};

/// Round-trip relay negotiation latency between `rank` and the coordinator
/// (`coordinator_rank`): request + response, measured on the simulator.
/// Advances simulated time by the measured amount.
Seconds measure_rpc_latency(topology::Cluster& cluster, int rank, int coordinator_rank,
                            util::Rng& rng, const RpcConfig& config = {});

}  // namespace adapcc::relay
