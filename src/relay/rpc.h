// Coordinator RPC modelling (Sec. IV-C / Fig. 19d).
//
// Workers exchange relay information with the rank-0 coordinator via small
// control messages. We measure the negotiation latency by sending an actual
// control-sized payload through the simulated network path (worker GPU ->
// NIC -> coordinator NIC -> coordinator GPU) plus host processing jitter.
#pragma once

#include "topology/cluster.h"
#include "util/rng.h"
#include "util/units.h"

namespace adapcc::relay {

struct RpcConfig {
  Bytes message_bytes = 256;
  /// Mean/stddev of per-endpoint host processing (serialization, syscall).
  Seconds host_overhead_mean = microseconds(120);
  Seconds host_overhead_stddev = microseconds(60);
};

/// Round-trip relay negotiation latency between `rank` and the coordinator
/// (`coordinator_rank`): request + response, measured on the simulator.
/// Advances simulated time by the measured amount.
Seconds measure_rpc_latency(topology::Cluster& cluster, int rank, int coordinator_rank,
                            util::Rng& rng, const RpcConfig& config = {});

/// Chaos hook: decides whether a control message from->to handed to the
/// network at `now` is lost in flight. Implemented by the fault injector;
/// the default (no filter) drops nothing.
class RpcMessageFilter {
 public:
  virtual ~RpcMessageFilter() = default;
  virtual bool should_drop(int from_rank, int to_rank, Seconds now) = 0;
};

struct RpcRetryConfig {
  RpcConfig rpc;
  int max_attempts = 5;
  /// Sender-side retransmission timer: an exchange whose response has not
  /// arrived this long after the request was sent counts as lost.
  Seconds ack_timeout = milliseconds(5);
  /// Exponential backoff between attempts: base * multiplier^k, scaled by
  /// uniform(1 - jitter, 1 + jitter) so synchronized retry storms decohere.
  /// All waiting happens on the simulated clock.
  Seconds backoff_base = milliseconds(1);
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.25;
};

struct RpcExchangeResult {
  bool ok = false;
  int attempts = 0;   ///< rounds tried (1 = first try succeeded)
  int drops = 0;      ///< messages the filter ate across all rounds
  Seconds latency = 0.0;  ///< total simulated time spent incl. timeouts/backoff
};

/// Round-trip request/response exchange with retransmission: retries dropped
/// messages with exponential backoff + jitter until `max_attempts` rounds
/// are exhausted. Advances simulated time (timeouts and backoff included).
RpcExchangeResult rpc_with_retry(topology::Cluster& cluster, int rank, int coordinator_rank,
                                 util::Rng& rng, const RpcRetryConfig& config = {},
                                 RpcMessageFilter* filter = nullptr);

}  // namespace adapcc::relay
