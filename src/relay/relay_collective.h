// Phase-1 / phase-2 relay collective execution (Sec. IV-C).
//
// Option (2) of the coordinator: ready workers run the collective first
// (phase 1) with non-ready workers' GPUs acting as relays, then the tensors
// of workers that became ready later are broadcast to everyone (phase 2) and
// combined locally, so the final aggregate is identical to a full collective
// — the consistency property behind Fig. 19(b). Workers that still have not
// produced data T_fault after phase 1 are declared faulty, excluded from the
// group, and the data loader is redistributed (fault tolerance).
#pragma once

#include <map>
#include <set>
#include <vector>

#include "collective/executor.h"
#include "relay/coordinator.h"
#include "topology/cluster.h"

namespace adapcc::relay {

struct RelayRunResult {
  bool partial = false;
  std::vector<int> relays;
  /// Relays whose chunks joined the ongoing phase-1 aggregation.
  std::vector<int> joined;
  std::set<int> faulty;
  /// Time the fastest worker spent waiting before communication triggered.
  Seconds wait_time = 0.0;
  /// Trigger -> final tensor available everywhere (includes phase 2).
  Seconds comm_time = 0.0;
  /// Fastest-ready -> everything done: what the iteration actually pays.
  Seconds total_time = 0.0;
  Seconds phase1_finish = 0.0;
  Seconds phase2_finish = 0.0;
  /// Final aggregated value of (sub 0, chunk 0) per rank after local
  /// combination — must equal the sum over all non-faulty contributors.
  std::map<int, double> final_values;
  /// Contributors reflected in final_values.
  collective::ContributorMask final_mask = 0;
  RelayDecision decision;
  /// Phase-1 executions this iteration took (> 1 after watchdog recovery).
  int phase1_attempts = 1;
  /// Set when phase 1 could not complete within
  /// CoordinatorConfig::max_recovery_attempts (e.g. a blackout outlasting
  /// every retry); final_values are then unusable for this iteration.
  collective::CollectiveError error;
  bool ok() const noexcept { return !error; }
};

class RelayCollectiveRunner {
 public:
  RelayCollectiveRunner(topology::Cluster& cluster, const topology::LogicalTopology& topo,
                        CoordinatorConfig config = {})
      : cluster_(cluster), topo_(topo), coordinator_(topo, config) {}

  /// Runs one AllReduce iteration under relay control. `ready_at` gives the
  /// absolute tensor-ready time per participant. Advances simulated time to
  /// the end of phase 2 (or of the full collective when no partial
  /// communication was chosen).
  /// `fill_start` optionally gives per-rank backward-pass start times for
  /// incremental buffer filling (see CollectiveOptions::fill_start).
  /// `dead_at` (chaos harness) marks ranks that crash at the given absolute
  /// time (see CollectiveOptions::dead_at); with a watchdog configured,
  /// mid-collective crashes abort phase 1, the suspects are folded into
  /// `faulty`, and phase 1 re-executes for the survivors.
  RelayRunResult run_allreduce(const collective::Strategy& strategy, Bytes tensor_bytes,
                               const std::map<int, Seconds>& ready_at,
                               const std::map<int, Seconds>& fill_start = {},
                               const std::map<int, Seconds>& dead_at = {});

  const Coordinator& coordinator() const noexcept { return coordinator_; }

 private:
  /// Hierarchical broadcast tree rooted at `root_rank` covering
  /// `participants` (used to disseminate late tensors in phase 2).
  collective::Tree broadcast_tree(const std::vector<int>& participants, int root_rank) const;

  topology::Cluster& cluster_;
  const topology::LogicalTopology& topo_;
  Coordinator coordinator_;
};

}  // namespace adapcc::relay
