#include "profiler/alpha_beta.h"

#include <algorithm>
#include <stdexcept>

namespace adapcc::profiler {

void AlphaBetaEstimator::add_sample(Bytes bytes, Seconds elapsed) {
  if (elapsed <= 0) throw std::invalid_argument("AlphaBetaEstimator: non-positive time");
  bytes_.push_back(static_cast<double>(bytes));
  times_.push_back(elapsed);
}

AlphaBeta AlphaBetaEstimator::estimate() const {
  const auto fit = util::fit_line(bytes_, times_);
  AlphaBeta result;
  result.alpha = std::max(0.0, fit.intercept);
  result.beta = std::max(0.0, fit.slope);
  result.r_squared = fit.r_squared;
  return result;
}

std::vector<ProbeShape> default_probe_plan() {
  // Mirrors the paper: the same payload sent as n small chunks and as one
  // grouped chunk, over a spread of sizes so the regression separates the
  // latency term from the bandwidth term.
  return {
      {256_KiB, 8}, {2_MiB, 1},   // 2 MiB total, split vs grouped
      {1_MiB, 8},   {8_MiB, 1},   // 8 MiB total
      {4_MiB, 8},   {32_MiB, 1},  // 32 MiB total
  };
}

}  // namespace adapcc::profiler
