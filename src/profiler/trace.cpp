#include "profiler/trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adapcc::profiler {

BandwidthTrace::BandwidthTrace(std::vector<TraceSample> samples) : samples_(std::move(samples)) {
  if (samples_.empty()) throw std::invalid_argument("BandwidthTrace: empty");
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (samples_[i].time <= samples_[i - 1].time) {
      throw std::invalid_argument("BandwidthTrace: non-increasing timestamps");
    }
  }
}

BandwidthTrace BandwidthTrace::synthetic_cloud(Seconds duration, Seconds period,
                                               std::uint64_t seed) {
  if (duration <= 0 || period <= 0) throw std::invalid_argument("synthetic_cloud: bad params");
  util::Rng rng(seed);
  std::vector<TraceSample> samples;
  // Cross-traffic dips arrive sporadically and persist for a few samples.
  double dip_depth = 0.0;
  int dip_remaining = 0;
  double walk = 0.0;  // slow AR(1) jitter around the diurnal baseline
  for (Seconds t = 0; t < duration; t += period) {
    const double phase = 2.0 * 3.14159265358979 * t / duration;
    // Diurnal drift: up to ~18% drop at the trough.
    const double diurnal = 0.09 * (1.0 - std::cos(phase));
    walk = 0.9 * walk + rng.normal(0.0, 0.01);
    if (dip_remaining == 0 && rng.bernoulli(0.04)) {
      dip_depth = rng.uniform(0.05, 0.18);
      dip_remaining = static_cast<int>(rng.uniform_int(2, 8));
    }
    double dip = 0.0;
    if (dip_remaining > 0) {
      dip = dip_depth;
      --dip_remaining;
    }
    const double fraction = std::clamp(1.0 - diurnal - dip + walk, 0.60, 1.0);
    // Latency degrades as bandwidth headroom shrinks; at the paper's worst
    // case (-34% bandwidth) this yields ~ +17% latency.
    const double latency = 1.0 + 0.5 * (1.0 - fraction) + std::abs(rng.normal(0.0, 0.01));
    samples.push_back(TraceSample{t, fraction, latency});
  }
  return BandwidthTrace(std::move(samples));
}

BandwidthTrace BandwidthTrace::amplified(double x) const {
  if (x < 0) throw std::invalid_argument("amplified: negative factor");
  std::vector<TraceSample> out = samples_;
  for (std::size_t i = 1; i < out.size(); ++i) {
    const double prev = samples_[i - 1].bandwidth_fraction;
    const double cur = samples_[i].bandwidth_fraction;
    // A drop is scaled to (1-x) of its value, a rise to (1+x) (Sec. VI-D).
    const double scaled = cur < prev ? cur * (1.0 - x) : cur * (1.0 + x);
    out[i].bandwidth_fraction = std::clamp(scaled, 0.05, 1.0);
    out[i].latency_factor = 1.0 + 0.5 * (1.0 - out[i].bandwidth_fraction);
  }
  return BandwidthTrace(std::move(out));
}

Seconds BandwidthTrace::duration() const noexcept {
  // Assume uniform spacing for the wrap-around period.
  if (samples_.size() < 2) return samples_.back().time + 1.0;
  const Seconds period = samples_[1].time - samples_[0].time;
  return samples_.back().time + period;
}

namespace {
std::size_t sample_index_at(const std::vector<TraceSample>& samples, Seconds wrapped) {
  // Last sample with time <= wrapped (step interpolation).
  std::size_t lo = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].time <= wrapped) lo = i;
    else break;
  }
  return lo;
}
}  // namespace

double BandwidthTrace::bandwidth_fraction_at(Seconds t) const {
  const Seconds wrapped = std::fmod(std::max(0.0, t), duration());
  return samples_[sample_index_at(samples_, wrapped)].bandwidth_fraction;
}

double BandwidthTrace::latency_factor_at(Seconds t) const {
  const Seconds wrapped = std::fmod(std::max(0.0, t), duration());
  return samples_[sample_index_at(samples_, wrapped)].latency_factor;
}

double BandwidthTrace::min_bandwidth_fraction() const {
  double min_fraction = 1.0;
  for (const auto& s : samples_) min_fraction = std::min(min_fraction, s.bandwidth_fraction);
  return min_fraction;
}

double BandwidthTrace::max_latency_factor() const {
  double max_factor = 1.0;
  for (const auto& s : samples_) max_factor = std::max(max_factor, s.latency_factor);
  return max_factor;
}

TraceShaper::TraceShaper(topology::Cluster& cluster, std::vector<BandwidthTrace> traces)
    : cluster_(cluster), traces_(std::move(traces)) {
  if (static_cast<int>(traces_.size()) > cluster_.instance_count()) {
    throw std::invalid_argument("TraceShaper: more traces than instances");
  }
  pending_.resize(traces_.size());
}

void TraceShaper::start() {
  stopped_ = false;
  for (std::size_t i = 0; i < traces_.size(); ++i) apply(i, 0);
}

void TraceShaper::stop() {
  stopped_ = true;
  for (auto& event : pending_) {
    cluster_.simulator().cancel(event);
    event = sim::EventId{};
  }
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    cluster_.set_nic_capacity_fraction(static_cast<int>(i), 1.0);
  }
}

void TraceShaper::apply(std::size_t instance, std::size_t sample_index) {
  if (stopped_) return;
  const auto& trace = traces_[instance];
  const auto& samples = trace.samples();
  const auto& sample = samples[sample_index % samples.size()];
  cluster_.set_nic_capacity_fraction(static_cast<int>(instance), sample.bandwidth_fraction);
  // Schedule the next sample; wrap around at the end of the trace.
  const Seconds period = trace.duration() / static_cast<double>(samples.size());
  pending_[instance] = cluster_.simulator().schedule_after(
      period, [this, instance, sample_index] { apply(instance, sample_index + 1); });
}

}  // namespace adapcc::profiler
