// Cloud bandwidth traces (Sec. II-B, Fig. 1) and trace-driven link shaping
// (Sec. VI-D).
//
// The paper measures a 6-hour trace between two reserved cloud instances and
// observes up to 34% bandwidth and 17% latency degradation from peak. We
// cannot replay the original trace, so `synthetic_cloud` generates a
// reproducible one with the same envelope: a diurnal drift plus cross-traffic
// dips. The volatile-network experiments (Fig. 18a) amplify trace changes by
// a factor x exactly as described: a sample that drops (rises) relative to
// its predecessor is scaled by 1-x (1+x).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "topology/cluster.h"
#include "util/rng.h"
#include "util/units.h"

namespace adapcc::profiler {

struct TraceSample {
  Seconds time = 0.0;
  double bandwidth_fraction = 1.0;  ///< of the NIC's peak capacity
  double latency_factor = 1.0;      ///< multiplier on base latency
};

class BandwidthTrace {
 public:
  explicit BandwidthTrace(std::vector<TraceSample> samples);

  /// Reproducible synthetic 6-hour-style trace sampled every `period`.
  static BandwidthTrace synthetic_cloud(Seconds duration, Seconds period, std::uint64_t seed);

  /// Amplifies sample-to-sample changes by factor `x` (Sec. VI-D).
  BandwidthTrace amplified(double x) const;

  /// Step interpolation; times beyond the trace wrap around (loop).
  double bandwidth_fraction_at(Seconds t) const;
  double latency_factor_at(Seconds t) const;

  const std::vector<TraceSample>& samples() const noexcept { return samples_; }
  Seconds duration() const noexcept;
  double min_bandwidth_fraction() const;
  double max_latency_factor() const;

 private:
  std::vector<TraceSample> samples_;
};

/// Applies per-instance traces to the cluster's NICs as simulated time
/// advances, the stand-in for the paper's `tc`-based shaping.
class TraceShaper {
 public:
  /// `traces[i]` shapes instance i; fewer traces than instances leaves the
  /// remaining NICs unshaped.
  TraceShaper(topology::Cluster& cluster, std::vector<BandwidthTrace> traces);

  /// Schedules the first shaping event; subsequent ones self-schedule.
  void start();
  /// Stops future shaping and restores full capacity.
  void stop();

 private:
  void apply(std::size_t instance, std::size_t sample_index);

  topology::Cluster& cluster_;
  std::vector<BandwidthTrace> traces_;
  std::vector<sim::EventId> pending_;
  bool stopped_ = false;
};

}  // namespace adapcc::profiler
