#include "profiler/profiler.h"

#include <algorithm>
#include <memory>

#include "sim/edge_channel.h"
#include "telemetry/telemetry.h"
#include "util/logging.h"

namespace adapcc::profiler {

namespace {

using topology::EdgeType;
using topology::LogicalTopology;
using topology::NodeId;

/// Default costs for unprofiled PCIe edges (Sec. IV-B: PCIe movement is
/// overlapped with network transmission, so it is not probed).
constexpr Seconds kPcieDefaultAlpha = microseconds(10);
const double kPcieDefaultBeta = 1.0 / gBps(20);

/// Drives the probe plan over one edge: each ProbeShape becomes a fresh
/// EdgeChannel carrying `count` chunks; the elapsed time of the whole shape
/// is one regression sample. Shapes run sequentially; `on_done` fires after
/// the last one.
class EdgeProbe {
 public:
  /// `channels` parallel streams carry the probe traffic round-robin; with
  /// channels > 1 the fitted beta measures the *port* rate reachable by
  /// concurrent streams rather than the single-stream rate (distinguishing
  /// TCP's per-stream kernel ceiling from the NIC capacity, Sec. VI-D).
  EdgeProbe(sim::Simulator& sim, std::vector<sim::FlowLink*> path,
            const std::vector<ProbeShape>& plan, int repetitions, int channels,
            std::function<void()> on_done)
      : sim_(sim), path_(std::move(path)), channels_(channels), on_done_(std::move(on_done)) {
    for (int r = 0; r < repetitions; ++r) {
      shapes_.insert(shapes_.end(), plan.begin(), plan.end());
    }
  }

  void start() { next_shape(); }

  const AlphaBetaEstimator& estimator() const noexcept { return estimator_; }

 private:
  void next_shape() {
    if (shape_index_ >= shapes_.size()) {
      if (on_done_) on_done_();
      return;
    }
    const ProbeShape& shape = shapes_[shape_index_];
    channels_pool_.clear();
    for (int k = 0; k < channels_; ++k) {
      channels_pool_.push_back(std::make_unique<sim::EdgeChannel>(sim_, path_));
    }
    started_at_ = sim_.now();
    remaining_ = 0;
    // Each probe message is packetized onto the wire (real NICs stream a
    // large send; they do not store-and-forward it whole), so even a
    // "grouped" single message measures the bottleneck streaming rate of a
    // multi-link edge rather than the sum of per-link serializations.
    constexpr Bytes kWireGranularity = 512_KiB;
    std::size_t next_channel = 0;
    for (int c = 0; c < shape.count; ++c) {
      Bytes left = shape.bytes;
      while (left > 0) {
        const Bytes piece = std::min(left, kWireGranularity);
        left -= piece;
        ++remaining_;
        channels_pool_[next_channel % channels_pool_.size()]->send(
            piece, [this] { on_chunk_delivered(); });
        ++next_channel;
      }
    }
  }

  void on_chunk_delivered() {
    if (--remaining_ > 0) return;
    const ProbeShape& shape = shapes_[shape_index_];
    estimator_.add_sample(shape.bytes * static_cast<Bytes>(shape.count),
                          sim_.now() - started_at_);
    ++shape_index_;
    next_shape();
  }

  sim::Simulator& sim_;
  std::vector<sim::FlowLink*> path_;
  std::vector<ProbeShape> shapes_;
  int channels_ = 1;
  std::function<void()> on_done_;
  std::vector<std::unique_ptr<sim::EdgeChannel>> channels_pool_;
  AlphaBetaEstimator estimator_;
  Seconds started_at_ = 0;
  int remaining_ = 0;
  std::size_t shape_index_ = 0;
};

}  // namespace

std::vector<AlphaBeta> Profiler::probe_edges_concurrently(
    const std::vector<std::pair<NodeId, NodeId>>& edges, int channels) {
  sim::Simulator& sim = cluster_.simulator();
  std::vector<std::unique_ptr<EdgeProbe>> probes;
  std::size_t outstanding = edges.size();
  probes.reserve(edges.size());
  for (const auto& [from, to] : edges) {
    probes.push_back(std::make_unique<EdgeProbe>(sim, cluster_.edge_path(from, to), config_.plan,
                                                 config_.repetitions, channels,
                                                 [&outstanding] { --outstanding; }));
  }
  for (auto& probe : probes) probe->start();
  while (outstanding > 0 && sim.step()) {
  }
  // Probe traffic above ran on the single simulated clock; the per-edge
  // least-squares fits below are pure host-side functions of each probe's
  // samples, so they fan out over the solver pool, collected by edge index.
  pool_.set_record_spans(telemetry::host_spans_enabled());
  std::vector<AlphaBeta> results = pool_.map_indexed<AlphaBeta>(
      probes.size(), [&](std::size_t i, int) { return probes[i]->estimator().estimate(); });
  if (telemetry::host_spans_enabled()) {
    telemetry::flush_solver_spans(pool_.take_spans(), "profiler/fit");
  }
  return results;
}

AlphaBeta Profiler::probe_edge(NodeId from, NodeId to) {
  return probe_edges_concurrently({{from, to}}).front();
}

ProfileReport Profiler::profile(LogicalTopology& topo) {
  sim::Simulator& sim = cluster_.simulator();
  ProfileReport report;
  const Seconds start = sim.now();

  // --- Stage 1: intra-instance NVLink profiling, all instances at once. ---
  // Each NVLink pair is a dedicated link, so probing every pair of every
  // instance concurrently is interference-free.
  std::vector<std::pair<NodeId, NodeId>> nvlink_edges;
  for (const auto& edge : topo.edges()) {
    if (edge.type == EdgeType::kNvlink) nvlink_edges.emplace_back(edge.from, edge.to);
  }
  const auto nvlink_costs = probe_edges_concurrently(nvlink_edges);
  if (auto* t = telemetry::get()) {
    t->trace().complete(t->trace().track("profiler"), "intra-instance probes", start,
                        sim.now() - start,
                        telemetry::kv("edges", static_cast<double>(nvlink_edges.size())));
  }
  for (std::size_t i = 0; i < nvlink_edges.size(); ++i) {
    auto& edge = topo.mutable_edge(nvlink_edges[i].first, nvlink_edges[i].second);
    edge.alpha = nvlink_costs[i].alpha;
    edge.beta = nvlink_costs[i].beta;
    edge.profiled = true;
    report.measurements.push_back(
        {nvlink_edges[i].first, nvlink_edges[i].second, nvlink_costs[i]});
  }

  // --- Stage 2: inter-instance NIC profiling, N-1 rounds with barriers. ---
  const int n = cluster_.instance_count();
  for (int round = 1; round < n; ++round) {
    const Seconds round_start = sim.now();
    std::vector<std::pair<NodeId, NodeId>> round_edges;
    for (int inst = 0; inst < n; ++inst) {
      round_edges.emplace_back(NodeId::nic(inst), NodeId::nic((inst + round) % n));
    }
    const auto costs = probe_edges_concurrently(round_edges);  // barrier inside
    // A second pass with four parallel streams exposes the reachable port
    // rate (TCP per-stream ceilings disappear; RDMA measures the same).
    const auto port_costs = probe_edges_concurrently(round_edges, /*channels=*/4);
    for (std::size_t i = 0; i < round_edges.size(); ++i) {
      auto& edge = topo.mutable_edge(round_edges[i].first, round_edges[i].second);
      edge.alpha = costs[i].alpha;
      edge.beta = costs[i].beta;
      edge.port_beta = std::min(costs[i].beta, port_costs[i].beta);
      edge.profiled = true;
      report.measurements.push_back({round_edges[i].first, round_edges[i].second, costs[i]});
    }
    ++report.inter_instance_rounds;
    if (auto* t = telemetry::get()) {
      t->trace().complete(t->trace().track("profiler"),
                          "network round " + std::to_string(round), round_start,
                          sim.now() - round_start,
                          telemetry::kv("edges", static_cast<double>(round_edges.size())));
    }
  }

  // --- Stage 2b: composite cross-instance GPU-GPU edges inherit the NIC
  // pair's measured cost (the wire dominates; PCIe staging overlaps).
  // Always refreshed — re-profiling must propagate new NIC measurements.
  for (auto& edge : topo.mutable_edges()) {
    if (edge.type != EdgeType::kNetwork) continue;
    if (!edge.from.is_gpu() || !edge.to.is_gpu()) continue;
    const NodeId nic_from = NodeId::nic(cluster_.instance_of_rank(edge.from.index));
    const NodeId nic_to = NodeId::nic(cluster_.instance_of_rank(edge.to.index));
    if (topo.has_edge(nic_from, nic_to) && topo.edge(nic_from, nic_to).profiled) {
      const auto& nic_edge = topo.edge(nic_from, nic_to);
      edge.alpha = nic_edge.alpha + 2 * kPcieDefaultAlpha;
      edge.beta = nic_edge.beta;
      edge.port_beta = nic_edge.port_beta;
      edge.profiled = true;
    }
  }

  // --- Stage 3: PCIe defaults for everything unprofiled. -----------------
  for (auto& edge : topo.mutable_edges()) {
    if (!edge.profiled) {
      edge.alpha = kPcieDefaultAlpha;
      edge.beta = kPcieDefaultBeta;
      edge.profiled = true;  // has usable values, just not measured
    }
  }

  report.wall_time = sim.now() - start;
  if (auto* t = telemetry::get()) {
    t->trace().complete(t->trace().track("profiler"), "profile", start, report.wall_time,
                        telemetry::kv("edges", static_cast<double>(report.measurements.size())) +
                            "," + telemetry::kv("rounds", report.inter_instance_rounds));
    t->metrics().counter("profiler.rounds_run").add(1.0);
    t->metrics().histogram("profiler.wall_seconds").observe(report.wall_time);
  }
  ADAPCC_LOG(kInfo, "profiler") << "profiled " << report.measurements.size() << " edges in "
                                << report.wall_time << "s (" << report.inter_instance_rounds
                                << " network rounds)";
  return report;
}

}  // namespace adapcc::profiler
