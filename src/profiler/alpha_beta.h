// Alpha-beta link-cost estimation (Sec. IV-B).
//
// The paper's measurement plan: send a piece of data of size s, n times
// (taking n*(alpha + beta*s)), then a group of size n*s at once (taking
// alpha + beta*n*s), across several (n, s) combinations, and solve for alpha
// and beta. We generalize this to an ordinary least-squares fit of
// t = alpha + beta * bytes over all probe samples, which recovers the same
// two parameters and is robust to measurement noise.
#pragma once

#include <vector>

#include "util/stats.h"
#include "util/units.h"

namespace adapcc::profiler {

struct AlphaBeta {
  Seconds alpha = 0.0;
  double beta = 0.0;  ///< seconds per byte (1/bandwidth)
  double r_squared = 0.0;

  BytesPerSecond bandwidth() const noexcept { return beta > 0 ? 1.0 / beta : 0.0; }
};

class AlphaBetaEstimator {
 public:
  /// Records one probe: `bytes` transferred in `elapsed` seconds.
  void add_sample(Bytes bytes, Seconds elapsed);

  std::size_t sample_count() const noexcept { return bytes_.size(); }

  /// Least-squares estimate. Requires >= 2 samples at distinct sizes.
  /// A negative fitted alpha (possible under noise) is clamped to zero.
  AlphaBeta estimate() const;

 private:
  std::vector<double> bytes_;
  std::vector<double> times_;
};

/// Probe plan entry: send `count` chunks of `bytes` each, back to back.
struct ProbeShape {
  Bytes bytes;
  int count;
};

/// The default probe shapes used by the Profiler: several sizes, each both
/// as repeated small sends and one grouped send, per the paper's scheme.
std::vector<ProbeShape> default_probe_plan();

}  // namespace adapcc::profiler
