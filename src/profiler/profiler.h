// Profiler (Sec. IV-B): measures alpha-beta costs of the logical topology's
// links by driving probe traffic on the simulated hardware.
//
// Procedure, as in the paper:
//   1. All instances run intra-instance GPU-to-GPU profiling concurrently
//      (their links are disjoint, so there is no cross interference).
//   2. Inter-instance NIC-to-NIC profiling runs in N-1 rounds with a barrier
//      between rounds; in round i, instance n probes instance (n+i) % N.
//      This consensus guarantees at most one probe flow on any ingress or
//      egress port at a time — maximal parallelism without interference.
//   3. PCIe edges are not probed (their movement overlaps with network
//      transfers); they receive empirical default costs.
//
// Training is blocked while profiling runs; the report's wall_time is the
// simulated time the block lasted (compared in Fig. 19c).
// Probe *traffic* stays strictly on the single simulated clock: concurrent
// rounds share NIC ports, so their timing interleaves through one Simulator
// and may not be split across host threads. Only the host-side per-edge
// alpha-beta least-squares fits — pure functions of each probe's collected
// samples — fan out over a util::TaskPool (DESIGN.md §10).
#pragma once

#include <vector>

#include "profiler/alpha_beta.h"
#include "topology/cluster.h"
#include "topology/logical_topology.h"
#include "util/task_pool.h"

namespace adapcc::profiler {

struct ProfilerConfig {
  std::vector<ProbeShape> plan = default_probe_plan();
  /// Extra repetitions of the whole plan per link (more samples, more time).
  int repetitions = 1;
  /// Host threads for the per-edge model fits; 0 = the ADAPCC_SOLVER_THREADS
  /// environment variable (default 1 = serial). Fitted costs are identical
  /// at every value.
  int solver_threads = 0;
};

struct EdgeMeasurement {
  topology::NodeId from;
  topology::NodeId to;
  AlphaBeta cost;
};

struct ProfileReport {
  std::vector<EdgeMeasurement> measurements;
  int inter_instance_rounds = 0;
  Seconds wall_time = 0.0;  ///< simulated time training was blocked
};

class Profiler {
 public:
  Profiler(topology::Cluster& cluster, ProfilerConfig config = {})
      : cluster_(cluster),
        config_(std::move(config)),
        pool_(util::solver_threads(config_.solver_threads)) {}

  /// Probes every NVLink and network edge of `topo`, writes the estimated
  /// alpha/beta into the edges, assigns PCIe defaults, and returns the
  /// report. Advances simulated time (the training job is blocked).
  ProfileReport profile(topology::LogicalTopology& topo);

 private:
  /// Sends the probe plan through the edge's physical path, returning the
  /// fitted cost. Runs the simulator inline.
  AlphaBeta probe_edge(topology::NodeId from, topology::NodeId to);

  /// Runs a set of edge probes concurrently (one per edge); returns fitted
  /// costs in the same order.
  std::vector<AlphaBeta> probe_edges_concurrently(
      const std::vector<std::pair<topology::NodeId, topology::NodeId>>& edges, int channels = 1);

  topology::Cluster& cluster_;
  ProfilerConfig config_;
  util::TaskPool pool_;  ///< host-side fit lanes; probe traffic never runs here
};

}  // namespace adapcc::profiler
