// Debug invariant auditor (build with -DADAPCC_AUDIT=ON).
//
// A layer of fail-stop runtime checks over the promises the fast paths make:
//   * FlowLink — cumulative-service byte conservation: every completed
//     transfer was serviced exactly its size, delivered bytes equal the sum
//     of completed transfer sizes, busy time never outruns simulated time;
//   * Simulator — event-heap shape after cancel()/reschedule(): the 4-ary
//     heap ordering, the slot<->heap-position links, sentinel padding, the
//     free list, and generation tags all stay consistent;
//   * comm graph — per-sub acyclicity and behavior-tuple consistency with
//     the active set (Sec. IV-C-3 rules re-derived independently);
//   * synthesizer — sampled CostEvaluator-vs-one-shot cost parity (the
//     memoized evaluator claims bit-identical results; the auditor holds it
//     to that claim during real solves).
//
// Checks compile to no-ops unless ADAPCC_AUDIT is defined, but their
// condition expressions still compile (inside `if (false)`), so an audit
// hook cannot silently bit-rot in regular builds. A failing check logs the
// subsystem, the condition and a detail string, then calls the failure
// handler: std::abort() by default (fail-stop, EXPECT_DEATH-testable), or a
// thrown adapcc::audit::AuditError when a test opts in via
// set_failure_mode(FailureMode::kThrow).
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace adapcc::audit {

#ifdef ADAPCC_AUDIT
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Thrown instead of aborting under FailureMode::kThrow. Note: audit hooks
/// inside noexcept functions (Simulator::cancel) still terminate — the
/// throwing mode only softens checks on ordinary call paths.
class AuditError : public std::logic_error {
 public:
  explicit AuditError(const std::string& message) : std::logic_error(message) {}
};

enum class FailureMode { kAbort, kThrow };

void set_failure_mode(FailureMode mode) noexcept;
FailureMode failure_mode() noexcept;

/// Number of audit checks evaluated so far in this process. Tests assert it
/// grows to prove the hooks are actually wired, not just compiled.
std::uint64_t checks_run() noexcept;
void count_check() noexcept;

/// Reports a violated invariant; aborts or throws per the failure mode.
[[noreturn]] void fail(const char* subsystem, const char* condition, const std::string& detail);

/// Tiny stream builder so check sites can write
///   ADAPCC_AUDIT_CHECK("flow_link", a == b, "a=" << a << " b=" << b);
class Detail {
 public:
  template <typename T>
  Detail& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace adapcc::audit

#ifdef ADAPCC_AUDIT
#define ADAPCC_AUDIT_CHECK(subsystem, cond, detail)                                     \
  do {                                                                                  \
    ::adapcc::audit::count_check();                                                     \
    if (!(cond)) [[unlikely]] {                                                         \
      ::adapcc::audit::fail((subsystem), #cond, (::adapcc::audit::Detail() << detail).str()); \
    }                                                                                   \
  } while (0)
#else
// Disabled: evaluates nothing, but keeps `cond` compiling so audit hooks
// cannot rot in regular builds.
#define ADAPCC_AUDIT_CHECK(subsystem, cond, detail) \
  do {                                              \
    if (false) {                                    \
      static_cast<void>(cond);                      \
    }                                               \
  } while (0)
#endif
