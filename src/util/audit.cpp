#include "util/audit.h"

#include <atomic>
#include <cstdlib>

#include "util/logging.h"

namespace adapcc::audit {

namespace {
std::atomic<FailureMode> g_mode{FailureMode::kAbort};
std::atomic<std::uint64_t> g_checks{0};
}  // namespace

void set_failure_mode(FailureMode mode) noexcept { g_mode.store(mode, std::memory_order_relaxed); }
FailureMode failure_mode() noexcept { return g_mode.load(std::memory_order_relaxed); }

std::uint64_t checks_run() noexcept { return g_checks.load(std::memory_order_relaxed); }
void count_check() noexcept { g_checks.fetch_add(1, std::memory_order_relaxed); }

void fail(const char* subsystem, const char* condition, const std::string& detail) {
  const std::string message = std::string("audit[") + subsystem + "] invariant violated: " +
                              condition + (detail.empty() ? "" : " — " + detail);
  ADAPCC_LOG(kError, "audit") << message;
  if (failure_mode() == FailureMode::kThrow) throw AuditError(message);
  std::abort();
}

}  // namespace adapcc::audit
