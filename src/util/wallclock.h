// Audited wall-clock access for simulated-time code.
//
// Code under src/sim, src/collective and src/synthesizer runs on simulated
// time and must be bit-reproducible, so adapcc_lint bans direct wall-clock
// reads there (rule `wall-clock`). The one legitimate use is *reporting* how
// long the host spent doing something — e.g. the synthesizer's solve time
// for Fig. 19(c). That goes through this wrapper, whose contract is:
//
//   A WallTimer reading may be logged, exported or returned in a report.
//   It must never influence simulation state, event ordering, strategy
//   choice, or any other simulation-visible result.
//
// Keeping the escape hatch in one audited file (outside the linted
// directories) makes every wall-clock dependency greppable.
#pragma once

#include <chrono>

namespace adapcc::util {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  /// Host seconds elapsed since construction (or the last restart()).
  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace adapcc::util
