#include "util/task_pool.h"

#include <cstdlib>
#include <stdexcept>

#include "util/wallclock.h"

namespace adapcc::util {

namespace {

/// Process-wide wall-clock origin so span stamps from different pools line
/// up on one trace timeline (reporting only, wallclock.h contract).
double wall_seconds() {
  static const WallTimer origin;
  return origin.elapsed_seconds();
}

}  // namespace

int solver_threads(int configured) noexcept {
  int threads = configured;
  if (threads <= 0) {
    threads = 1;
    if (const char* env = std::getenv("ADAPCC_SOLVER_THREADS")) {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end != env && parsed > 0) threads = static_cast<int>(parsed);
    }
  }
  if (threads > 256) threads = 256;
  return threads;
}

TaskPool::TaskPool(int threads) {
  thread_count_ = threads < 1 ? 1 : threads;
  pool_epoch_seconds_ = wall_seconds();
  workers_.reserve(static_cast<std::size_t>(thread_count_ - 1));
  for (int lane = 1; lane < thread_count_; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

TaskPool::~TaskPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void TaskPool::run_tasks(Batch& batch, int lane) {
  while (true) {
    const std::size_t index = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= batch.count) return;
    const double started =
        batch.record_spans ? wall_seconds() - pool_epoch_seconds_ : 0.0;
    try {
      (*batch.fn)(index, lane);
    } catch (...) {
      batch.errors[index] = std::current_exception();
    }
    if (batch.record_spans) {
      TaskSpan& span = batch.spans[index];
      span.task = index;
      span.lane = lane;
      span.start_seconds = started;
      span.duration_seconds = wall_seconds() - pool_epoch_seconds_ - started;
    }
    if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task overall: wake the caller (it may be sleeping in done_cv_).
      const std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void TaskPool::worker_loop(int lane) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this, seen_epoch] { return stop_ || batch_epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = batch_epoch_;
      batch = batch_;
      if (batch != nullptr) ++batch->workers_inside;
    }
    if (batch != nullptr) {
      run_tasks(*batch, lane);
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        --batch->workers_inside;
      }
      done_cv_.notify_all();
    }
  }
}

void TaskPool::parallel_for_indexed(std::size_t n,
                                    const std::function<void(std::size_t, int)>& fn) {
  if (workers_.empty() || n <= 1) {
    spans_.clear();
    if (n == 0) return;
    // Serial inline: exactly the loop this pool replaces, including "the
    // first exception aborts the remaining iterations".
    if (!record_spans_) {
      for (std::size_t i = 0; i < n; ++i) fn(i, 0);
      return;
    }
    spans_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double started = wall_seconds() - pool_epoch_seconds_;
      fn(i, 0);
      TaskSpan& span = spans_[i];
      span.task = i;
      span.lane = 0;
      span.start_seconds = started;
      span.duration_seconds = wall_seconds() - pool_epoch_seconds_ - started;
    }
    return;
  }

  Batch batch;
  batch.count = n;
  batch.fn = &fn;
  batch.remaining.store(n, std::memory_order_relaxed);
  batch.errors.resize(n);
  batch.record_spans = record_spans_;
  if (record_spans_) batch.spans.resize(n);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (batch_ != nullptr) {
      throw std::logic_error(
          "TaskPool: nested parallel_for_indexed (a task submitted to its own pool)");
    }
    batch_ = &batch;
    ++batch_epoch_;
  }
  // Past the nesting check: this thread is the sole outermost caller, so
  // touching the pool-level span log is safe.
  spans_.clear();
  work_cv_.notify_all();
  // The caller is lane 0: it works the batch too instead of just waiting.
  run_tasks(batch, 0);
  {
    // Wait for completion of every task AND for every worker to have left
    // the batch — `batch` lives on this stack frame, so no other thread may
    // still hold a reference when we return.
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&batch] {
      return batch.remaining.load(std::memory_order_acquire) == 0 && batch.workers_inside == 0;
    });
    batch_ = nullptr;
  }
  if (record_spans_) spans_ = std::move(batch.spans);
  // Deterministic propagation: the lowest-index failure is what a serial
  // loop would have thrown first.
  for (std::size_t i = 0; i < n; ++i) {
    if (batch.errors[i]) std::rethrow_exception(batch.errors[i]);
  }
}

}  // namespace adapcc::util
