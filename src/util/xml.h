// Minimal XML element tree with serialization and parsing.
//
// Sec. IV-D: "The strategies are output in an XML format and parsed by the
// Communicator." This module provides exactly the subset needed for that
// exchange: nested elements, string attributes, text content. It is not a
// general XML implementation (no namespaces, CDATA, or doctypes).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace adapcc::util {

class XmlElement {
 public:
  explicit XmlElement(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }

  void set_attribute(const std::string& key, std::string value);
  void set_attribute(const std::string& key, double value);
  void set_attribute(const std::string& key, long long value);

  /// Returns the attribute value; throws std::out_of_range if absent.
  const std::string& attribute(const std::string& key) const;
  bool has_attribute(const std::string& key) const noexcept;
  double attribute_as_double(const std::string& key) const;
  long long attribute_as_int(const std::string& key) const;

  /// Appends a child element and returns a reference to it.
  XmlElement& add_child(std::string name);
  /// Appends an already-built element as the last child.
  XmlElement& adopt_child(std::unique_ptr<XmlElement> child);
  const std::vector<std::unique_ptr<XmlElement>>& children() const noexcept { return children_; }

  /// All children with the given element name, in document order.
  std::vector<const XmlElement*> children_named(std::string_view name) const;
  /// First child with the given name, or nullptr.
  const XmlElement* first_child(std::string_view name) const noexcept;

  void set_text(std::string text) { text_ = std::move(text); }
  const std::string& text() const noexcept { return text_; }

  /// Serializes the subtree with 2-space indentation.
  std::string to_string() const;

 private:
  void append_to(std::string& out, int depth) const;

  std::string name_;
  std::map<std::string, std::string> attributes_;
  std::vector<std::unique_ptr<XmlElement>> children_;
  std::string text_;
};

/// Parses a document produced by XmlElement::to_string (or any XML in the
/// supported subset). Throws std::runtime_error on malformed input.
std::unique_ptr<XmlElement> parse_xml(std::string_view document);

}  // namespace adapcc::util
