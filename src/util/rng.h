// Deterministic random-number utilities.
//
// Every stochastic component (compute-time jitter, probe noise, trace
// generation, interference schedules) draws from an explicitly seeded Rng
// that is threaded through constructors, never from a global generator, so
// simulations and tests are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

namespace adapcc::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Gaussian with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Gaussian truncated below at `floor` (rejection-free clamp).
  double normal_at_least(double mean, double stddev, double floor) {
    const double v = normal(mean, stddev);
    return v < floor ? floor : v;
  }

  /// Log-normal parameterized by the mean/stddev of the underlying normal.
  double lognormal(double log_mean, double log_stddev) {
    std::lognormal_distribution<double> dist(log_mean, log_stddev);
    return dist(engine_);
  }

  double exponential(double rate) {
    std::exponential_distribution<double> dist(rate);
    return dist(engine_);
  }

  bool bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Derive an independent child stream; used to give each worker its own
  /// generator without correlated draws.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace adapcc::util
