#include "util/xml.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace adapcc::util {

namespace {

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '&') {
      out += raw[i];
      continue;
    }
    const auto rest = raw.substr(i);
    if (rest.starts_with("&amp;")) {
      out += '&';
      i += 4;
    } else if (rest.starts_with("&lt;")) {
      out += '<';
      i += 3;
    } else if (rest.starts_with("&gt;")) {
      out += '>';
      i += 3;
    } else if (rest.starts_with("&quot;")) {
      out += '"';
      i += 5;
    } else {
      throw std::runtime_error("xml: unknown entity");
    }
  }
  return out;
}

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

void XmlElement::set_attribute(const std::string& key, std::string value) {
  attributes_[key] = std::move(value);
}
void XmlElement::set_attribute(const std::string& key, double value) {
  attributes_[key] = format_double(value);
}
void XmlElement::set_attribute(const std::string& key, long long value) {
  attributes_[key] = std::to_string(value);
}

const std::string& XmlElement::attribute(const std::string& key) const {
  return attributes_.at(key);
}

bool XmlElement::has_attribute(const std::string& key) const noexcept {
  return attributes_.contains(key);
}

double XmlElement::attribute_as_double(const std::string& key) const {
  return std::stod(attribute(key));
}

long long XmlElement::attribute_as_int(const std::string& key) const {
  return std::stoll(attribute(key));
}

XmlElement& XmlElement::add_child(std::string name) {
  children_.push_back(std::make_unique<XmlElement>(std::move(name)));
  return *children_.back();
}

XmlElement& XmlElement::adopt_child(std::unique_ptr<XmlElement> child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

std::vector<const XmlElement*> XmlElement::children_named(std::string_view name) const {
  std::vector<const XmlElement*> out;
  for (const auto& child : children_) {
    if (child->name() == name) out.push_back(child.get());
  }
  return out;
}

const XmlElement* XmlElement::first_child(std::string_view name) const noexcept {
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

std::string XmlElement::to_string() const {
  std::string out;
  append_to(out, 0);
  return out;
}

void XmlElement::append_to(std::string& out, int depth) const {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  out += indent;
  out += '<';
  out += name_;
  for (const auto& [key, value] : attributes_) {
    out += ' ';
    out += key;
    out += "=\"";
    out += escape(value);
    out += '"';
  }
  if (children_.empty() && text_.empty()) {
    out += "/>\n";
    return;
  }
  out += '>';
  if (!text_.empty()) out += escape(text_);
  if (!children_.empty()) {
    out += '\n';
    for (const auto& child : children_) child->append_to(out, depth + 1);
    out += indent;
  }
  out += "</";
  out += name_;
  out += ">\n";
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view doc) : doc_(doc) {}

  std::unique_ptr<XmlElement> parse() {
    skip_whitespace_and_prolog();
    auto root = parse_element();
    skip_whitespace();
    if (pos_ != doc_.size()) throw std::runtime_error("xml: trailing content after root");
    return root;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error(std::string("xml: ") + what + " at offset " + std::to_string(pos_));
  }

  char peek() const { return pos_ < doc_.size() ? doc_[pos_] : '\0'; }
  char next() {
    if (pos_ >= doc_.size()) fail("unexpected end of document");
    return doc_[pos_++];
  }
  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!consume(c)) fail("unexpected character");
  }
  void skip_whitespace() {
    while (pos_ < doc_.size() && std::isspace(static_cast<unsigned char>(doc_[pos_]))) ++pos_;
  }
  void skip_whitespace_and_prolog() {
    skip_whitespace();
    if (doc_.substr(pos_).starts_with("<?")) {
      const auto end = doc_.find("?>", pos_);
      if (end == std::string_view::npos) fail("unterminated prolog");
      pos_ = end + 2;
      skip_whitespace();
    }
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (pos_ < doc_.size()) {
      const char c = doc_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' || c == '.' ||
          c == ':') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected name");
    return std::string(doc_.substr(start, pos_ - start));
  }

  std::unique_ptr<XmlElement> parse_element() {
    expect('<');
    auto element = std::make_unique<XmlElement>(parse_name());
    // Attributes.
    for (;;) {
      skip_whitespace();
      if (consume('/')) {
        expect('>');
        return element;
      }
      if (consume('>')) break;
      const std::string key = parse_name();
      skip_whitespace();
      expect('=');
      skip_whitespace();
      expect('"');
      const std::size_t start = pos_;
      while (peek() != '"') next();
      element->set_attribute(key, unescape(doc_.substr(start, pos_ - start)));
      expect('"');
    }
    // Content: children and/or text.
    std::string text;
    for (;;) {
      if (pos_ >= doc_.size()) fail("unterminated element");
      if (peek() == '<') {
        if (doc_.substr(pos_).starts_with("</")) {
          pos_ += 2;
          const std::string closing = parse_name();
          if (closing != element->name()) fail("mismatched closing tag");
          skip_whitespace();
          expect('>');
          element->set_text(unescape(trim(text)));
          return element;
        }
        element->adopt_child(parse_element());
      } else {
        text += next();
      }
    }
  }

  static std::string trim(const std::string& s) {
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
    return s.substr(begin, end - begin);
  }

  std::string_view doc_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<XmlElement> parse_xml(std::string_view document) {
  return Parser(document).parse();
}

}  // namespace adapcc::util
