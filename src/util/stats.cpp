#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adapcc::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) throw std::invalid_argument("percentile of empty sample set");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile q outside [0,1]");
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) throw std::invalid_argument("geometric_mean of empty set");
  double log_sum = 0.0;
  for (const double v : values) {
    if (v <= 0.0) throw std::invalid_argument("geometric_mean requires positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> samples,
                                                     std::size_t points) {
  std::vector<std::pair<double, double>> cdf;
  if (samples.empty() || points == 0) return cdf;
  std::sort(samples.begin(), samples.end());
  cdf.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = points == 1 ? 1.0 : static_cast<double>(i) / static_cast<double>(points - 1);
    // Same linear interpolation between order statistics as percentile();
    // truncating to the lower sample would bias every quantile downward.
    const double pos = q * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, samples.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    cdf.emplace_back(samples[lo] * (1.0 - frac) + samples[hi] * frac, q);
  }
  return cdf;
}

LineFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("fit_line needs >= 2 paired samples");
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-30) throw std::invalid_argument("fit_line: degenerate x values");
  LineFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += r * r;
  }
  fit.r_squared = ss_tot > 1e-30 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace adapcc::util
