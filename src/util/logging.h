// Minimal leveled logger.
//
// The library is a simulator-backed reproduction, so logging is kept light:
// a global level filter and printf-free iostream formatting. All output goes
// to stderr so bench harnesses can print machine-readable rows on stdout.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace adapcc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log level. Defaults to kWarn so tests and benches stay quiet.
/// The initial level can be overridden with the ADAPCC_LOG_LEVEL environment
/// variable, read once at startup. Accepted values (case-insensitive):
/// "debug"/"0", "info"/"1", "warn"/"warning"/"2", "error"/"3",
/// "off"/"none"/"4". Unset or unrecognised values keep the kWarn default;
/// set_log_level() still wins afterwards.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void emit(LogLevel level, std::string_view tag, const std::string& message);
}

/// Stream-style log statement: LOG_AT(kInfo, "profiler") << "x=" << x;
class LogStatement {
 public:
  LogStatement(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;
  ~LogStatement() {
    if (level_ >= log_level()) detail::emit(level_, tag_, stream_.str());
  }

  template <typename T>
  LogStatement& operator<<(const T& value) {
    if (level_ >= log_level()) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view tag_;
  std::ostringstream stream_;
};

}  // namespace adapcc::util

#define ADAPCC_LOG(level, tag) ::adapcc::util::LogStatement(::adapcc::util::LogLevel::level, tag)
