// Small statistics toolkit used by the profiler, the benches and the tests:
// running moments, percentiles/CDFs (Figs. 3b, 19d), geometric means
// (Sec. VI-C speed-up summaries) and least-squares line fitting (alpha-beta
// regression in Sec. IV-B).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace adapcc::util {

/// Welford running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept;  ///< Sample variance; 0 when count < 2.
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation; `q` in [0, 1]. Sorts a copy.
double percentile(std::vector<double> samples, double q);

/// Geometric mean; all inputs must be positive.
double geometric_mean(const std::vector<double>& values);

/// Empirical CDF evaluated at evenly spaced sample quantiles.
/// Returns (value, cumulative_probability) pairs suitable for plotting.
std::vector<std::pair<double, double>> empirical_cdf(std::vector<double> samples,
                                                     std::size_t points = 100);

/// Ordinary least squares fit y = intercept + slope * x.
/// Used to recover (alpha, beta) from transfer-time measurements.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};
LineFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace adapcc::util
