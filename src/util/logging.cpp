#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <optional>

namespace adapcc::util {

namespace {

/// Parses ADAPCC_LOG_LEVEL: a level name (case-insensitive) or its numeric
/// value 0-4. Unset or unparsable -> nullopt (keep the kWarn default).
std::optional<LogLevel> level_from_env() {
  const char* raw = std::getenv("ADAPCC_LOG_LEVEL");
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  std::string value;
  for (const char* p = raw; *p != '\0'; ++p) {
    value.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));
  }
  if (value == "debug" || value == "0") return LogLevel::kDebug;
  if (value == "info" || value == "1") return LogLevel::kInfo;
  if (value == "warn" || value == "warning" || value == "2") return LogLevel::kWarn;
  if (value == "error" || value == "3") return LogLevel::kError;
  if (value == "off" || value == "none" || value == "4") return LogLevel::kOff;
  return std::nullopt;
}

LogLevel initial_level() { return level_from_env().value_or(LogLevel::kWarn); }

std::atomic<LogLevel> g_level{initial_level()};
std::mutex g_emit_mutex;

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

namespace detail {
void emit(LogLevel level, std::string_view tag, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr << "[" << level_name(level) << "][" << tag << "] " << message << '\n';
}
}  // namespace detail

}  // namespace adapcc::util
