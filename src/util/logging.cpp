#include "util/logging.h"

#include <atomic>

namespace adapcc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

namespace detail {
void emit(LogLevel level, std::string_view tag, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr << "[" << level_name(level) << "][" << tag << "] " << message << '\n';
}
}  // namespace detail

}  // namespace adapcc::util
