// Fixed-size worker pool with a deterministic indexed fan-out/reduce API.
//
// The synthesizer's candidate search and the profiler's per-edge model fits
// are embarrassingly parallel *host-side* work: every task is a pure
// function of its submission index, so results can be collected by index and
// reduced in submission order, making the outcome bit-identical regardless
// of thread count or OS scheduling. The simulated clock never runs here —
// only host-side evaluation does (DESIGN.md §10) — which is why this file,
// not the simulator, is the one sanctioned home for raw threads in the
// library (adapcc_lint rule `threads`).
//
// Contract:
//   * TaskPool(n) runs tasks on the calling thread plus n-1 workers;
//     TaskPool(1) spawns no threads and executes inline — byte-for-byte the
//     behavior of the serial loop it replaces.
//   * parallel_for_indexed(n, fn) blocks until all n tasks finished. Tasks
//     are claimed dynamically (an atomic cursor), so scheduling is
//     nondeterministic — which is exactly why nothing may depend on it:
//     tasks write only to their own index slot.
//   * Exceptions propagate: if tasks throw, the exception of the LOWEST
//     task index is rethrown to the caller after the batch drains (the same
//     exception a serial loop would have surfaced first); the rest are
//     dropped. Workers never terminate the process.
//   * argmin_indexed reduces with the serial loop's exact tie-break: the
//     first (lowest) index with a strictly smaller cost wins.
//   * Batches must not nest: a task must not submit to its own pool.
//
// Batches can optionally record a wall-clock TaskSpan per task (lane,
// start, duration). telemetry::flush_solver_spans() turns those into
// tid-tagged Chrome-trace spans on per-worker tracks; the recording gate
// lives with the caller so this file stays free of the telemetry dependency
// (adapcc_telemetry links adapcc_util, not the other way around).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>  // lint:threads — this IS the sanctioned thread surface
#include <vector>

namespace adapcc::util {

/// Resolves the solver thread count: `configured` > 0 wins; 0 falls back to
/// the ADAPCC_SOLVER_THREADS environment variable (read per call); unset or
/// unparsable means 1 (serial). The result is clamped to [1, 256].
int solver_threads(int configured) noexcept;

/// Wall-clock record of one pool task, for host-side trace spans. Times are
/// seconds since the pool's construction; reporting only, never fed back
/// into simulation state (util/wallclock.h contract).
struct TaskSpan {
  std::size_t task = 0;
  int lane = 0;
  double start_seconds = 0.0;
  double duration_seconds = 0.0;
};

class TaskPool {
 public:
  /// A pool executing on `threads` lanes: the caller plus `threads - 1`
  /// workers. `threads <= 1` spawns nothing and runs every batch inline.
  explicit TaskPool(int threads = 1);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Execution lanes (caller included); >= 1.
  int thread_count() const noexcept { return thread_count_; }
  bool serial() const noexcept { return workers_.empty(); }

  /// Record TaskSpans for subsequent batches (off by default); fetch them
  /// with take_spans() after each batch. Callers gate this on telemetry.
  void set_record_spans(bool record) noexcept { record_spans_ = record; }

  /// Spans of the most recent batch, in task-index order. Clears the log.
  std::vector<TaskSpan> take_spans() { return std::move(spans_); }

  /// Runs fn(task_index, lane) for every task_index in [0, n) and blocks
  /// until all completed. `lane` is in [0, thread_count()): 0 is the calling
  /// thread, 1.. are workers. A task may use `lane` to pick a per-thread
  /// arena, but its *result* must depend on task_index only.
  void parallel_for_indexed(std::size_t n,
                            const std::function<void(std::size_t, int)>& fn);

  /// Index-only convenience overload.
  void parallel_for_indexed(std::size_t n, const std::function<void(std::size_t)>& fn) {
    parallel_for_indexed(n, [&fn](std::size_t index, int) { fn(index); });
  }

  /// Maps [0, n) through `fn`, collecting results by submission index.
  template <typename R, typename Fn>
  std::vector<R> map_indexed(std::size_t n, Fn&& fn) {
    std::vector<R> out(n);
    parallel_for_indexed(n,
                         [&](std::size_t index, int lane) { out[index] = fn(index, lane); });
    return out;
  }

  /// Deterministic argmin: evaluates cost(i) for all i in [0, n) on the pool
  /// and returns the index of the minimum, ties broken toward the lowest
  /// index — bit-identical to `for (i) if (cost[i] < best) ...` regardless
  /// of thread count. Returns n when n == 0.
  template <typename Fn>
  std::size_t argmin_indexed(std::size_t n, Fn&& cost) {
    const std::vector<double> costs =
        map_indexed<double>(n, [&cost](std::size_t index, int) { return cost(index); });
    std::size_t best = n;
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (costs[i] < best_cost) {
        best_cost = costs[i];
        best = i;
      }
    }
    return best;
  }

 private:
  struct Batch {
    std::size_t count = 0;
    const std::function<void(std::size_t, int)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
    /// First-per-index exception slots; rethrown lowest-index-first.
    std::vector<std::exception_ptr> errors;
    bool record_spans = false;
    std::vector<TaskSpan> spans;  ///< slot per task, filled by the running lane
    /// Workers currently between "picked up this batch" and "left it"
    /// (guarded by the pool mutex). The caller waits for zero before the
    /// stack-allocated batch goes out of scope.
    int workers_inside = 0;
  };

  void worker_loop(int lane);
  void run_tasks(Batch& batch, int lane);

  int thread_count_ = 1;
  std::vector<std::thread> workers_;  // lint:threads — sanctioned pool surface
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers wait for a batch / stop
  std::condition_variable done_cv_;  ///< caller waits for batch completion
  Batch* batch_ = nullptr;           ///< the single in-flight batch
  std::uint64_t batch_epoch_ = 0;    ///< bumped per batch so workers re-arm
  bool stop_ = false;
  bool record_spans_ = false;
  std::vector<TaskSpan> spans_;      ///< last batch's spans (caller thread only)
  double pool_epoch_seconds_ = 0.0;  ///< wall time origin of span stamps
};

}  // namespace adapcc::util
