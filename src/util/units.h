// Units and conversion helpers shared across the library.
//
// Conventions used throughout the code base:
//   * time is `double` seconds (simulated time),
//   * data sizes are `std::uint64_t` bytes,
//   * bandwidth is `double` bytes/second,
//   * the alpha-beta cost model stores alpha in seconds and beta in
//     seconds/byte (the inverse of bandwidth), as in TACCL and Sec. IV-B
//     of the paper.
#pragma once

#include <cstdint>

namespace adapcc {

using Seconds = double;
using Bytes = std::uint64_t;
using BytesPerSecond = double;

inline constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ull; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return v * 1024ull * 1024ull; }
inline constexpr Bytes operator""_GiB(unsigned long long v) { return v * 1024ull * 1024ull * 1024ull; }

/// Decimal megabytes, matching how the paper quotes model sizes (528 MB etc.).
inline constexpr Bytes megabytes(double mb) {
  return static_cast<Bytes>(mb * 1e6);
}

/// Network-style gigabits per second to bytes per second (decimal).
inline constexpr BytesPerSecond gbps(double g) { return g * 1e9 / 8.0; }

/// NVLink-style gigabytes per second to bytes per second (decimal).
inline constexpr BytesPerSecond gBps(double g) { return g * 1e9; }

inline constexpr Seconds microseconds(double us) { return us * 1e-6; }
inline constexpr Seconds milliseconds(double ms) { return ms * 1e-3; }

/// Algorithm bandwidth as defined in Sec. VI-C: data size divided by the
/// time taken to complete the collective, reported in GB/s.
inline constexpr double algo_bandwidth_gbps(Bytes size, Seconds elapsed) {
  return elapsed > 0 ? static_cast<double>(size) / elapsed / 1e9 : 0.0;
}

}  // namespace adapcc
