// Adapting to a volatile cloud network (Secs. II-B, VI-D).
//
// Per-server bandwidth follows a cloud trace (cross-traffic dips). AdapCC
// reprofiles on the fly — no checkpoint, no relaunch — and reconstructs its
// communication graphs only when the synthesized strategy actually changes.
//
// Build & run:  ./build/examples/volatile_network
#include <cstdio>

#include "profiler/trace.h"
#include "runtime/adapcc.h"
#include "topology/testbeds.h"

using namespace adapcc;

int main() {
  sim::Simulator simulator;
  topology::Cluster cluster(simulator, topology::homo_testbed());

  // Shape each server's NIC with an amplified cloud trace.
  std::vector<profiler::BandwidthTrace> traces;
  for (int inst = 0; inst < 4; ++inst) {
    traces.push_back(
        profiler::BandwidthTrace::synthetic_cloud(300.0, 15.0, 7000 + inst).amplified(0.5));
  }
  profiler::TraceShaper shaper(cluster, std::move(traces));
  shaper.start();

  runtime::Adapcc adapcc(cluster);
  adapcc.init();
  adapcc.setup();

  const Bytes tensor = megabytes(256);
  for (int period = 0; period < 6; ++period) {
    // Train for a while (collectives run under whatever the network does);
    // the computation between collectives advances simulated time, so the
    // cloud trace actually moves between profiling periods.
    Seconds comm = 0;
    for (int i = 0; i < 10; ++i) {
      simulator.run_until(simulator.now() + 4.0);  // compute phase
      comm += adapcc.allreduce(tensor).elapsed();
    }
    std::printf("period %d: mean allreduce %.1f ms (NIC capacities now:", period,
                comm / 10 * 1e3);
    for (int inst = 0; inst < 4; ++inst) {
      std::printf(" %.0fG", cluster.nic_capacity(inst) * 8 / 1e9);
    }
    std::printf(")\n");

    // Periodic runtime profiling (adapcc.profile()) — the paper uses every
    // 500 iterations; here after each batch of 10 collectives.
    const auto report = adapcc.reprofile(tensor);
    std::printf("  reprofiled in %.0f ms (solve %.1f ms); graph %s\n",
                report.profiling_time * 1e3, report.solve_time_seconds * 1e3,
                report.graph_changed ? "RECONSTRUCTED (no restart, no checkpoint)"
                                     : "unchanged, training resumed immediately");
  }
  shaper.stop();
  return 0;
}
