// Mixture-of-experts token dispatch with adapcc.alltoall() — the fastMoE
// integration of Sec. VI-D: each GPU worker hosts one expert; every
// iteration the gate routes tokens, and an AllToAll exchanges each worker's
// token buffer with every other expert (replacing fastMoE's NCCL P2P).
//
// Build & run:  ./build/examples/moe_alltoall
#include <cstdio>

#include "baselines/backend.h"
#include "runtime/adapcc.h"
#include "topology/testbeds.h"
#include "training/model_spec.h"

using namespace adapcc;

int main() {
  sim::Simulator simulator;
  topology::Cluster cluster(simulator, topology::homo_testbed());
  runtime::Adapcc adapcc(cluster);
  adapcc.init();
  adapcc.setup();

  const Bytes token_buffer = training::moe().tensor_bytes;  // 512 MB of tokens

  // Dispatch: tokens leave each worker for the experts chosen by the gate.
  const auto dispatch = adapcc.alltoall(token_buffer);
  std::printf("token dispatch  (512 MB): %.1f ms, %.2f GB/s\n", dispatch.elapsed() * 1e3,
              algo_bandwidth_gbps(token_buffer, dispatch.elapsed()));

  // Verify every expert received a distinct shard from every worker.
  int pairs = 0;
  for (const auto& [dst, froms] : dispatch.alltoall_received) pairs += static_cast<int>(froms.size());
  std::printf("expert inboxes: %d (src,dst) shards delivered across %d workers\n", pairs,
              cluster.world_size());

  // Combine: expert outputs return to the owning workers (second AllToAll).
  const auto combine = adapcc.alltoall(token_buffer);
  std::printf("token combine   (512 MB): %.1f ms\n", combine.elapsed() * 1e3);

  // Compare against NCCL's ncclSend/ncclRecv implementation.
  baselines::NcclBackend nccl(cluster);
  std::vector<int> ranks;
  for (int r = 0; r < cluster.world_size(); ++r) ranks.push_back(r);
  const auto nccl_dispatch = nccl.run(collective::Primitive::kAllToAll, ranks, token_buffer);
  std::printf("NCCL P2P dispatch: %.1f ms -> AdapCC is %.2fx faster\n",
              nccl_dispatch.elapsed() * 1e3, nccl_dispatch.elapsed() / dispatch.elapsed());
  return 0;
}
