// Quickstart: bring up AdapCC on a simulated cluster and run collectives.
//
// Mirrors the library's intended usage (Sec. VI-A):
//   1. describe / detect the cluster        -> Cluster + adapcc.init()
//   2. establish transmission contexts      -> adapcc.setup()
//   3. call collective primitives           -> adapcc.allreduce(), ...
//
// Build & run:  ./build/examples/quickstart
// With tracing: ./build/examples/quickstart --trace-out trace.json
//   (open trace.json in https://ui.perfetto.dev or chrome://tracing; add
//   --metrics-csv metrics.csv / --metrics-json metrics.json for the flat
//   per-iteration metrics dump)
#include <cstdio>
#include <cstring>
#include <string>

#include "runtime/adapcc.h"
#include "topology/testbeds.h"
#include "training/trainer.h"

using namespace adapcc;

int main(int argc, char** argv) {
  runtime::TelemetryOptions telemetry;
  const auto usage = [] {
    std::fprintf(stderr,
                 "usage: quickstart [--trace-out trace.json] [--metrics-csv metrics.csv] "
                 "[--metrics-json metrics.json]\n");
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    std::string* target = nullptr;
    if (std::strcmp(argv[i], "--trace-out") == 0) {
      target = &telemetry.trace_path;
    } else if (std::strcmp(argv[i], "--metrics-csv") == 0) {
      target = &telemetry.metrics_csv_path;
    } else if (std::strcmp(argv[i], "--metrics-json") == 0) {
      target = &telemetry.metrics_json_path;
    }
    if (target == nullptr || i + 1 >= argc) return usage();
    *target = argv[++i];
  }
  const bool tracing = !telemetry.trace_path.empty() || !telemetry.metrics_csv_path.empty() ||
                       !telemetry.metrics_json_path.empty();

  // A simulated two-server cluster: one fully NVLinked A100 box and one
  // with fragmented NVLink wiring (only pairs (0,1) and (2,3) connected).
  sim::Simulator simulator;
  topology::Cluster cluster(simulator, {topology::a100_server("node-a"),
                                        topology::fragmented_a100_server("node-b")});

  runtime::Adapcc adapcc(cluster);
  if (tracing) adapcc.enable_telemetry(telemetry);  // exported on shutdown
  adapcc.init();  // detect topology, profile links, warm the synthesizer
  const Seconds setup_time = adapcc.setup();
  std::printf("init done: %d ranks, %zu logical edges, detection %.2fs, setup %.0f ms\n",
              cluster.world_size(), adapcc.topology().edge_count(), adapcc.detection_time(),
              setup_time * 1e3);

  // AllReduce a 64 MB gradient tensor across all 8 GPUs.
  const auto result = adapcc.allreduce(megabytes(64));
  std::printf("allreduce(64 MB) completed in %.2f ms -> %.2f GB/s algorithm bandwidth\n",
              result.elapsed() * 1e3, algo_bandwidth_gbps(megabytes(64), result.elapsed()));

  // Every rank now holds the same aggregated value for every chunk.
  const double rank0_chunk0 = result.delivered.at(0)[0][0];
  bool consistent = true;
  for (const auto& [rank, subs] : result.delivered) {
    if (subs[0][0] != rank0_chunk0) consistent = false;
  }
  std::printf("all ranks consistent: %s\n", consistent ? "yes" : "NO");

  // The synthesized strategy is ordinary data: inspect or persist it as XML.
  const auto& strategy = adapcc.strategy_for(collective::Primitive::kAllReduce, megabytes(64));
  std::printf("installed strategy: %zu parallel sub-collective(s), chunk %lld KiB\n",
              strategy.subs.size(), static_cast<long long>(strategy.subs[0].chunk_bytes / 1024));

  // Other primitives work the same way.
  const auto a2a = adapcc.alltoall(megabytes(32));
  std::printf("alltoall(32 MB) completed in %.2f ms\n", a2a.elapsed() * 1e3);

  // A short data-parallel training run under adaptive relay control. With
  // --trace-out this populates the trainer / coordinator / relay tracks of
  // the trace on top of the link / executor activity above.
  training::TrainerConfig trainer_config;
  trainer_config.iterations = 5;
  training::Trainer trainer(cluster, training::ComputeModel(cluster, training::gpt2(), util::Rng(7)),
                            trainer_config);
  const auto stats = trainer.train_with_adapcc(adapcc);
  std::printf("trained %zu iterations: mean iteration %.1f ms, partial fraction %.2f\n",
              stats.iterations.size(), stats.mean_iteration_time() * 1e3,
              stats.partial_fraction());
  if (tracing && adapcc.export_telemetry()) {
    if (!telemetry.trace_path.empty()) {
      std::printf("trace written to %s (open in ui.perfetto.dev)\n",
                  telemetry.trace_path.c_str());
    }
  }
  return 0;
}
