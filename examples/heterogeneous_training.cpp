// Data-parallel GPT-2 training on a heterogeneous cluster (the workload the
// paper's introduction motivates): two A100 servers and two V100 servers,
// where the V100s straggle every iteration. AdapCC's coordinator triggers
// partial communication, uses non-ready GPUs as relays/joiners, and the
// iteration no longer pays the full collective after the stragglers finish.
//
// Build & run:  ./build/examples/heterogeneous_training
#include <cstdio>

#include "baselines/backend.h"
#include "runtime/adapcc.h"
#include "topology/testbeds.h"
#include "training/compute_model.h"
#include "training/model_spec.h"
#include "training/trainer.h"

using namespace adapcc;

int main() {
  constexpr int kIterations = 20;
  constexpr int kBatch = 24;
  const auto model = training::gpt2();

  training::TrainerConfig config;
  config.iterations = kIterations;
  config.batch_per_gpu = kBatch;

  // --- AdapCC -------------------------------------------------------------
  double adapcc_throughput = 0.0;
  {
    sim::Simulator simulator;
    topology::Cluster cluster(simulator, topology::heter_testbed());
    runtime::Adapcc adapcc(cluster);
    adapcc.init();
    adapcc.setup();
    training::Trainer trainer(
        cluster, training::ComputeModel(cluster, model, util::Rng(7)), config);
    const auto stats = trainer.train_with_adapcc(adapcc);
    adapcc_throughput = stats.throughput(kBatch * cluster.world_size());
    std::printf("AdapCC : %.0f samples/s, mean iteration %.0f ms, partial comm in %.0f%% of "
                "iterations\n",
                adapcc_throughput, stats.mean_iteration_time() * 1e3,
                stats.partial_fraction() * 100);
    std::printf("         relay assignments per rank:");
    for (int rank = 0; rank < cluster.world_size(); ++rank) {
      const auto it = stats.relay_count.find(rank);
      std::printf(" %d", it == stats.relay_count.end() ? 0 : it->second);
    }
    std::printf("  (ranks 8-15 are the slower V100s)\n");
  }

  // --- NCCL baseline --------------------------------------------------------
  {
    sim::Simulator simulator;
    topology::Cluster cluster(simulator, topology::heter_testbed());
    baselines::NcclBackend nccl(cluster);
    training::Trainer trainer(
        cluster, training::ComputeModel(cluster, model, util::Rng(7)), config);
    const auto stats = trainer.train_with_backend(nccl);
    const double nccl_throughput = stats.throughput(kBatch * cluster.world_size());
    std::printf("NCCL   : %.0f samples/s, mean iteration %.0f ms\n", nccl_throughput,
                stats.mean_iteration_time() * 1e3);
    std::printf("AdapCC speedup: %.2fx\n", adapcc_throughput / nccl_throughput);
  }
  return 0;
}
