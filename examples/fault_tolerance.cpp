// Fault recovery without restarting the job (Sec. IV-C-2).
//
// A worker dies mid-training (its tensor never becomes ready). With NCCL
// the job would hang and need a checkpoint + full relaunch; AdapCC's
// coordinator declares the worker faulty after T_fault, phase-1 results are
// kept, the worker is excluded from the group, the data loader re-splits
// the global batch, and training continues.
//
// Build & run:  ./build/examples/fault_tolerance
#include <cstdio>

#include "relay/data_loader.h"
#include "runtime/adapcc.h"
#include "topology/testbeds.h"
#include "training/model_spec.h"

using namespace adapcc;

int main() {
  sim::Simulator simulator;
  topology::Cluster cluster(simulator, topology::homo_testbed());
  runtime::Adapcc adapcc(cluster);
  adapcc.init();
  adapcc.setup();

  const Bytes tensor = training::gpt2().tensor_bytes;
  const int global_batch = 16 * cluster.world_size();
  relay::DataLoader loader(global_batch, adapcc.participants());

  // A few healthy iterations.
  for (int iteration = 0; iteration < 3; ++iteration) {
    std::map<int, Seconds> ready;
    const Seconds t0 = simulator.now();
    for (const int r : adapcc.participants()) ready[r] = t0 + 0.35;
    const auto result = adapcc.allreduce_adaptive(tensor, ready);
    std::printf("iteration %d: comm %.0f ms, %zu workers\n", iteration,
                result.comm_time * 1e3, adapcc.participants().size());
  }

  // Iteration 3: rank 11 crashes — its tensor never arrives.
  {
    std::map<int, Seconds> ready;
    const Seconds t0 = simulator.now();
    for (const int r : adapcc.participants()) ready[r] = t0 + 0.35;
    ready[11] = t0 + 1e9;  // never
    const auto result = adapcc.allreduce_adaptive(tensor, ready);
    std::printf("iteration 3: worker 11 unresponsive -> declared faulty after the T_fault "
                "window (%zu faulty), training NOT restarted\n",
                result.faulty.size());
    adapcc.exclude_workers(result.faulty);
    loader.redistribute(result.faulty);
    std::printf("  data loader re-split: %zu workers, global batch still %d "
                "(e.g. worker 0 now computes %d samples)\n",
                loader.workers().size(), loader.global_batch_size(), loader.batch_of(0));
  }

  // Training proceeds with 15 workers; graphs were rebuilt transparently.
  for (int iteration = 4; iteration < 6; ++iteration) {
    std::map<int, Seconds> ready;
    const Seconds t0 = simulator.now();
    for (const int r : adapcc.participants()) ready[r] = t0 + 0.35;
    const auto result = adapcc.allreduce_adaptive(tensor, ready);
    std::printf("iteration %d: comm %.0f ms, %zu workers (recovered)\n", iteration,
                result.comm_time * 1e3, adapcc.participants().size());
  }
  std::printf("compare: PyTorch Elastic needs ~15 s to detect the fault and then restarts the "
              "whole job (~%.0f s, Fig. 19c cost model)\n",
              runtime::nccl_restart_cost(16, tensor));
  return 0;
}
