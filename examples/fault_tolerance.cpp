// Fault recovery without restarting the job (Sec. IV-C-2).
//
// Three failure scenarios on one cluster:
//   1. A worker's tensor never becomes ready (slow death): the coordinator
//      declares it faulty after T_fault, phase-1 results are kept, the
//      worker is excluded and the data loader re-splits the global batch.
//   2. A worker crashes MID-COLLECTIVE, after contributing a prefix of its
//      chunks: the executor watchdog aborts the stalled run with a
//      structured error, and Adapcc::run_resilient excludes the crash
//      suspects, resynthesizes for the survivors and re-executes.
//   3. The crashed workers come back (restart on a spare): include_workers
//      re-admits them and DataLoader::readmit restores their shards while
//      keeping the global batch invariant.
//
// With NCCL any of these would hang the job and need a checkpoint + full
// relaunch.
//
// Build & run:  ./build/examples/fault_tolerance
#include <cstdio>

#include "chaos/fault_injector.h"
#include "relay/data_loader.h"
#include "runtime/adapcc.h"
#include "topology/testbeds.h"
#include "training/model_spec.h"

using namespace adapcc;

int main() {
  sim::Simulator simulator;
  topology::Cluster cluster(simulator, topology::homo_testbed());
  runtime::Adapcc adapcc(cluster);
  adapcc.init();
  adapcc.setup();

  const Bytes tensor = training::gpt2().tensor_bytes;
  const int global_batch = 16 * cluster.world_size();
  relay::DataLoader loader(global_batch, adapcc.participants());

  // A few healthy iterations.
  for (int iteration = 0; iteration < 3; ++iteration) {
    std::map<int, Seconds> ready;
    const Seconds t0 = simulator.now();
    for (const int r : adapcc.participants()) ready[r] = t0 + 0.35;
    const auto result = adapcc.allreduce_adaptive(tensor, ready);
    std::printf("iteration %d: comm %.0f ms, %zu workers\n", iteration,
                result.comm_time * 1e3, adapcc.participants().size());
  }

  // Iteration 3: rank 11 crashes — its tensor never arrives.
  {
    std::map<int, Seconds> ready;
    const Seconds t0 = simulator.now();
    for (const int r : adapcc.participants()) ready[r] = t0 + 0.35;
    ready[11] = t0 + 1e9;  // never
    const auto result = adapcc.allreduce_adaptive(tensor, ready);
    std::printf("iteration 3: worker 11 unresponsive -> declared faulty after the T_fault "
                "window (%zu faulty), training NOT restarted\n",
                result.faulty.size());
    adapcc.exclude_workers(result.faulty);
    loader.redistribute(result.faulty);
    std::printf("  data loader re-split: %zu workers, global batch still %d "
                "(e.g. worker 0 now computes %d samples)\n",
                loader.workers().size(), loader.global_batch_size(), loader.batch_of(0));
  }

  // Iteration 4: worker 5 dies MID-COLLECTIVE. The chaos injector schedules
  // the crash on the simulated clock; worker 5 contributes the chunks it
  // filled before dying, then its remaining chunks never appear. The
  // executor watchdog aborts the stalled attempt and run_resilient
  // re-executes for the survivors.
  {
    const Seconds t0 = simulator.now();
    chaos::FaultSchedule schedule;
    schedule.crashes.push_back({5, t0 + 0.10});
    chaos::FaultInjector injector(cluster, schedule, /*seed=*/1);
    injector.arm();

    runtime::ResilienceOptions options;
    for (const int r : adapcc.participants()) {
      options.collective.fill_start[r] = t0;        // gradients fill during backprop
      options.collective.ready_at[r] = t0 + 0.35;   // fully ready
    }
    options.collective.dead_at = injector.dead_at();
    const auto report = adapcc.run_resilient(collective::Primitive::kAllReduce, tensor, options);
    std::printf("iteration 4: worker 5 crashed mid-collective -> watchdog abort, "
                "%d attempt(s), %zu excluded, recovered in %.0f ms\n",
                report.attempts, report.excluded.size(), report.recovery_latency * 1e3);
    loader.redistribute(report.excluded);
    std::printf("  %zu workers remain, global batch still %d\n", loader.workers().size(),
                loader.global_batch_size());
  }

  // Training proceeds with 14 workers; graphs were rebuilt transparently.
  for (int iteration = 5; iteration < 7; ++iteration) {
    std::map<int, Seconds> ready;
    const Seconds t0 = simulator.now();
    for (const int r : adapcc.participants()) ready[r] = t0 + 0.35;
    const auto result = adapcc.allreduce_adaptive(tensor, ready);
    std::printf("iteration %d: comm %.0f ms, %zu workers (recovered)\n", iteration,
                result.comm_time * 1e3, adapcc.participants().size());
  }

  // Workers 5 and 11 restart on spares: re-admit them and restore their
  // shards. The global batch never changed size through the whole episode.
  {
    const std::set<int> recovered = {5, 11};
    adapcc.include_workers(recovered);
    loader.readmit(recovered);
    std::printf("workers 5 and 11 re-admitted: %zu workers, global batch still %d "
                "(worker 0 back to %d samples)\n",
                loader.workers().size(), loader.global_batch_size(), loader.batch_of(0));
    std::map<int, Seconds> ready;
    const Seconds t0 = simulator.now();
    for (const int r : adapcc.participants()) ready[r] = t0 + 0.35;
    const auto result = adapcc.allreduce_adaptive(tensor, ready);
    std::printf("iteration 7: comm %.0f ms, %zu workers (full strength)\n",
                result.comm_time * 1e3, adapcc.participants().size());
  }

  std::printf("compare: PyTorch Elastic needs ~15 s to detect the fault and then restarts the "
              "whole job (~%.0f s, Fig. 19c cost model)\n",
              runtime::nccl_restart_cost(16, tensor));
  return 0;
}
