# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/collective_test[1]_include.cmake")
include("/root/repo/build/tests/synthesizer_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/relay_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/training_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/queue_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
