
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/synthesizer_test.cpp" "tests/CMakeFiles/synthesizer_test.dir/synthesizer_test.cpp.o" "gcc" "tests/CMakeFiles/synthesizer_test.dir/synthesizer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synthesizer/CMakeFiles/adapcc_synthesizer.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/adapcc_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/adapcc_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/adapcc_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adapcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adapcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
