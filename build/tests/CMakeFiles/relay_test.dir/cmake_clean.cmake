file(REMOVE_RECURSE
  "CMakeFiles/relay_test.dir/relay_test.cpp.o"
  "CMakeFiles/relay_test.dir/relay_test.cpp.o.d"
  "relay_test"
  "relay_test.pdb"
  "relay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
