# Empty dependencies file for relay_test.
# This may be replaced when dependencies are built.
