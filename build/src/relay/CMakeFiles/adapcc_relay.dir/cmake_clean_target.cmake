file(REMOVE_RECURSE
  "libadapcc_relay.a"
)
