# Empty compiler generated dependencies file for adapcc_relay.
# This may be replaced when dependencies are built.
