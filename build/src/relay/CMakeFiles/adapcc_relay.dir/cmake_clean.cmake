file(REMOVE_RECURSE
  "CMakeFiles/adapcc_relay.dir/coordinator.cpp.o"
  "CMakeFiles/adapcc_relay.dir/coordinator.cpp.o.d"
  "CMakeFiles/adapcc_relay.dir/data_loader.cpp.o"
  "CMakeFiles/adapcc_relay.dir/data_loader.cpp.o.d"
  "CMakeFiles/adapcc_relay.dir/relay_collective.cpp.o"
  "CMakeFiles/adapcc_relay.dir/relay_collective.cpp.o.d"
  "CMakeFiles/adapcc_relay.dir/rpc.cpp.o"
  "CMakeFiles/adapcc_relay.dir/rpc.cpp.o.d"
  "libadapcc_relay.a"
  "libadapcc_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapcc_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
