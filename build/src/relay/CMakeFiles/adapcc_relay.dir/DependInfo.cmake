
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relay/coordinator.cpp" "src/relay/CMakeFiles/adapcc_relay.dir/coordinator.cpp.o" "gcc" "src/relay/CMakeFiles/adapcc_relay.dir/coordinator.cpp.o.d"
  "/root/repo/src/relay/data_loader.cpp" "src/relay/CMakeFiles/adapcc_relay.dir/data_loader.cpp.o" "gcc" "src/relay/CMakeFiles/adapcc_relay.dir/data_loader.cpp.o.d"
  "/root/repo/src/relay/relay_collective.cpp" "src/relay/CMakeFiles/adapcc_relay.dir/relay_collective.cpp.o" "gcc" "src/relay/CMakeFiles/adapcc_relay.dir/relay_collective.cpp.o.d"
  "/root/repo/src/relay/rpc.cpp" "src/relay/CMakeFiles/adapcc_relay.dir/rpc.cpp.o" "gcc" "src/relay/CMakeFiles/adapcc_relay.dir/rpc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/synthesizer/CMakeFiles/adapcc_synthesizer.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/adapcc_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/adapcc_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adapcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adapcc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
