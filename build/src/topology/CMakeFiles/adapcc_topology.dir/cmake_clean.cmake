file(REMOVE_RECURSE
  "CMakeFiles/adapcc_topology.dir/cluster.cpp.o"
  "CMakeFiles/adapcc_topology.dir/cluster.cpp.o.d"
  "CMakeFiles/adapcc_topology.dir/detector.cpp.o"
  "CMakeFiles/adapcc_topology.dir/detector.cpp.o.d"
  "CMakeFiles/adapcc_topology.dir/hardware.cpp.o"
  "CMakeFiles/adapcc_topology.dir/hardware.cpp.o.d"
  "CMakeFiles/adapcc_topology.dir/logical_topology.cpp.o"
  "CMakeFiles/adapcc_topology.dir/logical_topology.cpp.o.d"
  "CMakeFiles/adapcc_topology.dir/testbeds.cpp.o"
  "CMakeFiles/adapcc_topology.dir/testbeds.cpp.o.d"
  "libadapcc_topology.a"
  "libadapcc_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapcc_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
