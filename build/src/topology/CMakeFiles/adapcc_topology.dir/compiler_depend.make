# Empty compiler generated dependencies file for adapcc_topology.
# This may be replaced when dependencies are built.
