file(REMOVE_RECURSE
  "libadapcc_topology.a"
)
