
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/cluster.cpp" "src/topology/CMakeFiles/adapcc_topology.dir/cluster.cpp.o" "gcc" "src/topology/CMakeFiles/adapcc_topology.dir/cluster.cpp.o.d"
  "/root/repo/src/topology/detector.cpp" "src/topology/CMakeFiles/adapcc_topology.dir/detector.cpp.o" "gcc" "src/topology/CMakeFiles/adapcc_topology.dir/detector.cpp.o.d"
  "/root/repo/src/topology/hardware.cpp" "src/topology/CMakeFiles/adapcc_topology.dir/hardware.cpp.o" "gcc" "src/topology/CMakeFiles/adapcc_topology.dir/hardware.cpp.o.d"
  "/root/repo/src/topology/logical_topology.cpp" "src/topology/CMakeFiles/adapcc_topology.dir/logical_topology.cpp.o" "gcc" "src/topology/CMakeFiles/adapcc_topology.dir/logical_topology.cpp.o.d"
  "/root/repo/src/topology/testbeds.cpp" "src/topology/CMakeFiles/adapcc_topology.dir/testbeds.cpp.o" "gcc" "src/topology/CMakeFiles/adapcc_topology.dir/testbeds.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/adapcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adapcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
