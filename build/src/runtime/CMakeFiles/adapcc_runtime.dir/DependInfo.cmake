
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/adapcc.cpp" "src/runtime/CMakeFiles/adapcc_runtime.dir/adapcc.cpp.o" "gcc" "src/runtime/CMakeFiles/adapcc_runtime.dir/adapcc.cpp.o.d"
  "/root/repo/src/runtime/ddp_hook.cpp" "src/runtime/CMakeFiles/adapcc_runtime.dir/ddp_hook.cpp.o" "gcc" "src/runtime/CMakeFiles/adapcc_runtime.dir/ddp_hook.cpp.o.d"
  "/root/repo/src/runtime/work_queue.cpp" "src/runtime/CMakeFiles/adapcc_runtime.dir/work_queue.cpp.o" "gcc" "src/runtime/CMakeFiles/adapcc_runtime.dir/work_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relay/CMakeFiles/adapcc_relay.dir/DependInfo.cmake"
  "/root/repo/build/src/synthesizer/CMakeFiles/adapcc_synthesizer.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/adapcc_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/adapcc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/collective/CMakeFiles/adapcc_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/adapcc_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adapcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adapcc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
