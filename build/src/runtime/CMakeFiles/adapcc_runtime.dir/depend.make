# Empty dependencies file for adapcc_runtime.
# This may be replaced when dependencies are built.
