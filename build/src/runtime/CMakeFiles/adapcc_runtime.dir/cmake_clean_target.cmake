file(REMOVE_RECURSE
  "libadapcc_runtime.a"
)
