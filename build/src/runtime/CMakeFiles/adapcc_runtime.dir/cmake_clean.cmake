file(REMOVE_RECURSE
  "CMakeFiles/adapcc_runtime.dir/adapcc.cpp.o"
  "CMakeFiles/adapcc_runtime.dir/adapcc.cpp.o.d"
  "CMakeFiles/adapcc_runtime.dir/ddp_hook.cpp.o"
  "CMakeFiles/adapcc_runtime.dir/ddp_hook.cpp.o.d"
  "CMakeFiles/adapcc_runtime.dir/work_queue.cpp.o"
  "CMakeFiles/adapcc_runtime.dir/work_queue.cpp.o.d"
  "libadapcc_runtime.a"
  "libadapcc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapcc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
