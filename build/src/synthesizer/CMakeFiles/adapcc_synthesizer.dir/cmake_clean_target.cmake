file(REMOVE_RECURSE
  "libadapcc_synthesizer.a"
)
