# Empty compiler generated dependencies file for adapcc_synthesizer.
# This may be replaced when dependencies are built.
