
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synthesizer/cost_model.cpp" "src/synthesizer/CMakeFiles/adapcc_synthesizer.dir/cost_model.cpp.o" "gcc" "src/synthesizer/CMakeFiles/adapcc_synthesizer.dir/cost_model.cpp.o.d"
  "/root/repo/src/synthesizer/synthesizer.cpp" "src/synthesizer/CMakeFiles/adapcc_synthesizer.dir/synthesizer.cpp.o" "gcc" "src/synthesizer/CMakeFiles/adapcc_synthesizer.dir/synthesizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collective/CMakeFiles/adapcc_collective.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/adapcc_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adapcc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adapcc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
