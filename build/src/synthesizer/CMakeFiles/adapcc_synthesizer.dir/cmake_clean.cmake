file(REMOVE_RECURSE
  "CMakeFiles/adapcc_synthesizer.dir/cost_model.cpp.o"
  "CMakeFiles/adapcc_synthesizer.dir/cost_model.cpp.o.d"
  "CMakeFiles/adapcc_synthesizer.dir/synthesizer.cpp.o"
  "CMakeFiles/adapcc_synthesizer.dir/synthesizer.cpp.o.d"
  "libadapcc_synthesizer.a"
  "libadapcc_synthesizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapcc_synthesizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
