file(REMOVE_RECURSE
  "CMakeFiles/adapcc_training.dir/compute_model.cpp.o"
  "CMakeFiles/adapcc_training.dir/compute_model.cpp.o.d"
  "CMakeFiles/adapcc_training.dir/model_spec.cpp.o"
  "CMakeFiles/adapcc_training.dir/model_spec.cpp.o.d"
  "CMakeFiles/adapcc_training.dir/synthetic_sgd.cpp.o"
  "CMakeFiles/adapcc_training.dir/synthetic_sgd.cpp.o.d"
  "CMakeFiles/adapcc_training.dir/trainer.cpp.o"
  "CMakeFiles/adapcc_training.dir/trainer.cpp.o.d"
  "libadapcc_training.a"
  "libadapcc_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapcc_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
