file(REMOVE_RECURSE
  "libadapcc_training.a"
)
