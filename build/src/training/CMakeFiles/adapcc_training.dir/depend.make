# Empty dependencies file for adapcc_training.
# This may be replaced when dependencies are built.
