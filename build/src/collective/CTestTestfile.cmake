# CMake generated Testfile for 
# Source directory: /root/repo/src/collective
# Build directory: /root/repo/build/src/collective
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
