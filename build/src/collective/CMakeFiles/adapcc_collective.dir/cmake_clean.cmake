file(REMOVE_RECURSE
  "CMakeFiles/adapcc_collective.dir/behavior.cpp.o"
  "CMakeFiles/adapcc_collective.dir/behavior.cpp.o.d"
  "CMakeFiles/adapcc_collective.dir/builders.cpp.o"
  "CMakeFiles/adapcc_collective.dir/builders.cpp.o.d"
  "CMakeFiles/adapcc_collective.dir/codegen.cpp.o"
  "CMakeFiles/adapcc_collective.dir/codegen.cpp.o.d"
  "CMakeFiles/adapcc_collective.dir/comm_graph.cpp.o"
  "CMakeFiles/adapcc_collective.dir/comm_graph.cpp.o.d"
  "CMakeFiles/adapcc_collective.dir/executor.cpp.o"
  "CMakeFiles/adapcc_collective.dir/executor.cpp.o.d"
  "CMakeFiles/adapcc_collective.dir/primitive.cpp.o"
  "CMakeFiles/adapcc_collective.dir/primitive.cpp.o.d"
  "libadapcc_collective.a"
  "libadapcc_collective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapcc_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
