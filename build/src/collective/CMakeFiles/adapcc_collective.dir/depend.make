# Empty dependencies file for adapcc_collective.
# This may be replaced when dependencies are built.
