
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collective/behavior.cpp" "src/collective/CMakeFiles/adapcc_collective.dir/behavior.cpp.o" "gcc" "src/collective/CMakeFiles/adapcc_collective.dir/behavior.cpp.o.d"
  "/root/repo/src/collective/builders.cpp" "src/collective/CMakeFiles/adapcc_collective.dir/builders.cpp.o" "gcc" "src/collective/CMakeFiles/adapcc_collective.dir/builders.cpp.o.d"
  "/root/repo/src/collective/codegen.cpp" "src/collective/CMakeFiles/adapcc_collective.dir/codegen.cpp.o" "gcc" "src/collective/CMakeFiles/adapcc_collective.dir/codegen.cpp.o.d"
  "/root/repo/src/collective/comm_graph.cpp" "src/collective/CMakeFiles/adapcc_collective.dir/comm_graph.cpp.o" "gcc" "src/collective/CMakeFiles/adapcc_collective.dir/comm_graph.cpp.o.d"
  "/root/repo/src/collective/executor.cpp" "src/collective/CMakeFiles/adapcc_collective.dir/executor.cpp.o" "gcc" "src/collective/CMakeFiles/adapcc_collective.dir/executor.cpp.o.d"
  "/root/repo/src/collective/primitive.cpp" "src/collective/CMakeFiles/adapcc_collective.dir/primitive.cpp.o" "gcc" "src/collective/CMakeFiles/adapcc_collective.dir/primitive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topology/CMakeFiles/adapcc_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/adapcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adapcc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
