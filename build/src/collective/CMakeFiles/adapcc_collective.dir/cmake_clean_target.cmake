file(REMOVE_RECURSE
  "libadapcc_collective.a"
)
