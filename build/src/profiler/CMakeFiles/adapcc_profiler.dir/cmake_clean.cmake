file(REMOVE_RECURSE
  "CMakeFiles/adapcc_profiler.dir/alpha_beta.cpp.o"
  "CMakeFiles/adapcc_profiler.dir/alpha_beta.cpp.o.d"
  "CMakeFiles/adapcc_profiler.dir/profiler.cpp.o"
  "CMakeFiles/adapcc_profiler.dir/profiler.cpp.o.d"
  "CMakeFiles/adapcc_profiler.dir/trace.cpp.o"
  "CMakeFiles/adapcc_profiler.dir/trace.cpp.o.d"
  "libadapcc_profiler.a"
  "libadapcc_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapcc_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
