# Empty dependencies file for adapcc_profiler.
# This may be replaced when dependencies are built.
