file(REMOVE_RECURSE
  "libadapcc_profiler.a"
)
