file(REMOVE_RECURSE
  "libadapcc_sim.a"
)
