file(REMOVE_RECURSE
  "CMakeFiles/adapcc_sim.dir/edge_channel.cpp.o"
  "CMakeFiles/adapcc_sim.dir/edge_channel.cpp.o.d"
  "CMakeFiles/adapcc_sim.dir/flow_link.cpp.o"
  "CMakeFiles/adapcc_sim.dir/flow_link.cpp.o.d"
  "CMakeFiles/adapcc_sim.dir/simulator.cpp.o"
  "CMakeFiles/adapcc_sim.dir/simulator.cpp.o.d"
  "libadapcc_sim.a"
  "libadapcc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapcc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
