# Empty compiler generated dependencies file for adapcc_sim.
# This may be replaced when dependencies are built.
