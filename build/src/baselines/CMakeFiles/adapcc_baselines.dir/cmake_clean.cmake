file(REMOVE_RECURSE
  "CMakeFiles/adapcc_baselines.dir/backend.cpp.o"
  "CMakeFiles/adapcc_baselines.dir/backend.cpp.o.d"
  "libadapcc_baselines.a"
  "libadapcc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapcc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
