file(REMOVE_RECURSE
  "libadapcc_baselines.a"
)
