# Empty dependencies file for adapcc_baselines.
# This may be replaced when dependencies are built.
