file(REMOVE_RECURSE
  "libadapcc_util.a"
)
