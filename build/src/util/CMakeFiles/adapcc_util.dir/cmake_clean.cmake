file(REMOVE_RECURSE
  "CMakeFiles/adapcc_util.dir/logging.cpp.o"
  "CMakeFiles/adapcc_util.dir/logging.cpp.o.d"
  "CMakeFiles/adapcc_util.dir/stats.cpp.o"
  "CMakeFiles/adapcc_util.dir/stats.cpp.o.d"
  "CMakeFiles/adapcc_util.dir/xml.cpp.o"
  "CMakeFiles/adapcc_util.dir/xml.cpp.o.d"
  "libadapcc_util.a"
  "libadapcc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapcc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
