# Empty dependencies file for adapcc_util.
# This may be replaced when dependencies are built.
