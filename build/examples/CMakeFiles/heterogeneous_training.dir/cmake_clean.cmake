file(REMOVE_RECURSE
  "CMakeFiles/heterogeneous_training.dir/heterogeneous_training.cpp.o"
  "CMakeFiles/heterogeneous_training.dir/heterogeneous_training.cpp.o.d"
  "heterogeneous_training"
  "heterogeneous_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneous_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
