# Empty dependencies file for heterogeneous_training.
# This may be replaced when dependencies are built.
