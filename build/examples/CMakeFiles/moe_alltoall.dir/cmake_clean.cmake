file(REMOVE_RECURSE
  "CMakeFiles/moe_alltoall.dir/moe_alltoall.cpp.o"
  "CMakeFiles/moe_alltoall.dir/moe_alltoall.cpp.o.d"
  "moe_alltoall"
  "moe_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moe_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
