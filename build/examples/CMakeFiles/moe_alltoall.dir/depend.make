# Empty dependencies file for moe_alltoall.
# This may be replaced when dependencies are built.
