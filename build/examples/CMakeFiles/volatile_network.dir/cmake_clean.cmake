file(REMOVE_RECURSE
  "CMakeFiles/volatile_network.dir/volatile_network.cpp.o"
  "CMakeFiles/volatile_network.dir/volatile_network.cpp.o.d"
  "volatile_network"
  "volatile_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/volatile_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
