# Empty compiler generated dependencies file for volatile_network.
# This may be replaced when dependencies are built.
