file(REMOVE_RECURSE
  "CMakeFiles/fig14_training_comm.dir/fig14_training_comm.cpp.o"
  "CMakeFiles/fig14_training_comm.dir/fig14_training_comm.cpp.o.d"
  "fig14_training_comm"
  "fig14_training_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_training_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
