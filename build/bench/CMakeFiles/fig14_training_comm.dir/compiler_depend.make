# Empty compiler generated dependencies file for fig14_training_comm.
# This may be replaced when dependencies are built.
