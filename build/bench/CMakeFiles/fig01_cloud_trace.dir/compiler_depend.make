# Empty compiler generated dependencies file for fig01_cloud_trace.
# This may be replaced when dependencies are built.
