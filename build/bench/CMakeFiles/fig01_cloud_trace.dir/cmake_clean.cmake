file(REMOVE_RECURSE
  "CMakeFiles/fig01_cloud_trace.dir/fig01_cloud_trace.cpp.o"
  "CMakeFiles/fig01_cloud_trace.dir/fig01_cloud_trace.cpp.o.d"
  "fig01_cloud_trace"
  "fig01_cloud_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_cloud_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
