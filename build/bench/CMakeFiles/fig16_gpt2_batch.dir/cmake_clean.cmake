file(REMOVE_RECURSE
  "CMakeFiles/fig16_gpt2_batch.dir/fig16_gpt2_batch.cpp.o"
  "CMakeFiles/fig16_gpt2_batch.dir/fig16_gpt2_batch.cpp.o.d"
  "fig16_gpt2_batch"
  "fig16_gpt2_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_gpt2_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
