# Empty dependencies file for fig16_gpt2_batch.
# This may be replaced when dependencies are built.
