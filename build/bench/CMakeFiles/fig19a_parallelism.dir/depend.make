# Empty dependencies file for fig19a_parallelism.
# This may be replaced when dependencies are built.
