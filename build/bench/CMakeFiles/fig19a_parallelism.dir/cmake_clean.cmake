file(REMOVE_RECURSE
  "CMakeFiles/fig19a_parallelism.dir/fig19a_parallelism.cpp.o"
  "CMakeFiles/fig19a_parallelism.dir/fig19a_parallelism.cpp.o.d"
  "fig19a_parallelism"
  "fig19a_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19a_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
