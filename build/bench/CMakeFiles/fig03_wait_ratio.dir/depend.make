# Empty dependencies file for fig03_wait_ratio.
# This may be replaced when dependencies are built.
