file(REMOVE_RECURSE
  "CMakeFiles/fig03_wait_ratio.dir/fig03_wait_ratio.cpp.o"
  "CMakeFiles/fig03_wait_ratio.dir/fig03_wait_ratio.cpp.o.d"
  "fig03_wait_ratio"
  "fig03_wait_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_wait_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
