# Empty compiler generated dependencies file for fig12_allreduce.
# This may be replaced when dependencies are built.
