file(REMOVE_RECURSE
  "CMakeFiles/fig12_allreduce.dir/fig12_allreduce.cpp.o"
  "CMakeFiles/fig12_allreduce.dir/fig12_allreduce.cpp.o.d"
  "fig12_allreduce"
  "fig12_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
