file(REMOVE_RECURSE
  "CMakeFiles/ablation_fragmented.dir/ablation_fragmented.cpp.o"
  "CMakeFiles/ablation_fragmented.dir/ablation_fragmented.cpp.o.d"
  "ablation_fragmented"
  "ablation_fragmented.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fragmented.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
