# Empty dependencies file for ablation_fragmented.
# This may be replaced when dependencies are built.
