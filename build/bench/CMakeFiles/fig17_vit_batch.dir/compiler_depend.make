# Empty compiler generated dependencies file for fig17_vit_batch.
# This may be replaced when dependencies are built.
