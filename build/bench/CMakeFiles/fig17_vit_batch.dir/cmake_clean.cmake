file(REMOVE_RECURSE
  "CMakeFiles/fig17_vit_batch.dir/fig17_vit_batch.cpp.o"
  "CMakeFiles/fig17_vit_batch.dir/fig17_vit_batch.cpp.o.d"
  "fig17_vit_batch"
  "fig17_vit_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_vit_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
