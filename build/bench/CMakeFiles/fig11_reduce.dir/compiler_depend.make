# Empty compiler generated dependencies file for fig11_reduce.
# This may be replaced when dependencies are built.
