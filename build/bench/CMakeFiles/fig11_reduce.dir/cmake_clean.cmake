file(REMOVE_RECURSE
  "CMakeFiles/fig11_reduce.dir/fig11_reduce.cpp.o"
  "CMakeFiles/fig11_reduce.dir/fig11_reduce.cpp.o.d"
  "fig11_reduce"
  "fig11_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
