file(REMOVE_RECURSE
  "CMakeFiles/fig19b_accuracy.dir/fig19b_accuracy.cpp.o"
  "CMakeFiles/fig19b_accuracy.dir/fig19b_accuracy.cpp.o.d"
  "fig19b_accuracy"
  "fig19b_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19b_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
