# Empty compiler generated dependencies file for fig19b_accuracy.
# This may be replaced when dependencies are built.
