file(REMOVE_RECURSE
  "CMakeFiles/fig19c_reconstruction.dir/fig19c_reconstruction.cpp.o"
  "CMakeFiles/fig19c_reconstruction.dir/fig19c_reconstruction.cpp.o.d"
  "fig19c_reconstruction"
  "fig19c_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19c_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
