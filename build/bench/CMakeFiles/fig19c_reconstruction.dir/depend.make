# Empty dependencies file for fig19c_reconstruction.
# This may be replaced when dependencies are built.
