file(REMOVE_RECURSE
  "CMakeFiles/fig13_alltoall.dir/fig13_alltoall.cpp.o"
  "CMakeFiles/fig13_alltoall.dir/fig13_alltoall.cpp.o.d"
  "fig13_alltoall"
  "fig13_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
