# Empty dependencies file for fig13_alltoall.
# This may be replaced when dependencies are built.
