file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_fidelity.dir/ablation_model_fidelity.cpp.o"
  "CMakeFiles/ablation_model_fidelity.dir/ablation_model_fidelity.cpp.o.d"
  "ablation_model_fidelity"
  "ablation_model_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
