# Empty compiler generated dependencies file for ablation_model_fidelity.
# This may be replaced when dependencies are built.
