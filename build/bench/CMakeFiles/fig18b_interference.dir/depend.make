# Empty dependencies file for fig18b_interference.
# This may be replaced when dependencies are built.
