file(REMOVE_RECURSE
  "CMakeFiles/fig18b_interference.dir/fig18b_interference.cpp.o"
  "CMakeFiles/fig18b_interference.dir/fig18b_interference.cpp.o.d"
  "fig18b_interference"
  "fig18b_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18b_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
