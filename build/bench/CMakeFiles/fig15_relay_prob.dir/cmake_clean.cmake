file(REMOVE_RECURSE
  "CMakeFiles/fig15_relay_prob.dir/fig15_relay_prob.cpp.o"
  "CMakeFiles/fig15_relay_prob.dir/fig15_relay_prob.cpp.o.d"
  "fig15_relay_prob"
  "fig15_relay_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_relay_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
