# Empty compiler generated dependencies file for fig15_relay_prob.
# This may be replaced when dependencies are built.
