file(REMOVE_RECURSE
  "CMakeFiles/ablation_aggregation.dir/ablation_aggregation.cpp.o"
  "CMakeFiles/ablation_aggregation.dir/ablation_aggregation.cpp.o.d"
  "ablation_aggregation"
  "ablation_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
