# Empty dependencies file for ablation_aggregation.
# This may be replaced when dependencies are built.
