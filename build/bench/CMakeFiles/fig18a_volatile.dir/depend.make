# Empty dependencies file for fig18a_volatile.
# This may be replaced when dependencies are built.
