file(REMOVE_RECURSE
  "CMakeFiles/fig18a_volatile.dir/fig18a_volatile.cpp.o"
  "CMakeFiles/fig18a_volatile.dir/fig18a_volatile.cpp.o.d"
  "fig18a_volatile"
  "fig18a_volatile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18a_volatile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
