file(REMOVE_RECURSE
  "CMakeFiles/ablation_relay_policy.dir/ablation_relay_policy.cpp.o"
  "CMakeFiles/ablation_relay_policy.dir/ablation_relay_policy.cpp.o.d"
  "ablation_relay_policy"
  "ablation_relay_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_relay_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
