# Empty dependencies file for fig19d_rpc.
# This may be replaced when dependencies are built.
