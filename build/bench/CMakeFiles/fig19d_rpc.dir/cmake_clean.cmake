file(REMOVE_RECURSE
  "CMakeFiles/fig19d_rpc.dir/fig19d_rpc.cpp.o"
  "CMakeFiles/fig19d_rpc.dir/fig19d_rpc.cpp.o.d"
  "fig19d_rpc"
  "fig19d_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19d_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
