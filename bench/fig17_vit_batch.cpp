// Fig. 17: ViT training throughput vs local batch size, AdapCC vs NCCL
// (Sec. VI-D). Paper reference: up to 20% improvement.
#include "baselines/backend.h"
#include "bench/bench_common.h"
#include "training/compute_model.h"
#include "training/model_spec.h"
#include "training/trainer.h"

namespace adapcc::bench {
namespace {

constexpr int kIterations = 12;

double measure(bool use_adapcc, int batch, std::uint64_t seed) {
  World world(topology::heter_testbed());
  training::TrainerConfig config;
  config.iterations = kIterations;
  config.batch_per_gpu = batch;
  training::Trainer trainer(
      *world.cluster,
      training::ComputeModel(*world.cluster, training::vit(), util::Rng(seed)), config);
  if (use_adapcc) {
    runtime::Adapcc adapcc(*world.cluster);
    adapcc.init();
    adapcc.setup();
    return trainer.train_with_adapcc(adapcc).throughput(batch * 16);
  }
  baselines::NcclBackend nccl(*world.cluster);
  return trainer.train_with_backend(nccl).throughput(batch * 16);
}

int run() {
  print_header("Fig. 17", "ViT training throughput (samples/s) vs local batch size");
  print_note("heterogeneous testbed (2xA100 + 2xV100 servers), 16 GPUs");
  std::printf("%8s %14s %14s %12s\n", "batch", "adapcc", "nccl", "improvement");
  for (const int batch : {64, 128, 192, 256}) {
    const double adapcc_tp = measure(true, batch, 37);
    const double nccl_tp = measure(false, batch, 37);
    std::printf("%8d %14.0f %14.0f %+11.0f%%\n", batch, adapcc_tp, nccl_tp,
                (adapcc_tp / nccl_tp - 1.0) * 100.0);
  }
  std::printf("\npaper: up to +20%% throughput for ViT, growing with batch size\n");
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
