// Fig. 13: AllToAll algorithm bandwidth (Sec. VI-C).
//
// NCCL has no native AllToAll; it is implemented with ncclSend/ncclRecv
// pairs (one channel). Blink does not support multi-server AllToAll and is
// omitted, as in the paper. Paper reference: AdapCC averages 31% better
// algorithm bandwidth than NCCL and 14% better than MSCCL.
#include <map>

#include "bench/bench_common.h"
#include "util/stats.h"

namespace adapcc::bench {
namespace {

int run() {
  print_header("Fig. 13", "AllToAll algorithm bandwidth (GB/s), 256 MB input, M = 4");
  const Bytes tensor = megabytes(256);
  std::map<std::string, std::vector<double>> speedups;

  std::printf("%-28s %10s %10s %10s | %8s %8s\n", "config", "adapcc", "nccl", "msccl", "vs nccl",
              "vs msccl");
  for (const auto& config : fig11_configs()) {
    World world(topology::paper_testbed());
    const auto participants = config.participants(*world.cluster);

    runtime::AdapccBackend adapcc(*world.cluster);
    baselines::NcclBackend nccl(*world.cluster);
    baselines::MscclBackend msccl(*world.cluster);

    std::map<std::string, double> bw;
    for (baselines::Backend* backend :
         std::initializer_list<baselines::Backend*>{&adapcc, &nccl, &msccl}) {
      const auto result = backend->run(collective::Primitive::kAllToAll, participants, tensor);
      bw[backend->name()] = algo_bandwidth_gbps(tensor, result.elapsed());
    }
    const double vs_nccl = bw["adapcc"] / bw["nccl"];
    const double vs_msccl = bw["adapcc"] / bw["msccl"];
    speedups["nccl"].push_back(vs_nccl);
    speedups["msccl"].push_back(vs_msccl);
    std::printf("%-28s %10.2f %10.2f %10.2f | %7.2fx %7.2fx\n", config.label.c_str(),
                bw["adapcc"], bw["nccl"], bw["msccl"], vs_nccl, vs_msccl);
  }
  std::printf("average speedup: vs nccl %+.0f%% (paper +31%%), vs msccl %+.0f%% (paper +14%%)\n",
              (util::geometric_mean(speedups["nccl"]) - 1.0) * 100.0,
              (util::geometric_mean(speedups["msccl"]) - 1.0) * 100.0);
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
