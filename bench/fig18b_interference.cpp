// Fig. 18(b): communication speed-up under co-located CPU serving
// interference (Sec. VI-D).
//
// Four homogeneous A100 servers; every "5 minutes" (scaled to every 15
// iterations here) 0-2 GPUs per server are hit by an online inference task
// on their affinity CPU socket, slowing their compute. Paper reference:
// AdapCC's relay control reaches up to 1.49x faster communication than NCCL
// as the CPU interference level grows to 400%.
#include "baselines/backend.h"
#include "bench/bench_common.h"
#include "training/compute_model.h"
#include "training/model_spec.h"
#include "training/trainer.h"

namespace adapcc::bench {
namespace {

constexpr int kIterations = 45;
constexpr int kReassignEvery = 15;  // the paper's 5-minute rotation, scaled

/// Interference schedule: every kReassignEvery iterations, pick 0-2 GPUs per
/// server to slow down. The schedule depends only on (seed, iteration), so
/// AdapCC and NCCL face identical conditions.
void apply_interference(training::ComputeModel& compute, double level_percent, int iteration,
                        std::uint64_t seed) {
  if (iteration % kReassignEvery != 0) return;
  compute.clear_interference();
  util::Rng rng(seed * 1000003 + static_cast<std::uint64_t>(iteration));
  for (int server = 0; server < 4; ++server) {
    const int victims = static_cast<int>(rng.uniform_int(0, 2));
    for (int v = 0; v < victims; ++v) {
      const int local = static_cast<int>(rng.uniform_int(0, 3));
      compute.set_interference(server * 4 + local,
                               training::interference_slowdown(level_percent));
    }
  }
}

double comm_time(bool use_adapcc, double level_percent, std::uint64_t seed) {
  World world(topology::homo_testbed());
  training::TrainerConfig config;
  config.iterations = kIterations;
  config.batch_per_gpu = 32;
  // The hook mutates the trainer's own compute model; the pointer is filled
  // in right after the trainer is constructed.
  training::ComputeModel* model = nullptr;
  config.on_iteration = [&model, level_percent, seed](int iteration) {
    if (model != nullptr) apply_interference(*model, level_percent, iteration, seed);
  };
  training::Trainer trainer(
      *world.cluster,
      training::ComputeModel(*world.cluster, training::gpt2(), util::Rng(seed)), config);
  model = &trainer.compute_model();
  if (use_adapcc) {
    runtime::Adapcc adapcc(*world.cluster);
    adapcc.init();
    adapcc.setup();
    return trainer.train_with_adapcc(adapcc).mean_comm_time();
  }
  baselines::NcclBackend nccl(*world.cluster);
  return trainer.train_with_backend(nccl).mean_comm_time();
}

int run() {
  print_header("Fig. 18(b)", "communication time under CPU-interference levels");
  print_note("4xA100 RDMA, GPT-2; 0-2 GPUs/server interfered, reassigned every 15 iterations");
  std::printf("%10s %14s %14s %10s\n", "level", "adapcc(ms)", "nccl(ms)", "speedup");
  for (const double level : {0.0, 100.0, 200.0, 300.0, 400.0}) {
    const double adapcc_ms = comm_time(true, level, 53) * 1e3;
    const double nccl_ms = comm_time(false, level, 53) * 1e3;
    std::printf("%9.0f%% %14.1f %14.1f %9.2fx\n", level, adapcc_ms, nccl_ms,
                nccl_ms / adapcc_ms);
  }
  std::printf("\npaper: up to 1.49x faster communication at 400%% interference\n");
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
