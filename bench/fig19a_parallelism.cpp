// Fig. 19(a): communication speed-up over NCCL as a function of M, the
// number of parallel sub-collectives (Sec. VI-E).
//
// Paper reference: more parallel transmissions utilize available bandwidth
// better; M = 4 was chosen as the sweet spot for the testbed. The effect is
// strongest on TCP, where a single stream is kernel-limited to ~20 Gbps.
#include "baselines/backend.h"
#include "bench/bench_common.h"
#include "training/model_spec.h"

namespace adapcc::bench {
namespace {

double adapcc_time(topology::NetworkStack stack, int parallel_subs) {
  World world(topology::homo_testbed(stack));
  runtime::AdapccConfig config;
  config.synthesizer.parallel_subs = parallel_subs;
  runtime::AdapccBackend adapcc(*world.cluster, config);
  return adapcc.run(collective::Primitive::kAllReduce, world.all_ranks(),
                    training::vgg16().tensor_bytes)
      .elapsed();
}

double nccl_time(topology::NetworkStack stack) {
  World world(topology::homo_testbed(stack));
  baselines::NcclBackend nccl(*world.cluster);
  return nccl.run(collective::Primitive::kAllReduce, world.all_ranks(),
                  training::vgg16().tensor_bytes)
      .elapsed();
}

int run() {
  print_header("Fig. 19(a)", "VGG16 AllReduce speed-up over NCCL vs parallelism degree M");
  print_note("4xA100 servers; TCP shows the single-stream ceiling NCCL suffers from");
  std::printf("%6s %16s %16s\n", "M", "RDMA speedup", "TCP speedup");
  const double nccl_rdma = nccl_time(topology::NetworkStack::kRdma);
  const double nccl_tcp = nccl_time(topology::NetworkStack::kTcp);
  for (const int m : {1, 2, 4, 8}) {
    const double rdma = nccl_rdma / adapcc_time(topology::NetworkStack::kRdma, m);
    const double tcp = nccl_tcp / adapcc_time(topology::NetworkStack::kTcp, m);
    std::printf("%6d %15.2fx %15.2fx\n", m, rdma, tcp);
  }
  std::printf("\npaper: speed-up grows with M; M = 4 chosen for the testbed\n");
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
