// Fig. 14: per-iteration communication time during data-parallel training,
// AdapCC vs NCCL, four models x {Homo, Heter} x {RDMA, TCP} (Sec. VI-D).
//
// Communication time = waiting time of faster workers + execution of the
// collective (AllReduce for VGG16/GPT-2/ViT, AllToAll for MoE). Paper
// reference: 1.12-1.30x speed-up in homogeneous settings, up to 2x in
// heterogeneous ones; TCP gains exceed RDMA gains because NCCL's single
// channel peaks around 20 Gbps.
#include "baselines/backend.h"
#include "bench/bench_common.h"
#include "training/compute_model.h"
#include "training/model_spec.h"
#include "training/trainer.h"

namespace adapcc::bench {
namespace {

constexpr int kIterations = 12;

double comm_time_adapcc(std::vector<topology::InstanceSpec> specs,
                        const training::ModelSpec& model, std::uint64_t seed) {
  World world(std::move(specs));
  runtime::Adapcc adapcc(*world.cluster);
  adapcc.init();
  adapcc.setup();
  training::TrainerConfig config;
  config.iterations = kIterations;
  config.batch_per_gpu = model.default_local_batch;
  training::Trainer trainer(
      *world.cluster, training::ComputeModel(*world.cluster, model, util::Rng(seed)), config);
  return trainer.train_with_adapcc(adapcc).mean_comm_time();
}

double comm_time_nccl(std::vector<topology::InstanceSpec> specs,
                      const training::ModelSpec& model, std::uint64_t seed) {
  World world(std::move(specs));
  baselines::NcclBackend nccl(*world.cluster);
  training::TrainerConfig config;
  config.iterations = kIterations;
  config.batch_per_gpu = model.default_local_batch;
  training::Trainer trainer(
      *world.cluster, training::ComputeModel(*world.cluster, model, util::Rng(seed)), config);
  return trainer.train_with_backend(nccl).mean_comm_time();
}

int run() {
  print_header("Fig. 14",
               "per-iteration communication time (ms): wait + collective execution");
  print_note("16 GPUs; Homo = 4xA100 servers, Heter = 2xA100 + 2xV100 servers; 12 iterations");

  std::printf("%-8s %-6s %-6s %12s %12s %9s\n", "model", "setup", "net", "adapcc(ms)",
              "nccl(ms)", "speedup");
  const auto models = {training::vgg16(), training::gpt2(), training::vit(), training::moe()};
  for (const auto& model : models) {
    for (const bool heter : {false, true}) {
      for (const auto stack : {topology::NetworkStack::kRdma, topology::NetworkStack::kTcp}) {
        const auto specs = heter ? topology::heter_testbed(stack) : topology::homo_testbed(stack);
        const std::uint64_t seed = 101;
        const double adapcc_ms = comm_time_adapcc(specs, model, seed) * 1e3;
        const double nccl_ms = comm_time_nccl(specs, model, seed) * 1e3;
        std::printf("%-8s %-6s %-6s %12.1f %12.1f %8.2fx\n", model.name.c_str(),
                    heter ? "Heter" : "Homo",
                    stack == topology::NetworkStack::kRdma ? "RDMA" : "TCP", adapcc_ms, nccl_ms,
                    nccl_ms / adapcc_ms);
      }
    }
  }
  std::printf("\npaper: 1.12-1.30x in Homo, up to 2x in Heter; TCP benefits most\n");
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
