// Shared plumbing for the figure-reproduction harnesses.
//
// Every bench binary regenerates one table/figure from the paper's
// evaluation (Sec. VI): it sets up the simulated testbed, sweeps the same
// parameters, and prints the rows/series the paper reports, together with
// the paper's reference values where the text states them. Output format is
// fixed-width text on stdout so `for b in build/bench/*; do $b; done` yields
// a readable report.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/backend.h"
#include "runtime/adapcc_backend.h"
#include "sim/simulator.h"
#include "topology/cluster.h"
#include "topology/testbeds.h"

namespace adapcc::bench {

/// One simulated testbed instance with its own simulator. Benches create a
/// fresh world per measured configuration so runs are independent.
struct World {
  explicit World(std::vector<topology::InstanceSpec> specs)
      : simulator(std::make_unique<sim::Simulator>()),
        cluster(std::make_unique<topology::Cluster>(*simulator, std::move(specs))) {}

  std::vector<int> all_ranks() const {
    std::vector<int> ranks;
    for (int r = 0; r < cluster->world_size(); ++r) ranks.push_back(r);
    return ranks;
  }

  std::unique_ptr<sim::Simulator> simulator;
  std::unique_ptr<topology::Cluster> cluster;
};

inline void print_header(const std::string& figure, const std::string& description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) { std::printf("note: %s\n", note.c_str()); }

/// A GPU configuration row of Figs. 11-13, e.g. "A100:(4,4,4,4) V100:(4,4)":
/// `per_instance[i]` GPUs used on instance i of the paper testbed.
struct GpuConfig {
  std::string label;
  std::vector<int> per_instance;

  std::vector<int> participants(const topology::Cluster& cluster) const {
    std::vector<int> ranks;
    for (std::size_t inst = 0; inst < per_instance.size(); ++inst) {
      const auto on_instance = cluster.ranks_on_instance(static_cast<int>(inst));
      for (int g = 0; g < per_instance[inst]; ++g) {
        ranks.push_back(on_instance[static_cast<std::size_t>(g)]);
      }
    }
    return ranks;
  }
};

/// The five GPU configurations used on the x-axis of Figs. 11-13 (paper
/// testbed order: four A100 servers then two V100 servers).
inline std::vector<GpuConfig> fig11_configs() {
  return {
      {"A100:(4,4,4,4)", {4, 4, 4, 4, 0, 0}},
      {"A100:(4,4,4,4) V100:(4,4)", {4, 4, 4, 4, 4, 4}},
      {"A100:(2,2,2,2) V100:(2,2)", {2, 2, 2, 2, 2, 2}},
      {"A100:(4,4) V100:(4,4)", {4, 4, 0, 0, 4, 4}},
      {"A100:(4,4,4) V100:(4)", {4, 4, 4, 0, 4, 0}},
  };
}

}  // namespace adapcc::bench
