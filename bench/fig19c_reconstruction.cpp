// Fig. 19(c): communication-graph reconstruction overhead at different job
// scales, AdapCC vs NCCL restart (Sec. VI-E).
//
// AdapCC reconstructs in place: profiling + solving the optimization +
// re-establishing transmission contexts, with no checkpoint or process-group
// rebuild. NCCL requires terminating the job: checkpoint, rebuild the
// process group, restore the model, re-init communicators. Paper reference:
// 74-91% of the time saved; topology inference takes ~1.2 s and is constant
// in job scale (instances probe concurrently).
#include "bench/bench_common.h"
#include "training/model_spec.h"

namespace adapcc::bench {
namespace {

int run() {
  print_header("Fig. 19(c)", "graph reconstruction overhead vs scale");
  std::printf("%8s %12s %12s %12s %12s %12s %10s %10s\n", "GPUs", "profile(s)", "solve(s)",
              "setup(s)", "adapcc(s)", "nccl(s)", "saved", "detect(s)");
  for (const int servers : {2, 4, 6}) {
    World world(topology::a100_fleet(servers));
    runtime::Adapcc adapcc(*world.cluster);
    adapcc.init();
    adapcc.setup();
    const Bytes tensor = training::vgg16().tensor_bytes;
    adapcc.allreduce(tensor);
    // Degrade an interior instance's NIC so reconstruction actually
    // rebuilds the graphs (the chain orderings must change).
    world.cluster->set_nic_capacity_fraction(1 % servers, 0.3);
    const auto report = adapcc.reprofile(tensor);
    const Seconds nccl = runtime::nccl_restart_cost(world.cluster->world_size(), tensor);
    std::printf("%8d %12.2f %12.3f %12.3f %12.2f %12.2f %9.0f%% %10.2f\n",
                world.cluster->world_size(), report.profiling_time, report.solve_time_seconds,
                report.context_setup_time, report.total(), nccl,
                (1.0 - report.total() / nccl) * 100.0, adapcc.detection_time());
  }
  std::printf("\npaper: 74-91%% saved vs NCCL restart; topology inference ~1.2 s, constant "
              "across scales (instances probe concurrently)\n");
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
