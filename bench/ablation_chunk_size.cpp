// Ablation: chunk-size selection (DESIGN.md §5.4).
//
// The paper criticizes MSCCL's fixed sketch chunk size and Blink's
// empirical 8 MB, while AdapCC optimizes C_m to balance pipelining against
// latency (Sec. IV-D). This harness sweeps chunk sizes on a fixed AllReduce
// graph, reporting the measured time and the cost model's estimate side by
// side — validating both the chunk optimizer and the model it relies on.
//
// Usage: ablation_chunk_size [--jobs N]
//   --jobs  run rows on N host threads. Every row owns a fresh world (same
//           deterministic profile), so rows are independent; results are
//           printed in row order and identical at any job count.
#include <cstdlib>
#include <cstring>

#include "bench/bench_common.h"
#include "profiler/profiler.h"
#include "synthesizer/cost_model.h"
#include "synthesizer/synthesizer.h"
#include "topology/detector.h"
#include "util/rng.h"
#include "util/task_pool.h"

namespace adapcc::bench {
namespace {

struct Row {
  double measured_ms = 0.0;
  double model_ms = 0.0;
  Bytes chosen_chunk = 0;  ///< the chunk the synthesizer picked (row-invariant)
};

int run(int jobs) {
  print_header("Ablation", "chunk size: 256 MB AllReduce on the heterogeneous testbed");
  const Bytes tensor = megabytes(256);
  const std::vector<Bytes> chunks = {Bytes(128_KiB), Bytes(512_KiB), Bytes(2_MiB),
                                     Bytes(8_MiB),   Bytes(32_MiB),  megabytes(128)};

  // Each row rebuilds the identical deterministic world (same detection and
  // profile seeds), forces its chunk size onto the synthesized reference
  // graph, and measures from an idle simulator — independent by
  // construction, so rows fan out over --jobs.
  util::TaskPool pool(jobs);
  const std::vector<Row> rows = pool.map_indexed<Row>(chunks.size(), [&](std::size_t i, int) {
    World world(topology::heter_testbed());
    topology::Detector detector(*world.cluster, util::Rng(5));
    auto topo = topology::Detector::build_logical_topology(*world.cluster, detector.detect());
    profiler::Profiler profiler(*world.cluster);
    profiler.profile(topo);
    const auto ranks = world.all_ranks();

    synthesizer::Synthesizer synth(*world.cluster, topo);
    auto strategy = synth.synthesize(collective::Primitive::kAllReduce, ranks, tensor);
    Row row;
    row.chosen_chunk = strategy.subs[0].chunk_bytes;
    for (auto& sub : strategy.subs) sub.chunk_bytes = chunks[i];
    row.model_ms = synthesizer::estimate_completion_time(strategy, topo, tensor, {}) * 1e3;
    collective::Executor executor(*world.cluster, strategy);
    row.measured_ms = executor.run(tensor).elapsed() * 1e3;
    return row;
  });

  std::printf("%12s %14s %14s %10s\n", "chunk", "measured(ms)", "model(ms)", "");
  double best_measured = 1e9;
  Bytes best_chunk = 0;
  const Bytes chosen = rows.front().chosen_chunk;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    if (rows[i].measured_ms < best_measured) {
      best_measured = rows[i].measured_ms;
      best_chunk = chunks[i];
    }
    std::printf("%9lld KiB %14.1f %14.1f %10s\n", static_cast<long long>(chunks[i] / 1024),
                rows[i].measured_ms, rows[i].model_ms,
                chunks[i] == chosen ? "<- chosen" : "");
  }
  std::printf("\nchosen chunk %lld KiB; empirically best %lld KiB (measured %.1f ms). Blink's "
              "fixed 8 MB and whole-tensor transfers pay for the missing pipeline overlap.\n",
              static_cast<long long>(chosen / 1024), static_cast<long long>(best_chunk / 1024),
              best_measured);
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main(int argc, char** argv) {
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    }
  }
  return adapcc::bench::run(jobs);
}
