// Ablation: chunk-size selection (DESIGN.md §5.4).
//
// The paper criticizes MSCCL's fixed sketch chunk size and Blink's
// empirical 8 MB, while AdapCC optimizes C_m to balance pipelining against
// latency (Sec. IV-D). This harness sweeps chunk sizes on a fixed AllReduce
// graph, reporting the measured time and the cost model's estimate side by
// side — validating both the chunk optimizer and the model it relies on.
#include "bench/bench_common.h"
#include "profiler/profiler.h"
#include "synthesizer/cost_model.h"
#include "synthesizer/synthesizer.h"
#include "topology/detector.h"
#include "util/rng.h"

namespace adapcc::bench {
namespace {

int run() {
  print_header("Ablation", "chunk size: 256 MB AllReduce on the heterogeneous testbed");
  World world(topology::heter_testbed());
  topology::Detector detector(*world.cluster, util::Rng(5));
  auto topo = topology::Detector::build_logical_topology(*world.cluster, detector.detect());
  profiler::Profiler profiler(*world.cluster);
  profiler.profile(topo);

  const auto ranks = world.all_ranks();
  const Bytes tensor = megabytes(256);

  // The graph AdapCC would pick, with the chunk size forced per row.
  synthesizer::Synthesizer synth(*world.cluster, topo);
  const auto reference = synth.synthesize(collective::Primitive::kAllReduce, ranks, tensor);

  std::printf("%12s %14s %14s %10s\n", "chunk", "measured(ms)", "model(ms)", "");
  double best_measured = 1e9;
  Bytes best_chunk = 0;
  for (const Bytes chunk : {Bytes(128_KiB), Bytes(512_KiB), Bytes(2_MiB), Bytes(8_MiB),
                            Bytes(32_MiB), megabytes(128)}) {
    auto strategy = reference;
    for (auto& sub : strategy.subs) sub.chunk_bytes = chunk;
    const double model =
        synthesizer::estimate_completion_time(strategy, topo, tensor, {}) * 1e3;
    collective::Executor executor(*world.cluster, strategy);
    const double measured = executor.run(tensor).elapsed() * 1e3;
    const bool is_chosen = chunk == reference.subs[0].chunk_bytes;
    if (measured < best_measured) {
      best_measured = measured;
      best_chunk = chunk;
    }
    std::printf("%9lld KiB %14.1f %14.1f %10s\n", static_cast<long long>(chunk / 1024),
                measured, model, is_chosen ? "<- chosen" : "");
  }
  std::printf("\nchosen chunk %lld KiB; empirically best %lld KiB (measured %.1f ms). Blink's "
              "fixed 8 MB and whole-tensor transfers pay for the missing pipeline overlap.\n",
              static_cast<long long>(reference.subs[0].chunk_bytes / 1024),
              static_cast<long long>(best_chunk / 1024), best_measured);
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
