// Fig. 1: bandwidth and network latency between two cloud instances over a
// 6-hour window (Sec. II-B).
//
// Paper reference: performance degrades from peak by up to 34% (bandwidth)
// and 17% (latency). We regenerate the synthetic trace calibrated to that
// envelope and report the same summary statistics, plus hourly samples.
#include "bench/bench_common.h"
#include "profiler/trace.h"

namespace adapcc::bench {
namespace {

int run() {
  print_header("Fig. 1", "cloud bandwidth/latency variability over 6 hours");
  const auto trace = profiler::BandwidthTrace::synthetic_cloud(6 * 3600.0, 60.0, /*seed=*/2024);

  std::printf("%8s %18s %18s\n", "hour", "bandwidth (Gbps)", "latency factor");
  const double peak_gbps = 15.0;  // the paper's reserved 15 Gbps instances
  for (int hour = 0; hour <= 6; ++hour) {
    const Seconds t = std::min(hour * 3600.0, trace.duration() - 1.0);
    std::printf("%8d %18.2f %18.3f\n", hour, peak_gbps * trace.bandwidth_fraction_at(t),
                trace.latency_factor_at(t));
  }

  double worst_bw = 1.0, worst_lat = 1.0;
  for (const auto& sample : trace.samples()) {
    worst_bw = std::min(worst_bw, sample.bandwidth_fraction);
    worst_lat = std::max(worst_lat, sample.latency_factor);
  }
  std::printf("\nworst-case bandwidth degradation: -%.0f%% of peak (paper: up to -34%%)\n",
              (1.0 - worst_bw) * 100.0);
  std::printf("worst-case latency increase:      +%.0f%% of best (paper: up to +17%%)\n",
              (worst_lat - 1.0) * 100.0);
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
