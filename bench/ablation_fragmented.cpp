// Ablation: irregular NVLink wiring (Sec. II-A).
//
// "When GPUs without direct NVLinks are allocated to a training job, NCCL
// is unable to form an NVLink ring and falls back to a less efficient PCIe
// ring instead. Blink constructs topology-aware spanning trees to resolve
// the problem [intra-server]." This harness runs an intra-server Reduce on
// a fragmented A100 box (only pairs (0,1) and (2,3) wired) and shows how
// rank-order chains stumble into PCIe hops while wiring-aware chains and
// AdapCC's profiled ordering keep NVLink segments intact.
//
// Usage: ablation_fragmented [--jobs N]
//   --jobs  run the three backend cells on N host threads. Each cell owns
//           its own world, so output is identical at any job count.
#include <cstdlib>
#include <cstring>

#include "baselines/backend.h"
#include "bench/bench_common.h"
#include "util/task_pool.h"

namespace adapcc::bench {
namespace {

using collective::Primitive;

int run(int jobs) {
  print_header("Ablation", "fragmented NVLink wiring: intra-server AllReduce of 256 MB, 8-GPU box with interleaved NVLink islands");
  const Bytes tensor = megabytes(256);

  // Three self-contained cells (each builds its own fragmented box), fanned
  // out over --jobs and printed in fixed order afterwards.
  util::TaskPool pool(jobs);
  const std::vector<double> ms = pool.map_indexed<double>(3, [&](std::size_t i, int) {
    World world({topology::interleaved_a100_server("frag")});
    std::unique_ptr<baselines::Backend> backend;
    switch (i) {
      case 0: backend = std::make_unique<baselines::NcclBackend>(*world.cluster); break;
      case 1: backend = std::make_unique<baselines::BlinkBackend>(*world.cluster); break;
      default: backend = std::make_unique<runtime::AdapccBackend>(*world.cluster); break;
    }
    return backend->run(Primitive::kAllReduce, world.all_ranks(), tensor).elapsed() * 1e3;
  });

  std::printf("%-10s %14s   %s\n", "system", "measured(ms)", "intra-server chain behaviour");
  std::printf("%-10s %14.1f   rank-order chain 7->6->...->0 crosses PCIe on every hop\n",
              "nccl", ms[0]);
  std::printf("%-10s %14.1f   wiring-aware spanning chain keeps NVLink pairs adjacent\n",
              "blink", ms[1]);
  std::printf("%-10s %14.1f   profiled chain ordering + optimized chunk size\n", "adapcc",
              ms[2]);

  std::printf("\nspeedup over NCCL: blink %.2fx, adapcc %.2fx (paper: Blink motivates exactly "
              "this case; AdapCC subsumes it via profiling)\n",
              ms[0] / ms[1], ms[0] / ms[2]);
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main(int argc, char** argv) {
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    }
  }
  return adapcc::bench::run(jobs);
}
