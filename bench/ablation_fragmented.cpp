// Ablation: irregular NVLink wiring (Sec. II-A).
//
// "When GPUs without direct NVLinks are allocated to a training job, NCCL
// is unable to form an NVLink ring and falls back to a less efficient PCIe
// ring instead. Blink constructs topology-aware spanning trees to resolve
// the problem [intra-server]." This harness runs an intra-server Reduce on
// a fragmented A100 box (only pairs (0,1) and (2,3) wired) and shows how
// rank-order chains stumble into PCIe hops while wiring-aware chains and
// AdapCC's profiled ordering keep NVLink segments intact.
#include "baselines/backend.h"
#include "bench/bench_common.h"

namespace adapcc::bench {
namespace {

using collective::Primitive;

int run() {
  print_header("Ablation", "fragmented NVLink wiring: intra-server AllReduce of 256 MB, 8-GPU box with interleaved NVLink islands");
  const Bytes tensor = megabytes(256);

  std::printf("%-10s %14s   %s\n", "system", "measured(ms)", "intra-server chain behaviour");
  World nccl_world({topology::interleaved_a100_server("frag")});
  baselines::NcclBackend nccl(*nccl_world.cluster);
  const double nccl_ms =
      nccl.run(Primitive::kAllReduce, nccl_world.all_ranks(), tensor).elapsed() * 1e3;
  std::printf("%-10s %14.1f   rank-order chain 7->6->...->0 crosses PCIe on every hop\n",
              "nccl", nccl_ms);

  World blink_world({topology::interleaved_a100_server("frag")});
  baselines::BlinkBackend blink(*blink_world.cluster);
  const double blink_ms =
      blink.run(Primitive::kAllReduce, blink_world.all_ranks(), tensor).elapsed() * 1e3;
  std::printf("%-10s %14.1f   wiring-aware spanning chain keeps NVLink pairs adjacent\n",
              "blink", blink_ms);

  World adapcc_world({topology::interleaved_a100_server("frag")});
  runtime::AdapccBackend adapcc(*adapcc_world.cluster);
  const double adapcc_ms =
      adapcc.run(Primitive::kAllReduce, adapcc_world.all_ranks(), tensor).elapsed() * 1e3;
  std::printf("%-10s %14.1f   profiled chain ordering + optimized chunk size\n", "adapcc",
              adapcc_ms);

  std::printf("\nspeedup over NCCL: blink %.2fx, adapcc %.2fx (paper: Blink motivates exactly "
              "this case; AdapCC subsumes it via profiling)\n",
              nccl_ms / blink_ms, nccl_ms / adapcc_ms);
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
