// Determinism/race probe for simulated time (correctness tooling, not a
// paper figure).
//
// Re-runs the Fig. 12 AllReduce scenario — every GPU configuration, all four
// backends — and prints each run's completion time and per-rank finish times
// with full double precision (%.17g). Two knobs perturb execution in ways
// that must NOT change any printed number:
//
//   --tie-shuffle-seed=N   Simulator ties between same-timestamp events are
//                          broken by a seeded bijective scramble of the
//                          insertion order instead of FIFO. Any output change
//                          across seeds means some component's result depends
//                          on same-timestamp event ordering — the simulated-
//                          time analogue of a data race.
//   --layout-jitter=N      Perturbs memory layout before each run: churns a
//                          seed-dependent number of simulator event slots
//                          (schedule + cancel) and holds seed-dependent heap
//                          allocations, so slab indices and allocator state
//                          differ run to run. Any output change means a
//                          result depends on addresses or slot numbering.
//   --trace=PREFIX         Exports a Chrome trace per run to
//                          PREFIX.<config>.<backend>.json; the harness diffs
//                          the files byte-for-byte across seeds.
//
// tools/determinism_check.py drives this binary across >= 5 seeds and fails
// on any diff.
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

namespace adapcc::bench {
namespace {

struct Options {
  std::uint64_t tie_seed = 0;
  std::uint64_t layout_jitter = 0;
  std::string trace_prefix;
};

Options parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value_of = [&arg](const char* flag) -> const char* {
      const std::size_t len = std::strlen(flag);
      return arg.compare(0, len, flag) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* tie = value_of("--tie-shuffle-seed=")) {
      opts.tie_seed = std::strtoull(tie, nullptr, 10);
    } else if (const char* jitter = value_of("--layout-jitter=")) {
      opts.layout_jitter = std::strtoull(jitter, nullptr, 10);
    } else if (const char* trace = value_of("--trace=")) {
      opts.trace_prefix = trace;
    } else {
      std::fprintf(stderr,
                   "usage: determinism_probe [--tie-shuffle-seed=N] [--layout-jitter=N] "
                   "[--trace=PREFIX]\n");
      std::exit(2);
    }
  }
  return opts;
}

/// Disturbs allocator state and simulator slot numbering in a seed-dependent
/// but simulation-invisible way. The schedule/cancel churn consumes slots
/// and tie-break sequence numbers (a pure shift under FIFO, a different
/// scramble input under tie-shuffle); the held allocations shift every
/// subsequent heap address.
std::vector<std::vector<char>> jitter_layout(sim::Simulator& simulator, std::uint64_t seed) {
  std::vector<std::vector<char>> ballast;
  if (seed == 0) return ballast;
  std::uint64_t state = seed;
  const auto next = [&state]() {  // splitmix64; self-contained, deterministic
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  const std::size_t churn = 1 + static_cast<std::size_t>(next() % 257);
  std::vector<sim::EventId> dummies;
  dummies.reserve(churn);
  for (std::size_t i = 0; i < churn; ++i) {
    dummies.push_back(simulator.schedule_after(0.0, [] {}));
  }
  for (const sim::EventId id : dummies) simulator.cancel(id);
  const std::size_t blocks = 1 + static_cast<std::size_t>(next() % 64);
  for (std::size_t i = 0; i < blocks; ++i) {
    ballast.emplace_back(64 + static_cast<std::size_t>(next() % 8192), '\0');
  }
  return ballast;
}

int run(const Options& opts) {
  const Bytes tensor = megabytes(256);
  std::printf("determinism_probe scenario=fig12 tensor_bytes=%llu\n",
              static_cast<unsigned long long>(tensor));
  int config_index = 0;
  for (const auto& config : fig11_configs()) {
    World world(topology::paper_testbed());
    world.simulator->set_tie_shuffle_seed(opts.tie_seed);
    const auto ballast = jitter_layout(*world.simulator, opts.layout_jitter);
    const auto participants = config.participants(*world.cluster);

    runtime::AdapccBackend adapcc(*world.cluster);
    baselines::NcclBackend nccl(*world.cluster);
    baselines::MscclBackend msccl(*world.cluster);
    baselines::BlinkBackend blink(*world.cluster);
    for (baselines::Backend* backend :
         std::initializer_list<baselines::Backend*>{&adapcc, &nccl, &msccl, &blink}) {
      const bool tracing = !opts.trace_prefix.empty();
      if (tracing) telemetry::enable({});
      const auto result = backend->run(collective::Primitive::kAllReduce, participants, tensor);
      std::printf("config=%d backend=%s elapsed=%.17g\n", config_index, backend->name().c_str(),
                  result.elapsed());
      for (const auto& [rank, finish] : result.rank_finish_time) {
        std::printf("config=%d backend=%s rank=%d finish=%.17g\n", config_index,
                    backend->name().c_str(), rank, finish);
      }
      if (tracing) {
        const std::string path = opts.trace_prefix + "." + std::to_string(config_index) + "." +
                                 backend->name() + ".json";
        if (!telemetry::export_chrome_trace(*telemetry::get(), path)) {
          std::fprintf(stderr, "failed to write %s\n", path.c_str());
          return 1;
        }
        telemetry::disable();
      }
    }
    ++config_index;
  }
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main(int argc, char** argv) {
  return adapcc::bench::run(adapcc::bench::parse(argc, argv));
}
