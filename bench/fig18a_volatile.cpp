// Fig. 18(a): training makespan under a volatile network, AdapCC vs NCCL
// (Sec. VI-D).
//
// Four homogeneous A100 servers with RDMA; per-server bandwidth shaped by
// the cloud trace amplified by factor x (drops scaled to 1-x, rises to 1+x).
// AdapCC reprofiles periodically and reconstructs its graphs on the fly;
// NCCL keeps its static strategy. Paper reference: the makespan reduction
// grows as the network becomes more unstable. Iteration count is scaled
// down from the paper's 10^4 (simulated time budget); the profiling period
// is scaled proportionally.
#include "baselines/backend.h"
#include "bench/bench_common.h"
#include "profiler/trace.h"
#include "training/compute_model.h"
#include "training/model_spec.h"
#include "training/trainer.h"

namespace adapcc::bench {
namespace {

constexpr int kIterations = 120;     // paper: 1e4 (scaled; see note)
constexpr int kProfilePeriod = 30;   // paper: 500 (scaled proportionally)

std::vector<profiler::BandwidthTrace> make_traces(double amplify) {
  std::vector<profiler::BandwidthTrace> traces;
  for (int inst = 0; inst < 4; ++inst) {
    auto trace = profiler::BandwidthTrace::synthetic_cloud(600.0, 20.0, 900 + inst);
    traces.push_back(amplify > 0 ? trace.amplified(amplify) : std::move(trace));
  }
  return traces;
}

double makespan(bool use_adapcc, double amplify, std::uint64_t seed) {
  World world(topology::homo_testbed());
  profiler::TraceShaper shaper(*world.cluster, make_traces(amplify));
  shaper.start();

  training::TrainerConfig config;
  config.iterations = kIterations;
  config.batch_per_gpu = 32;
  config.profile_period = use_adapcc ? kProfilePeriod : 0;
  training::Trainer trainer(
      *world.cluster,
      training::ComputeModel(*world.cluster, training::vgg16(), util::Rng(seed)), config);

  double result;
  if (use_adapcc) {
    runtime::Adapcc adapcc(*world.cluster);
    adapcc.init();
    adapcc.setup();
    result = trainer.train_with_adapcc(adapcc).makespan;
  } else {
    baselines::NcclBackend nccl(*world.cluster);
    result = trainer.train_with_backend(nccl).makespan;
  }
  shaper.stop();
  return result;
}

int run() {
  print_header("Fig. 18(a)", "VGG16 makespan under volatile network vs amplification x");
  print_note("4xA100 RDMA, per-server trace shaping; 120 iterations (paper: 1e4, scaled), "
             "profiling period 30 iterations (paper: 500, scaled)");
  std::printf("%8s %14s %14s %14s\n", "x", "adapcc(s)", "nccl(s)", "reduction");
  for (const double x : {0.0, 0.2, 0.4, 0.6}) {
    const double adapcc_s = makespan(true, x, 41);
    const double nccl_s = makespan(false, x, 41);
    std::printf("%8.1f %14.1f %14.1f %+13.1f%%\n", x, adapcc_s, nccl_s,
                (1.0 - adapcc_s / nccl_s) * 100.0);
  }
  std::printf("\npaper: makespan reduction grows with instability\n");
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
