// Ablation: aggregation control a_{m,g} (DESIGN.md §5, Sec. IV-D).
//
// Aggregating at an intermediate GPU shrinks downstream traffic (the
// combined chunk is one-third the volume of three forwarded gradients,
// Fig. 8b) at the price of per-chunk synchronization; forwarding avoids the
// wait but multiplies link load. This harness measures a chain Reduce with
// aggregation enabled everywhere vs disabled at the interior nodes.
#include "bench/bench_common.h"
#include "collective/builders.h"
#include "collective/executor.h"

namespace adapcc::bench {
namespace {

using collective::Primitive;
using topology::NodeId;

int run() {
  print_header("Ablation", "aggregation control: 4-server chain Reduce, 256 MB");
  const Bytes tensor = megabytes(256);

  std::printf("%-34s %14s %22s\n", "variant", "measured(ms)", "root-NIC ingress (MB)");
  for (const bool aggregate : {true, false}) {
    World world(topology::homo_testbed());
    std::vector<int> ranks = world.all_ranks();
    collective::Tree tree;
    tree.root = NodeId::gpu(0);
    for (int inst = 0; inst < 4; ++inst) {
      const auto on_instance = world.cluster->ranks_on_instance(inst);
      for (std::size_t i = 1; i < on_instance.size(); ++i) {
        tree.parent[NodeId::gpu(on_instance[i])] = NodeId::gpu(on_instance[i - 1]);
      }
      if (inst > 0) {
        tree.parent[NodeId::gpu(on_instance[0])] =
            NodeId::gpu(world.cluster->ranks_on_instance(inst - 1)[0]);
      }
    }
    collective::Strategy strategy =
        collective::single_tree_strategy(Primitive::kReduce, ranks, std::move(tree), 2_MiB);
    if (!aggregate) {
      // Disable aggregation at every interior head: flows pile up on the
      // links toward the root.
      for (int inst = 1; inst < 4; ++inst) {
        strategy.subs[0].aggregate_at[NodeId::gpu(
            world.cluster->ranks_on_instance(inst)[0])] = false;
      }
    }
    const Bytes ingress_before = world.cluster->nic_ingress(0).bytes_delivered();
    collective::Executor executor(*world.cluster, strategy);
    const double measured = executor.run(tensor).elapsed() * 1e3;
    const double ingress_mb =
        static_cast<double>(world.cluster->nic_ingress(0).bytes_delivered() - ingress_before) /
        1e6;
    std::printf("%-34s %14.1f %22.0f\n",
                aggregate ? "aggregate at every head (a=1)" : "forward only (a=0 interior)",
                measured, ingress_mb);
  }
  std::printf("\nwithout aggregation the root ingress carries every instance's gradients "
              "separately (3x the volume), which is why the synthesizer's default keeps "
              "a_{m,g}=1 and the local search only disables it when the model profits\n");
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
