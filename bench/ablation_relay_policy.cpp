// Ablation: the wait-vs-proceed policy (DESIGN.md §5.3).
//
// The paper argues the break-even ski-rental rule "outperforms naive
// waiting policies in existing libraries" (Sec. IV-C-1). This harness pits
// AdapCC's break-even coordinator against always-wait and always-proceed
// under three straggler regimes: none, a single interfered worker, and the
// bimodal heterogeneous split.
#include "bench/bench_common.h"
#include "relay/coordinator.h"
#include "training/compute_model.h"
#include "training/model_spec.h"
#include "training/trainer.h"

namespace adapcc::bench {
namespace {

constexpr int kIterations = 15;

double mean_iteration(relay::WaitPolicy policy, bool heter, double interfere_slowdown,
                      std::uint64_t seed) {
  World world(heter ? topology::heter_testbed() : topology::homo_testbed());
  runtime::AdapccConfig config;
  config.coordinator.policy = policy;
  runtime::Adapcc adapcc(*world.cluster, config);
  adapcc.init();
  adapcc.setup();
  training::TrainerConfig trainer_config;
  trainer_config.iterations = kIterations;
  trainer_config.batch_per_gpu = 24;
  training::ComputeModel compute(*world.cluster, training::gpt2(), util::Rng(seed));
  if (interfere_slowdown > 1.0) compute.set_interference(5, interfere_slowdown);
  training::Trainer trainer(*world.cluster, std::move(compute), trainer_config);
  return trainer.train_with_adapcc(adapcc).mean_iteration_time();
}

void row(const char* scenario, bool heter, double slowdown, std::uint64_t seed) {
  const double wait = mean_iteration(relay::WaitPolicy::kAlwaysWait, heter, slowdown, seed);
  const double proceed =
      mean_iteration(relay::WaitPolicy::kAlwaysProceed, heter, slowdown, seed);
  const double breakeven =
      mean_iteration(relay::WaitPolicy::kBreakEven, heter, slowdown, seed);
  std::printf("%-24s %12.1f %14.1f %12.1f   %s\n", scenario, wait * 1e3, proceed * 1e3,
              breakeven * 1e3,
              breakeven <= std::min(wait, proceed) + 1e-4 ? "break-even best/tied" : "");
}

int run() {
  print_header("Ablation", "wait policy: mean iteration time (ms), GPT-2, batch 24");
  std::printf("%-24s %12s %14s %12s\n", "scenario", "always-wait", "always-proceed",
              "break-even");
  row("homo, no straggler", false, 1.0, 71);
  row("homo, 2.5x interfered", false, 2.5, 72);
  row("heterogeneous (V100s)", true, 1.0, 73);
  std::printf("\nthe break-even rule should match the better of the two extremes in every "
              "regime (2-competitive), and beat always-wait whenever stragglers exist\n");
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
