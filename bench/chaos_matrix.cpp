// Chaos matrix: seeded fault schedules x collectives x wait policies.
//
// Every cell replays one random_schedule() seed (link blackouts,
// degradation, flapping, worker crashes, pauses, RPC message loss) against
// an adaptive AllReduce under one coordinator wait policy, plus a resilient
// sweep through Adapcc::run_resilient. Each run must TERMINATE — either
// with bit-correct survivor results or with a structured CollectiveError —
// and a sample of cells is re-run under a different simulator tie-shuffle
// seed to prove the outcome depends only on the fault seed. Any violation
// (hang would show as a stuck process; wrong values, missed determinism,
// uncovered fault kind) makes the binary exit non-zero, so CI can gate on
// it. Run with ADAPCC_AUDIT=ON builds to also sweep the internal
// invariants.
//
// Usage: chaos_matrix [--quick] [--jobs N]
//   --quick  fewer seeds (CI smoke run; still >= 20 schedules)
//   --jobs   run cells on N host threads (default 1). Every cell owns a
//            fresh world + simulator, so cells are independent; results are
//            collected by cell index and printed in submission order — the
//            output and the exit code are byte-identical at any job count.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "chaos/fault_injector.h"
#include "collective/builders.h"
#include "collective/payload.h"
#include "profiler/profiler.h"
#include "relay/relay_collective.h"
#include "relay/rpc.h"
#include "runtime/adapcc.h"
#include "topology/detector.h"
#include "util/rng.h"
#include "util/task_pool.h"

namespace adapcc::bench {
namespace {

using chaos::FaultInjector;
using chaos::FaultSchedule;
using collective::payload_value;
using collective::Primitive;
using collective::rank_bit;
using relay::WaitPolicy;

const char* policy_name(WaitPolicy policy) {
  switch (policy) {
    case WaitPolicy::kBreakEven: return "break-even";
    case WaitPolicy::kAlwaysWait: return "always-wait";
    case WaitPolicy::kAlwaysProceed: return "always-proceed";
  }
  return "?";
}

struct Coverage {
  int blackouts = 0;
  int degradations = 0;
  int flaps = 0;
  int crashes = 0;
  int pauses = 0;
  int rpc_drops = 0;

  void add_schedule(const FaultSchedule& schedule) {
    for (const auto& fault : schedule.link_faults) {
      if (fault.flaps > 0) {
        ++flaps;
      } else if (fault.capacity_fraction <= chaos::kBlackoutFraction) {
        ++blackouts;
      } else {
        ++degradations;
      }
    }
    crashes += static_cast<int>(schedule.crashes.size());
    pauses += static_cast<int>(schedule.pauses.size());
  }
};

struct RunOutcome {
  bool terminated = false;
  bool ok = false;            ///< collective completed with usable values
  bool values_correct = false;
  std::set<int> faulty;
  std::map<int, double> final_values;
  std::string detail;
};

/// One adaptive-AllReduce cell: fresh world, seeded schedule, relay runner
/// under `policy` with the watchdog armed.
RunOutcome run_relay_cell(std::uint64_t fault_seed, WaitPolicy policy,
                          std::uint64_t shuffle_seed, Coverage* coverage) {
  RunOutcome outcome;
  sim::Simulator sim;
  sim.set_tie_shuffle_seed(shuffle_seed);
  topology::Cluster cluster(sim, topology::homo_testbed());
  topology::Detector detector(cluster, util::Rng(5));
  auto topo = topology::Detector::build_logical_topology(cluster, detector.detect());
  profiler::Profiler profiler(cluster);
  profiler.profile(topo);

  FaultSchedule schedule = chaos::random_schedule(fault_seed, cluster);
  schedule.shift(sim.now());
  if (coverage != nullptr) coverage->add_schedule(schedule);
  FaultInjector injector(cluster, schedule, fault_seed);
  injector.arm();

  // Exercise the retransmitting control path through every loss window.
  if (!schedule.rpc_loss.empty()) {
    util::Rng rpc_rng(fault_seed ^ 0xabcdULL);
    sim.run_until(schedule.rpc_loss.front().start + 1e-6);
    relay::rpc_with_retry(cluster, 3, 0, rpc_rng, {}, &injector);
    if (coverage != nullptr) coverage->rpc_drops += injector.rpc_drops();
  }

  relay::CoordinatorConfig config;
  config.policy = policy;
  config.watchdog_timeout = milliseconds(80);
  relay::RelayCollectiveRunner runner(cluster, topo, config);

  std::vector<int> ranks;
  for (int r = 0; r < cluster.world_size(); ++r) ranks.push_back(r);
  std::vector<topology::NodeId> nodes;
  for (const int r : ranks) nodes.push_back(topology::NodeId::gpu(r));
  const collective::Strategy strategy = collective::single_tree_strategy(
      Primitive::kAllReduce, ranks, collective::kary_tree(nodes, 4), 4_MiB);

  std::map<int, Seconds> ready;
  util::Rng jitter(fault_seed ^ 0x5eedULL);
  for (const int r : ranks) {
    ready[r] = sim.now() + milliseconds(1) + milliseconds(4) * jitter.uniform(0.0, 1.0);
  }
  ready = injector.adjust_ready(ready);
  // A crashed worker dies before its tensor is ready: its chunks are what
  // the survivors end up waiting on (the watchdog's job).
  for (const auto& crash : schedule.crashes) {
    ready[crash.rank] = std::max(ready[crash.rank], crash.at + milliseconds(5));
  }

  const auto result =
      runner.run_allreduce(strategy, megabytes(32), ready, {}, injector.dead_at());
  outcome.terminated = true;
  outcome.faulty = result.faulty;
  outcome.final_values = result.final_values;
  if (!result.ok()) {
    // Structured failure (e.g. a blackout outlasting every retry) is an
    // acceptable terminal state; bogus values would not be.
    outcome.ok = false;
    outcome.values_correct = result.final_values.empty();
    outcome.detail = result.error.detail;
    return outcome;
  }
  outcome.ok = true;
  double expected = 0.0;
  for (const int r : ranks) {
    if ((result.final_mask & rank_bit(r)) != 0) expected += payload_value(r, 0, 0);
  }
  outcome.values_correct = true;
  for (const int r : ranks) {
    if (result.faulty.contains(r)) {
      if (result.final_values.contains(r)) outcome.values_correct = false;
      continue;
    }
    const auto it = result.final_values.find(r);
    // Bit-exact: the survivor aggregate must equal the contributor-mask sum.
    if (it == result.final_values.end() || it->second != expected) {
      outcome.values_correct = false;
      outcome.detail = "rank " + std::to_string(r) + " value mismatch";
    }
  }
  return outcome;
}

/// One resilient-execution cell: a crashed rank must be excluded and the
/// re-executed collective must deliver the survivor-only aggregate.
bool run_resilient_cell(std::uint64_t seed, Primitive primitive) {
  sim::Simulator sim;
  topology::Cluster cluster(sim, topology::homo_testbed());
  runtime::Adapcc adapcc(cluster);
  adapcc.init();
  adapcc.setup();

  util::Rng rng(seed);
  int victim;
  if (primitive == Primitive::kAllGather) {
    // Broadcast-direction subs inject data only at each sub-tree root; a
    // non-root crash is invisible at this modeling granularity, so draw the
    // victim among the roots to make every cell exercise recovery.
    const auto& strategy = adapcc.strategy_for(primitive, megabytes(32));
    std::vector<int> roots;
    for (const auto& sub : strategy.subs) roots.push_back(sub.tree.root.index);
    victim = roots[rng.uniform_int(0, static_cast<int>(roots.size()) - 1)];
  } else {
    victim = static_cast<int>(rng.uniform_int(0, cluster.world_size() - 1));
  }
  runtime::ResilienceOptions options;
  options.collective.ready_at[victim] = sim.now() + milliseconds(10);
  options.collective.dead_at[victim] = sim.now() + milliseconds(1);
  const auto report = adapcc.run_resilient(primitive, megabytes(32), options);
  if (!report.ok || !report.excluded.contains(victim)) return false;
  if (primitive != Primitive::kAllReduce) return true;
  double expected = 0.0;
  for (int r = 0; r < cluster.world_size(); ++r) {
    if (r != victim) expected += payload_value(r, 0, 0);
  }
  for (const int rank : adapcc.participants()) {
    const auto it = report.result.delivered.find(rank);
    if (it == report.result.delivered.end() || it->second.empty() || it->second[0].empty() ||
        it->second[0][0] != expected) {
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace adapcc::bench

int main(int argc, char** argv) {
  using namespace adapcc;
  using namespace adapcc::bench;

  bool quick = false;
  int jobs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    }
  }
  const int seeds = quick ? 7 : 16;
  const std::vector<relay::WaitPolicy> policies = {
      relay::WaitPolicy::kBreakEven, relay::WaitPolicy::kAlwaysWait,
      relay::WaitPolicy::kAlwaysProceed};

  print_header("chaos matrix", "seeded fault schedules x wait policies x collectives");
  std::printf("%-6s %-15s %-11s %-8s %-7s %s\n", "seed", "policy", "outcome", "faulty",
              "values", "detail");

  Coverage coverage;
  int violations = 0;
  int runs = 0;
  int recovered = 0;
  int structured_failures = 0;

  // Cells execute on the pool (fresh world per cell, no shared state);
  // coverage, counters, and the printed matrix are folded from the
  // index-ordered results, so the report never depends on --jobs.
  util::TaskPool pool(jobs);

  struct RelayCell {
    RunOutcome outcome;
    Coverage coverage;
  };
  const std::size_t relay_cells = static_cast<std::size_t>(seeds) * policies.size();
  const std::vector<RelayCell> relay_results =
      pool.map_indexed<RelayCell>(relay_cells, [&](std::size_t cell, int) {
        const int s = static_cast<int>(cell / policies.size());
        const std::size_t p = cell % policies.size();
        const std::uint64_t fault_seed = 1000 + static_cast<std::uint64_t>(s);
        RelayCell result;
        result.outcome = run_relay_cell(fault_seed, policies[p], 1,
                                        p == 0 ? &result.coverage : nullptr);
        return result;
      });
  for (std::size_t cell = 0; cell < relay_results.size(); ++cell) {
    const int s = static_cast<int>(cell / policies.size());
    const std::size_t p = cell % policies.size();
    const std::uint64_t fault_seed = 1000 + static_cast<std::uint64_t>(s);
    const RunOutcome& outcome = relay_results[cell].outcome;
    if (p == 0) {
      const Coverage& c = relay_results[cell].coverage;
      coverage.blackouts += c.blackouts;
      coverage.degradations += c.degradations;
      coverage.flaps += c.flaps;
      coverage.crashes += c.crashes;
      coverage.pauses += c.pauses;
      coverage.rpc_drops += c.rpc_drops;
    }
    ++runs;
    if (!outcome.terminated) ++violations;
    if (!outcome.values_correct) ++violations;
    if (outcome.ok) {
      ++recovered;
    } else {
      ++structured_failures;
    }
    std::printf("%-6llu %-15s %-11s %-8zu %-7s %s\n",
                static_cast<unsigned long long>(fault_seed), policy_name(policies[p]),
                outcome.ok ? "completed" : "aborted", outcome.faulty.size(),
                outcome.values_correct ? "exact" : "WRONG", outcome.detail.c_str());
  }

  // Determinism spot-check: the outcome must depend on the fault seed only,
  // never on simulator tie-breaking order. Both shuffle-seed replays of one
  // fault seed run inside the same cell.
  const int determinism_seeds = quick ? 2 : 4;
  // (int, not bool: std::vector<bool> packs bits, so concurrent writes to
  // adjacent indices would race.)
  const std::vector<int> determinism_results = pool.map_indexed<int>(
      static_cast<std::size_t>(determinism_seeds), [&](std::size_t s, int) {
        const std::uint64_t fault_seed = 1000 + static_cast<std::uint64_t>(s);
        const auto a = run_relay_cell(fault_seed, relay::WaitPolicy::kBreakEven, 7, nullptr);
        const auto b =
            run_relay_cell(fault_seed, relay::WaitPolicy::kBreakEven, 1234567, nullptr);
        return a.final_values == b.final_values && a.faulty == b.faulty ? 1 : 0;
      });
  for (int s = 0; s < determinism_seeds; ++s) {
    const bool identical = determinism_results[static_cast<std::size_t>(s)] != 0;
    if (!identical) ++violations;
    std::printf("%-6llu %-15s %-11s %-8s %-7s\n",
                static_cast<unsigned long long>(1000 + static_cast<std::uint64_t>(s)),
                "determinism", identical ? "identical" : "DIVERGED", "-", "-");
  }

  // Resilient-runtime sweep across collectives.
  const std::vector<collective::Primitive> primitives = {
      collective::Primitive::kAllReduce, collective::Primitive::kReduce,
      collective::Primitive::kAllGather};
  const int resilient_seeds = quick ? 1 : 3;
  const std::size_t resilient_cells =
      static_cast<std::size_t>(resilient_seeds) * primitives.size();
  const std::vector<int> resilient_results =
      pool.map_indexed<int>(resilient_cells, [&](std::size_t cell, int) {
        const int s = static_cast<int>(cell / primitives.size());
        const auto primitive = primitives[cell % primitives.size()];
        return run_resilient_cell(42 + static_cast<std::uint64_t>(s), primitive) ? 1 : 0;
      });
  for (std::size_t cell = 0; cell < resilient_results.size(); ++cell) {
    const int s = static_cast<int>(cell / primitives.size());
    const auto primitive = primitives[cell % primitives.size()];
    const bool ok = resilient_results[cell] != 0;
    ++runs;
    if (!ok) ++violations;
    std::printf("%-6d %-15s %-11s %-8s %-7s\n", 42 + s,
                collective::to_string(primitive).c_str(), ok ? "recovered" : "FAILED", "-",
                ok ? "exact" : "WRONG");
  }

  // Every fault kind must actually have been exercised by the sweep.
  std::printf("\ncoverage: %d blackouts, %d degradations, %d flap windows, %d crashes, "
              "%d pauses, %d rpc drops\n",
              coverage.blackouts, coverage.degradations, coverage.flaps, coverage.crashes,
              coverage.pauses, coverage.rpc_drops);
  if (coverage.blackouts == 0 || coverage.degradations == 0 || coverage.flaps == 0 ||
      coverage.crashes == 0 || coverage.pauses == 0 || coverage.rpc_drops == 0) {
    std::printf("VIOLATION: a fault kind was never exercised\n");
    ++violations;
  }
  std::printf("%d runs (%d completed, %d structured failures), %d violations\n", runs,
              recovered, structured_failures, violations);
  if (violations > 0) {
    std::printf("CHAOS MATRIX FAILED\n");
    return 1;
  }
  std::printf("chaos matrix clean: every run terminated with bit-correct survivor results "
              "or a structured error\n");
  return 0;
}
