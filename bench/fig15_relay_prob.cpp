// Fig. 15: probability of each worker being chosen as a relay during
// training iterations (Sec. VI-D).
//
// Paper reference: in the heterogeneous case GPUs with lower computing
// capacity (the V100s) have a much higher probability of being selected as
// relays; in the homogeneous case the distribution is roughly even.
#include "bench/bench_common.h"
#include "training/compute_model.h"
#include "training/model_spec.h"
#include "training/trainer.h"

namespace adapcc::bench {
namespace {

constexpr int kIterations = 60;

training::TrainingStats run_training(std::vector<topology::InstanceSpec> specs,
                                     std::uint64_t seed) {
  World world(std::move(specs));
  runtime::Adapcc adapcc(*world.cluster);
  adapcc.init();
  adapcc.setup();
  training::TrainerConfig config;
  config.iterations = kIterations;
  config.batch_per_gpu = 32;
  training::Trainer trainer(
      *world.cluster,
      training::ComputeModel(*world.cluster, training::gpt2(), util::Rng(seed)), config);
  return trainer.train_with_adapcc(adapcc);
}

void print_probabilities(const char* label, const training::TrainingStats& stats, int world) {
  std::printf("%s (relay probability per rank over %d iterations)\n", label, kIterations);
  for (int rank = 0; rank < world; ++rank) {
    const auto it = stats.relay_count.find(rank);
    const double p = it == stats.relay_count.end()
                         ? 0.0
                         : static_cast<double>(it->second) / kIterations;
    std::printf("  rank %2d: %5.2f %s\n", rank, p, rank >= 8 ? "(V100)" : "(A100)");
  }
}

int run() {
  print_header("Fig. 15", "probability of workers being chosen as relays");
  const auto heter = run_training(topology::heter_testbed(), 23);
  print_probabilities("heterogeneous (ranks 8-15 are V100)", heter, 16);

  const auto homo = run_training(topology::homo_testbed(), 23);
  std::printf("homogeneous (all A100): relay probability per rank\n  ");
  double homo_total = 0;
  for (int rank = 0; rank < 16; ++rank) {
    const auto it = homo.relay_count.find(rank);
    const double p =
        it == homo.relay_count.end() ? 0.0 : static_cast<double>(it->second) / kIterations;
    homo_total += p;
    std::printf("%4.2f ", p);
  }
  std::printf("\n");

  double v100 = 0, a100 = 0;
  for (const auto& [rank, count] : heter.relay_count) (rank >= 8 ? v100 : a100) += count;
  std::printf("\nheter: V100 relays %.0f%% of assignments (paper: slow GPUs dominate); "
              "homo: mean relay prob %.2f, evenly spread\n",
              100.0 * v100 / std::max(1.0, v100 + a100), homo_total / 16.0);
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
