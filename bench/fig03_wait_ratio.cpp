// Fig. 3(b): CDF of the wait-time ratio during GPT-2 training (Sec. II-C).
//
// The ratio is the time the fastest worker waits for the slowest worker to
// be ready for AllReduce, divided by the actual communication time. Paper
// reference, local batch 16, 100 Gbps RDMA:
//   heterogeneous (2x4xV100 + 2x4xA100): ratio > 23% in 50% of iterations;
//   homogeneous (4x4xA100):              ratio > 10% in 50% of iterations.
#include "baselines/backend.h"
#include "bench/bench_common.h"
#include "training/compute_model.h"
#include "training/model_spec.h"
#include "training/trainer.h"
#include "util/stats.h"

namespace adapcc::bench {
namespace {

std::vector<double> collect_ratios(std::vector<topology::InstanceSpec> specs,
                                   std::uint64_t seed) {
  World world(std::move(specs));
  baselines::NcclBackend nccl(*world.cluster);
  training::TrainerConfig config;
  config.iterations = 120;
  config.batch_per_gpu = 16;
  training::Trainer trainer(
      *world.cluster,
      training::ComputeModel(*world.cluster, training::gpt2(), util::Rng(seed)), config);
  return trainer.train_with_backend(nccl).wait_ratios();
}

void print_cdf(const char* label, const std::vector<double>& ratios) {
  std::printf("%-14s", label);
  for (const double q : {0.25, 0.5, 0.75, 0.9}) {
    std::printf("  p%-3.0f=%5.1f%%", q * 100, util::percentile(ratios, q) * 100.0);
  }
  int above = 0;
  for (const double r : ratios) above += r > 0.10 ? 1 : 0;
  std::printf("  frac(ratio>10%%)=%4.0f%%\n",
              100.0 * above / static_cast<double>(ratios.size()));
}

int run() {
  print_header("Fig. 3(b)", "CDF of wait-time ratio, GPT-2 training, batch 16");
  // Heterogeneous: the paper's 2 V100 servers + 2 A100 servers.
  const auto heter = collect_ratios(topology::heter_testbed(), 11);
  // Homogeneous: 4 A100 servers.
  const auto homo = collect_ratios(topology::homo_testbed(), 11);

  print_cdf("heterogeneous", heter);
  print_cdf("homogeneous", homo);
  std::printf("\nmedian wait ratio: heter %.0f%% (paper >23%%), homo %.0f%% (paper >10%%)\n",
              util::percentile(heter, 0.5) * 100.0, util::percentile(homo, 0.5) * 100.0);
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
