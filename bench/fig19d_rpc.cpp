// Fig. 19(d): CDF of the RPC latency for exchanging relay information
// between workers and the coordinator (Sec. VI-E).
//
// Paper reference: latencies collected on workers over 1,000 VGG16 training
// iterations with 6 servers; 90% of negotiations complete below 1.5 ms —
// negligible next to multi-server communication time.
#include "bench/bench_common.h"
#include "relay/rpc.h"
#include "util/stats.h"

namespace adapcc::bench {
namespace {

int run() {
  print_header("Fig. 19(d)", "CDF of coordinator RPC latency (ms), 6 servers");
  World world(topology::paper_testbed());
  util::Rng rng(61);
  std::vector<double> latencies_ms;
  // 1,000 iterations; each iteration one negotiation per non-coordinator
  // worker (sampled round-robin to keep the bench quick).
  for (int iteration = 0; iteration < 1000; ++iteration) {
    const int rank = 1 + iteration % (world.cluster->world_size() - 1);
    latencies_ms.push_back(relay::measure_rpc_latency(*world.cluster, rank, 0, rng) * 1e3);
  }
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    std::printf("  p%-4.0f %8.3f ms\n", q * 100, util::percentile(latencies_ms, q));
  }
  std::printf("\np90 = %.2f ms (paper: 90%% below 1.5 ms)\n",
              util::percentile(latencies_ms, 0.90));
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
