// Fig. 16: GPT-2 training throughput vs local batch size, AdapCC vs NCCL
// (Sec. VI-D).
//
// Larger batches increase per-worker compute-time variance, so adaptive
// relay control gains more. Paper reference: up to 31% throughput
// improvement over NCCL for GPT-2.
#include "baselines/backend.h"
#include "bench/bench_common.h"
#include "training/compute_model.h"
#include "training/model_spec.h"
#include "training/trainer.h"

namespace adapcc::bench {
namespace {

constexpr int kIterations = 12;

double throughput_adapcc(int batch, std::uint64_t seed) {
  World world(topology::heter_testbed());
  runtime::Adapcc adapcc(*world.cluster);
  adapcc.init();
  adapcc.setup();
  training::TrainerConfig config;
  config.iterations = kIterations;
  config.batch_per_gpu = batch;
  training::Trainer trainer(
      *world.cluster,
      training::ComputeModel(*world.cluster, training::gpt2(), util::Rng(seed)), config);
  return trainer.train_with_adapcc(adapcc).throughput(batch * 16);
}

double throughput_nccl(int batch, std::uint64_t seed) {
  World world(topology::heter_testbed());
  baselines::NcclBackend nccl(*world.cluster);
  training::TrainerConfig config;
  config.iterations = kIterations;
  config.batch_per_gpu = batch;
  training::Trainer trainer(
      *world.cluster,
      training::ComputeModel(*world.cluster, training::gpt2(), util::Rng(seed)), config);
  return trainer.train_with_backend(nccl).throughput(batch * 16);
}

int run() {
  print_header("Fig. 16", "GPT-2 training throughput (samples/s) vs local batch size");
  print_note("heterogeneous testbed (2xA100 + 2xV100 servers), 16 GPUs");
  std::printf("%8s %14s %14s %12s\n", "batch", "adapcc", "nccl", "improvement");
  for (const int batch : {8, 16, 24, 32}) {
    const double adapcc_tp = throughput_adapcc(batch, 31);
    const double nccl_tp = throughput_nccl(batch, 31);
    std::printf("%8d %14.1f %14.1f %+11.0f%%\n", batch, adapcc_tp, nccl_tp,
                (adapcc_tp / nccl_tp - 1.0) * 100.0);
  }
  std::printf("\npaper: up to +31%% throughput for GPT-2, growing with batch size\n");
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
