// Fig. 19(b): top-1 accuracy under different aggregation protocols
// (Sec. VI-E).
//
// Paper reference (VGG16 on a down-scaled 100k-image dataset):
//   * AdapCC (phase-1 partial aggregation completed by phase-2) matches
//     NCCL's accuracy — the two-phase protocol preserves the gradient sum;
//   * 'Relay Async' (discarding late workers' tensors) converges worse;
//   * 'AdapCC-nccl graph' (same sums, different aggregation order) matches.
// Substituted workload (DESIGN.md): multinomial logistic regression on a
// synthetic 100k-sample task, non-IID sharded, real float32 SGD.
#include <cstdio>

#include "training/synthetic_sgd.h"

namespace adapcc::bench {
namespace {

using training::AggregationMode;

int run() {
  std::printf("\n================================================================\n");
  std::printf("Fig. 19(b) — top-1 accuracy vs training iteration\n");
  std::printf("================================================================\n");
  training::SgdConfig config;  // defaults: 100k samples, 10 workers, non-IID

  const auto modes = {AggregationMode::kFullSync, AggregationMode::kPhase1Phase2,
                      AggregationMode::kShuffledOrder, AggregationMode::kRelayAsync};
  std::vector<training::AccuracyCurve> curves;
  for (const auto mode : modes) curves.push_back(train_synthetic_sgd(mode, config));

  std::printf("%10s", "iteration");
  for (const auto mode : modes) std::printf(" %18s", to_string(mode).c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < curves[0].iteration.size(); ++i) {
    if (i % 2 != 0 && i + 1 != curves[0].iteration.size()) continue;  // thin the rows
    std::printf("%10d", curves[0].iteration[i]);
    for (const auto& curve : curves) std::printf(" %17.1f%%", curve.accuracy[i] * 100.0);
    std::printf("\n");
  }
  std::printf("\nfinal: full-sync %.1f%%, adapcc %.1f%% (consistent), shuffled-order %.1f%% "
              "(consistent), relay-async %.1f%% (worse, as the paper reports)\n",
              curves[0].final_accuracy() * 100.0, curves[1].final_accuracy() * 100.0,
              curves[2].final_accuracy() * 100.0, curves[3].final_accuracy() * 100.0);
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
