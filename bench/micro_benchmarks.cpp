// Micro-benchmarks (google-benchmark) for the library's hot paths: the
// discrete-event engine, the fluid-flow link model, chunk pipelining, the
// strategy XML codec, the cost model and the synthesizer's solve. These are
// host-performance numbers (how fast the *simulation and solver* run), not
// simulated-time results — they bound how large an experiment the harness
// can afford and correspond to the solve-time axis of Fig. 19(c).
#include <benchmark/benchmark.h>

#include "baselines/backend.h"
#include "collective/builders.h"
#include "collective/executor.h"
#include "profiler/profiler.h"
#include "sim/edge_channel.h"
#include "synthesizer/cost_model.h"
#include "synthesizer/synthesizer.h"
#include "topology/detector.h"
#include "topology/testbeds.h"
#include "util/rng.h"
#include "util/xml.h"

namespace adapcc {
namespace {

void BM_SimulatorScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<Seconds>(i), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorScheduleFire);

void BM_FlowLinkSharedTransfers(benchmark::State& state) {
  const int transfers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim::FlowLink link(sim, "l", microseconds(5), gbps(100));
    int done = 0;
    for (int i = 0; i < transfers; ++i) {
      link.start_transfer(1_MiB, [&done] { ++done; });
    }
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * transfers);
}
BENCHMARK(BM_FlowLinkSharedTransfers)->Arg(8)->Arg(64);

void BM_EdgeChannelPipeline(benchmark::State& state) {
  const int chunks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    sim::FlowLink egress(sim, "e", microseconds(4), gbps(100));
    sim::FlowLink ingress(sim, "i", microseconds(4), gbps(100));
    sim::EdgeChannel channel(sim, {&egress, &ingress});
    int done = 0;
    for (int i = 0; i < chunks; ++i) channel.send(1_MiB, [&done] { ++done; });
    sim.run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * chunks);
}
BENCHMARK(BM_EdgeChannelPipeline)->Arg(64)->Arg(512);

void BM_StrategyXmlRoundTrip(benchmark::State& state) {
  sim::Simulator sim;
  topology::Cluster cluster(sim, topology::paper_testbed());
  baselines::NcclBackend nccl(cluster);
  std::vector<int> ranks;
  for (int r = 0; r < cluster.world_size(); ++r) ranks.push_back(r);
  const auto strategy =
      nccl.plan(collective::Primitive::kAllReduce, ranks, megabytes(256));
  for (auto _ : state) {
    const std::string xml = strategy.to_xml();
    const auto parsed = collective::Strategy::from_xml(xml);
    benchmark::DoNotOptimize(parsed.subs.size());
  }
}
BENCHMARK(BM_StrategyXmlRoundTrip);

struct SynthWorld {
  SynthWorld() : cluster(sim, topology::paper_testbed()) {
    topology::Detector detector(cluster, util::Rng(1));
    topo = topology::Detector::build_logical_topology(cluster, detector.detect());
    profiler::Profiler profiler(cluster);
    profiler.profile(topo);
    for (int r = 0; r < cluster.world_size(); ++r) ranks.push_back(r);
  }
  sim::Simulator sim;
  topology::Cluster cluster;
  topology::LogicalTopology topo;
  std::vector<int> ranks;
};

void BM_CostModelEvaluate(benchmark::State& state) {
  SynthWorld world;
  synthesizer::Synthesizer synth(world.cluster, world.topo);
  const auto strategy =
      synth.synthesize(collective::Primitive::kAllReduce, world.ranks, megabytes(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        synthesizer::estimate_completion_time(strategy, world.topo, megabytes(256), {}));
  }
}
BENCHMARK(BM_CostModelEvaluate);

void BM_SynthesizerSolve(benchmark::State& state) {
  SynthWorld world;
  synthesizer::Synthesizer synth(world.cluster, world.topo);
  for (auto _ : state) {
    const auto strategy =
        synth.synthesize(collective::Primitive::kAllReduce, world.ranks, megabytes(256));
    benchmark::DoNotOptimize(strategy.subs.size());
  }
}
BENCHMARK(BM_SynthesizerSolve);

void BM_CollectiveSimulation256MB(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    topology::Cluster cluster(sim, topology::homo_testbed());
    std::vector<int> ranks;
    for (int r = 0; r < cluster.world_size(); ++r) ranks.push_back(r);
    baselines::NcclBackend nccl(cluster);
    state.ResumeTiming();
    const auto result =
        nccl.run(collective::Primitive::kAllReduce, ranks, megabytes(256));
    benchmark::DoNotOptimize(result.elapsed());
  }
}
BENCHMARK(BM_CollectiveSimulation256MB)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace adapcc

BENCHMARK_MAIN();
