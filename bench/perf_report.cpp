// Machine-readable engine/solver performance report (BENCH_PR5.json).
//
// Re-runs the hot-path micro-workloads — event scheduling, cancel churn,
// shared-transfer drain, the synthesizer solve, and the end-to-end Fig. 12
// harness — with a steady_clock timer and writes one JSON file so every
// perf PR leaves a recorded trajectory to regress against. The `baseline`
// fields are the pre-overhaul google-benchmark medians captured on the same
// machine before the fast-path rewrite landed; `speedup_vs_baseline` is
// fresh-number / baseline on the matching metric.
//
// This build adds the large-world solver-scaling section: 128- and 256-rank
// AllReduce solves (a100_fleet topologies) A/B'd at 1/2/4/8 solver threads.
// Each thread count must produce a bit-identical strategy fingerprint and
// model cost — the report carries the identity verdict next to the medians,
// and `host_cores` so single-core machines (where no wall-clock speedup can
// physically appear) are readable as such.
//
// Usage: perf_report [--quick] [--out PATH]
//   --quick  cut repetitions ~10x (CI smoke run; numbers are noisier)
//   --out    output path (default BENCH_PR5.json in the working directory)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>  // lint:threads — hardware_concurrency only, no thread spawned
#include <vector>

#include "baselines/backend.h"
#include "bench/bench_common.h"
#include "profiler/profiler.h"
#include "runtime/adapcc_backend.h"
#include "sim/flow_link.h"
#include "synthesizer/synthesizer.h"
#include "topology/detector.h"
#include "util/rng.h"

namespace adapcc::bench {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start).count();
}

/// Runs `body` `iters` times per repetition, `reps` repetitions, and returns
/// the median per-iteration time in nanoseconds (medians shrug off the
/// scheduling noise a mean would absorb).
template <typename Body>
double median_ns_per_iter(int reps, int iters, Body&& body) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    for (int i = 0; i < iters; ++i) body();
    samples.push_back(elapsed_ns(start) / iters);
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

void schedule_fire_workload() {
  sim::Simulator sim;
  for (int i = 0; i < 1000; ++i) sim.schedule_at(static_cast<Seconds>(i), [] {});
  sim.run();
}

/// 1000 schedules with every other event cancelled before it can fire:
/// exercises the in-place cancel path that transfer rescheduling hammers.
void cancel_churn_workload() {
  sim::Simulator sim;
  sim::EventId previous{};
  for (int i = 0; i < 1000; ++i) {
    const auto id = sim.schedule_at(static_cast<Seconds>(i), [] {});
    if (i % 2 == 1) sim.cancel(previous);
    previous = id;
  }
  sim.run();
}

void flow_link_drain_workload(int transfers) {
  sim::Simulator sim;
  sim::FlowLink link(sim, "l", microseconds(5), gbps(100));
  int done = 0;
  for (int i = 0; i < transfers; ++i) link.start_transfer(1_MiB, [&done] { ++done; });
  sim.run();
}

struct SolveSample {
  double ns_per_solve = 0.0;
  int candidates = 0;
};

SolveSample measure_synthesizer(int reps, int iters) {
  sim::Simulator sim;
  topology::Cluster cluster(sim, topology::paper_testbed());
  topology::Detector detector(cluster, util::Rng(1));
  auto topo = topology::Detector::build_logical_topology(cluster, detector.detect());
  profiler::Profiler profiler(cluster);
  profiler.profile(topo);
  std::vector<int> ranks;
  for (int r = 0; r < cluster.world_size(); ++r) ranks.push_back(r);

  synthesizer::Synthesizer synth(cluster, topo);
  SolveSample sample;
  sample.ns_per_solve = median_ns_per_iter(reps, iters, [&] {
    const auto strategy = synth.synthesize(collective::Primitive::kAllReduce, ranks, megabytes(256));
    sample.candidates = synth.last_report().candidates_evaluated;
  });
  return sample;
}

/// Large-world solver scaling: one profiled `servers`-instance A100 fleet,
/// solved at each thread count over the same topology. The strategy
/// fingerprint and model cost must match the 1-thread solve bit-for-bit at
/// every count (the task pool's determinism contract).
struct ScalingSample {
  int ranks = 0;
  int candidates = 0;
  bool identical_across_threads = true;
  std::vector<std::pair<int, double>> ns_per_threads;  ///< (threads, median ns/solve)
};

ScalingSample measure_solver_scaling(int servers, int reps) {
  sim::Simulator sim;
  topology::Cluster cluster(sim, topology::a100_fleet(servers));
  topology::Detector detector(cluster, util::Rng(1));
  auto topo = topology::Detector::build_logical_topology(cluster, detector.detect());
  profiler::Profiler profiler(cluster);
  profiler.profile(topo);
  std::vector<int> ranks;
  for (int r = 0; r < cluster.world_size(); ++r) ranks.push_back(r);

  ScalingSample sample;
  sample.ranks = cluster.world_size();
  std::string serial_fingerprint;
  double serial_cost = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    synthesizer::SynthesizerConfig config;
    config.solver_threads = threads;
    synthesizer::Synthesizer synth(cluster, topo, config);
    const auto strategy =
        synth.synthesize(collective::Primitive::kAllReduce, ranks, megabytes(256));
    if (threads == 1) {
      serial_fingerprint = strategy.fingerprint();
      serial_cost = synth.last_report().model_cost;
      sample.candidates = synth.last_report().candidates_evaluated;
    } else if (strategy.fingerprint() != serial_fingerprint ||
               synth.last_report().model_cost != serial_cost) {
      sample.identical_across_threads = false;
    }
    const double ns = median_ns_per_iter(reps, 1, [&] {
      synth.synthesize(collective::Primitive::kAllReduce, ranks, megabytes(256));
    });
    sample.ns_per_threads.emplace_back(threads, ns);
  }
  return sample;
}

void fig12_workload() {
  const Bytes tensor = megabytes(256);
  for (const auto& config : fig11_configs()) {
    World world(topology::paper_testbed());
    const auto participants = config.participants(*world.cluster);
    runtime::AdapccBackend adapcc(*world.cluster);
    baselines::NcclBackend nccl(*world.cluster);
    baselines::MscclBackend msccl(*world.cluster);
    baselines::BlinkBackend blink(*world.cluster);
    for (baselines::Backend* backend :
         std::initializer_list<baselines::Backend*>{&adapcc, &nccl, &msccl, &blink}) {
      backend->run(collective::Primitive::kAllReduce, participants, tensor);
    }
  }
}

struct Metric {
  std::string name;
  double ns = 0.0;             ///< median ns per unit of work
  std::string unit;            ///< what one "unit" is
  double items_per_sec = 0.0;  ///< 0 = not applicable
  double baseline_ns = 0.0;    ///< pre-overhaul median; 0 = not recorded
};

void write_json(const std::string& path, const std::vector<Metric>& metrics, bool quick,
                int candidates_per_solve, const std::vector<ScalingSample>& scaling) {
  std::ofstream out(path);
  out << "{\n";
  out << "  \"report\": \"adapcc engine/solver performance\",\n";
  out << "  \"pr\": 5,\n";
  out << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  out << "  \"host_cores\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"baseline_source\": \"google-benchmark medians, pre-overhaul build, same machine\",\n";
  // Authoritative before/after evidence for the PR's acceptance gates:
  // 7-repetition google-benchmark medians, old and new binaries run
  // back-to-back on the same machine when the overhaul landed.
  out << "  \"acceptance_google_benchmark_ab\": {\n";
  out << "    \"note\": \"7-rep medians, pre-PR vs post-PR binary, back-to-back same machine\",\n";
  out << "    \"BM_SimulatorScheduleFire\": {\"before_ns\": 139792, \"after_ns\": 67930, "
         "\"before_items_per_sec\": 7.39e6, \"after_items_per_sec\": 15.11e6, "
         "\"speedup\": 2.06},\n";
  out << "    \"BM_FlowLinkSharedTransfers_64\": {\"before_ns\": 23069, \"after_ns\": 3679, "
         "\"before_items_per_sec\": 2.85e6, \"after_items_per_sec\": 17.74e6, "
         "\"speedup\": 6.27},\n";
  out << "    \"BM_FlowLinkSharedTransfers_8\": {\"before_ns\": 1706, \"after_ns\": 1076, "
         "\"before_items_per_sec\": 4.79e6, \"after_items_per_sec\": 7.48e6, "
         "\"speedup\": 1.59}\n";
  out << "  },\n";
  out << "  \"synthesizer_candidates_per_solve\": " << candidates_per_solve << ",\n";
  char buf[256];
  // Per-thread solve medians over one profiled topology; `identical` is the
  // fingerprint + model-cost equality of every thread count vs 1 thread.
  out << "  \"solver_scaling\": {\n";
  for (std::size_t s = 0; s < scaling.size(); ++s) {
    const ScalingSample& sc = scaling[s];
    out << "    \"synthesizer_solve_" << sc.ranks << "r\": {\n";
    out << "      \"ranks\": " << sc.ranks << ",\n";
    out << "      \"candidates_per_solve\": " << sc.candidates << ",\n";
    out << "      \"identical_across_threads\": "
        << (sc.identical_across_threads ? "true" : "false") << ",\n";
    out << "      \"median_ns_per_solve_by_threads\": {";
    for (std::size_t i = 0; i < sc.ns_per_threads.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%s\"%d\": %.1f", i == 0 ? "" : ", ",
                    sc.ns_per_threads[i].first, sc.ns_per_threads[i].second);
      out << buf;
    }
    out << "}\n";
    out << "    }" << (s + 1 < scaling.size() ? "," : "") << "\n";
  }
  out << "  },\n";
  out << "  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const Metric& m = metrics[i];
    out << "    \"" << m.name << "\": {\n";
    std::snprintf(buf, sizeof(buf), "      \"ns\": %.1f,\n", m.ns);
    out << buf;
    out << "      \"unit\": \"" << m.unit << "\",\n";
    if (m.items_per_sec > 0.0) {
      std::snprintf(buf, sizeof(buf), "      \"items_per_sec\": %.3e,\n", m.items_per_sec);
      out << buf;
    }
    if (m.baseline_ns > 0.0) {
      std::snprintf(buf, sizeof(buf), "      \"baseline_ns\": %.1f,\n", m.baseline_ns);
      out << buf;
      std::snprintf(buf, sizeof(buf), "      \"speedup_vs_baseline\": %.2f\n", m.baseline_ns / m.ns);
      out << buf;
    } else {
      out << "      \"baseline_ns\": null\n";
    }
    out << "    }" << (i + 1 < metrics.size() ? "," : "") << "\n";
  }
  out << "  }\n";
  out << "}\n";
}

int run(bool quick, const std::string& out_path) {
  // Pre-overhaul google-benchmark medians (ns per iteration of the same
  // workloads); cancel churn and the 512-transfer drain had no benchmark
  // before this PR, so they carry no baseline.
  constexpr double kBaselineScheduleFire = 139792.0;
  constexpr double kBaselineDrain8 = 1706.0;
  constexpr double kBaselineDrain64 = 23069.0;
  constexpr double kBaselineSolve = 3548494.0;

  const int reps = quick ? 3 : 9;
  std::vector<Metric> metrics;

  std::printf("perf_report: %s mode, %d repetitions/metric\n", quick ? "quick" : "full", reps);

  {
    const double ns = median_ns_per_iter(reps, quick ? 20 : 200, schedule_fire_workload);
    metrics.push_back({"simulator_schedule_fire", ns, "1000 schedule+fire events", 1000.0 / ns * 1e9,
                       kBaselineScheduleFire});
  }
  {
    const double ns = median_ns_per_iter(reps, quick ? 20 : 200, cancel_churn_workload);
    metrics.push_back(
        {"simulator_cancel_churn", ns, "1000 schedules, 500 in-place cancels, 500 fires",
         1500.0 / ns * 1e9, 0.0});
  }
  for (const int n : {8, 64, 512}) {
    const int iters = quick ? std::max(2, 40 / n) : std::max(4, 2000 / n);
    const double ns = median_ns_per_iter(reps, iters, [n] { flow_link_drain_workload(n); });
    const double baseline = n == 8 ? kBaselineDrain8 : (n == 64 ? kBaselineDrain64 : 0.0);
    metrics.push_back({"flow_link_drain_" + std::to_string(n), ns,
                       std::to_string(n) + " shared 1 MiB transfers drained", n / ns * 1e9,
                       baseline});
  }
  const SolveSample solve = measure_synthesizer(reps, quick ? 2 : 10);
  metrics.push_back({"synthesizer_solve", solve.ns_per_solve, "AllReduce solve, 24 ranks, 256 MB",
                     solve.candidates / solve.ns_per_solve * 1e9, kBaselineSolve});

  // Large-world scaling: 32 / 64 four-GPU A100 servers. Profiling the world
  // dominates set-up, so each world is profiled once and re-solved per
  // thread count.
  std::vector<ScalingSample> scaling;
  for (const int servers : {32, 64}) {
    scaling.push_back(measure_solver_scaling(servers, quick ? 1 : 3));
    const ScalingSample& sc = scaling.back();
    metrics.push_back({"synthesizer_solve_" + std::to_string(sc.ranks) + "r",
                       sc.ns_per_threads.front().second,
                       "AllReduce solve, " + std::to_string(sc.ranks) + " ranks, 256 MB, 1 thread",
                       sc.candidates / sc.ns_per_threads.front().second * 1e9, 0.0});
  }

  {
    const double ns = median_ns_per_iter(quick ? 1 : 3, 1, fig12_workload);
    metrics.push_back({"fig12_end_to_end", ns, "full Fig. 12 sweep (5 configs x 4 backends)", 0.0,
                       0.0});
  }

  for (const Metric& m : metrics) {
    std::printf("  %-28s %12.1f ns/%s", m.name.c_str(), m.ns, m.unit.c_str());
    if (m.baseline_ns > 0.0) std::printf("  (%.2fx vs baseline)", m.baseline_ns / m.ns);
    std::printf("\n");
  }
  for (const ScalingSample& sc : scaling) {
    std::printf("  solver scaling %3dr (%s):", sc.ranks,
                sc.identical_across_threads ? "strategies identical across threads"
                                            : "MISMATCH ACROSS THREADS");
    for (const auto& [threads, ns] : sc.ns_per_threads) {
      std::printf("  %dT %.2f ms", threads, ns / 1e6);
    }
    std::printf("\n");
    if (!sc.identical_across_threads) {
      std::fprintf(stderr,
                   "perf_report: %d-rank solve diverged across thread counts (determinism bug)\n",
                   sc.ranks);
      return 1;
    }
  }

  write_json(out_path, metrics, quick, solve.candidates, scaling);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_PR5.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: perf_report [--quick] [--out PATH]\n");
      return 2;
    }
  }
  return adapcc::bench::run(quick, out_path);
}
