// Ablation: cost-model fidelity (DESIGN.md §5.1).
//
// The synthesizer optimizes the paper's Eq. 1-6 analytic model; the
// simulator then *measures* the chosen strategy under dynamic fluid-flow
// sharing. This harness evaluates model estimate vs simulated time across a
// spread of strategies (all candidate shapes x chunk sizes x both testbeds)
// and reports the relative error distribution — the solver is only as good
// as this agreement.
#include <cmath>

#include "bench/bench_common.h"
#include "collective/builders.h"
#include "collective/executor.h"
#include "profiler/profiler.h"
#include "synthesizer/cost_model.h"
#include "synthesizer/synthesizer.h"
#include "topology/detector.h"
#include "util/rng.h"
#include "util/stats.h"

namespace adapcc::bench {
namespace {

using collective::Primitive;
using topology::NodeId;

int run() {
  print_header("Ablation", "cost-model fidelity: Eq. 1-6 estimate vs simulated time");
  std::vector<double> errors;
  int rank_inversions = 0;
  int comparisons = 0;

  for (const bool heter : {false, true}) {
    World world(heter ? topology::heter_testbed() : topology::homo_testbed());
    topology::Detector detector(*world.cluster, util::Rng(13));
    auto topo = topology::Detector::build_logical_topology(*world.cluster, detector.detect());
    profiler::Profiler profiler(*world.cluster);
    profiler.profile(topo);
    const auto ranks = world.all_ranks();
    const Bytes tensor = megabytes(256);

    // Strategy spread: the synthesizer's own pick plus single-tree variants
    // (star / chain / binary over heads) at several chunk sizes.
    synthesizer::Synthesizer synth(*world.cluster, topo);
    std::vector<collective::Strategy> strategies;
    strategies.push_back(synth.synthesize(Primitive::kAllReduce, ranks, tensor));
    const int instances = world.cluster->instance_count();
    for (int mode = 0; mode < 3; ++mode) {
      collective::Tree tree;
      std::vector<NodeId> heads;
      for (int inst = 0; inst < instances; ++inst) {
        const auto on_instance = world.cluster->ranks_on_instance(inst);
        heads.push_back(NodeId::gpu(on_instance[0]));
        for (std::size_t i = 1; i < on_instance.size(); ++i) {
          tree.parent[NodeId::gpu(on_instance[i])] = NodeId::gpu(on_instance[i - 1]);
        }
      }
      tree.root = heads[0];
      for (std::size_t i = 1; i < heads.size(); ++i) {
        if (mode == 0) tree.parent[heads[i]] = heads[0];
        if (mode == 1) tree.parent[heads[i]] = heads[i - 1];
        if (mode == 2) tree.parent[heads[i]] = heads[(i - 1) / 2];
      }
      for (const Bytes chunk : {Bytes(1_MiB), Bytes(4_MiB)}) {
        strategies.push_back(collective::single_tree_strategy(Primitive::kAllReduce, ranks,
                                                              tree, chunk));
      }
    }

    std::vector<std::pair<double, double>> points;  // (model, measured)
    for (const auto& strategy : strategies) {
      const double model =
          synthesizer::estimate_completion_time(strategy, topo, tensor, {});
      collective::Executor executor(*world.cluster, strategy);
      const double measured = executor.run(tensor).elapsed();
      points.emplace_back(model, measured);
      errors.push_back(std::abs(model - measured) / measured);
    }
    // Rank agreement: whenever the model says A < B by >10%, the simulator
    // should agree on the winner.
    for (std::size_t a = 0; a < points.size(); ++a) {
      for (std::size_t b = 0; b < points.size(); ++b) {
        if (points[a].first < 0.9 * points[b].first) {
          ++comparisons;
          if (points[a].second > points[b].second) ++rank_inversions;
        }
      }
    }
    std::printf("%s testbed: %zu strategies evaluated\n", heter ? "heterogeneous" : "homogeneous",
                strategies.size());
    for (const auto& [model, measured] : points) {
      std::printf("    model %7.1f ms   measured %7.1f ms   error %+5.0f%%\n", model * 1e3,
                  measured * 1e3, (model / measured - 1.0) * 100.0);
    }
  }

  std::printf("\nmedian |relative error| = %.0f%%, p90 = %.0f%%; ranking inversions: %d / %d "
              "decisive comparisons\n",
              util::percentile(errors, 0.5) * 100.0, util::percentile(errors, 0.9) * 100.0,
              rank_inversions, comparisons);
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
