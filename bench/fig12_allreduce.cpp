// Fig. 12: AllReduce algorithm bandwidth across GPU configurations
// (Sec. VI-C).
//
// Paper reference: AdapCC achieves 1.05-1.29x (geomean 1.19x) over NCCL,
// 1.02-1.21x (1.15x) over MSCCL and 1.30-1.61x (1.49x) over Blink, thanks to
// the pipelined reduce/broadcast stages and link-property awareness.
#include <map>

#include "bench/bench_common.h"
#include "util/stats.h"

namespace adapcc::bench {
namespace {

int run() {
  print_header("Fig. 12", "AllReduce algorithm bandwidth (GB/s), 256 MB input, M = 4");
  const Bytes tensor = megabytes(256);
  std::map<std::string, std::vector<double>> speedups;

  std::printf("%-28s %10s %10s %10s %10s | %8s %8s %8s\n", "config", "adapcc", "nccl", "msccl",
              "blink", "vs nccl", "vs msccl", "vs blink");
  for (const auto& config : fig11_configs()) {
    World world(topology::paper_testbed());
    const auto participants = config.participants(*world.cluster);

    runtime::AdapccBackend adapcc(*world.cluster);
    baselines::NcclBackend nccl(*world.cluster);
    baselines::MscclBackend msccl(*world.cluster);
    baselines::BlinkBackend blink(*world.cluster);

    std::map<std::string, double> bw;
    for (baselines::Backend* backend :
         std::initializer_list<baselines::Backend*>{&adapcc, &nccl, &msccl, &blink}) {
      const auto result = backend->run(collective::Primitive::kAllReduce, participants, tensor);
      bw[backend->name()] = algo_bandwidth_gbps(tensor, result.elapsed());
    }
    const double vs_nccl = bw["adapcc"] / bw["nccl"];
    const double vs_msccl = bw["adapcc"] / bw["msccl"];
    const double vs_blink = bw["adapcc"] / bw["blink"];
    speedups["nccl"].push_back(vs_nccl);
    speedups["msccl"].push_back(vs_msccl);
    speedups["blink"].push_back(vs_blink);
    std::printf("%-28s %10.2f %10.2f %10.2f %10.2f | %7.2fx %7.2fx %7.2fx\n",
                config.label.c_str(), bw["adapcc"], bw["nccl"], bw["msccl"], bw["blink"], vs_nccl,
                vs_msccl, vs_blink);
  }
  std::printf("geomean speedup: vs nccl %.2fx (paper 1.19x), vs msccl %.2fx (paper 1.15x), "
              "vs blink %.2fx (paper 1.49x)\n",
              util::geometric_mean(speedups["nccl"]), util::geometric_mean(speedups["msccl"]),
              util::geometric_mean(speedups["blink"]));
  return 0;
}

}  // namespace
}  // namespace adapcc::bench

int main() { return adapcc::bench::run(); }
